#!/usr/bin/env python3
"""Large-scale transfer: NIMROD across node counts (paper Fig. 5(a)).

The fusion-MHD code NIMROD is the paper's most expensive case study.
This example transfers tuning knowledge collected on a 32-node
Cori-Haswell allocation to a 64-node allocation of the same problem:

1. collect a source dataset on 32 nodes ({mx:5, my:7, lphi:1}) —
   out-of-memory configurations are recorded as failures, exactly the
   behaviour the paper describes for Fig. 5(c),
2. tune on 64 nodes with NoTLA and with every TLA algorithm,
3. print the paper-style best-so-far comparison.

Run:  python examples/nimrod_transfer.py         (~1 minute)
"""

from __future__ import annotations

import numpy as np

from repro.apps import NIMROD
from repro.core import TaskData, Tuner
from repro.hpc import cori_haswell
from repro.tla import STRATEGY_REGISTRY, TransferTuner, get_strategy

TASK = {"mx": 5, "my": 7, "lphi": 1}
N_SOURCE = 100
BUDGET = 10


def collect(app: NIMROD, n: int, seed: int) -> TaskData:
    """Random source data; keeps failed configs for feasibility learning."""
    rng = np.random.default_rng(seed)
    space = app.parameter_space()
    ok_cfg, ys, bad_cfg = [], [], []
    while len(ys) < n:
        cfg = space.sample(rng)
        y = app.objective(TASK, cfg, run=999)
        if y is None:
            bad_cfg.append(cfg)
        else:
            ok_cfg.append(cfg)
            ys.append(y)
    return TaskData(
        TASK,
        space.to_unit_array(ok_cfg),
        np.asarray(ys),
        label="32-node source",
        X_failed=space.to_unit_array(bad_cfg),
    )


def main() -> None:
    source_app = NIMROD(cori_haswell(32))
    target_app = NIMROD(cori_haswell(64))
    problem = target_app.make_problem(run=0)

    source = collect(source_app, N_SOURCE, seed=7)
    n_failed = len(source.X_failed)
    print(f"source: {source.n} successes, {n_failed} OOM failures "
          f"on 32 Haswell nodes")

    print(f"\ntuning {TASK} on 64 Haswell nodes, {BUDGET} evaluations:\n")
    rows = []
    res = Tuner(problem).tune(TASK, BUDGET, seed=0)
    rows.append(("NoTLA", res))
    for key in ("multitask-ps", "multitask-ts", "weighted-sum-dynamic",
                "stacking", "ensemble-proposed"):
        strategy = get_strategy(key)
        res = TransferTuner(problem, strategy, [source]).tune(TASK, BUDGET, seed=0)
        rows.append((strategy.name, res))

    print(f"{'tuner':<24}{'best (s)':>10}{'failures':>10}")
    for name, res in rows:
        best = res.best_output if res.history.n_successes else float("nan")
        print(f"{name:<24}{best:>10.1f}{res.history.n_failures:>10}")

    best_name, best_res = min(
        (r for r in rows if r[1].history.n_successes),
        key=lambda r: r[1].best_output,
    )
    print(f"\nwinner: {best_name} with {best_res.best_output:.1f} s "
          f"(config {best_res.best_config})")
    print(f"available TLA algorithms: {sorted(STRATEGY_REGISTRY)}")


if __name__ == "__main__":
    main()
