#!/usr/bin/env python3
"""The HPC substrate up close: virtual-time SPMD simulation.

The application models in :mod:`repro.apps` charge communication through
closed-form alpha-beta collective costs.  This example shows the
message-level machinery those formulas are validated against: rank
programs executing under :class:`repro.hpc.SpmdSimulator`'s virtual
clocks, a simulated Slurm allocation, and the cost-accounting
communicator.

Run:  python examples/spmd_simulation.py
"""

from __future__ import annotations

from repro.crowd import parse_slurm_environment
from repro.hpc import CostComm, SlurmSim, SpmdSimulator, cori_haswell


def ring_reduce(rank: int, size: int):
    """A hand-written ring all-reduce as a rank program."""
    nbytes = 8 * 1024.0
    yield ("compute", 0.001 * (rank + 1))  # uneven local work
    for step in range(size - 1):
        dest = (rank + 1) % size
        src = (rank - 1) % size
        yield ("send", dest, nbytes, step)
        yield ("recv", src, nbytes, step)
    yield ("compute", 0.0005)


def main() -> None:
    machine = cori_haswell(2)

    # --- a Slurm-like allocation, parsed back by the crowd layer --------
    slurm = SlurmSim(machine)
    job = slurm.salloc(2, ntasks_per_node=8)
    env = job.environment()
    print("Slurm allocation:", env["SLURM_JOB_NODELIST"])
    print("parsed machine config:", parse_slurm_environment(env))

    # --- message-level simulation of a ring all-reduce ------------------
    size = 8
    sim = SpmdSimulator(size, machine.network)
    clocks = sim.run(ring_reduce)
    print(f"\nring all-reduce over {size} ranks:")
    print("  per-rank finish times (s):", [f"{c:.5f}" for c in clocks])
    print(f"  makespan: {max(clocks) * 1e3:.3f} ms")

    # --- the binomial broadcast validated against the alpha-beta bound --
    nbytes = 64 * 1024.0
    prog = SpmdSimulator.bcast_program(0, nbytes)
    simulated = max(SpmdSimulator(size, machine.network).run(prog))
    closed_form = machine.network.bcast(nbytes, size)
    print(f"\nbroadcast of {nbytes / 1024:.0f} KiB over {size} ranks:")
    print(f"  simulated (message-level): {simulated * 1e6:8.1f} us")
    print(f"  closed form (alpha-beta):  {closed_form * 1e6:8.1f} us")

    # --- the cost accountant the app models actually use ----------------
    comm = CostComm(machine, 64)
    comm.bcast(1e6)
    comm.allreduce(8.0)
    comm.alltoall(4096)
    print("\nCostComm tally for one modeled iteration:")
    print(f"  total {comm.stats.seconds * 1e3:.3f} ms over "
          f"{comm.stats.messages} operations")
    for op, seconds in sorted(comm.stats.by_op.items()):
        print(f"    {op:<10} {seconds * 1e6:10.1f} us")


if __name__ == "__main__":
    main()
