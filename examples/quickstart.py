#!/usr/bin/env python3
"""Quickstart: tune an application with and without transfer learning.

This walks the shortest path through the library:

1. define (or pick) an application model and build a tuning problem,
2. tune it with plain Bayesian optimization (the paper's NoTLA),
3. collect a source dataset for a *different* task,
4. tune again with the proposed ensemble of transfer-learning
   algorithms, and compare.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import DemoFunction
from repro.core import TaskData, Tuner
from repro.tla import EnsembleProposed, TransferTuner


def main() -> None:
    # --- 1. the application and its tuning problem ---------------------
    app = DemoFunction()  # y(t, x): one task parameter, one tuning parameter
    problem = app.make_problem(noisy=False)
    target_task = {"t": 1.0}
    budget = 15

    # --- 2. plain Bayesian optimization (NoTLA) ------------------------
    notla = Tuner(problem).tune(target_task, budget, seed=0)
    print("NoTLA:")
    print(f"  best y      = {notla.best_output:.4f}")
    print(f"  best config = {notla.best_config}")

    # --- 3. a source dataset from a related task -----------------------
    # In crowd tuning this data comes from other users via the shared
    # repository (see examples/crowd_repository.py); here we sample it.
    source_task = {"t": 0.8}
    rng = np.random.default_rng(42)
    space = problem.parameter_space
    configs = [space.sample(rng) for _ in range(100)]
    ys = np.array([problem.objective(source_task, c) for c in configs])
    source = TaskData(source_task, space.to_unit_array(configs), ys, label="t=0.8")
    print(f"\nsource dataset: {source.n} samples for task {source_task}")

    # --- 4. transfer tuning with the proposed ensemble -----------------
    tla = TransferTuner(problem, EnsembleProposed(), [source]).tune(
        target_task, budget, seed=0
    )
    print("\nEnsemble(proposed) transfer tuning:")
    print(f"  best y      = {tla.best_output:.4f}")
    print(f"  best config = {tla.best_config}")

    print("\nbest-so-far trajectories (lower is better):")
    print(f"  NoTLA: {[round(v, 3) for v in notla.best_so_far()]}")
    print(f"  TLA:   {[round(v, 3) for v in tla.best_so_far()]}")
    gain = notla.best_output - tla.best_output
    print(f"\ntransfer learning advantage at eval {budget}: {gain:+.4f}")


if __name__ == "__main__":
    main()
