#!/usr/bin/env python3
"""Sensitivity-driven search-space reduction (paper Sec. VI-D/E).

Hypre's GMRES+BoomerAMG has twelve tuning parameters — far too many for
a 10-20 evaluation budget.  This example mirrors the paper's workflow:

1. collect random performance samples for the Poisson task
   nx=ny=nz=100 on one Cori-Haswell node,
2. run the Sobol sensitivity analysis on a fitted surrogate and print
   the Table V-style report,
3. reduce the space to the three most sensitive parameters, pinning
   known defaults and randomizing the rest (the Fig. 7 recipe),
4. tune original vs reduced with the same budget and compare.

Run:  python examples/sensitivity_reduction.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import HypreAMG
from repro.apps.hypre import HYPRE_DEFAULTS
from repro.core import TaskData, Tuner
from repro.hpc import cori_haswell
from repro.sensitivity import SensitivityAnalyzer, reduce_space

TASK = {"nx": 100, "ny": 100, "nz": 100}
N_SAMPLES = 300
BUDGET = 20


def main() -> None:
    app = HypreAMG(cori_haswell(1))
    space = app.parameter_space()
    problem = app.make_problem(run=0)

    # --- 1. random samples (in crowd tuning these come from the repo) --
    rng = np.random.default_rng(0)
    configs = [space.sample(rng) for _ in range(N_SAMPLES)]
    ys = np.array([app.objective(TASK, c, run=99) for c in configs])
    data = TaskData(TASK, space.to_unit_array(configs), ys)
    print(f"collected {data.n} samples for {TASK}")

    # --- 2. Sobol analysis ----------------------------------------------
    report = SensitivityAnalyzer(space).analyze(data, n_base=512, seed=0)
    print("\nSobol sensitivity (cf. paper Table V):")
    print(report.table())

    keep = report.top_k(3, by="ST")
    print(f"\nthree most sensitive parameters: {keep}")
    # interacting parameters must be kept together: a smoother type is
    # inert unless smooth_num_levels > 0 (high ST, low S1 signals this),
    # so pinning the levels to a random value would neutralize the type.
    # The paper's reduced set keeps the pair plus agg_num_levels.
    if "smooth_type" in keep and "smooth_num_levels" not in keep:
        keep[-1] = "smooth_num_levels"
        print(f"adjusted for the smoother interaction: {keep}")

    # --- 3. reduce: defaults where known, random otherwise (Fig. 7) ----
    known_defaults = {
        k: v for k, v in HYPRE_DEFAULTS.items() if k not in keep
    }
    reduced = reduce_space(
        space, keep=keep, defaults=known_defaults, rng=np.random.default_rng(1)
    )
    print(f"reduced space: tune {reduced.names}, pin {sorted(reduced.fixed)}")

    # --- 4. same budget, both spaces ------------------------------------
    res_full = Tuner(problem).tune(TASK, BUDGET, seed=3)
    res_red = Tuner(problem.with_parameter_space(reduced)).tune(
        TASK, BUDGET, seed=3
    )
    full_traj = res_full.best_so_far()
    red_traj = res_red.best_so_far()
    print(f"\noriginal 12-parameter space: best {res_full.best_output:.4f} s")
    print(f"reduced  {reduced.dim}-parameter space: best "
          f"{res_red.best_output:.4f} s")
    # the paper reports the 10th evaluation, where the small budget makes
    # the reduced space's head start largest (Fig. 7: 1.35x); by 20
    # evaluations the full space partially catches up
    print(f"reduced-space advantage @10: {full_traj[9] / red_traj[9]:.2f}x "
          f"(paper: 1.35x)")
    print(f"reduced-space advantage @20: {full_traj[-1] / red_traj[-1]:.2f}x")


if __name__ == "__main__":
    main()
