#!/usr/bin/env python3
"""Crowd-tuning walkthrough: the shared repository end to end.

Recreates the paper's Fig. 1 workflow with two users:

* **user_A** tunes ScaLAPACK's PDGEQRF on 8 Cori-Haswell nodes and
  syncs every evaluation to the shared repository (with automatic
  Slurm/Spack environment parsing attached to each record);
* **user_B** later needs to tune a *different matrix size*.  Their meta
  description queries user_A's records (restricted by machine and
  software version), groups them into source tasks, and transfer-tunes
  with Multitask(TS) — reaching a good configuration in a handful of
  evaluations;
* finally the repository is queried with the SQL-like interface and
  persisted to a JSON file.

Run:  python examples/crowd_repository.py
"""

from __future__ import annotations

from repro.apps import PDGEQRF
from repro.crowd import CrowdClient, CrowdRepository, MetaDescription
from repro.hpc import SlurmSim, cori_haswell
from repro.tla import MultitaskTS


def main() -> None:
    machine = cori_haswell(8)
    app = PDGEQRF(machine)
    problem = app.make_problem(run=0)

    # --- stand up the shared repository and register both users --------
    repo = CrowdRepository()
    _, key_a = repo.register_user("user_A", "a@lab.gov")
    _, key_b = repo.register_user("user_B", "b@lab.gov")

    # --- user_A tunes m=n=10000 and shares everything ------------------
    # the Slurm allocation and Spack spec are parsed automatically and
    # recorded with every sample (paper Sec. IV-A)
    job = SlurmSim(machine).salloc(8, ntasks_per_node=32)
    meta_a = MetaDescription.from_dict(
        {
            "api_key": key_a,
            "tuning_problem_name": app.name,
            "problem_space": problem.describe(),
            "machine_configuration": {
                "machine_name": "cori-haswell",  # normalized to "Cori"
                "slurm": "yes",
                "slurm_environment": job.environment(),
            },
            "software_configuration": {"spack": "scalapack@2.1.0%gcc@8.3.0"},
            "sync_crowd_repo": "yes",
        }
    )
    client_a = CrowdClient(repo, meta_a)
    result_a = client_a.tune(problem, {"m": 10000, "n": 10000}, 25, seed=1)
    print(f"user_A tuned PDGEQRF: best {result_a.best_output:.2f} s "
          f"({result_a.history.n_failures} failed configs)")
    print(f"repository now holds {repo.count()} records")

    # --- user_B transfers to a different task --------------------------
    # the configuration_space restricts the query exactly like the
    # paper's meta-description example: Cori/haswell + gcc 8.x only
    meta_b = MetaDescription.from_dict(
        {
            "api_key": key_b,
            "tuning_problem_name": app.name,
            "problem_space": problem.describe(),
            "configuration_space": {
                "machine_configurations": [{"Cori": {"haswell": {}}}],
                "software_configurations": [
                    {"gcc": {"version_from": [8, 0, 0], "version_to": [9, 0, 0]}}
                ],
                "user_configurations": ["user_A"],
            },
            "sync_crowd_repo": "yes",
        }
    )
    client_b = CrowdClient(repo, meta_b)
    sources = client_b.query_source_data(problem.parameter_space)
    print(f"\nuser_B queried {sum(s.n for s in sources)} samples across "
          f"{len(sources)} source task(s)")

    result_b = client_b.tune(
        problem, {"m": 8000, "n": 8000}, 8, strategy=MultitaskTS(), seed=2
    )
    print(f"user_B transfer-tuned m=n=8000 with {result_b.tuner_name}: "
          f"best {result_b.best_output:.2f} s in 8 evaluations")

    # --- browse and persist ---------------------------------------------
    fastest = repo.query_sql(
        key_b,
        "SELECT * WHERE output != null AND task_parameters.m = 10000 "
        "ORDER BY output ASC LIMIT 3",
    )
    print("\nfastest shared m=10000 records (SQL-like query):")
    for rec in fastest:
        print(f"  {rec.output:7.2f} s  {rec.tuning_parameters}  by {rec.owner}")

    path = "/tmp/gptunecrowd_demo_repo.json"
    repo.save(path)
    print(f"\nrepository persisted to {path}")


if __name__ == "__main__":
    main()
