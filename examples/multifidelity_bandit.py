#!/usr/bin/env python3
"""Multi-fidelity tuning with GPTuneBand (Zhu et al. [13]).

NIMROD's runtime is dominated by its time-marching loop, so a run with
a fraction of the time steps is a cheap, noisy, slightly biased preview
of the full run — a natural fidelity knob.  GPTuneBand exploits it:

1. a successive-halving bracket evaluates many configurations at 1/9
   fidelity, promotes the best third to 1/3, and only the survivors to
   full fidelity;
2. the LCM models the fidelity rungs as correlated tasks, so later
   brackets propose low-rung candidates informed by everything seen;
3. at equal cost (in full-evaluation equivalents), far more
   configurations get screened than plain BO could afford.

Run:  python examples/multifidelity_bandit.py
"""

from __future__ import annotations

import numpy as np

from repro.apps import NIMROD
from repro.core import Tuner, TunerOptions
from repro.hpc import cori_haswell
from repro.tla import GPTuneBand, MultiFidelityObjective, halving_schedule

TASK = {"mx": 5, "my": 7, "lphi": 1}
BUDGET = 8.0  # full-evaluation equivalents


def main() -> None:
    app = NIMROD(cori_haswell(32))

    print("successive-halving ladder (9 configs, 3 rungs, eta=3):")
    for rung, (survivors, fraction) in enumerate(halving_schedule(9, 3)):
        steps = max(int(app.N_TIMESTEPS * fraction), 1)
        print(f"  rung {rung}: {survivors} configs at fidelity {fraction:.3f} "
              f"(~{steps} of {app.N_TIMESTEPS} time steps)")

    objective = MultiFidelityObjective(
        fn=lambda t, c, f: app.fidelity_objective(t, c, f, run=0),
        space=app.parameter_space(),
        task=TASK,
    )
    band = GPTuneBand(objective, bracket_size=9, n_rungs=3).tune(BUDGET, seed=0)
    screened = len({tuple(sorted(c.items())) for c, _, _ in band.evaluations})
    cheap = sum(1 for _, f, _ in band.evaluations if f < 1.0)
    print(f"\nGPTuneBand spent {band.cost_spent:.2f} full-eval equivalents:")
    print(f"  {band.n_evaluations} evaluations ({cheap} at reduced fidelity)")
    print(f"  {screened} distinct configurations screened")
    print(f"  best: {band.best_output:.1f} s with {band.best_config}")

    # the single-fidelity comparison at the same cost
    problem = app.make_problem(run=0)
    bo = Tuner(problem, TunerOptions(n_initial=2)).tune(TASK, int(BUDGET), seed=0)
    traj = bo.best_so_far()
    bo_best = traj[-1] if np.isfinite(traj[-1]) else float("nan")
    print(f"\nplain BO with the same budget ({int(BUDGET)} full evaluations):")
    print(f"  best: {bo_best:.1f} s")
    if band.best_output < bo_best:
        print(f"\nbandit advantage: {bo_best / band.best_output:.2f}x")


if __name__ == "__main__":
    main()
