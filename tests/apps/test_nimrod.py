"""Tests for the NIMROD model (paper Sec. VI-C, Table III)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import NIMROD
from repro.hpc import cori_haswell, cori_knl

SRC_TASK = {"mx": 5, "my": 7, "lphi": 1}
BIG_TASK = {"mx": 6, "my": 8, "lphi": 1}
GOOD = {"NSUP": 230, "NREL": 18, "nbx": 2, "nby": 2, "npz": 1}


@pytest.fixture(scope="module")
def app32():
    return NIMROD(cori_haswell(32))


@pytest.fixture(scope="module")
def app64():
    return NIMROD(cori_haswell(64))


class TestSpaces:
    def test_table3_parameters(self, app32):
        space = app32.parameter_space()
        assert space.names == ["NSUP", "NREL", "nbx", "nby", "npz"]
        assert (space["NSUP"].low, space["NSUP"].high) == (30, 300)
        assert (space["NREL"].low, space["NREL"].high) == (10, 40)
        assert (space["nbx"].low, space["nbx"].high) == (1, 3)
        assert (space["nby"].low, space["nby"].high) == (1, 3)
        assert (space["npz"].low, space["npz"].high) == (0, 5)

    def test_task_parameters(self, app32):
        assert app32.input_space().names == ["mx", "my", "lphi"]

    def test_default_task_is_papers_source(self, app32):
        assert app32.default_task() == SRC_TASK

    def test_fourier_mode_formula(self):
        """floor(2^lphi / 3) + 1 toroidal modes."""
        assert NIMROD.n_fourier(0) == 1
        assert NIMROD.n_fourier(1) == 1
        assert NIMROD.n_fourier(2) == 2
        assert NIMROD.n_fourier(3) == 3


class TestModelShape:
    def test_reasonable_runtime(self, app32):
        y = app32.raw_objective(SRC_TASK, GOOD)
        assert y is not None and 10 < y < 1000

    def test_deterministic(self, app32):
        assert app32.raw_objective(SRC_TASK, GOOD) == app32.raw_objective(
            SRC_TASK, GOOD
        )

    def test_more_nodes_faster(self, app32, app64):
        y32 = app32.raw_objective(SRC_TASK, GOOD)
        y64 = app64.raw_objective(SRC_TASK, GOOD)
        assert y64 < y32

    def test_bigger_problem_slower(self, app64):
        y_small = app64.raw_objective(SRC_TASK, GOOD)
        y_big = app64.raw_objective(BIG_TASK, GOOD)
        assert y_big > y_small * 2

    def test_nsup_matters(self, app64):
        slow = app64.raw_objective(BIG_TASK, dict(GOOD, NSUP=30))
        fast = app64.raw_objective(BIG_TASK, dict(GOOD, NSUP=250))
        assert slow > fast * 1.2

    def test_npz_sweet_spot(self, app64):
        """Fig. 5's tension: npz=0 pays the 2D latency wall, large npz
        runs out of memory; the optimum sits in between."""
        ys = {}
        for npz in range(5):
            ys[npz] = app64.raw_objective(BIG_TASK, dict(GOOD, npz=npz))
        assert ys[3] is None and ys[4] is None  # OOM
        assert ys[1] < ys[0] or ys[2] < ys[0]  # replication helps

    def test_knl_slower_than_haswell(self):
        """KNL's weak sparse cores (paper Fig. 5(b) context)."""
        task = {"mx": 5, "my": 4, "lphi": 1}
        hsw = NIMROD(cori_haswell(32)).raw_objective(task, GOOD)
        knl = NIMROD(cori_knl(32)).raw_objective(task, GOOD)
        assert knl > hsw


class TestFailures:
    def test_oom_on_big_problem_high_npz(self, app64):
        assert app64.raw_objective(BIG_TASK, dict(GOOD, npz=4)) is None

    def test_oom_rate_substantial_for_fig5c(self, app64, rng):
        """Fig. 5(c): random sampling hits OOM configurations often."""
        space = app64.parameter_space()
        fails = sum(
            1
            for _ in range(100)
            if app64.raw_objective(BIG_TASK, space.sample(rng)) is None
        )
        assert 20 <= fails <= 60

    def test_small_problem_on_knl_never_fails(self, rng):
        app = NIMROD(cori_knl(32))
        task = {"mx": 5, "my": 4, "lphi": 1}
        space = app.parameter_space()
        for _ in range(50):
            assert app.raw_objective(task, space.sample(rng)) is not None

    def test_npz_exceeding_ranks_fails(self):
        tiny = NIMROD(cori_haswell(1))  # 32 ranks
        # lphi=3 -> 3 modes -> ~10 ranks per solve; 2^4=16 > 10
        y = tiny.raw_objective(
            {"mx": 3, "my": 3, "lphi": 3}, dict(GOOD, npz=4)
        )
        assert y is None


class TestTransferPremise:
    def test_correlation_across_node_counts(self, app32, app64, rng):
        """Fig. 5(a): configurations rank similarly on 32 and 64 nodes."""
        space = app32.parameter_space()
        y1, y2 = [], []
        while len(y1) < 20:
            c = space.sample(rng)
            a = app32.raw_objective(SRC_TASK, c)
            b = app64.raw_objective(SRC_TASK, c)
            if a is not None and b is not None:
                y1.append(a)
                y2.append(b)
        assert np.corrcoef(y1, y2)[0, 1] > 0.5
