"""Tests for the 3D communication-avoiding LU model (Sao-Li-Vuduc [23])."""

from __future__ import annotations

import pytest

from repro.apps.superlu3d import SuperLU3DModel
from repro.hpc import Grid3D, cori_haswell


@pytest.fixture(scope="module")
def model():
    return SuperLU3DModel(cori_haswell(32))


N = 200_000


class TestFactorization:
    def test_costs_positive(self, model):
        c = model.factorization(N, Grid3D(16, 32, 2), nsup=128, nrel=20)
        assert c.factor_seconds > 0
        assert c.solve_seconds > 0
        assert c.mem_per_rank > 0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.factorization(0, Grid3D(2, 2, 1), nsup=128, nrel=20)

    def test_replication_reduces_communication_cost(self, model):
        """The 3D algorithm's raison d'etre: at scale, pz > 1 beats the
        pure 2D grid with the same total ranks."""
        ranks = 1024
        flat = model.factorization(N, Grid3D(32, 32, 1), nsup=128, nrel=20)
        repl = model.factorization(N, Grid3D(16, 16, 4), nsup=128, nrel=20)
        assert repl.factor_seconds < flat.factor_seconds
        del ranks

    def test_replication_costs_memory(self, model):
        """Memory per rank grows with pz (same total ranks)."""
        flat = model.factorization(N, Grid3D(32, 32, 1), nsup=128, nrel=20)
        repl = model.factorization(N, Grid3D(16, 16, 4), nsup=128, nrel=20)
        assert repl.mem_per_rank > flat.mem_per_rank * 2

    def test_memory_monotone_in_pz(self, model):
        mems = []
        for pz in (1, 2, 4, 8):
            grid = Grid3D(16, 1024 // (16 * pz), pz)
            mems.append(
                model.factorization(N, grid, nsup=128, nrel=20).mem_per_rank
            )
        assert mems == sorted(mems)

    def test_larger_problem_costs_more(self, model):
        g = Grid3D(16, 16, 2)
        small = model.factorization(N, g, nsup=128, nrel=20)
        big = model.factorization(4 * N, g, nsup=128, nrel=20)
        assert big.factor_seconds > small.factor_seconds * 3

    def test_nsup_speeds_factorization(self, model):
        g = Grid3D(16, 16, 2)
        slow = model.factorization(N, g, nsup=30, nrel=20)
        fast = model.factorization(N, g, nsup=250, nrel=20)
        assert fast.factor_seconds < slow.factor_seconds

    def test_solve_cheaper_than_factor(self, model):
        c = model.factorization(N, Grid3D(16, 16, 2), nsup=128, nrel=20)
        assert c.solve_seconds < c.factor_seconds
