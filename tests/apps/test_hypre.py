"""Tests for the Hypre GMRES+BoomerAMG model (paper Sec. VI-E, Table V)."""

from __future__ import annotations

import pytest

from repro.apps import HYPRE_DEFAULTS, HypreAMG
from repro.hpc import cori_haswell

TASK = {"nx": 100, "ny": 100, "nz": 100}
GOOD = {
    "Px": 2,
    "Py": 4,
    "Nproc": 31,
    "strong_threshold": 0.25,
    "trunc_factor": 0.0,
    "P_max_elmts": 4,
    "coarsen_type": "falgout",
    "relax_type": "hybrid-gs",
    "smooth_type": "parasails",
    "smooth_num_levels": 4,
    "interp_type": "classical",
    "agg_num_levels": 3,
}


@pytest.fixture(scope="module")
def app():
    return HypreAMG(cori_haswell(1))


class TestSpaces:
    def test_twelve_parameters(self, app):
        """Table V lists exactly 12 tuning parameters."""
        space = app.parameter_space()
        assert space.dim == 12
        assert space.names == [
            "Px",
            "Py",
            "Nproc",
            "strong_threshold",
            "trunc_factor",
            "P_max_elmts",
            "coarsen_type",
            "relax_type",
            "smooth_type",
            "smooth_num_levels",
            "interp_type",
            "agg_num_levels",
        ]

    def test_ranges_match_table5(self, app):
        space = app.parameter_space()
        for name in ("Px", "Py", "Nproc"):
            assert (space[name].low, space[name].high) == (1, 32)
        assert (space["P_max_elmts"].low, space["P_max_elmts"].high) == (1, 12)
        assert (space["smooth_num_levels"].low, space["smooth_num_levels"].high) == (0, 5)
        assert (space["agg_num_levels"].low, space["agg_num_levels"].high) == (0, 5)
        assert space["coarsen_type"].n_values == 8
        assert space["relax_type"].n_values == 6
        assert space["smooth_type"].n_values == 5
        assert space["interp_type"].n_values == 7

    def test_defaults_valid(self, app):
        space = app.parameter_space()
        for key, value in HYPRE_DEFAULTS.items():
            assert space[key].contains(value), key

    def test_default_task_is_papers(self, app):
        assert app.default_task() == TASK


class TestModelShape:
    def test_positive_runtime(self, app):
        y = app.raw_objective(TASK, GOOD)
        assert y is not None and y > 0

    def test_problem_size_scaling(self, app):
        small = app.raw_objective({"nx": 50, "ny": 50, "nz": 50}, GOOD)
        large = app.raw_objective({"nx": 150, "ny": 150, "nz": 150}, GOOD)
        assert large > small * 10

    def test_smoother_and_levels_interact(self, app):
        """Table V's signature: smooth_type only matters when
        smooth_num_levels > 0."""
        off = dict(GOOD, smooth_num_levels=0)
        y_par = app.raw_objective(TASK, dict(off, smooth_type="parasails"))
        y_pil = app.raw_objective(TASK, dict(off, smooth_type="pilut"))
        assert y_par == pytest.approx(y_pil, rel=1e-9)

        on = dict(GOOD, smooth_num_levels=4)
        y_par = app.raw_objective(TASK, dict(on, smooth_type="parasails"))
        y_pil = app.raw_objective(TASK, dict(on, smooth_type="pilut"))
        assert y_pil > y_par * 1.5

    def test_aggressive_coarsening_helps(self, app):
        y0 = app.raw_objective(TASK, dict(GOOD, agg_num_levels=0))
        y3 = app.raw_objective(TASK, dict(GOOD, agg_num_levels=3))
        assert y3 < y0

    def test_px_nearly_free(self, app):
        """Table V: Px has ~zero sensitivity."""
        ys = [app.raw_objective(TASK, dict(GOOD, Px=px)) for px in (1, 8, 31)]
        assert max(ys) < min(ys) * 1.1

    def test_py_matters_more_than_px(self, app):
        spread = lambda key: max(
            app.raw_objective(TASK, dict(GOOD, **{key: v})) for v in (1, 31)
        ) / min(app.raw_objective(TASK, dict(GOOD, **{key: v})) for v in (1, 31))
        assert spread("Py") > spread("Px")

    def test_nproc_mild(self, app):
        """AMG is bandwidth bound: Nproc swings runtime far less than
        linearly."""
        y1 = app.raw_objective(TASK, dict(GOOD, Nproc=1, Px=1, Py=1))
        y31 = app.raw_objective(TASK, dict(GOOD, Nproc=31, Px=1, Py=1))
        assert y1 < y31 * 3

    def test_minor_knobs_are_minor(self, app):
        for key, values in [
            ("strong_threshold", (0.0, 0.9)),
            ("trunc_factor", (0.0, 0.9)),
            ("P_max_elmts", (1, 11)),
        ]:
            ys = [app.raw_objective(TASK, dict(GOOD, **{key: v})) for v in values]
            assert max(ys) < min(ys) * 1.25, key

    def test_never_fails(self, app, rng):
        space = app.parameter_space()
        for _ in range(60):
            assert app.raw_objective(TASK, space.sample(rng)) is not None
