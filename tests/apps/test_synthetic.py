"""Tests for the paper's synthetic objectives (Sec. VI-A)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.apps.synthetic import BRANIN_CLASSIC_TASK, BraninFunction, DemoFunction


class TestDemoFunction:
    @pytest.fixture
    def app(self):
        return DemoFunction()

    def test_formula_spot_check(self, app):
        """y(t, x) = 1 + e^{-(x+1)^{t+1}} cos(2 pi x) sum sin(2 pi x (t+2)^i)."""
        t, x = 1.0, 0.25
        env = math.exp(-((x + 1.0) ** 2.0))
        waves = sum(math.sin(2 * math.pi * x * 3.0**i) for i in (1, 2, 3))
        expect = 1.0 + env * math.cos(2 * math.pi * x) * waves
        assert app.raw_objective({"t": t}, {"x": x}) == pytest.approx(expect)

    def test_x_zero_value(self, app):
        # at x=0 all sine terms vanish: y = 1
        for t in (0.5, 1.0, 5.0):
            assert app.raw_objective({"t": t}, {"x": 0.0}) == pytest.approx(1.0)

    def test_spaces_match_paper(self, app):
        t = app.input_space()["t"]
        x = app.parameter_space()["x"]
        assert (t.low, t.high) == (0.0, 10.0)
        assert (x.low, x.high) == (0.0, 1.0)

    def test_task_parameter_changes_landscape(self, app):
        xs = np.linspace(0.01, 0.99, 50)
        y1 = [app.raw_objective({"t": 0.8}, {"x": x}) for x in xs]
        y2 = [app.raw_objective({"t": 6.0}, {"x": x}) for x in xs]
        assert not np.allclose(y1, y2)

    def test_correlated_nearby_tasks(self, app):
        """Close tasks (t=0.8 vs 1.0) should have correlated landscapes —
        the premise of the paper's Fig. 3 transfer scenarios."""
        xs = np.linspace(0.01, 0.99, 80)
        y1 = np.array([app.raw_objective({"t": 0.8}, {"x": x}) for x in xs])
        y2 = np.array([app.raw_objective({"t": 1.0}, {"x": x}) for x in xs])
        assert np.corrcoef(y1, y2)[0, 1] > 0.3

    def test_noiseless(self, app):
        assert app.noise_sigma == 0.0


class TestBraninFunction:
    @pytest.fixture
    def app(self):
        return BraninFunction()

    def test_classic_branin_minima(self, app):
        """The classic Branin function has three global minima with value
        ~0.397887."""
        minima = [(-math.pi, 12.275), (math.pi, 2.275), (9.42478, 2.475)]
        for x1, x2 in minima:
            y = app.raw_objective(BRANIN_CLASSIC_TASK, {"x1": x1, "x2": x2})
            assert y == pytest.approx(0.397887, abs=1e-4)

    def test_six_task_parameters(self, app):
        assert app.input_space().names == ["a", "b", "c", "r", "s", "t"]

    def test_two_tuning_parameters(self, app):
        space = app.parameter_space()
        assert space.names == ["x1", "x2"]
        assert (space["x1"].low, space["x1"].high) == (-5.0, 10.0)
        assert (space["x2"].low, space["x2"].high) == (0.0, 15.0)

    def test_classic_task_inside_input_space(self, app):
        app.input_space().validate(BRANIN_CLASSIC_TASK)

    def test_random_tasks_remain_positive_near_minima(self, app, rng):
        """Scaled task parameters shift but do not degenerate the bowl."""
        for _ in range(10):
            task = app.input_space().sample(rng)
            cfg = app.parameter_space().sample(rng)
            assert np.isfinite(app.raw_objective(task, cfg))

    def test_task_scaling_changes_optimum_value(self, app):
        task2 = dict(BRANIN_CLASSIC_TASK)
        task2["s"] = BRANIN_CLASSIC_TASK["s"] * 1.4
        y1 = app.raw_objective(BRANIN_CLASSIC_TASK, {"x1": math.pi, "x2": 2.275})
        y2 = app.raw_objective(task2, {"x1": math.pi, "x2": 2.275})
        assert y1 != pytest.approx(y2)
