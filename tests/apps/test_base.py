"""Tests for the application base class and deterministic noise."""

from __future__ import annotations

import pytest

from repro.apps.base import deterministic_seed
from repro.apps.synthetic import DemoFunction
from repro.apps import PDGEQRF
from repro.hpc import cori_haswell


class TestDeterministicSeed:
    def test_stable(self):
        assert deterministic_seed("a", {"x": 1}) == deterministic_seed("a", {"x": 1})

    def test_order_independent_dicts(self):
        assert deterministic_seed({"a": 1, "b": 2}) == deterministic_seed(
            {"b": 2, "a": 1}
        )

    def test_distinguishes_content(self):
        assert deterministic_seed("a") != deterministic_seed("b")
        assert deterministic_seed({"x": 1}) != deterministic_seed({"x": 2})

    def test_numpy_scalars_canonical(self):
        import numpy as np

        assert deterministic_seed({"x": np.int64(3)}) == deterministic_seed({"x": 3})
        assert deterministic_seed({"x": np.float64(0.5)}) == deterministic_seed(
            {"x": 0.5}
        )


class TestObjectiveNoise:
    @pytest.fixture
    def app(self):
        app = PDGEQRF(cori_haswell(2))
        return app

    def test_noiseless_app_returns_raw(self):
        app = DemoFunction()  # noise_sigma = 0
        task, cfg = {"t": 1.0}, {"x": 0.5}
        assert app.objective(task, cfg) == app.raw_objective(task, cfg)

    def test_noise_reproducible_per_run(self, app):
        task = {"m": 5000, "n": 5000}
        cfg = {"mb": 4, "nb": 4, "lg2npernode": 5, "p": 8}
        a = app.objective(task, cfg, run=0)
        b = app.objective(task, cfg, run=0)
        assert a == b

    def test_noise_differs_across_runs(self, app):
        task = {"m": 5000, "n": 5000}
        cfg = {"mb": 4, "nb": 4, "lg2npernode": 5, "p": 8}
        assert app.objective(task, cfg, run=0) != app.objective(task, cfg, run=1)

    def test_noise_is_small_multiplicative(self, app):
        task = {"m": 5000, "n": 5000}
        cfg = {"mb": 4, "nb": 4, "lg2npernode": 5, "p": 8}
        raw = app.raw_objective(task, cfg)
        noisy = app.objective(task, cfg, run=3)
        assert abs(noisy / raw - 1.0) < 0.25

    def test_failures_pass_through(self, app):
        task = {"m": 5000, "n": 5000}
        bad = {"mb": 4, "nb": 4, "lg2npernode": 0, "p": 60}  # p > ranks
        assert app.objective(task, bad, run=0) is None


class TestMakeProblem:
    def test_problem_wiring(self):
        app = DemoFunction()
        p = app.make_problem()
        assert p.name == "demo"
        assert p.parameter_space.names == ["x"]
        ev = p.evaluate({"t": 1.0}, {"x": 0.5})
        assert not ev.failed

    def test_noisy_flag(self):
        app = PDGEQRF(cori_haswell(2))
        task = app.default_task()
        cfg = {"mb": 4, "nb": 4, "lg2npernode": 5, "p": 8}
        raw_p = app.make_problem(noisy=False)
        noisy_p = app.make_problem(noisy=True, run=1)
        assert raw_p.objective(task, cfg) == app.raw_objective(task, cfg)
        assert noisy_p.objective(task, cfg) != raw_p.objective(task, cfg)

    def test_default_task_valid(self):
        for app in (DemoFunction(), PDGEQRF(cori_haswell(2))):
            app.input_space().validate(app.default_task())
