"""Tests for the PDGEQRF performance model (paper Sec. VI-B, Table II)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import PDGEQRF
from repro.hpc import cori_haswell


@pytest.fixture(scope="module")
def app():
    return PDGEQRF(cori_haswell(8))


GOOD = {"mb": 4, "nb": 8, "lg2npernode": 5, "p": 16}
TASK = {"m": 10000, "n": 10000}


class TestSpaces:
    def test_table2_parameters(self, app):
        """Table II: mb/nb in [1,16), lg2npernode in [0, log2 cores),
        p in [1, nodes*cores)."""
        space = app.parameter_space()
        assert space.names == ["mb", "nb", "lg2npernode", "p"]
        assert (space["mb"].low, space["mb"].high) == (1, 16)
        assert (space["nb"].low, space["nb"].high) == (1, 16)
        assert space["lg2npernode"].high == 6  # 2^5 = 32 cores max
        assert (space["p"].low, space["p"].high) == (1, 8 * 32)

    def test_task_space(self, app):
        assert app.input_space().names == ["m", "n"]

    def test_default_task_is_papers(self, app):
        assert app.default_task() == {"m": 10000, "n": 10000}


class TestFeasibility:
    def test_p_exceeding_ranks_infeasible(self, app):
        cfg = dict(GOOD, lg2npernode=0, p=9)  # 8 ranks total, p=9
        assert not app.constraint(TASK, cfg)
        assert app.raw_objective(TASK, cfg) is None

    def test_p_within_ranks_feasible(self, app):
        assert app.constraint(TASK, GOOD)
        assert app.raw_objective(TASK, GOOD) is not None

    def test_memory_failure_on_small_memory_machine(self):
        """Out-of-memory configurations must fail, not run slowly."""
        from dataclasses import replace

        tight = PDGEQRF(replace(cori_haswell(1), mem_per_node=4 * 1024.0**3))
        cfg = {"mb": 4, "nb": 4, "lg2npernode": 0, "p": 1}
        # 8 bytes * 50000^2 * 1.15 ~ 23 GB on one rank >> 4 GB node
        assert tight.raw_objective({"m": 50000, "n": 50000}, cfg) is None


class TestModelShape:
    def test_runtime_in_paper_range(self, app):
        """Fig. 4 reports ~2.8-4.4 s tuned for m=n=10000 on 8 nodes;
        good configurations should land in the low single-digit seconds."""
        y = app.raw_objective(TASK, GOOD)
        assert 1.0 < y < 10.0

    def test_more_nodes_faster(self):
        y8 = PDGEQRF(cori_haswell(8)).raw_objective(TASK, GOOD)
        y16 = PDGEQRF(cori_haswell(16)).raw_objective(
            TASK, dict(GOOD, p=22)
        )
        assert y16 < y8

    def test_bigger_matrix_slower(self, app):
        y_small = app.raw_objective({"m": 6000, "n": 6000}, GOOD)
        y_big = app.raw_objective({"m": 14000, "n": 14000}, GOOD)
        assert y_big > y_small * 2

    def test_degenerate_grid_slow(self, app):
        """A 1-row grid wastes the panel parallelism."""
        good = app.raw_objective(TASK, GOOD)
        flat = app.raw_objective(TASK, dict(GOOD, p=1))
        assert flat > good * 1.5

    def test_tiny_blocks_slow(self, app):
        good = app.raw_objective(TASK, GOOD)
        tiny = app.raw_objective(TASK, dict(GOOD, nb=1))
        assert tiny > good

    def test_underpacked_nodes_slower(self, app):
        """Using 1 rank/node leaves 31 cores idle."""
        packed = app.raw_objective(TASK, GOOD)
        sparse = app.raw_objective(TASK, dict(GOOD, lg2npernode=0, p=2))
        assert sparse > packed * 2

    def test_deterministic(self, app):
        assert app.raw_objective(TASK, GOOD) == app.raw_objective(TASK, GOOD)

    def test_square_grid_near_optimal_for_square_matrix(self, app, rng):
        """For m=n the best grids should not be extremely elongated."""
        ys = {}
        for p in (1, 4, 16, 64, 256):
            ys[p] = app.raw_objective(TASK, dict(GOOD, p=p))
        best_p = min(ys, key=ys.get)
        assert best_p in (4, 16, 64)

    def test_correlated_across_node_counts(self, app, rng):
        """Transfer premise (Fig. 4/5): rankings on 8 nodes correlate
        with rankings on 16 nodes."""
        other = PDGEQRF(cori_haswell(16))
        space = app.parameter_space()
        configs, y1, y2 = [], [], []
        while len(configs) < 25:
            c = space.sample(rng)
            a = app.raw_objective(TASK, c)
            b = other.raw_objective(TASK, c)
            if a is not None and b is not None:
                configs.append(c)
                y1.append(a)
                y2.append(b)
        r = np.corrcoef(y1, y2)[0, 1]
        assert r > 0.6
