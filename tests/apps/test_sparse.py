"""Tests for the sparse-matrix substrate (Sec. VI-D's foundation)."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import sparse as sp

from repro.apps.sparse import (
    COLPERM_CHOICES,
    MATRIX_REGISTRY,
    bandwidth,
    dense_block_lu_flops,
    get_matrix,
    laplacian_3d,
    parsec_like,
    supernode_gemm_efficiency,
    supernode_sizes,
    symbolic_stats,
)


class TestGenerators:
    def test_laplacian_shape_and_symmetry(self):
        A = laplacian_3d(4, 5, 6)
        assert A.shape == (120, 120)
        assert (A != A.T).nnz == 0

    def test_laplacian_diagonal_dominant(self):
        A = laplacian_3d(5, 5, 5, shift=0.5).tocsr()
        d = A.diagonal()
        off = np.abs(A).sum(axis=1).A1 - np.abs(d)
        assert np.all(d >= off)  # weakly diagonally dominant -> nonsingular

    def test_laplacian_validation(self):
        with pytest.raises(ValueError):
            laplacian_3d(0, 2, 2)

    def test_parsec_like_adds_bonds(self):
        base = laplacian_3d(8, 8, 8)
        A = parsec_like(8, bond_fraction=0.05, seed=1)
        assert A.nnz > base.nnz
        assert (A != A.T).nnz == 0  # still structurally symmetric

    def test_parsec_like_seeded(self):
        a = parsec_like(6, seed=3)
        b = parsec_like(6, seed=3)
        assert (a != b).nnz == 0

    def test_bandwidth(self):
        A = sp.diags([1.0, 1.0, 1.0], [-2, 0, 2], shape=(10, 10))
        assert bandwidth(A) == 2
        assert bandwidth(sp.csr_matrix((3, 3))) == 0


class TestRegistry:
    def test_paper_matrices_present(self):
        """The PARSEC analogues of the paper's Si5H12 and H2O."""
        assert set(MATRIX_REGISTRY) == {"Si5H12", "H2O"}
        assert "PARSEC" in MATRIX_REGISTRY["Si5H12"].stands_for

    def test_h2o_larger_than_si5h12(self):
        assert get_matrix("H2O").shape[0] > get_matrix("Si5H12").shape[0]

    def test_matrices_cached(self):
        assert get_matrix("Si5H12") is get_matrix("Si5H12")

    def test_unknown_matrix(self):
        with pytest.raises(KeyError):
            get_matrix("bcsstk01")


class TestSymbolicStats:
    def test_all_orderings_factorize(self):
        for cp in COLPERM_CHOICES:
            s = symbolic_stats("Si5H12", cp)
            assert s.nnz_LU > s.nnz_A
            assert s.flops > 0
            assert s.fill_ratio > 1.0

    def test_ordering_matters(self):
        """The whole point of COLPERM: fill varies strongly by ordering."""
        fills = {cp: symbolic_stats("Si5H12", cp).fill_ratio for cp in COLPERM_CHOICES}
        assert max(fills.values()) > 2.0 * min(fills.values())

    def test_natural_is_worst(self):
        """No fill-reducing ordering should lose to natural order on a
        3D-stencil matrix."""
        nat = symbolic_stats("Si5H12", "NATURAL").flops
        for cp in ("MMD_ATA", "MMD_AT_PLUS_A", "COLAMD"):
            assert symbolic_stats("Si5H12", cp).flops < nat

    def test_ranking_transfers_between_matrices(self):
        """The premise of Fig. 6: Si5H12 and H2O have similar sparsity
        patterns, so the ordering ranking transfers."""
        rank_a = sorted(
            COLPERM_CHOICES, key=lambda cp: symbolic_stats("Si5H12", cp).flops
        )
        rank_b = sorted(
            COLPERM_CHOICES, key=lambda cp: symbolic_stats("H2O", cp).flops
        )
        assert rank_a[0] == rank_b[0]  # same best ordering
        assert rank_a[-1] == rank_b[-1]  # same worst ordering

    def test_cached(self):
        assert symbolic_stats("Si5H12", "COLAMD") is symbolic_stats(
            "Si5H12", "COLAMD"
        )

    def test_unknown_colperm(self):
        with pytest.raises(ValueError):
            symbolic_stats("Si5H12", "METIS")

    def test_dense_limit_of_flop_formula(self):
        """flops ~ (2/3) nnz^2 / n reproduces the dense 2/3 n^3."""
        n = 100
        s_flops = (2.0 / 3.0) * (n * n) ** 2 / n
        assert s_flops == pytest.approx((2.0 / 3.0) * n**3)


class TestSupernodes:
    def test_sizes_partition_n(self):
        sizes = supernode_sizes(4096, nsup=128, nrel=20, seed=0)
        assert sizes.sum() == 4096
        assert np.all(sizes >= 1)

    def test_nsup_caps_sizes(self):
        sizes = supernode_sizes(4096, nsup=64, nrel=10, seed=0)
        assert sizes.max() <= 64

    def test_nrel_floors_sizes(self):
        sizes = supernode_sizes(4096, nsup=300, nrel=35, seed=0)
        # all but possibly the last remainder should be >= nrel
        assert np.all(sizes[:-1] >= 35) or sizes.min() >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            supernode_sizes(0, 10, 5)
        with pytest.raises(ValueError):
            supernode_sizes(10, 0, 5)

    def test_efficiency_increases_with_nsup(self):
        e = [supernode_gemm_efficiency(ns, 20) for ns in (30, 100, 250)]
        assert e[0] < e[1] < e[2]

    def test_efficiency_in_unit_interval(self):
        for ns in (30, 128, 299):
            for nr in (10, 25, 39):
                assert 0.0 < supernode_gemm_efficiency(ns, nr) < 1.0

    def test_relaxation_waste(self):
        lean = supernode_gemm_efficiency(128, 12)
        bloated = supernode_gemm_efficiency(128, 39)
        assert bloated < lean * 1.02  # relaxation never helps much past 12

    def test_dense_block_flops(self):
        assert dense_block_lu_flops(10) == pytest.approx((2.0 / 3.0) * 1000)
