"""Tests for the SuperLU_DIST 2D model (paper Sec. VI-D, Table IV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import SuperLUDist2D
from repro.apps.superlu import SUPERLU_DEFAULTS
from repro.hpc import cori_haswell


@pytest.fixture(scope="module")
def app():
    return SuperLUDist2D(cori_haswell(4))


GOOD = {"COLPERM": "MMD_AT_PLUS_A", "LOOKAHEAD": 10, "nprows": 8, "NSUP": 128, "NREL": 20}


class TestSpaces:
    def test_five_parameters(self, app):
        assert app.parameter_space().names == [
            "COLPERM",
            "LOOKAHEAD",
            "nprows",
            "NSUP",
            "NREL",
        ]

    def test_colperm_choices_are_superlu(self, app):
        assert app.parameter_space()["COLPERM"].categories == [
            "NATURAL",
            "MMD_ATA",
            "MMD_AT_PLUS_A",
            "COLAMD",
        ]

    def test_ranges(self, app):
        sp = app.parameter_space()
        assert (sp["NSUP"].low, sp["NSUP"].high) == (30, 300)
        assert (sp["NREL"].low, sp["NREL"].high) == (10, 40)
        assert sp["nprows"].high == 4 * 32 + 1

    def test_task_is_matrix_choice(self, app):
        assert app.input_space()["matrix"].categories == ["H2O", "Si5H12"]

    def test_defaults_valid(self, app):
        space = app.parameter_space()
        for k, v in SUPERLU_DEFAULTS.items():
            if k in space:
                assert space[k].contains(v)


class TestModelShape:
    def test_finite_positive(self, app):
        y = app.raw_objective({"matrix": "Si5H12"}, GOOD)
        assert y is not None and y > 0

    def test_ordering_dominates(self, app):
        """Table IV: COLPERM is the most influential parameter."""
        best = app.raw_objective({"matrix": "Si5H12"}, GOOD)
        worst = app.raw_objective(
            {"matrix": "Si5H12"}, dict(GOOD, COLPERM="NATURAL")
        )
        assert worst > best * 1.5

    def test_grid_aspect_matters(self, app):
        square = app.raw_objective({"matrix": "Si5H12"}, dict(GOOD, nprows=8))
        flat = app.raw_objective({"matrix": "Si5H12"}, dict(GOOD, nprows=128))
        assert flat > square

    def test_nsup_moderate_effect(self, app):
        small = app.raw_objective({"matrix": "Si5H12"}, dict(GOOD, NSUP=30))
        large = app.raw_objective({"matrix": "Si5H12"}, dict(GOOD, NSUP=250))
        assert small > large  # bigger supernodes = better BLAS-3
        assert small < large * 4  # but not a dominant effect

    def test_lookahead_minor_effect(self, app):
        ys = [
            app.raw_objective({"matrix": "Si5H12"}, dict(GOOD, LOOKAHEAD=la))
            for la in (5, 12, 19)
        ]
        assert max(ys) < min(ys) * 1.5

    def test_extreme_nprows_valid_but_slow(self, app):
        """nprows up to the full rank count forms a degenerate (p x 1)
        grid — legal in SuperLU_DIST, just slow."""
        y = app.raw_objective({"matrix": "Si5H12"}, dict(GOOD, nprows=128))
        assert y is not None
        assert y > app.raw_objective({"matrix": "Si5H12"}, GOOD)

    def test_h2o_slower_than_si5h12(self, app):
        """H2O is the larger matrix (as in SuiteSparse)."""
        y_si = app.raw_objective({"matrix": "Si5H12"}, GOOD)
        y_h2o = app.raw_objective({"matrix": "H2O"}, GOOD)
        assert y_h2o > y_si

    def test_rankings_transfer_between_matrices(self, app, rng):
        """Fig. 6's premise: tuning knowledge from Si5H12 applies to H2O."""
        space = app.parameter_space()
        configs, y1, y2 = [], [], []
        while len(configs) < 20:
            c = space.sample(rng)
            a = app.raw_objective({"matrix": "Si5H12"}, c)
            b = app.raw_objective({"matrix": "H2O"}, c)
            if a is not None and b is not None:
                configs.append(c)
                y1.append(a)
                y2.append(b)
        assert np.corrcoef(y1, y2)[0, 1] > 0.8
