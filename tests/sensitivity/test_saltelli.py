"""Tests for the Saltelli cross-sampling design."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sensitivity.saltelli import saltelli_sample


class TestDesignConstruction:
    def test_shapes(self):
        d = saltelli_sample(64, 5)
        assert d.A.shape == (64, 5)
        assert d.B.shape == (64, 5)
        assert d.AB.shape == (5, 64, 5)
        assert d.n_base == 64 and d.dim == 5

    def test_ab_matrices_definition(self):
        d = saltelli_sample(32, 4)
        for i in range(4):
            for j in range(4):
                col_src = d.B if j == i else d.A
                assert np.allclose(d.AB[i][:, j], col_src[:, j])

    def test_a_b_independent(self):
        d = saltelli_sample(128, 3)
        assert not np.allclose(d.A, d.B)
        # correlation between A and B columns should be small
        for j in range(3):
            r = np.corrcoef(d.A[:, j], d.B[:, j])[0, 1]
            assert abs(r) < 0.25

    def test_validation(self):
        with pytest.raises(ValueError):
            saltelli_sample(1, 3)
        with pytest.raises(ValueError):
            saltelli_sample(8, 0)

    def test_high_dimension_fallback(self):
        """Dimensions beyond the joint-sequence limit still work."""
        d = saltelli_sample(16, 30, seed=0)
        assert d.A.shape == (16, 30)
        assert not np.allclose(d.A, d.B)

    def test_scramble_reproducible(self):
        a = saltelli_sample(16, 3, scramble=True, seed=5)
        b = saltelli_sample(16, 3, scramble=True, seed=5)
        assert np.allclose(a.A, b.A) and np.allclose(a.B, b.B)


class TestStackSplit:
    def test_stacked_layout(self):
        d = saltelli_sample(8, 3)
        S = d.stacked()
        assert S.shape == (8 * 5, 3)
        assert np.allclose(S[:8], d.A)
        assert np.allclose(S[8:16], d.B)
        assert np.allclose(S[16:24], d.AB[0])

    def test_split_roundtrip(self):
        d = saltelli_sample(8, 3)
        values = np.arange(8 * 5, dtype=float)
        f_A, f_B, f_AB = d.split(values)
        assert np.allclose(f_A, values[:8])
        assert np.allclose(f_B, values[8:16])
        assert f_AB.shape == (3, 8)
        assert np.allclose(f_AB[2], values[32:40])

    def test_split_shape_check(self):
        d = saltelli_sample(8, 3)
        with pytest.raises(ValueError):
            d.split(np.zeros(10))

    def test_evaluation_count_formula(self):
        """The paper-relevant cost: N * (d + 2) model evaluations."""
        for n, dim in [(16, 4), (32, 12)]:
            assert saltelli_sample(n, dim).stacked().shape[0] == n * (dim + 2)
