"""Tests for the Sobol' sequence generator: digital-net properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sensitivity.sobol_sequence import (
    MAX_DIM,
    N_BITS,
    SobolSequence,
    sobol_sample,
)


class TestBasics:
    def test_dimension_limits(self):
        SobolSequence(1)
        SobolSequence(MAX_DIM)
        with pytest.raises(ValueError):
            SobolSequence(0)
        with pytest.raises(ValueError):
            SobolSequence(MAX_DIM + 1)

    def test_shape_and_range(self):
        P = sobol_sample(100, 7)
        assert P.shape == (100, 7)
        assert np.all((P >= 0) & (P < 1))

    def test_first_point_is_origin(self):
        P = sobol_sample(1, 4)
        assert np.allclose(P, 0.0)

    def test_dimension_one_is_van_der_corput(self):
        P = sobol_sample(8, 1)[:, 0]
        expect = [0, 0.5, 0.75, 0.25, 0.375, 0.875, 0.625, 0.125]
        assert np.allclose(sorted(P), sorted(expect))

    def test_skip(self):
        full = sobol_sample(20, 3)
        skipped = sobol_sample(15, 3, skip=5)
        assert np.allclose(full[5:], skipped)

    def test_incremental_generation_matches_batch(self):
        seq = SobolSequence(4)
        a = seq.generate(10)
        b = seq.generate(10)
        batch = sobol_sample(20, 4)
        assert np.allclose(np.vstack([a, b]), batch)

    def test_reset(self):
        seq = SobolSequence(3)
        first = seq.generate(8)
        seq.reset()
        again = seq.generate(8)
        assert np.allclose(first, again)

    def test_negative_n(self):
        with pytest.raises(ValueError):
            SobolSequence(2).generate(-1)


class TestDigitalNetProperties:
    """The defining stratification properties of a (t, s)-sequence in
    base 2: within the first 2^m points, every dyadic interval of size
    2^-k in any single coordinate holds exactly 2^{m-k} points."""

    @pytest.mark.parametrize("dim", [1, 2, 5, 10, 20, MAX_DIM])
    def test_one_dimensional_balance(self, dim):
        m = 7
        P = sobol_sample(2**m, dim)
        for j in range(dim):
            for k in (1, 2, 3):
                counts = np.histogram(P[:, j], bins=2**k, range=(0, 1))[0]
                assert np.all(counts == 2 ** (m - k)), f"dim {j}, k {k}"

    def test_points_distinct(self):
        P = sobol_sample(256, 6)
        assert len(np.unique(P, axis=0)) == 256

    @pytest.mark.parametrize("pair", [(0, 1), (1, 2), (3, 7)])
    def test_2d_stratification_coarse(self, pair):
        """2x2 dyadic boxes of consecutive dimensions are balanced over
        the first 2^m points (property of good direction numbers)."""
        m = 8
        P = sobol_sample(2**m, 8)
        x, y = P[:, pair[0]], P[:, pair[1]]
        counts = np.histogram2d(x, y, bins=2, range=[[0, 1], [0, 1]])[0]
        assert np.all(counts == 2**m / 4)

    def test_lower_discrepancy_than_random(self):
        """QMC integration of a smooth function should beat plain MC."""
        rng = np.random.default_rng(0)
        f = lambda U: np.prod(1.0 + 0.5 * (U - 0.5), axis=1)
        n, d = 1024, 6
        exact = 1.0
        qmc_err = abs(np.mean(f(sobol_sample(n, d, skip=1))) - exact)
        mc_errs = [
            abs(np.mean(f(rng.random((n, d)))) - exact) for _ in range(10)
        ]
        assert qmc_err < np.median(mc_errs)


class TestScrambling:
    def test_shift_preserves_balance(self):
        P = sobol_sample(128, 5, scramble=True, seed=42)
        for j in range(5):
            counts = np.histogram(P[:, j], bins=2, range=(0, 1))[0]
            assert np.all(counts == 64)

    def test_different_seeds_different_streams(self):
        a = sobol_sample(32, 3, scramble=True, seed=1)
        b = sobol_sample(32, 3, scramble=True, seed=2)
        assert not np.allclose(a, b)

    def test_same_seed_reproducible(self):
        a = sobol_sample(32, 3, scramble=True, seed=9)
        b = sobol_sample(32, 3, scramble=True, seed=9)
        assert np.allclose(a, b)

    def test_resolution(self):
        P = sobol_sample(64, 2, skip=1)
        scaled = P * (1 << N_BITS)
        assert np.allclose(scaled, np.round(scaled))


class TestAgainstScipy:
    """Cross-check statistical quality against scipy's Sobol engine."""

    def test_integration_error_comparable(self):
        from scipy.stats import qmc

        d, n = 8, 2048
        f = lambda U: np.sum(U**2, axis=1)
        exact = d / 3.0
        ours = abs(np.mean(f(sobol_sample(n, d, skip=1))) - exact)
        theirs_pts = qmc.Sobol(d, scramble=False, seed=0).random(n)
        theirs = abs(np.mean(f(theirs_pts)) - exact)
        # same order of magnitude (within 10x) is plenty to prove the
        # construction is a genuine low-discrepancy sequence
        assert ours < max(theirs * 10, 1e-3)


class TestPropertyBased:
    @given(st.integers(1, MAX_DIM), st.integers(1, 6))
    @settings(max_examples=30, deadline=None)
    def test_balance_property(self, dim, m):
        P = sobol_sample(2**m, dim)
        for j in range(dim):
            lo = np.sum(P[:, j] < 0.5)
            assert lo == 2 ** (m - 1)
