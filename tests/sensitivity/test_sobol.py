"""Tests for Sobol' index estimation, validated on analytic cases."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sensitivity import saltelli_sample, sobol_analyze_function, sobol_indices


def ishigami(U, a=7.0, b=0.1):
    X = -math.pi + 2 * math.pi * U
    return np.sin(X[:, 0]) + a * np.sin(X[:, 1]) ** 2 + b * X[:, 2] ** 4 * np.sin(X[:, 0])


def ishigami_analytic(a=7.0, b=0.1):
    V = a**2 / 8 + b * math.pi**4 / 5 + b**2 * math.pi**8 / 18 + 0.5
    S1_1 = 0.5 * (1 + b * math.pi**4 / 5) ** 2 / V
    S1_2 = (a**2 / 8) / V
    ST_3 = (8 * b**2 * math.pi**8 / 225) / V
    return [S1_1, S1_2, 0.0], [S1_1 + ST_3, S1_2, ST_3]


class TestIshigamiValidation:
    """The standard SA benchmark with exactly known indices."""

    @pytest.fixture(scope="class")
    def result(self):
        return sobol_analyze_function(
            ishigami, 3, n_base=4096, names=["x1", "x2", "x3"], seed=0
        )

    def test_first_order(self, result):
        S1_true, _ = ishigami_analytic()
        assert np.allclose(result.S1, S1_true, atol=0.02)

    def test_total_effect(self, result):
        _, ST_true = ishigami_analytic()
        assert np.allclose(result.ST, ST_true, atol=0.02)

    def test_confidence_brackets_truth(self, result):
        S1_true, ST_true = ishigami_analytic()
        for est, conf, true in zip(result.S1, result.S1_conf, S1_true):
            assert abs(est - true) < max(conf * 2, 0.02)

    def test_ranking(self, result):
        assert result.ranking("ST") == ["x1", "x2", "x3"]
        assert result.ranking("S1") == ["x2", "x1", "x3"]


class TestAdditiveFunction:
    def test_linear_function_s1_equals_st(self):
        """Purely additive => no interactions => S1 == ST, proportional
        to each coefficient's variance share."""
        coeffs = np.array([1.0, 2.0, 4.0])

        def f(U):
            return U @ coeffs

        res = sobol_analyze_function(f, 3, n_base=4096, seed=1)
        shares = coeffs**2 / np.sum(coeffs**2)
        assert np.allclose(res.S1, shares, atol=0.03)
        assert np.allclose(res.ST, shares, atol=0.03)

    def test_pure_interaction_s1_zero_st_one(self):
        """f = (x1-.5)(x2-.5): all variance is the interaction."""

        def f(U):
            return (U[:, 0] - 0.5) * (U[:, 1] - 0.5)

        res = sobol_analyze_function(f, 2, n_base=4096, seed=2)
        assert np.allclose(res.S1, 0.0, atol=0.03)
        assert np.allclose(res.ST, 1.0, atol=0.05)

    def test_dead_parameter_zero_everywhere(self):
        def f(U):
            return U[:, 0] ** 2

        res = sobol_analyze_function(f, 3, n_base=2048, seed=3)
        assert res.S1[1] == pytest.approx(0.0, abs=0.02)
        assert res.ST[1] == pytest.approx(0.0, abs=0.02)
        assert res.ST[2] == pytest.approx(0.0, abs=0.02)

    def test_constant_function(self):
        res = sobol_analyze_function(lambda U: np.ones(U.shape[0]), 3, n_base=256)
        assert np.allclose(res.S1, 0.0) and np.allclose(res.ST, 0.0)
        assert res.variance == 0.0


class TestResultObject:
    @pytest.fixture
    def result(self):
        return sobol_analyze_function(
            ishigami, 3, n_base=512, names=["a", "b", "c"], seed=0
        )

    def test_rows_layout(self, result):
        rows = result.as_rows()
        assert [r["parameter"] for r in rows] == ["a", "b", "c"]
        for r in rows:
            assert set(r) == {"parameter", "S1", "S1_conf", "ST", "ST_conf"}

    def test_select_thresholds(self, result):
        # x3 has S1~0 but ST~0.24: the ST threshold keeps it
        keep = result.select(s1_threshold=0.05, st_threshold=0.2)
        assert keep == ["a", "b", "c"]
        keep_strict = result.select(s1_threshold=0.3, st_threshold=0.5)
        assert "c" not in keep_strict

    def test_name_count_checked(self):
        design = saltelli_sample(16, 3)
        with pytest.raises(ValueError):
            sobol_indices(design, np.zeros(16 * 5), names=["only", "two"])

    def test_no_bootstrap(self):
        res = sobol_analyze_function(ishigami, 3, n_base=256, n_bootstrap=0)
        assert np.allclose(res.S1_conf, 0.0) and np.allclose(res.ST_conf, 0.0)

    def test_bootstrap_reproducible(self):
        a = sobol_analyze_function(ishigami, 3, n_base=256, seed=11)
        b = sobol_analyze_function(ishigami, 3, n_base=256, seed=11)
        assert np.allclose(a.S1_conf, b.S1_conf)


class TestVectorizedBootstrap:
    """The batched bootstrap must reproduce the former Python-level loop."""

    def _loop_reference(self, design, values, n_bootstrap, seed):
        from repro.sensitivity.sobol import _estimate

        f_A, f_B, f_AB = design.split(values)
        rng = np.random.default_rng(seed)
        n = design.n_base
        s1_bs = np.empty((n_bootstrap, design.dim))
        st_bs = np.empty((n_bootstrap, design.dim))
        for b in range(n_bootstrap):
            idx = rng.integers(0, n, size=n)
            s1_bs[b], st_bs[b], _ = _estimate(f_A[idx], f_B[idx], f_AB[:, idx])
        return s1_bs, st_bs

    def test_matches_loop_at_fixed_seed(self):
        design = saltelli_sample(128, 3, seed=7)
        values = ishigami(design.stacked())
        z95 = 1.959963984540054
        s1_bs, st_bs = self._loop_reference(design, values, 60, seed=42)
        res = sobol_indices(design, values, n_bootstrap=60, seed=42)
        assert np.allclose(res.S1_conf, z95 * np.std(s1_bs, axis=0, ddof=1))
        assert np.allclose(res.ST_conf, z95 * np.std(st_bs, axis=0, ddof=1))

    def test_batch_estimator_shape_and_guard(self):
        from repro.sensitivity.sobol import _estimate_batch

        B, n, d = 5, 16, 2
        rng = np.random.default_rng(0)
        f_A = rng.normal(size=(B, n))
        f_B = rng.normal(size=(B, n))
        f_AB = rng.normal(size=(d, B, n))
        # one degenerate replicate: constant outputs -> zero indices
        f_A[2] = f_B[2] = 1.0
        f_AB[:, 2, :] = 1.0
        S1, ST = _estimate_batch(f_A, f_B, f_AB)
        assert S1.shape == (B, d) and ST.shape == (B, d)
        assert np.all(S1[2] == 0.0) and np.all(ST[2] == 0.0)
        assert np.all(np.isfinite(S1)) and np.all(np.isfinite(ST))
