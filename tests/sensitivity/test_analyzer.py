"""Tests for the surrogate-based analyzer and space reduction."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CategoricalParameter,
    IntegerParameter,
    RealParameter,
    Space,
    TaskData,
)
from repro.core.space import FixedSpace
from repro.sensitivity import SensitivityAnalyzer, reduce_space


@pytest.fixture
def space():
    return Space(
        [
            RealParameter("big", 0.0, 1.0),
            RealParameter("small", 0.0, 1.0),
            RealParameter("dead", 0.0, 1.0),
        ]
    )


def _data(space, n=150, seed=0):
    """big has 10x the effect of small; dead has none."""
    rng = np.random.default_rng(seed)
    X = rng.random((n, space.dim))
    y = 10.0 * X[:, 0] ** 2 + 1.0 * X[:, 1] + 0.0 * X[:, 2]
    return TaskData({}, X, y)


class TestAnalyzer:
    def test_recovers_importance_ranking(self, space):
        report = SensitivityAnalyzer(space).analyze(
            _data(space), n_base=512, seed=0
        )
        assert report.indices.ranking("ST") == ["big", "small", "dead"]
        assert report.indices.ST[0] > 0.5
        assert report.indices.ST[2] < 0.05

    def test_report_table_format(self, space):
        report = SensitivityAnalyzer(space).analyze(_data(space), n_base=128, seed=0)
        table = report.table()
        assert "Parameter" in table and "big" in table and "ST" in table

    def test_top_k(self, space):
        report = SensitivityAnalyzer(space).analyze(_data(space), n_base=256, seed=0)
        assert report.top_k(2) == ["big", "small"]

    def test_sensitive_parameters(self, space):
        report = SensitivityAnalyzer(space).analyze(_data(space), n_base=512, seed=0)
        keep = report.sensitive_parameters(s1_threshold=0.05, st_threshold=0.2)
        assert "big" in keep and "dead" not in keep

    def test_dimension_mismatch(self, space):
        data = TaskData({}, np.random.default_rng(0).random((10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            SensitivityAnalyzer(space).analyze(data)

    def test_n_samples_recorded(self, space):
        report = SensitivityAnalyzer(space).analyze(_data(space, n=77), n_base=64, seed=0)
        assert report.n_samples == 77


class TestReduceSpace:
    @pytest.fixture
    def full(self):
        return Space(
            [
                CategoricalParameter("COLPERM", ["NATURAL", "COLAMD"]),
                IntegerParameter("LOOKAHEAD", 5, 20),
                IntegerParameter("nprows", 1, 129),
                IntegerParameter("NSUP", 30, 300),
                IntegerParameter("NREL", 10, 40),
            ]
        )

    def test_paper_fig6_reduction(self, full):
        """Fig. 6: keep COLPERM/nprows/NSUP, pin LOOKAHEAD/NREL to
        defaults."""
        reduced = reduce_space(
            full,
            keep=["COLPERM", "nprows", "NSUP"],
            defaults={"LOOKAHEAD": 10, "NREL": 20},
        )
        assert isinstance(reduced, FixedSpace)
        assert reduced.names == ["COLPERM", "nprows", "NSUP"]
        assert reduced.fixed == {"LOOKAHEAD": 10, "NREL": 20}

    def test_unknown_default_gets_random_legal_value(self, full):
        """Fig. 7 caption: random values for parameters without known
        defaults."""
        rng = np.random.default_rng(0)
        reduced = reduce_space(full, keep=["COLPERM"], defaults={}, rng=rng)
        for name, value in reduced.fixed.items():
            assert full[name].contains(value)

    def test_unknown_keep_rejected(self, full):
        with pytest.raises(ValueError):
            reduce_space(full, keep=["zzz"], defaults={})

    def test_reduced_configs_validate_in_full_space(self, full, rng):
        reduced = reduce_space(
            full, keep=["COLPERM", "NSUP"], defaults={"LOOKAHEAD": 10, "NREL": 20}
        )
        for _ in range(10):
            cfg = reduced.sample(rng)
            full.validate(cfg)
