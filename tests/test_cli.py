"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_app, main


class TestBuildApp:
    def test_machine_apps_get_machines(self):
        app = build_app("pdgeqrf", "cori-haswell", 8)
        assert app.machine.nodes == 8

    def test_synthetic_apps_ignore_machine(self):
        app = build_app("demo", None, 8)
        assert not hasattr(app, "machine")

    def test_unknown_app(self):
        with pytest.raises(SystemExit):
            build_app("quantum", None, 1)


class TestCommands:
    def test_apps_listing(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        assert "pdgeqrf" in out and "cori-knl" in out and "ensemble-proposed" in out

    def test_pool_table(self, capsys):
        assert main(["pool"]) == 0
        out = capsys.readouterr().out
        assert "Multitask (TS)" in out and "GPTuneCrowd" in out
        assert "[6]" in out and "[12]" in out

    def test_tune_demo(self, capsys):
        rc = main(["tune", "--app", "demo", "--samples", "4", "--seed", "0"])
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.index("best-so-far")])
        assert payload["n_evaluations"] == 4
        assert payload["tuner"] == "NoTLA"

    def test_tune_with_tla(self, capsys):
        rc = main(
            [
                "tune",
                "--app",
                "demo",
                "--samples",
                "3",
                "--tla",
                "stacking",
                "--source-task",
                '{"t": 0.8}',
                "--source-samples",
                "15",
            ]
        )
        assert rc == 0
        assert '"tuner": "Stacking"' in capsys.readouterr().out

    def test_tune_async_workers(self, capsys):
        rc = main(
            [
                "tune", "--app", "demo", "--samples", "6",
                "--workers", "4", "--batch", "2", "--seed", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        payload = json.loads(out[: out.index("best-so-far")])
        assert payload["tuner"] == "AsyncNoTLA"
        assert payload["n_evaluations"] == 6

    def test_tune_workers_conflicts_with_tla(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "tune", "--app", "demo", "--samples", "3",
                    "--workers", "4", "--tla", "stacking",
                ]
            )

    def test_tune_custom_task(self, capsys):
        rc = main(
            ["tune", "--app", "demo", "--samples", "2", "--task", '{"t": 2.5}']
        )
        assert rc == 0
        assert '"t": 2.5' in capsys.readouterr().out

    def test_tune_invalid_task_rejected(self):
        with pytest.raises(Exception):
            main(["tune", "--app", "demo", "--samples", "2", "--task", '{"t": 99}'])

    def test_sensitivity_demo(self, capsys):
        rc = main(
            [
                "sensitivity",
                "--app",
                "demo",
                "--samples",
                "40",
                "--n-base",
                "64",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "Sobol sensitivity" in out and "x" in out

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required_app(self):
        with pytest.raises(SystemExit):
            main(["tune"])
