"""Tests for Multitask(PS) and Multitask(TS) (paper Sec. V-A)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TaskData
from repro.tla import MultitaskPS, MultitaskTS


def _source(n=40, seed=0, opt=0.3):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1))
    return TaskData({"opt": opt}, X, (X[:, 0] - opt) ** 2, label="src")


def _target(n, opt=0.35, seed=1):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1))
    return TaskData({"opt": opt}, X, (X[:, 0] - opt) ** 2)


class TestMultitaskTS:
    def test_cold_start_zero_target_samples(self, rng):
        """TS must produce a model with an empty target (Sec. V-A2)."""
        strat = MultitaskTS()
        strat.prepare([_source()], rng)
        predict = strat.model(_target(0), rng)
        assert predict is not None
        mean, std = predict(np.array([[0.3], [0.95]]))
        assert mean[0] < mean[1]  # transferred source shape
        assert np.all(std > 0)

    def test_model_tracks_target_with_data(self, rng):
        strat = MultitaskTS()
        strat.prepare([_source()], rng)
        target = _target(10)
        predict = strat.model(target, rng)
        grid = np.linspace(0, 0.999, 100)[:, None]
        mean, _ = predict(grid)
        assert grid[np.argmin(mean), 0] == pytest.approx(0.35, abs=0.1)

    def test_source_subsampling(self, rng):
        strat = MultitaskTS(max_source_samples=10)
        strat.prepare([_source(n=100)], rng)
        assert strat._source_sets[0][0].shape[0] == 10

    def test_no_subsampling_when_none(self, rng):
        strat = MultitaskTS(max_source_samples=None)
        strat.prepare([_source(n=60)], rng)
        assert strat._source_sets[0][0].shape[0] == 60

    def test_multiple_sources(self, rng):
        strat = MultitaskTS()
        strat.prepare([_source(seed=0), _source(seed=5, opt=0.32)], rng)
        predict = strat.model(_target(3), rng)
        assert predict is not None


class TestMultitaskPS:
    def test_pseudo_samples_seeded_on_prepare(self, rng):
        strat = MultitaskPS(n_pseudo_init=6)
        strat.prepare([_source()], rng)
        xs, ys = strat._pseudo[0]
        assert len(xs) == 6 and len(ys) == 6

    def test_notify_proposal_appends_pseudo_samples(self, rng):
        strat = MultitaskPS(n_pseudo_init=4)
        strat.prepare([_source(), _source(seed=9)], rng)
        strat.notify_proposal(np.array([0.5]), rng)
        for xs, ys in strat._pseudo:
            assert len(xs) == 5

    def test_pseudo_values_come_from_source_gp(self, rng):
        strat = MultitaskPS(n_pseudo_init=2)
        src = _source(n=50)
        strat.prepare([src], rng)
        x = np.array([0.3])
        strat.notify_proposal(x, rng)
        xs, ys = strat._pseudo[0]
        gp_mean = strat.source_gps[0].predict_mean(x[None, :])[0]
        assert ys[-1] == pytest.approx(gp_mean, abs=1e-9)

    def test_empty_target_uses_source_fallback(self, rng):
        strat = MultitaskPS()
        strat.prepare([_source()], rng)
        predict = strat.model(_target(0), rng)
        assert predict is not None

    def test_model_with_target_data(self, rng):
        strat = MultitaskPS()
        strat.prepare([_source()], rng)
        strat.notify_proposal(np.array([0.4]), rng)
        predict = strat.model(_target(4), rng)
        mean, std = predict(np.array([[0.2], [0.8]]))
        assert np.all(np.isfinite(mean)) and np.all(std > 0)


class TestRefitAmortization:
    def test_refit_every_skips_optimization(self, rng):
        strat = MultitaskTS(refit_every=3, lcm_max_fun=20)
        strat.prepare([_source()], rng)
        strat.model(_target(2), rng)
        theta_after_first = strat._lcm._theta.copy()
        # second call should reuse hyperparameters (optimize=False)
        strat.model(_target(3), rng)
        assert np.allclose(strat._lcm._theta, theta_after_first)

    def test_incremental_update_between_refits(self, rng):
        """Between refit boundaries an append-only step grows the cached
        Cholesky instead of refitting, and predicts identically."""
        from repro.core import LCM, perf

        strat = MultitaskTS(refit_every=4, lcm_max_fun=20)
        strat.prepare([_source()], rng)
        strat.model(_target(2), rng)
        cached = strat._lcm
        target3 = _target(3)  # same seed: _target(2)'s rows are a prefix
        with perf.collect() as stats:
            predict = strat.model(target3, rng)
        counters = stats.snapshot()["counters"]
        assert counters.get("lcm_incremental_updates", 0) == 1
        assert counters.get("lcm_fits", 0) == 0  # no refactorization
        assert strat._lcm is cached  # the cached model object was grown

        ref = LCM(2, 1, optimize=False)
        ref.warm_start_from(cached)
        ref.fit(list(strat._source_sets) + [(target3.X, target3.y)])
        grid = np.linspace(0, 0.999, 50)[:, None]
        m1, s1 = predict(grid)
        m2, s2 = ref.predict(1, grid)
        np.testing.assert_allclose(m1, m2, rtol=1e-8, atol=1e-8)
        np.testing.assert_allclose(s1, s2, rtol=1e-8, atol=1e-8)

    def test_diverged_history_falls_back_to_full_fit(self, rng):
        """A non-append change (different target draw) must not be absorbed
        incrementally: a fresh non-optimizing fit replaces the cache."""
        from repro.core import perf

        strat = MultitaskTS(refit_every=4, lcm_max_fun=20)
        strat.prepare([_source()], rng)
        strat.model(_target(2), rng)
        cached = strat._lcm
        with perf.collect() as stats:
            predict = strat.model(_target(2, seed=9), rng)
        counters = stats.snapshot()["counters"]
        assert counters.get("lcm_incremental_updates", 0) == 0
        assert counters.get("lcm_fits", 0) == 1
        assert strat._lcm is not cached
        assert predict is not None
