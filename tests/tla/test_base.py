"""Tests for repro.tla.base: source GPs, weighted combination, fallbacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TaskData
from repro.tla.base import combine_weighted, equal_weight_model, fit_source_gps


def _linear_source(slope, n=25, seed=0, d=1):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = slope * X[:, 0]
    return TaskData({"s": slope}, X, y, label=f"slope={slope}")


class TestFitSourceGPs:
    def test_one_gp_per_source(self, rng):
        gps = fit_source_gps([_linear_source(1.0), _linear_source(2.0)], rng)
        assert len(gps) == 2
        for gp, slope in zip(gps, (1.0, 2.0)):
            pred = gp.predict_mean(np.array([[0.5]]))
            assert pred[0] == pytest.approx(0.5 * slope, abs=0.1)

    def test_empty_source_rejected(self, rng):
        empty = TaskData({"s": 0}, np.zeros((0, 1)), np.zeros(0))
        with pytest.raises(ValueError):
            fit_source_gps([empty], rng)


class TestCombineWeighted:
    def test_weight_count_checked(self):
        with pytest.raises(ValueError):
            combine_weighted([lambda X: (X[:, 0], X[:, 0])], np.array([1.0, 2.0]))

    def test_mean_is_normalized_weighted_sum(self):
        """Weights are normalized to sum 1 (Eq. (1) convex combination)."""
        m1 = lambda X: (np.full(X.shape[0], 2.0), np.full(X.shape[0], 1.0))
        m2 = lambda X: (np.full(X.shape[0], 4.0), np.full(X.shape[0], 1.0))
        combined = combine_weighted([m1, m2], np.array([0.5, 2.0]))
        mean, _ = combined(np.zeros((3, 1)))
        assert np.allclose(mean, 0.2 * 2.0 + 0.8 * 4.0)

    def test_std_is_weighted_geometric_mean(self):
        """Eq. (2) with normalized weights: sigma = prod sigma_i^{w_i}."""
        m1 = lambda X: (np.zeros(X.shape[0]), np.full(X.shape[0], 4.0))
        m2 = lambda X: (np.zeros(X.shape[0]), np.full(X.shape[0], 1.0))
        combined = combine_weighted([m1, m2], np.array([0.5, 1.0]))
        _, std = combined(np.zeros((2, 1)))
        assert np.allclose(std, 4.0 ** (1.0 / 3.0) * 1.0 ** (2.0 / 3.0))

    def test_scaled_weights_equivalent(self):
        """Scaling all weights by a constant does not change the output."""
        m1 = lambda X: (np.full(X.shape[0], 2.0), np.full(X.shape[0], 3.0))
        m2 = lambda X: (np.full(X.shape[0], 4.0), np.full(X.shape[0], 1.5))
        X = np.zeros((2, 1))
        mu_a, sd_a = combine_weighted([m1, m2], np.array([1.0, 3.0]))(X)
        mu_b, sd_b = combine_weighted([m1, m2], np.array([10.0, 30.0]))(X)
        assert np.allclose(mu_a, mu_b)
        assert np.allclose(sd_a, sd_b)

    def test_negative_weight_rejected(self):
        m = lambda X: (np.zeros(X.shape[0]), np.ones(X.shape[0]))
        with pytest.raises(ValueError, match="non-negative"):
            combine_weighted([m, m], np.array([1.0, -0.5]))

    def test_nonfinite_weight_rejected(self):
        m = lambda X: (np.zeros(X.shape[0]), np.ones(X.shape[0]))
        with pytest.raises(ValueError, match="finite"):
            combine_weighted([m, m], np.array([1.0, np.nan]))
        with pytest.raises(ValueError, match="finite"):
            combine_weighted([m, m], np.array([np.inf, 1.0]))

    def test_all_zero_weights_rejected(self):
        m = lambda X: (np.zeros(X.shape[0]), np.ones(X.shape[0]))
        with pytest.raises(ValueError, match="zero"):
            combine_weighted([m, m], np.zeros(2))

    def test_zero_std_guarded(self):
        m = lambda X: (np.zeros(X.shape[0]), np.zeros(X.shape[0]))
        combined = combine_weighted([m], np.array([1.0]))
        _, std = combined(np.zeros((2, 1)))
        assert np.all(np.isfinite(std)) and np.all(std >= 0)


class TestEqualWeightModel:
    def test_needs_sources(self):
        with pytest.raises(ValueError):
            equal_weight_model([])

    def test_averages_sources(self, rng):
        gps = fit_source_gps([_linear_source(2.0), _linear_source(4.0)], rng)
        model = equal_weight_model(gps)
        mean, std = model(np.array([[0.5]]))
        # normalized equal weights: average of the source means
        assert mean[0] == pytest.approx(1.5, abs=0.2)
        assert std[0] > 0
