"""Tests for the ensemble strategies (paper Sec. V-E, Algorithm 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import TaskData
from repro.tla import (
    EnsembleProb,
    EnsembleProposed,
    EnsembleToggling,
    exploration_rate,
)
from repro.tla.base import TLAStrategy


class _StubStrategy(TLAStrategy):
    """A controllable pool member for selector tests."""

    provenance = "test"

    def __init__(self, name):
        super().__init__()
        self.name = name
        self.model_calls = 0

    def prepare(self, sources, rng):
        self.sources = sources  # skip GP fitting entirely

    def model(self, target, rng):
        self.model_calls += 1
        return lambda X: (np.zeros(X.shape[0]), np.ones(X.shape[0]))


def _sources():
    rng = np.random.default_rng(0)
    X = rng.random((10, 2))
    return [TaskData({"t": 0}, X, X[:, 0])]


def _target(n=3):
    rng = np.random.default_rng(1)
    X = rng.random((n, 2))
    return TaskData({"t": 1}, X, X[:, 0])


def _make(cls, n=3):
    pool = [_StubStrategy(f"s{i}") for i in range(n)]
    ens = cls(pool=pool)
    ens.prepare(_sources(), np.random.default_rng(0))
    return ens, pool


class TestExplorationRate:
    def test_eq4_values(self):
        # |T|=3, n_params=5, n_samples=10 -> ratio 1.5 -> 0.6
        assert exploration_rate(3, 5, 10) == pytest.approx(1.5 / 2.5)

    def test_zero_samples_full_exploration(self):
        assert exploration_rate(3, 5, 0) == 1.0

    def test_decreases_with_samples(self):
        rates = [exploration_rate(3, 5, n) for n in (1, 5, 20, 100)]
        assert rates == sorted(rates, reverse=True)

    def test_increases_with_parameters(self):
        assert exploration_rate(3, 10, 10) > exploration_rate(3, 2, 10)

    def test_increases_with_pool_size(self):
        assert exploration_rate(5, 5, 10) > exploration_rate(2, 5, 10)

    def test_validation(self):
        with pytest.raises(ValueError):
            exploration_rate(0, 5, 1)


class TestProbabilities:
    def test_uniform_before_any_result(self):
        ens, _ = _make(EnsembleProb)
        assert np.allclose(ens._probabilities(), 1.0 / 3.0)

    def test_eq3_inverse_best_output(self):
        ens, _ = _make(EnsembleProb)
        ens.best_outputs = [1.0, 2.0, math.inf]
        p = ens._probabilities()
        # prob ~ 1/best over seen algorithms: (1, 0.5) normalized
        assert p[0] == pytest.approx(2.0 / 3.0)
        assert p[1] == pytest.approx(1.0 / 3.0)
        assert p[2] == 0.0

    def test_nonpositive_outputs_shifted(self):
        ens, _ = _make(EnsembleProb)
        ens.best_outputs = [-2.0, 1.0, math.inf]
        p = ens._probabilities()
        assert np.all(p >= 0) and p.sum() == pytest.approx(1.0)
        assert p[0] > p[1]  # better (lower) best keeps higher probability


class TestSelectors:
    def test_toggling_cycles(self):
        ens, pool = _make(EnsembleToggling)
        rng = np.random.default_rng(0)
        order = [ens._choose(_target(), rng) for _ in range(6)]
        assert order == [0, 1, 2, 0, 1, 2]

    def test_prob_prefers_best(self):
        ens, _ = _make(EnsembleProb)
        ens.best_outputs = [0.1, 10.0, 10.0]
        rng = np.random.default_rng(0)
        picks = [ens._choose(_target(), rng) for _ in range(200)]
        assert picks.count(0) > 150

    def test_proposed_explores_with_no_data(self):
        ens, _ = _make(EnsembleProposed)
        ens.best_outputs = [0.1, 10.0, 10.0]
        rng = np.random.default_rng(0)
        # n=0 -> exploration rate 1 -> uniform despite the skewed bests
        picks = [ens._choose(_target(0), rng) for _ in range(300)]
        for i in range(3):
            assert picks.count(i) > 60

    def test_proposed_exploits_with_much_data(self):
        ens, _ = _make(EnsembleProposed)
        ens.best_outputs = [0.1, 10.0, 10.0]
        rng = np.random.default_rng(0)
        picks = [ens._choose(_target(500), rng) for _ in range(300)]
        assert picks.count(0) > 200


class TestResultTracking:
    def test_notify_result_updates_chosen_only(self):
        ens, _ = _make(EnsembleProb)
        rng = np.random.default_rng(0)
        ens.model(_target(), rng)  # sets _chosen
        chosen = ens._chosen
        ens.notify_result(np.zeros(2), 3.5)
        assert ens.best_outputs[chosen] == 3.5
        others = [v for i, v in enumerate(ens.best_outputs) if i != chosen]
        assert all(math.isinf(v) for v in others)

    def test_failure_does_not_update(self):
        ens, _ = _make(EnsembleProb)
        rng = np.random.default_rng(0)
        ens.model(_target(), rng)
        ens.notify_result(np.zeros(2), None)
        assert all(math.isinf(v) for v in ens.best_outputs)

    def test_best_only_improves(self):
        ens, _ = _make(EnsembleToggling)
        rng = np.random.default_rng(0)
        ens.model(_target(), rng)
        ens.notify_result(np.zeros(2), 1.0)
        ens._chosen = 0
        ens.notify_result(np.zeros(2), 5.0)
        assert ens.best_outputs[0] == 1.0

    def test_chosen_name(self):
        ens, pool = _make(EnsembleToggling)
        assert ens.chosen_name is None
        rng = np.random.default_rng(0)
        ens.model(_target(), rng)
        assert ens.chosen_name == pool[0].name


class TestDefaults:
    def test_default_pool_is_papers(self):
        ens = EnsembleProposed()
        names = [s.name for s in ens.pool]
        assert names == ["Multitask (TS)", "WeightedSum (dynamic)", "Stacking"]

    def test_empty_pool_rejected(self):
        with pytest.raises(ValueError):
            EnsembleProposed(pool=[])


class TestRePrepare:
    """Re-preparation must fully reset selector state (regression)."""

    def test_toggling_counter_resets(self):
        ens, _ = _make(EnsembleToggling)
        rng = np.random.default_rng(0)
        # advance the round-robin cursor mid-cycle...
        order = [ens._choose(_target(), rng) for _ in range(4)]
        assert order == [0, 1, 2, 0]
        # ...then re-prepare: the cycle must restart at member 0
        ens.prepare(_sources(), np.random.default_rng(1))
        order = [ens._choose(_target(), rng) for _ in range(3)]
        assert order == [0, 1, 2]

    def test_best_outputs_reset(self):
        ens, _ = _make(EnsembleProb)
        ens.best_outputs = [1.0, 2.0, 3.0]
        ens.prepare(_sources(), np.random.default_rng(1))
        assert all(math.isinf(v) for v in ens.best_outputs)
        assert ens._chosen is None

    def test_store_propagates_to_members(self):
        from repro.tla import SourceModelStore

        pool = [_StubStrategy(f"s{i}") for i in range(2)]
        store = SourceModelStore()
        ens = EnsembleProb(pool=pool, store=store)
        ens.prepare(_sources(), np.random.default_rng(0))
        assert all(m.store is store for m in pool)

    def test_member_store_not_overridden(self):
        from repro.tla import SourceModelStore

        own = SourceModelStore()
        pool = [_StubStrategy("s0")]
        pool[0].store = own
        ens = EnsembleProb(pool=pool, store=SourceModelStore())
        ens.prepare(_sources(), np.random.default_rng(0))
        assert pool[0].store is own


class TestFailureBookkeeping:
    """Best-output tracking under failed evaluations (paper Alg. 1)."""

    def test_probabilities_uniform_until_finite_result(self):
        ens, _ = _make(EnsembleProb)
        rng = np.random.default_rng(0)
        ens.model(_target(), rng)
        ens.notify_result(np.zeros(2), None)  # failure: no update
        assert np.allclose(ens._probabilities(), 1.0 / 3.0)
        ens.model(_target(), rng)
        ens.notify_result(np.zeros(2), 2.0)  # first finite result
        p = ens._probabilities()
        assert not np.allclose(p, 1.0 / 3.0)
        assert p.sum() == pytest.approx(1.0)

    def test_failures_interleaved_with_successes(self):
        ens, _ = _make(EnsembleProb)
        rng = np.random.default_rng(0)
        ens.model(_target(), rng)
        chosen = ens._chosen
        ens.notify_result(np.zeros(2), 1.5)
        ens._chosen = chosen
        ens.notify_result(np.zeros(2), None)  # later failure must not clobber
        assert ens.best_outputs[chosen] == 1.5

    def test_all_nonpositive_bests_shifted(self):
        # every seen best <= 0 exercises the Eq. (3) shift branch
        ens, _ = _make(EnsembleProb)
        ens.best_outputs = [-5.0, -1.0, 0.0]
        p = ens._probabilities()
        assert np.all(np.isfinite(p)) and np.all(p >= 0)
        assert p.sum() == pytest.approx(1.0)
        # ordering preserved: lower (better) best -> higher probability
        assert p[0] > p[1] > p[2]
