"""Tests for the Vizier-style stacking strategy (paper Sec. V-D)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TaskData
from repro.tla import Stacking


def _source(n, seed, fn, task=None):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1))
    return TaskData(task or {"n": n}, X, fn(X[:, 0]), label=f"n={n}")


class TestStackConstruction:
    def test_sources_ordered_by_sample_count(self, rng):
        """Paper: 'the first task has the largest number of samples'."""
        small = _source(10, 0, lambda x: x)
        large = _source(50, 1, lambda x: x)
        strat = Stacking()
        strat.prepare([small, large], rng)
        assert strat._stack_ns == [50, 10]

    def test_stack_mean_reconstructs_last_source(self, rng):
        """After stacking, the cumulative mean should track the most
        recently stacked source's data."""
        f1 = lambda x: (x - 0.3) ** 2
        f2 = lambda x: (x - 0.3) ** 2 + 0.5 * x
        s1 = _source(40, 0, f1)
        s2 = _source(20, 1, f2)
        strat = Stacking()
        strat.prepare([s1, s2], rng)
        grid = np.linspace(0.05, 0.95, 30)
        recon = strat._stack_mean(grid[:, None])
        assert np.sqrt(np.mean((recon - f2(grid)) ** 2)) < 0.1

    def test_single_source(self, rng):
        strat = Stacking()
        strat.prepare([_source(30, 0, lambda x: np.sin(3 * x))], rng)
        grid = np.linspace(0.1, 0.9, 10)
        assert np.allclose(
            strat._stack_mean(grid[:, None]), np.sin(3 * grid), atol=0.15
        )


class TestTargetResidual:
    def test_empty_target_fallback(self, rng):
        strat = Stacking()
        strat.prepare([_source(30, 0, lambda x: (x - 0.3) ** 2)], rng)
        empty = TaskData({"t": 0}, np.zeros((0, 1)), np.zeros(0))
        assert strat.model(empty, rng) is not None

    def test_combined_mean_fits_target(self, rng):
        f_src = lambda x: (x - 0.3) ** 2
        f_tgt = lambda x: (x - 0.4) ** 2 + 1.0
        strat = Stacking()
        strat.prepare([_source(40, 0, f_src)], rng)
        target = _source(12, 2, f_tgt, task={"t": 1})
        predict = strat.model(target, rng)
        mean, _ = predict(target.X)
        assert np.sqrt(np.mean((mean - target.y) ** 2)) < 0.1

    def test_std_blends_by_sample_count(self, rng):
        """With a tiny target and big source, sigma leans on the source's
        (beta small); both contributions must stay positive."""
        strat = Stacking()
        strat.prepare([_source(50, 0, lambda x: x)], rng)
        target = _source(2, 3, lambda x: x + 1.0, task={"t": 1})
        predict = strat.model(target, rng)
        _, std = predict(np.array([[0.5]]))
        assert std[0] > 0

    def test_transfer_helps_localize_optimum(self, rng):
        """Source knowledge + 3 target points should localize a shifted
        optimum better than the 3 points alone could."""
        f_src = lambda x: (x - 0.32) ** 2
        strat = Stacking()
        strat.prepare([_source(60, 0, f_src)], rng)
        tx = np.array([[0.1], [0.6], [0.9]])
        ty = (tx[:, 0] - 0.35) ** 2
        predict = strat.model(TaskData({"t": 1}, tx, ty), rng)
        grid = np.linspace(0, 0.999, 200)[:, None]
        mean, _ = predict(grid)
        assert grid[np.argmin(mean), 0] == pytest.approx(0.35, abs=0.12)
