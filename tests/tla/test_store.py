"""Tests for repro.tla.store: model cache, frozen fast path, prediction memo."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.core import perf
from repro.core.gp import GaussianProcess
from repro.core.kernels import Matern52, kernel_from_name
from repro.tla.store import FrozenGP, SourceModelStore, frozen_view


def _data(seed=0, n=30, d=2):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2
    return X, y


class TestModelCache:
    def test_same_content_hits(self):
        store = SourceModelStore()
        X, y = _data()
        with perf.collect() as stats:
            gp1 = store.fit_gp(X, y, seed=1)
            gp2 = store.fit_gp(X.copy(), y.copy(), seed=2)  # same content
        assert gp2 is gp1
        snap = stats.snapshot()["counters"]
        assert snap["tla_source_fits"] == 1
        assert snap["tla_source_cache_hits"] == 1

    def test_different_content_misses(self):
        store = SourceModelStore()
        X, y = _data(0)
        X2, y2 = _data(1)
        gp1 = store.fit_gp(X, y, seed=1)
        gp2 = store.fit_gp(X2, y2, seed=1)
        assert gp2 is not gp1
        assert len(store) == 2

    def test_kernel_and_max_fun_key(self):
        store = SourceModelStore()
        X, y = _data()
        gp1 = store.fit_gp(X, y, seed=1, kernel="rbf")
        gp2 = store.fit_gp(X, y, seed=1, kernel="matern52")
        gp3 = store.fit_gp(X, y, seed=1, kernel="rbf", max_fun=40)
        assert gp1 is not gp2 and gp1 is not gp3

    def test_counter_namespacing(self):
        store = SourceModelStore()
        X, y = _data()
        with perf.collect() as stats:
            store.fit_gp(X, y, seed=1, counter="stack")
            store.fit_gp(X, y, seed=2, counter="stack")
        snap = stats.snapshot()["counters"]
        assert snap["tla_stack_fits"] == 1
        assert snap["tla_stack_cache_hits"] == 1
        assert "tla_source_fits" not in snap

    def test_lru_eviction(self):
        store = SourceModelStore(max_models=2)
        for s in range(3):
            X, y = _data(s)
            store.fit_gp(X, y, seed=s)
        assert len(store) == 2

    def test_pickle_roundtrip(self):
        store = SourceModelStore()
        X, y = _data()
        store.fit_gp(X, y, seed=1)
        clone = pickle.loads(pickle.dumps(store))
        assert len(clone) == 1
        with perf.collect() as stats:
            clone.fit_gp(X, y, seed=2)
        assert stats.snapshot()["counters"]["tla_source_cache_hits"] == 1


class TestFrozenGP:
    @pytest.mark.parametrize("kernel", ["rbf", "matern52", "matern32"])
    def test_bitwise_identical_to_gp_predict(self, kernel):
        X, y = _data()
        gp = GaussianProcess(kernel_from_name(kernel, 2), seed=0)
        gp.fit(X, y)
        frozen = frozen_view(gp)
        assert frozen is not None
        Xq = np.random.default_rng(5).random((40, 2))
        mu_ref, sd_ref = gp.predict(Xq)
        mu, sd = frozen.predict(Xq)
        assert np.array_equal(mu, mu_ref)
        assert np.array_equal(sd, sd_ref)

    def test_view_cached_per_version(self):
        X, y = _data()
        gp = GaussianProcess(Matern52(2), seed=0)
        gp.fit(X, y)
        f1 = frozen_view(gp)
        assert frozen_view(gp) is f1
        gp.fit(X, y + 1.0)  # version bump invalidates
        f2 = frozen_view(gp)
        assert f2 is not f1
        assert isinstance(f2, FrozenGP)

    def test_unfitted_gp_has_no_view(self):
        assert frozen_view(GaussianProcess()) is None


class TestPredictionMemo:
    def test_rows_memoized(self):
        store = SourceModelStore()
        X, y = _data()
        gp = store.fit_gp(X, y, seed=1)
        Xq = np.random.default_rng(2).random((8, 2))
        mu1, sd1 = store.predict(gp, Xq)
        with perf.collect() as stats:
            mu2, sd2 = store.predict(gp, Xq)
        assert stats.snapshot()["counters"]["tla_pred_memo_hits"] == 8
        assert np.array_equal(mu1, mu2) and np.array_equal(sd1, sd2)

    def test_partial_hit_computes_only_new_rows(self):
        store = SourceModelStore()
        X, y = _data()
        gp = store.fit_gp(X, y, seed=1)
        Xq = np.random.default_rng(2).random((8, 2))
        store.predict(gp, Xq[:5])
        with perf.collect() as stats:
            mu, sd = store.predict(gp, Xq)
        assert stats.snapshot()["counters"]["tla_pred_memo_hits"] == 5
        mu_ref, sd_ref = gp.predict(Xq)
        assert np.allclose(mu, mu_ref, atol=1e-12)
        assert np.allclose(sd, sd_ref, atol=1e-12)

    def test_memo_matches_direct_predict(self):
        store = SourceModelStore()
        X, y = _data()
        gp = store.fit_gp(X, y, seed=1)
        Xq = np.random.default_rng(3).random((10, 2))
        mu, sd = store.predict(gp, Xq)
        mu_ref, sd_ref = gp.predict(Xq)
        assert np.array_equal(mu, mu_ref) and np.array_equal(sd, sd_ref)

    def test_refit_invalidates_memo(self):
        store = SourceModelStore()
        X, y = _data()
        gp = store.fit_gp(X, y, seed=1)
        Xq = np.random.default_rng(3).random((4, 2))
        store.predict(gp, Xq)
        gp.fit(X, -y)  # version bump: memo keys go stale
        mu, _ = store.predict(gp, Xq)
        assert np.array_equal(mu, gp.predict(Xq)[0])

    def test_memo_bounded(self):
        store = SourceModelStore(max_memo_rows=6)
        X, y = _data()
        gp = store.fit_gp(X, y, seed=1)
        store.predict(gp, np.random.default_rng(4).random((10, 2)))
        assert len(store._memo) <= 6

    def test_cached_predict_fn_exposes_gp(self):
        store = SourceModelStore()
        X, y = _data()
        gp = store.fit_gp(X, y, seed=1)
        fn = store.cached_predict_fn(gp)
        assert fn.__wrapped_gp__ is gp
        Xq = np.random.default_rng(5).random((3, 2))
        assert np.array_equal(fn(Xq)[0], gp.predict(Xq)[0])


class TestSeedBurning:
    def test_cache_hit_burns_seed(self):
        """Stream position must not depend on hit/miss (determinism)."""
        X, y = _data()

        def run(store):
            rng = np.random.default_rng(99)
            seeds = []
            for _ in range(3):
                s = int(rng.integers(0, 2**31 - 1))
                seeds.append(s)
                store.fit_gp(X, y, s)
            return seeds, float(rng.random())

        warm = SourceModelStore()
        warm.fit_gp(X, y, seed=0)  # pre-populate: all three calls hit
        seeds_cold, tail_cold = run(SourceModelStore())
        seeds_warm, tail_warm = run(warm)
        assert seeds_cold == seeds_warm
        assert tail_cold == tail_warm
