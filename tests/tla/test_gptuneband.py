"""Tests for the GPTuneBand multi-fidelity bandit tuner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps import DemoFunction, NIMROD
from repro.hpc import cori_haswell
from repro.tla import GPTuneBand, MultiFidelityObjective, halving_schedule


def _demo_objective(task=None):
    app = DemoFunction()
    return MultiFidelityObjective(
        fn=lambda t, c, f: app.fidelity_objective(t, c, f),
        space=app.parameter_space(),
        task=task or {"t": 1.0},
    )


class TestHalvingSchedule:
    def test_standard_ladder(self):
        sched = halving_schedule(9, 3, eta=3.0)
        assert sched == [(9, pytest.approx(1 / 9)), (3, pytest.approx(1 / 3)), (1, 1.0)]

    def test_top_rung_full_fidelity(self):
        for n, r in [(27, 4), (4, 2), (5, 1)]:
            sched = halving_schedule(n, r)
            assert sched[-1][1] == 1.0

    def test_survivors_decrease(self):
        sched = halving_schedule(27, 4)
        survivors = [s for s, _ in sched]
        assert survivors == sorted(survivors, reverse=True)
        assert survivors[-1] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            halving_schedule(0, 3)
        with pytest.raises(ValueError):
            halving_schedule(9, 0)
        with pytest.raises(ValueError):
            halving_schedule(9, 3, eta=1.0)


class TestFidelityObjective:
    def test_fraction_validated(self):
        obj = _demo_objective()
        with pytest.raises(ValueError):
            obj({"x": 0.5}, 0.0)
        with pytest.raises(ValueError):
            obj({"x": 0.5}, 1.5)

    def test_full_fidelity_matches_raw(self):
        app = DemoFunction()  # noiseless
        task, cfg = {"t": 1.0}, {"x": 0.4}
        assert app.fidelity_objective(task, cfg, 1.0) == pytest.approx(
            app.raw_objective(task, cfg)
        )

    def test_low_fidelity_biased_but_correlated(self):
        app = DemoFunction()
        task = {"t": 1.0}
        xs = np.linspace(0.01, 0.99, 40)
        full = np.array([app.fidelity_objective(task, {"x": x}, 1.0) for x in xs])
        low = np.array([app.fidelity_objective(task, {"x": x}, 1 / 9) for x in xs])
        assert not np.allclose(full, low)
        assert np.corrcoef(full, low)[0, 1] > 0.6

    def test_noise_amplified_at_low_fidelity(self):
        app = NIMROD(cori_haswell(8))
        task = app.default_task()
        cfg = {"NSUP": 150, "NREL": 20, "nbx": 2, "nby": 2, "npz": 1}
        raw = app.raw_objective(task, cfg)
        lo = [abs(app.fidelity_objective(task, cfg, 0.1, run=r) / raw - 1)
              for r in range(12)]
        hi = [abs(app.fidelity_objective(task, cfg, 1.0, run=r) / raw - 1)
              for r in range(12)]
        assert np.mean(lo) > np.mean(hi)

    def test_failures_propagate(self):
        app = NIMROD(cori_haswell(64))
        bad = {"NSUP": 150, "NREL": 20, "nbx": 2, "nby": 2, "npz": 4}
        assert app.fidelity_objective({"mx": 6, "my": 8, "lphi": 1}, bad, 0.3) is None


class TestGPTuneBand:
    def test_budget_respected(self):
        tuner = GPTuneBand(_demo_objective(), bracket_size=9, n_rungs=3)
        res = tuner.tune(6.0, seed=0)
        assert res.cost_spent <= 6.0 + 1.0  # at most one over-shooting eval

    def test_finds_good_configuration(self):
        tuner = GPTuneBand(_demo_objective(), bracket_size=9, n_rungs=3)
        res = tuner.tune(10.0, seed=1)
        assert res.best_config is not None
        # the demo function's minimum for t=1 is well below 0.9
        assert res.best_output < 0.95

    def test_cheap_evals_majority(self):
        """The bandit's point: most evaluations happen at low fidelity."""
        res = GPTuneBand(_demo_objective(), bracket_size=9, n_rungs=3).tune(
            8.0, seed=0
        )
        fracs = [f for _, f, _ in res.evaluations]
        assert sum(1 for f in fracs if f < 1.0) > sum(1 for f in fracs if f == 1.0)

    def test_more_configs_screened_than_full_budget_allows(self):
        res = GPTuneBand(_demo_objective(), bracket_size=9, n_rungs=3).tune(
            6.0, seed=0
        )
        distinct = {tuple(sorted(c.items())) for c, _, _ in res.evaluations}
        assert len(distinct) > 6  # > budget in full-eval equivalents

    def test_reproducible(self):
        a = GPTuneBand(_demo_objective(), bracket_size=9).tune(5.0, seed=3)
        b = GPTuneBand(_demo_objective(), bracket_size=9).tune(5.0, seed=3)
        assert a.best_output == b.best_output
        assert a.cost_spent == b.cost_spent

    def test_without_lcm_degenerates_to_halving(self):
        res = GPTuneBand(
            _demo_objective(), bracket_size=9, use_lcm=False
        ).tune(5.0, seed=0)
        assert res.best_config is not None

    def test_handles_failures(self):
        """OOM-style failures at any rung must not crash the bracket."""
        app = NIMROD(cori_haswell(64))
        obj = MultiFidelityObjective(
            fn=lambda t, c, f: app.fidelity_objective(t, c, f),
            space=app.parameter_space(),
            task={"mx": 6, "my": 8, "lphi": 1},  # ~40% failure region
        )
        res = GPTuneBand(obj, bracket_size=9, n_rungs=2).tune(6.0, seed=0)
        assert res.n_evaluations > 0
        failures = [1 for _, _, y in res.evaluations if y is None]
        assert len(failures) >= 1  # the region was actually exercised

    def test_validation(self):
        with pytest.raises(ValueError):
            GPTuneBand(_demo_objective(), n_rungs=0)
        with pytest.raises(ValueError):
            GPTuneBand(_demo_objective()).tune(0.0)

    def test_beats_equal_budget_random_full_fidelity(self):
        """With the same full-evaluation budget, screening cheaply then
        confirming should beat random search at full fidelity."""
        budget = 6.0
        bandit_best, random_best = [], []
        for seed in range(3):
            res = GPTuneBand(_demo_objective(), bracket_size=9).tune(
                budget, seed=seed
            )
            bandit_best.append(res.best_output)
            rng = np.random.default_rng(seed)
            app = DemoFunction()
            space = app.parameter_space()
            ys = [
                app.fidelity_objective({"t": 1.0}, space.sample(rng), 1.0)
                for _ in range(int(budget))
            ]
            random_best.append(min(ys))
        assert np.mean(bandit_best) <= np.mean(random_best) + 0.05
