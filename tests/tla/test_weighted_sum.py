"""Tests for the weighted-sum TLA strategies (paper Sec. V-B/C)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import TaskData
from repro.tla import WeightedSumDynamic, WeightedSumStatic, dynamic_weights


def _source(shift, n=40, seed=0):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1))
    y = (X[:, 0] - (0.3 + shift)) ** 2
    return TaskData({"shift": shift}, X, y, label=f"shift={shift}")


def _target_data(n=6, seed=1, opt=0.35):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 1))
    y = (X[:, 0] - opt) ** 2
    return TaskData({"shift": 0.05}, X, y)


class TestWeightedSumStatic:
    def test_prepare_requires_sources(self, rng):
        with pytest.raises(ValueError):
            WeightedSumStatic().prepare([], rng)

    def test_mixed_dims_rejected(self, rng):
        a = _source(0.0)
        b = TaskData({"s": 1}, np.random.default_rng(0).random((10, 2)), np.zeros(10))
        with pytest.raises(ValueError):
            WeightedSumStatic().prepare([a, b], rng)

    def test_empty_target_falls_back_to_sources(self, rng):
        strat = WeightedSumStatic()
        strat.prepare([_source(0.0)], rng)
        empty = TaskData({"shift": 0.05}, np.zeros((0, 1)), np.zeros(0))
        predict = strat.model(empty, rng)
        mean, _ = predict(np.array([[0.3], [0.9]]))
        assert mean[0] < mean[1]  # source knowledge: optimum near 0.3

    def test_equal_weights_by_default(self, rng):
        strat = WeightedSumStatic()
        strat.prepare([_source(0.0), _source(0.1, seed=3)], rng)
        predict = strat.model(_target_data(), rng)
        mean, std = predict(np.array([[0.5]]))
        assert np.isfinite(mean[0]) and std[0] > 0
        assert strat.name == "WeightedSum (equal)"

    def test_static_weights_used(self, rng):
        strat = WeightedSumStatic(weights=[0.0, 1.0])  # ignore source entirely
        strat.prepare([_source(0.3)], rng)
        target = _target_data(n=10)
        predict = strat.model(target, rng)
        # with zero source weight, prediction equals target GP alone
        mean, _ = predict(target.X)
        assert np.sqrt(np.mean((mean - target.y) ** 2)) < 0.05
        assert strat.name == "WeightedSum (static)"

    def test_wrong_weight_count(self, rng):
        strat = WeightedSumStatic(weights=[1.0])
        strat.prepare([_source(0.0)], rng)
        with pytest.raises(ValueError):
            strat.model(_target_data(), rng)


class TestDynamicWeights:
    def test_insufficient_target_returns_none(self):
        tgt = TaskData({"t": 0}, np.array([[0.5]]), np.array([1.0]))
        assert dynamic_weights([lambda X: (X[:, 0], X[:, 0])], tgt) is None

    def test_favors_correlated_source(self, rng):
        """A source aligned with the target should earn a larger weight
        than an anti-correlated one."""
        good = lambda X: ((X[:, 0] - 0.35) ** 2, np.full(X.shape[0], 0.1))
        bad = lambda X: (-((X[:, 0] - 0.35) ** 2), np.full(X.shape[0], 0.1))
        target = _target_data(n=12)
        w = dynamic_weights([good, bad], target)
        assert w is not None
        assert w[0] > w[1]

    def test_weights_nonnegative_and_normalized(self):
        models = [
            lambda X: ((X[:, 0] - 0.3) ** 2, np.full(X.shape[0], 0.1)),
            lambda X: ((X[:, 0] - 0.5) ** 2, np.full(X.shape[0], 0.1)),
        ]
        w = dynamic_weights(models, _target_data(n=15))
        assert w is not None
        assert np.all(w >= 0)
        assert np.sum(w) == pytest.approx(len(models))


class TestWeightedSumDynamic:
    def test_model_with_one_sample_falls_back_to_equal(self, rng):
        strat = WeightedSumDynamic()
        strat.prepare([_source(0.0)], rng)
        one = TaskData({"shift": 0.05}, np.array([[0.5]]), np.array([0.02]))
        predict = strat.model(one, rng)
        assert predict is not None

    def test_improves_over_equal_on_misleading_source(self, rng):
        """With one aligned and one misleading source, dynamic weighting
        should localize the optimum at least as well as equal weights."""
        aligned = _source(0.05)
        misleading = _source(0.6, seed=7)  # optimum at 0.9
        target = _target_data(n=8)

        def predicted_optimum(strategy):
            strategy.prepare([aligned, misleading], rng)
            predict = strategy.model(target, rng)
            grid = np.linspace(0, 0.999, 200)[:, None]
            mean, _ = predict(grid)
            return grid[np.argmin(mean), 0]

        x_dyn = predicted_optimum(WeightedSumDynamic())
        x_eq = predicted_optimum(WeightedSumStatic())
        assert abs(x_dyn - 0.35) <= abs(x_eq - 0.35) + 0.05
