"""Fast-TLA-pool determinism and equivalence pins (perf PR regression net).

The store/batched/incremental fast paths are amortizations, not
approximations; these tests pin the contracts:

* defaults (no store, ``refit_every=1``) run the legacy code path and
  stay bit-identical across repeats at a fixed seed,
* the batched ``combine_weighted`` path matches the plain per-model loop
  to <= 1e-10 on mean and log-std,
* enabling the store leaves strategy trajectories within numerical noise,
* sharing a store across an ensemble's members collapses source fitting
  from (1 + pool-size)x to 1x.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import perf
from repro.tla import SourceModelStore, TransferTuner, get_strategy
from repro.tla.base import combine_weighted, fit_source_gps

NON_ENSEMBLE = [
    "multitask-ps",
    "multitask-ts",
    "weighted-sum-equal",
    "weighted-sum-dynamic",
    "stacking",
]


def _trajectory(problem, key, sources, seed=3, n=5, **strategy_kwargs):
    strat = get_strategy(key, **strategy_kwargs)
    res = TransferTuner(problem, strat, sources).tune({"t": 5}, n, seed=seed)
    xs = [e.config["x"] for e in res.history.evaluations]
    return xs, res.best_so_far()


@pytest.mark.parametrize("key", NON_ENSEMBLE + ["ensemble-proposed"])
class TestDefaultsBitIdentical:
    """Pinned: with the store disabled (the default), fixed-seed runs are
    exactly reproducible — the legacy pre-store behavior."""

    def test_repeat_runs_identical(self, key, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 4}, 25, seed=0)
        xs1, best1 = _trajectory(shifted_quadratics, key, [src])
        xs2, best2 = _trajectory(shifted_quadratics, key, [src])
        assert xs1 == xs2
        assert best1 == best2


class TestBatchedCombineEquivalence:
    """Acceptance pin: batched combine matches the loop to <= 1e-10."""

    def test_frozen_path_matches_loop(self, rng, shifted_quadratics, source_factory):
        sources = [
            source_factory(shifted_quadratics, {"t": t}, 20, seed=t, label=f"t{t}")
            for t in (0, 2, 4, 6)
        ]
        gps = fit_source_gps(sources, rng)
        models = [gp.predict for gp in gps]
        w = np.array([1.0, 2.0, 0.5, 1.5])
        Xq = np.random.default_rng(9).random((64, 1))
        mu_loop, sd_loop = combine_weighted(models, w)(Xq)
        mu_fast, sd_fast = combine_weighted(models, w, store=SourceModelStore())(Xq)
        assert np.max(np.abs(mu_fast - mu_loop)) <= 1e-10
        assert np.max(np.abs(np.log(sd_fast) - np.log(sd_loop))) <= 1e-10

    def test_batched_counter_increments(self, rng, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 1}, 20, seed=1)
        gps = fit_source_gps([src], rng)
        fast = combine_weighted([gps[0].predict], np.ones(1), store=SourceModelStore())
        with perf.collect() as stats:
            fast(np.random.default_rng(0).random((4, 1)))
        assert stats.snapshot()["counters"]["tla_batched_predicts"] == 1

    def test_non_gp_members_still_work(self):
        # members that are not bound GP predicts fall back to plain calls
        m = lambda X: (np.full(X.shape[0], 2.0), np.ones(X.shape[0]))
        fast = combine_weighted([m], np.ones(1), store=SourceModelStore())
        mu, sd = fast(np.zeros((3, 1)))
        assert np.allclose(mu, 2.0) and np.allclose(sd, 1.0)


@pytest.mark.parametrize("key", NON_ENSEMBLE)
class TestStoreWithinNoise:
    """Enabling the store keeps trajectories within numerical noise."""

    def test_store_on_matches_store_off(self, key, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 4}, 25, seed=0)
        xs_off, best_off = _trajectory(shifted_quadratics, key, [src])
        xs_on, best_on = _trajectory(
            shifted_quadratics, key, [src], store=SourceModelStore()
        )
        assert np.allclose(xs_on, xs_off, atol=1e-6)
        assert np.allclose(best_on, best_off, atol=1e-6)


class TestIncrementalRefits:
    def test_refit_every_counter_and_quality(
        self, shifted_quadratics, source_factory
    ):
        src = source_factory(shifted_quadratics, {"t": 4}, 25, seed=0)
        with perf.collect() as stats:
            _, best = _trajectory(
                shifted_quadratics,
                "weighted-sum-dynamic",
                [src],
                n=8,
                refit_every=3,
                store=SourceModelStore(),
            )
        counters = stats.snapshot()["counters"]
        assert counters.get("tla_incremental_refits", 0) > 0
        assert best[-1] < 0.15  # still converges near the optimum

    def test_stacking_incremental_residuals(self, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 4}, 25, seed=0)
        with perf.collect() as stats:
            _, best = _trajectory(
                shifted_quadratics,
                "stacking",
                [src],
                n=8,
                refit_every=4,
            )
        counters = stats.snapshot()["counters"]
        assert counters.get("tla_incremental_refits", 0) > 0
        assert best[-1] < 0.15


class TestEnsembleSourceFitSharing:
    """Acceptance pin: 1x source fits per ensemble prepare with the store
    (vs 1 + pool-size = 4x without)."""

    def _sources(self, problem, source_factory, n_sources=2):
        return [
            source_factory(problem, {"t": t}, 20, seed=t, label=f"t{t}")
            for t in range(n_sources)
        ]

    def test_without_store_refits_per_member(
        self, shifted_quadratics, source_factory
    ):
        sources = self._sources(shifted_quadratics, source_factory)
        strat = get_strategy("ensemble-proposed")
        with perf.collect() as stats:
            strat.prepare(sources, np.random.default_rng(0))
        counters = stats.snapshot()["counters"]
        # shell + 3 members each fit every source from scratch
        assert counters["tla_source_fits"] == 4 * len(sources)
        assert "tla_source_cache_hits" not in counters

    def test_with_store_fits_once(self, shifted_quadratics, source_factory):
        sources = self._sources(shifted_quadratics, source_factory)
        strat = get_strategy("ensemble-proposed", store=SourceModelStore())
        with perf.collect() as stats:
            strat.prepare(sources, np.random.default_rng(0))
        counters = stats.snapshot()["counters"]
        assert counters["tla_source_fits"] == len(sources)
        assert counters["tla_source_cache_hits"] == 3 * len(sources)

    def test_prepare_from_store_shares_across_strategies(
        self, shifted_quadratics, source_factory
    ):
        sources = self._sources(shifted_quadratics, source_factory)
        store = SourceModelStore()
        rng = np.random.default_rng(0)
        with perf.collect() as stats:
            for key in ("weighted-sum-dynamic", "stacking", "multitask-ts"):
                get_strategy(key).prepare_from_store(store, sources, rng)
        counters = stats.snapshot()["counters"]
        assert counters["tla_source_fits"] == len(sources)
        assert counters["tla_source_cache_hits"] == 2 * len(sources)

    def test_store_run_converges(self, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 4}, 25, seed=0)
        _, best = _trajectory(
            shifted_quadratics,
            "ensemble-proposed",
            [src],
            n=6,
            store=SourceModelStore(),
        )
        assert best[-1] < 0.15
