"""Tests for TransferTuner + the strategy registry (paper Sec. V driver)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Tuner, TunerOptions
from repro.tla import (
    STRATEGY_REGISTRY,
    TransferTuner,
    get_strategy,
    pool_table,
)

ALL_KEYS = sorted(STRATEGY_REGISTRY)


class TestRegistry:
    def test_all_eight_algorithms_present(self):
        """Table I: 5 TLA algorithms + 3 ensemble variants."""
        assert set(ALL_KEYS) == {
            "multitask-ps",
            "multitask-ts",
            "weighted-sum-equal",
            "weighted-sum-dynamic",
            "stacking",
            "ensemble-proposed",
            "ensemble-toggling",
            "ensemble-prob",
        }

    def test_get_strategy(self):
        for key in ALL_KEYS:
            assert get_strategy(key).name

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            get_strategy("magic")

    def test_pool_table_provenance(self):
        """Table I's 'first autotuner' column."""
        rows = {r["name"]: r["first_autotuner"] for r in pool_table()}
        assert rows["Multitask (PS)"] == "[11]"
        assert rows["Multitask (TS)"] == "GPTuneCrowd"
        assert rows["WeightedSum (equal)"] == "[6]"
        assert rows["WeightedSum (dynamic)"] == "GPTuneCrowd"
        assert rows["Stacking"] == "[12]"
        assert rows["Ensemble (proposed)"] == "GPTuneCrowd"


@pytest.mark.parametrize("key", ALL_KEYS)
class TestAllStrategiesTune:
    def test_runs_and_respects_budget(
        self, key, shifted_quadratics, source_factory
    ):
        src = source_factory(shifted_quadratics, {"t": 0}, 30, seed=0)
        tuner = TransferTuner(shifted_quadratics, get_strategy(key), [src])
        res = tuner.tune({"t": 5}, 6, seed=0)
        assert res.n_evaluations == 6
        assert res.tuner_name == get_strategy(key).name
        # optimum for t=5 is at x=0.4 with value 0.05
        assert res.best_output < 0.15


class TestTransferBeatsNoTLA:
    def test_tla_better_at_small_budget(self, shifted_quadratics, source_factory):
        """The paper's headline: TLA >> NoTLA with few evaluations."""
        src = source_factory(shifted_quadratics, {"t": 4}, 60, seed=0)
        task = {"t": 5}
        budget = 4

        tla_bests, notla_bests = [], []
        for seed in (0, 1, 2):
            strat = get_strategy("multitask-ts")
            res_tla = TransferTuner(shifted_quadratics, strat, [src]).tune(
                task, budget, seed=seed
            )
            res_no = Tuner(shifted_quadratics).tune(task, budget, seed=seed)
            tla_bests.append(res_tla.best_output)
            notla_bests.append(res_no.best_output)
        assert np.mean(tla_bests) <= np.mean(notla_bests) + 1e-9

    def test_first_evaluation_is_informed(self, shifted_quadratics, source_factory):
        """With a correlated source, even evaluation #1 should be near the
        source optimum (the equal-weight fallback), not uniform random."""
        src = source_factory(shifted_quadratics, {"t": 5}, 80, seed=0)
        hits = 0
        for seed in range(5):
            strat = get_strategy("weighted-sum-dynamic")
            res = TransferTuner(shifted_quadratics, strat, [src]).tune(
                {"t": 5}, 1, seed=seed
            )
            first_x = res.history.evaluations[0].config["x"]
            if abs(first_x - 0.4) < 0.2:
                hits += 1
        assert hits >= 3


class TestTransferTunerMechanics:
    def test_no_initial_random_phase(self, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 5}, 40, seed=0)
        opts = TunerOptions(n_initial=5)  # must be overridden to 0
        tuner = TransferTuner(
            shifted_quadratics, get_strategy("stacking"), [src], options=opts
        )
        assert tuner.options.n_initial == 0

    def test_callbacks_preserved(self, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 5}, 20, seed=0)
        seen = []
        tuner = TransferTuner(
            shifted_quadratics,
            get_strategy("weighted-sum-equal"),
            [src],
            callbacks=[seen.append],
        )
        tuner.tune({"t": 5}, 3, seed=0)
        assert len(seen) == 3
        # the bridge callback added during tune() must have been removed
        assert len(tuner.callbacks) == 1

    def test_reproducible(self, shifted_quadratics, source_factory):
        src = source_factory(shifted_quadratics, {"t": 5}, 30, seed=0)
        runs = []
        for _ in range(2):
            strat = get_strategy("ensemble-proposed")
            res = TransferTuner(shifted_quadratics, strat, [src]).tune(
                {"t": 5}, 5, seed=7
            )
            runs.append(res.best_so_far())
        assert runs[0] == runs[1]


class TestCrowdFeasibilityLearning:
    def test_source_failures_warn_target_search(self):
        """Failures recorded in a source dataset (the crowd stores them)
        must steer the target run away from the shared failure region."""
        import numpy as np

        from repro.core import (
            IntegerParameter,
            OutputParameter,
            RealParameter,
            Space,
            TaskData,
            TuningProblem,
        )

        def objective(task, cfg):
            if cfg["x"] > 0.7:  # shared OOM-style region
                return None
            return (cfg["x"] - (0.3 + 0.02 * task["t"])) ** 2 + 0.05

        problem = TuningProblem(
            name="oom",
            input_space=Space([IntegerParameter("t", 0, 10)]),
            parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
            output_space=Space([OutputParameter("y")]),
            objective=objective,
        )
        # source data for t=0: successes below 0.7, failures above
        rng = np.random.default_rng(0)
        ok_x = rng.uniform(0.0, 0.7, 40)
        bad_x = rng.uniform(0.7, 1.0, 25)
        src = TaskData(
            {"t": 0},
            ok_x[:, None],
            (ok_x - 0.3) ** 2 + 0.05,
            X_failed=bad_x[:, None],
        )
        strat = get_strategy("weighted-sum-dynamic")
        res = TransferTuner(problem, strat, [src]).tune({"t": 5}, 8, seed=1)
        # the tuner should waste at most one probe on the failure region
        assert res.history.n_failures <= 1
        assert res.best_output < 0.1

    def test_learning_disabled_by_option(self):
        from repro.core import TunerOptions

        opts = TunerOptions(learn_feasibility=False)
        # just verifies the option threads through without error
        assert opts.learn_feasibility is False
