"""Tests for process grids and block-cyclic distribution."""

from __future__ import annotations

import pytest

from repro.hpc import (
    Grid2D,
    Grid3D,
    block_cyclic_rows,
    factor_pairs,
    grid_for_rows,
    load_imbalance,
    squarest_grid,
)


class TestGrids:
    def test_grid2d_properties(self):
        g = Grid2D(4, 8)
        assert g.size == 32
        assert g.aspect == 2.0
        with pytest.raises(ValueError):
            Grid2D(0, 4)

    def test_grid3d(self):
        g = Grid3D(4, 8, 2)
        assert g.size == 64
        assert g.plane == Grid2D(4, 8)
        with pytest.raises(ValueError):
            Grid3D(1, 1, 0)


class TestFactorization:
    def test_factor_pairs(self):
        assert factor_pairs(12) == [(1, 12), (2, 6), (3, 4)]
        assert factor_pairs(1) == [(1, 1)]
        assert factor_pairs(7) == [(1, 7)]
        with pytest.raises(ValueError):
            factor_pairs(0)

    def test_squarest_grid(self):
        assert squarest_grid(16) == Grid2D(4, 4)
        assert squarest_grid(32) == Grid2D(4, 8)
        assert squarest_grid(7) == Grid2D(1, 7)

    def test_grid_for_rows(self):
        g = grid_for_rows(256, 16)
        assert g == Grid2D(16, 16)
        # idle ranks allowed: 256 ranks, 24 rows -> 24x10 = 240 used
        g = grid_for_rows(256, 24)
        assert g == Grid2D(24, 10)

    def test_grid_for_rows_infeasible(self):
        """p > total ranks is the paper's PDGEQRF failure mode."""
        assert grid_for_rows(8, 9) is None

    def test_grid_for_rows_validation(self):
        with pytest.raises(ValueError):
            grid_for_rows(8, 0)


class TestBlockCyclic:
    def test_numroc_small_example(self):
        # m=10, mb=3, p=2: row 0 gets blocks {0,2} = 6 rows, row 1 gets 4
        assert block_cyclic_rows(10, 3, 2, 0) == 6
        assert block_cyclic_rows(10, 3, 2, 1) == 4

    def test_rows_sum_to_m(self):
        for m, mb, p in [(100, 8, 4), (97, 16, 3), (5, 10, 2), (64, 64, 4)]:
            total = sum(block_cyclic_rows(m, mb, p, r) for r in range(p))
            assert total == m, (m, mb, p)

    def test_validation(self):
        with pytest.raises(ValueError):
            block_cyclic_rows(10, 0, 2, 0)
        with pytest.raises(ValueError):
            block_cyclic_rows(10, 3, 2, 5)

    def test_load_imbalance_perfect(self):
        assert load_imbalance(64, 8, 4) == pytest.approx(1.0)

    def test_load_imbalance_large_blocks(self):
        """One giant block on many procs is maximally imbalanced."""
        assert load_imbalance(64, 64, 4) == pytest.approx(4.0)

    def test_load_imbalance_between_bounds(self):
        for m, mb, p in [(1000, 8, 7), (123, 16, 3), (50, 7, 4)]:
            ratio = load_imbalance(m, mb, p)
            assert 1.0 <= ratio <= p
