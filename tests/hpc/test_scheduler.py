"""Tests for the Slurm-like allocation simulator."""

from __future__ import annotations

import pytest

from repro.hpc import AllocationError, SlurmSim, cori_haswell
from repro.hpc.scheduler import _compress_nodelist


@pytest.fixture
def sim():
    return SlurmSim(cori_haswell(16))


class TestAllocation:
    def test_basic_salloc(self, sim):
        job = sim.salloc(8, ntasks_per_node=32)
        assert job.nodes == 8 and job.ntasks == 256
        assert job.partition == "haswell"
        assert len(job.nodelist) == 8
        assert sim.free_nodes == 8

    def test_default_tasks_fill_cores(self, sim):
        job = sim.salloc(2)
        assert job.ntasks == 64

    def test_cpus_per_task(self, sim):
        job = sim.salloc(1, cpus_per_task=4)
        assert job.ntasks == 8  # 32 cores / 4 cpus

    def test_overallocation_rejected(self, sim):
        with pytest.raises(AllocationError):
            sim.salloc(17)
        sim.salloc(16)
        with pytest.raises(AllocationError):
            sim.salloc(1)

    def test_oversubscription_rejected(self, sim):
        with pytest.raises(AllocationError):
            sim.salloc(1, ntasks_per_node=64)

    def test_invalid_request(self, sim):
        with pytest.raises(ValueError):
            sim.salloc(0)

    def test_release_returns_nodes(self, sim):
        job = sim.salloc(8)
        sim.release(job)
        assert sim.free_nodes == 16

    def test_double_release_rejected(self, sim):
        job = sim.salloc(8)
        sim.release(job)
        with pytest.raises(AllocationError):
            sim.release(job)
        assert sim.free_nodes == 16  # pool not corrupted by the attempt

    def test_foreign_job_rejected(self, sim):
        """A job granted by a different scheduler must not free nodes here."""
        other = SlurmSim(cori_haswell(16))
        foreign = other.salloc(4)
        sim.salloc(4)  # occupy the same job-id counter position
        with pytest.raises(AllocationError):
            sim.release(foreign)
        assert sim.free_nodes == 12

    def test_release_roundtrip_preserves_nodelist_compression(self, sim):
        """Allocate, release, reallocate: same nodes, same compressed list."""
        first = sim.salloc(8)
        compressed = first.environment()["SLURM_JOB_NODELIST"]
        assert compressed == "nid[05000-05007]"
        sim.release(first)
        assert sim.free_nodes == 16
        again = sim.salloc(8)
        assert again.nodelist == first.nodelist
        assert again.environment()["SLURM_JOB_NODELIST"] == compressed

    def test_job_ids_unique(self, sim):
        a = sim.salloc(1)
        b = sim.salloc(1)
        assert a.job_id != b.job_id

    def test_disjoint_allocations(self, sim):
        a = sim.salloc(4)
        b = sim.salloc(4)
        assert not set(a.nodelist) & set(b.nodelist)


class TestEnvironment:
    def test_environment_variables(self, sim):
        env = sim.salloc(8, ntasks_per_node=16).environment()
        assert env["SLURM_JOB_NUM_NODES"] == "8"
        assert env["SLURM_NTASKS"] == "128"
        assert env["SLURM_JOB_PARTITION"] == "haswell"
        assert env["SLURM_JOB_NODELIST"].startswith("nid")


class TestNodelistCompression:
    def test_single_node(self):
        assert _compress_nodelist(["nid05000"]) == "nid05000"

    def test_contiguous_range(self):
        names = [f"nid{5000 + i:05d}" for i in range(4)]
        assert _compress_nodelist(names) == "nid[05000-05003]"

    def test_split_ranges(self):
        names = ["nid05000", "nid05001", "nid05005"]
        assert _compress_nodelist(names) == "nid[05000-05001,05005]"

    def test_empty(self):
        assert _compress_nodelist([]) == ""
