"""Tests for machine presets and derived quantities."""

from __future__ import annotations

import pytest

from repro.hpc import Machine, cori_haswell, cori_knl, get_machine

_GiB = 1024.0**3


class TestPresets:
    def test_haswell_matches_paper(self):
        """Paper Sec. VI-B: two 16-core Xeon E5-2698v3, 128 GB per node."""
        m = cori_haswell(8)
        assert m.cores_per_node == 32
        assert m.nodes == 8
        assert m.total_cores == 256
        assert m.mem_per_node == pytest.approx(128 * _GiB)
        assert m.partition == "haswell"

    def test_knl_matches_paper(self):
        """Paper Sec. VI-C: Xeon Phi 7250, 96 GB DDR4 + 16 GB MCDRAM."""
        m = cori_knl(32)
        assert m.cores_per_node == 68
        assert m.mem_per_node == pytest.approx(112 * _GiB)
        assert m.partition == "knl"

    def test_knl_slower_per_core_for_sparse(self):
        assert cori_knl().sparse_flops_per_core < cori_haswell().sparse_flops_per_core

    def test_get_machine(self):
        assert get_machine("cori-haswell", 4).nodes == 4
        with pytest.raises(ValueError):
            get_machine("fugaku")


class TestMachine:
    def test_validation(self):
        with pytest.raises(ValueError):
            cori_haswell(0)
        with pytest.raises(ValueError):
            Machine("m", "p", 1, 1, -1.0, 1.0, 1.0, 1.0)

    def test_with_nodes(self):
        m = cori_haswell(8).with_nodes(64)
        assert m.nodes == 64
        assert m.cores_per_node == 32  # everything else preserved

    def test_dense_rate_monotone_and_bounded(self):
        m = cori_haswell(2)
        r1 = m.dense_rate(1)
        r32 = m.dense_rate(32)
        r64 = m.dense_rate(64)
        assert r1 < r32 < r64
        assert r64 <= m.total_flops

    def test_dense_rate_clamps(self):
        m = cori_haswell(1)
        assert m.dense_rate(0) == m.dense_rate(1)
        assert m.dense_rate(9999) == m.dense_rate(m.total_cores)

    def test_describe_block_shape(self):
        """The crowd-record machine_configurations block (Sec. IV-A)."""
        d = cori_haswell(8).describe()
        assert d == {"Cori": {"haswell": {"nodes": 8, "cores": 32}}}
