"""Tests for the alpha-beta network model."""

from __future__ import annotations

import pytest

from repro.hpc import CORI_ARIES, SHARED_MEMORY, NetworkModel


@pytest.fixture
def net():
    return NetworkModel("test", alpha=1e-6, beta=1e-9)


class TestP2P:
    def test_latency_plus_bandwidth(self, net):
        assert net.p2p(0) == pytest.approx(1e-6)
        assert net.p2p(1e6) == pytest.approx(1e-6 + 1e-3)

    def test_negative_bytes_clamped(self, net):
        assert net.p2p(-5) == pytest.approx(net.alpha)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel("bad", alpha=-1, beta=0)


class TestCollectives:
    def test_single_rank_free(self, net):
        for op in (net.bcast, net.reduce, net.allreduce, net.allgather, net.alltoall):
            assert op(1000, 1) == 0.0

    def test_bcast_log_scaling(self, net):
        t4 = net.bcast(1000, 4)
        t16 = net.bcast(1000, 16)
        assert t16 == pytest.approx(t4 * 2)  # log2(16)/log2(4)

    def test_bcast_nonpow2_ceil(self, net):
        assert net.bcast(8, 5) == pytest.approx(3 * net.p2p(8))

    def test_reduce_equals_bcast(self, net):
        assert net.reduce(512, 8) == pytest.approx(net.bcast(512, 8))

    def test_allreduce_bandwidth_term(self, net):
        """For large messages, allreduce ~ 2 * (p-1)/p * n * beta."""
        n = 1e8
        t = net.allreduce(n, 16)
        assert t == pytest.approx(2 * 15 / 16 * n * net.beta, rel=0.01)

    def test_allgather_ring(self, net):
        assert net.allgather(100, 8) == pytest.approx(7 * net.p2p(100))

    def test_alltoall_pairwise(self, net):
        assert net.alltoall(100, 8) == pytest.approx(7 * net.p2p(100))

    def test_monotone_in_ranks(self, net):
        for op in (net.bcast, net.allreduce, net.allgather):
            prev = 0.0
            for p in (2, 4, 8, 16, 64):
                cur = op(1000, p)
                assert cur >= prev
                prev = cur


class TestPresets:
    def test_aries_slower_than_shm(self):
        assert CORI_ARIES.alpha > SHARED_MEMORY.alpha
        assert CORI_ARIES.beta > SHARED_MEMORY.beta

    def test_realistic_magnitudes(self):
        # 1 MB broadcast over 256 ranks should take ~ms, not seconds
        t = CORI_ARIES.bcast(1e6, 256)
        assert 1e-5 < t < 0.1
