"""Tests for the virtual-time SPMD simulator."""

from __future__ import annotations

import math

import pytest

from repro.hpc import DeadlockError, NetworkModel, SpmdSimulator


@pytest.fixture
def net():
    return NetworkModel("t", alpha=1e-6, beta=1e-9)


class TestComputeOnly:
    def test_independent_clocks(self, net):
        def program(rank, size):
            yield ("compute", float(rank))

        clocks = SpmdSimulator(4, net).run(program)
        assert clocks == [0.0, 1.0, 2.0, 3.0]

    def test_single_rank(self, net):
        def program(rank, size):
            yield ("compute", 2.5)

        assert SpmdSimulator(1, net).run(program) == [2.5]


class TestPointToPoint:
    def test_receiver_waits_for_sender(self, net):
        def program(rank, size):
            if rank == 0:
                yield ("compute", 1.0)  # slow sender
                yield ("send", 1, 1000, 0)
            else:
                yield ("recv", 0, 1000, 0)

        clocks = SpmdSimulator(2, net).run(program)
        expected_arrival = 1.0 + net.p2p(1000)
        assert clocks[1] == pytest.approx(expected_arrival)

    def test_fast_receiver_charged_transfer_time(self, net):
        def program(rank, size):
            if rank == 0:
                yield ("send", 1, 1e6, 0)
            else:
                yield ("compute", 5.0)
                yield ("recv", 0, 1e6, 0)

        clocks = SpmdSimulator(2, net).run(program)
        # message arrived long before the receiver posted the recv
        assert clocks[1] == pytest.approx(5.0)

    def test_message_ordering_fifo(self, net):
        """Two sends with the same tag match receives in order."""

        def program(rank, size):
            if rank == 0:
                yield ("compute", 1.0)
                yield ("send", 1, 10, 7)
                yield ("compute", 1.0)
                yield ("send", 1, 20, 7)
            else:
                yield ("recv", 0, 10, 7)
                t_first = yield ("compute", 0.0)
                del t_first
                yield ("recv", 0, 20, 7)

        clocks = SpmdSimulator(2, net).run(program)
        assert clocks[1] >= 2.0

    def test_tags_disambiguate(self, net):
        def program(rank, size):
            if rank == 0:
                yield ("send", 1, 10, "a")
                yield ("send", 1, 20, "b")
            else:
                yield ("recv", 0, 20, "b")
                yield ("recv", 0, 10, "a")

        SpmdSimulator(2, net).run(program)  # must not deadlock

    def test_invalid_destination(self, net):
        def program(rank, size):
            yield ("send", 99, 10, 0)

        with pytest.raises(ValueError):
            SpmdSimulator(2, net).run(program)

    def test_unknown_action(self, net):
        def program(rank, size):
            yield ("warp", 1)

        with pytest.raises(ValueError):
            SpmdSimulator(1, net).run(program)


class TestDeadlock:
    def test_recv_without_send_deadlocks(self, net):
        def program(rank, size):
            if rank == 1:
                yield ("recv", 0, 10, 0)

        with pytest.raises(DeadlockError):
            SpmdSimulator(2, net).run(program)

    def test_crossed_recvs_deadlock(self, net):
        def program(rank, size):
            other = 1 - rank
            yield ("recv", other, 10, 0)
            yield ("send", other, 10, 0)

        with pytest.raises(DeadlockError):
            SpmdSimulator(2, net).run(program)


class TestBarrier:
    def test_barrier_synchronizes_clocks(self, net):
        def program(rank, size):
            yield ("compute", float(rank))
            yield ("barrier",)
            yield ("compute", 0.5)

        clocks = SpmdSimulator(4, net).run(program)
        # all ranks leave the barrier at the max clock, then add 0.5
        assert max(clocks) == min(clocks)
        assert clocks[0] >= 3.5


class TestBroadcastProgram:
    @pytest.mark.parametrize("size", [2, 4, 7, 8])
    def test_bcast_completes(self, net, size):
        prog = SpmdSimulator.bcast_program(0, 1000)
        clocks = SpmdSimulator(size, net).run(prog)
        assert all(c > 0 for c in clocks[1:])

    def test_bcast_matches_alpha_beta_bound(self, net):
        """The simulated binomial tree must land within ~2x of the
        closed-form model used by CostComm."""
        size, nbytes = 16, 1e5
        prog = SpmdSimulator.bcast_program(0, nbytes)
        clocks = SpmdSimulator(size, net).run(prog)
        simulated = max(clocks)
        model = net.bcast(nbytes, size)
        assert model / 2 <= simulated <= model * 2

    def test_bcast_scales_logarithmically(self, net):
        t4 = max(SpmdSimulator(4, net).run(SpmdSimulator.bcast_program(0, 1e6)))
        t16 = max(SpmdSimulator(16, net).run(SpmdSimulator.bcast_program(0, 1e6)))
        assert t16 < t4 * 3  # log growth, nowhere near linear (4x)

    def test_nonzero_root(self, net):
        prog = SpmdSimulator.bcast_program(2, 500)
        clocks = SpmdSimulator(5, net).run(prog)
        assert math.isfinite(max(clocks))


class TestRingAllreduce:
    """A hand-written ring all-reduce validates the allreduce bound."""

    @staticmethod
    def _ring(nbytes):
        def program(rank: int, size: int):
            for step in range(size - 1):
                yield ("send", (rank + 1) % size, nbytes, step)
                yield ("recv", (rank - 1) % size, nbytes, step)

        return program

    def test_completes_for_various_sizes(self, net):
        for size in (2, 3, 5, 8):
            clocks = SpmdSimulator(size, net).run(self._ring(1024))
            assert all(c > 0 for c in clocks)

    def test_ring_cost_scales_linearly_in_ranks(self, net):
        t4 = max(SpmdSimulator(4, net).run(self._ring(1e6)))
        t8 = max(SpmdSimulator(8, net).run(self._ring(1e6)))
        # (p-1) rounds: 8 ranks do 7 rounds vs 3 rounds for 4 ranks
        assert t8 == pytest.approx(t4 * 7 / 3, rel=0.2)

    def test_ring_within_factor_of_allreduce_model(self, net):
        """The closed-form allreduce (Rabenseifner) should not be wildly
        cheaper than a plain ring for large messages."""
        size, nbytes = 8, 1e6
        simulated = max(SpmdSimulator(size, net).run(self._ring(nbytes)))
        model = net.allreduce(nbytes, size)
        # ring moves (p-1)*n bytes per rank vs ~2n for Rabenseifner:
        # expect the same order of magnitude, ring a few times costlier
        assert model < simulated < model * 10
