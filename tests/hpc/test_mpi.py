"""Tests for the MPI cost-accounting communicator."""

from __future__ import annotations

import pytest

from repro.hpc import CostComm, cori_haswell


@pytest.fixture
def machine():
    return cori_haswell(4)  # 128 cores


class TestConstruction:
    def test_defaults_pack_full_nodes(self, machine):
        comm = CostComm(machine, 128)
        assert comm.ranks_per_node == 32

    def test_too_many_ranks_rejected(self, machine):
        with pytest.raises(ValueError):
            CostComm(machine, 129)

    def test_sparse_placement(self, machine):
        comm = CostComm(machine, 16, ranks_per_node=4)
        assert comm.ranks_per_node == 4

    def test_oversubscription_rejected(self, machine):
        with pytest.raises(ValueError):
            CostComm(machine, 8, ranks_per_node=64)

    def test_sparse_placement_needs_enough_nodes(self, machine):
        with pytest.raises(ValueError):
            CostComm(machine, 128, ranks_per_node=16)  # needs 8 nodes, have 4

    def test_validation(self, machine):
        with pytest.raises(ValueError):
            CostComm(machine, 0)
        with pytest.raises(ValueError):
            CostComm(machine, 4, ranks_per_node=0)


class TestCosts:
    def test_ops_return_positive_times(self, machine):
        comm = CostComm(machine, 64)
        assert comm.send(1024) > 0
        assert comm.bcast(1024) > 0
        assert comm.allreduce(1024) > 0
        assert comm.allgather(1024) > 0
        assert comm.alltoall(1024) > 0
        assert comm.reduce(1024) > 0

    def test_single_rank_collectives_free(self, machine):
        comm = CostComm(machine, 1)
        assert comm.bcast(1024) == 0.0
        assert comm.allreduce(1024) == 0.0

    def test_group_size_override(self, machine):
        comm = CostComm(machine, 64)
        assert comm.bcast(1024, group_size=4) < comm.bcast(1024, group_size=64)

    def test_intranode_cheaper(self, machine):
        """All ranks on one node should communicate faster than spread."""
        packed = CostComm(machine, 32, ranks_per_node=32)
        spread = CostComm(machine, 32, ranks_per_node=8)
        assert packed.bcast(1e6) < spread.bcast(1e6)

    def test_stats_accumulate(self, machine):
        comm = CostComm(machine, 64)
        comm.bcast(1000)
        comm.bcast(1000)
        comm.allreduce(500)
        assert comm.stats.messages == 3
        assert comm.stats.seconds > 0
        assert set(comm.stats.by_op) == {"bcast", "allreduce"}
        assert comm.stats.bytes_moved > 0
