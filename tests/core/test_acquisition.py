"""Tests for repro.core.acquisition: EI and LCB properties."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ExpectedImprovement, LowerConfidenceBound, get_acquisition


def _const_predict(mean, std):
    return lambda X: (np.full(X.shape[0], mean), np.full(X.shape[0], std))


X1 = np.zeros((1, 2))


class TestExpectedImprovement:
    def test_nonnegative(self):
        ei = ExpectedImprovement()
        for mean in (-2.0, 0.0, 5.0):
            val = ei(_const_predict(mean, 1.0), X1, y_best=0.0)[0]
            assert val >= 0.0

    def test_better_mean_higher_ei(self):
        ei = ExpectedImprovement()
        low = ei(_const_predict(-1.0, 1.0), X1, y_best=0.0)[0]
        high = ei(_const_predict(+1.0, 1.0), X1, y_best=0.0)[0]
        assert low > high

    def test_more_uncertainty_higher_ei_at_same_mean(self):
        ei = ExpectedImprovement()
        tight = ei(_const_predict(1.0, 0.1), X1, y_best=0.0)[0]
        wide = ei(_const_predict(1.0, 2.0), X1, y_best=0.0)[0]
        assert wide > tight

    def test_zero_std_deterministic_improvement(self):
        ei = ExpectedImprovement()
        assert ei(_const_predict(-2.0, 0.0), X1, y_best=0.0)[0] == pytest.approx(2.0)
        assert ei(_const_predict(+2.0, 0.0), X1, y_best=0.0)[0] == 0.0

    def test_closed_form_value(self):
        # EI(mean=0, std=1, best=0) = phi(0) = 1/sqrt(2 pi)
        ei = ExpectedImprovement()
        val = ei(_const_predict(0.0, 1.0), X1, y_best=0.0)[0]
        assert val == pytest.approx(1.0 / np.sqrt(2 * np.pi), abs=1e-12)

    def test_xi_margin_reduces_ei(self):
        plain = ExpectedImprovement()(_const_predict(0.0, 1.0), X1, 0.0)[0]
        margined = ExpectedImprovement(xi=0.5)(_const_predict(0.0, 1.0), X1, 0.0)[0]
        assert margined < plain

    def test_vectorized(self):
        ei = ExpectedImprovement()
        X = np.zeros((7, 3))
        assert ei(_const_predict(0.0, 1.0), X, 0.0).shape == (7,)


class TestLowerConfidenceBound:
    def test_prefers_low_mean(self):
        lcb = LowerConfidenceBound(beta=1.0)
        better = lcb(_const_predict(-1.0, 0.5), X1, 0.0)[0]
        worse = lcb(_const_predict(1.0, 0.5), X1, 0.0)[0]
        assert better > worse

    def test_prefers_uncertainty(self):
        lcb = LowerConfidenceBound(beta=2.0)
        certain = lcb(_const_predict(0.0, 0.1), X1, 0.0)[0]
        uncertain = lcb(_const_predict(0.0, 1.0), X1, 0.0)[0]
        assert uncertain > certain


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_acquisition("ei"), ExpectedImprovement)
        assert isinstance(get_acquisition("lcb", beta=3.0), LowerConfidenceBound)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_acquisition("thompson")
