"""Tests for repro.core.history: histories, trajectories, TaskData."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import Evaluation, History, RealParameter, Space, TaskData


@pytest.fixture
def space():
    return Space([RealParameter("x", 0.0, 1.0)])


def _ev(x, y):
    return Evaluation({"t": 1}, {"x": x}, y)


class TestHistory:
    def test_append_and_len(self, space):
        h = History({"t": 1}, space)
        h.append(_ev(0.1, 2.0))
        h.extend([_ev(0.2, 1.0), _ev(0.3, None)])
        assert len(h) == 3
        assert h.n_successes == 2 and h.n_failures == 1

    def test_arrays_exclude_failures(self, space):
        h = History({"t": 1}, space)
        h.extend([_ev(0.1, 2.0), _ev(0.2, None), _ev(0.3, 1.0)])
        X, y = h.arrays()
        assert X.shape == (2, 1)
        assert list(y) == [2.0, 1.0]

    def test_best(self, space):
        h = History({"t": 1}, space)
        h.extend([_ev(0.1, 2.0), _ev(0.2, 0.5), _ev(0.3, 1.0)])
        assert h.best().output == 0.5
        assert h.best_output() == 0.5

    def test_best_requires_success(self, space):
        h = History({"t": 1}, space)
        h.append(_ev(0.1, None))
        with pytest.raises(ValueError):
            h.best()

    def test_best_so_far_monotone(self, space):
        h = History({"t": 1}, space)
        for x, y in [(0.1, 3.0), (0.2, 5.0), (0.3, 1.0), (0.4, 2.0)]:
            h.append(_ev(x, y))
        assert h.best_so_far() == [3.0, 3.0, 1.0, 1.0]

    def test_best_so_far_leading_failures_are_nan(self, space):
        """Paper Fig. 5(c): points are not drawn until the first success."""
        h = History({"t": 1}, space)
        h.extend([_ev(0.1, None), _ev(0.2, None), _ev(0.3, 2.0)])
        traj = h.best_so_far()
        assert math.isnan(traj[0]) and math.isnan(traj[1])
        assert traj[2] == 2.0

    def test_as_task_data(self, space):
        h = History({"t": 1}, space)
        h.extend([_ev(0.1, 2.0), _ev(0.2, 1.0)])
        data = h.as_task_data()
        assert data.n == 2 and data.task == {"t": 1}

    def test_serialization_roundtrip(self, space):
        h = History({"t": 1}, space)
        h.extend([_ev(0.1, 2.0), _ev(0.2, None)])
        clone = History.from_dict(h.to_dict())
        assert len(clone) == 2
        assert clone.n_failures == 1
        assert clone.task == {"t": 1}

    def test_configs_include_failures(self, space):
        h = History({"t": 1}, space)
        h.extend([_ev(0.1, 1.0), _ev(0.2, None)])
        assert len(h.configs()) == 2


class TestTaskData:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            TaskData({"t": 1}, np.zeros((3, 2)), np.zeros(2))

    def test_best(self):
        d = TaskData({"t": 1}, np.array([[0.1], [0.2]]), np.array([3.0, 1.0]))
        x, y = d.best()
        assert y == 1.0 and x[0] == pytest.approx(0.2)

    def test_best_empty_raises(self):
        d = TaskData({"t": 1}, np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValueError):
            d.best()

    def test_subsample_keeps_best(self, rng):
        X = np.linspace(0, 1, 100)[:, None]
        y = np.arange(100.0)
        y[42] = -5.0
        d = TaskData({"t": 1}, X, y)
        sub = d.subsample(10, rng)
        assert sub.n == 10
        assert -5.0 in sub.y

    def test_subsample_noop_when_small(self, rng):
        d = TaskData({"t": 1}, np.zeros((5, 1)), np.arange(5.0))
        assert d.subsample(10, rng) is d

    def test_1d_x_promoted_to_column(self):
        d = TaskData({"t": 1}, np.array([0.1, 0.2, 0.3]), np.array([1.0, 2.0, 3.0]))
        assert d.X.shape == (3, 1)
        assert d.dim == 1 and d.n == 3
