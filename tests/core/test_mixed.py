"""Tests for the mixed-variable (Gower/Hamming) kernel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CategoricalParameter,
    GaussianProcess,
    IntegerParameter,
    RealParameter,
    Space,
)
from repro.core.mixed import MixedKernel, mixed_kernel_for_space


@pytest.fixture
def space():
    return Space(
        [
            RealParameter("x", 0.0, 1.0),
            CategoricalParameter("mode", ["a", "b", "c", "d"]),
            IntegerParameter("k", 0, 8),
        ]
    )


class TestConstruction:
    def test_flag_count_checked(self):
        with pytest.raises(ValueError):
            MixedKernel(3, [True, False])

    def test_choice_count_checked(self):
        with pytest.raises(ValueError):
            MixedKernel(2, [True, False], n_choices=[4])
        with pytest.raises(ValueError):
            MixedKernel(2, [True, False], n_choices=[0, 1])

    def test_switch_weight_validation(self):
        with pytest.raises(ValueError):
            MixedKernel(2, [True, False], n_choices=[3, 1], switch_weights=[-1.0])

    def test_for_space_detects_types(self, space):
        k = mixed_kernel_for_space(space)
        assert k.categorical == [False, True, False]
        assert k.n_choices.tolist() == [1, 4, 1]

    def test_n_params(self, space):
        k = mixed_kernel_for_space(space)
        # variance + 2 numeric lengthscales + 1 switch weight
        assert k.n_params == 4


class TestKernelProperties:
    def test_psd(self, space, rng):
        k = mixed_kernel_for_space(space)
        U = rng.random((25, 3))
        eigs = np.linalg.eigvalsh(k(U))
        assert eigs.min() > -1e-8

    def test_symmetric(self, space, rng):
        k = mixed_kernel_for_space(space)
        U = rng.random((12, 3))
        K = k(U)
        assert np.allclose(K, K.T)

    def test_same_category_no_penalty(self, space):
        """Two points in the same categorical cell differ only through
        the numeric part."""
        k = mixed_kernel_for_space(space)
        a = space.to_unit({"x": 0.5, "mode": "b", "k": 4})
        b = space.to_unit({"x": 0.5, "mode": "b", "k": 4})
        assert k(a[None, :], b[None, :])[0, 0] == pytest.approx(k.variance)

    def test_category_switch_penalized_uniformly(self, space):
        """All distinct category pairs get the same penalty (no fake
        ordering, unlike the ordinal embedding)."""
        k = mixed_kernel_for_space(space)
        base = {"x": 0.5, "k": 4}
        ua = space.to_unit({**base, "mode": "a"})[None, :]
        ub = space.to_unit({**base, "mode": "b"})[None, :]
        ud = space.to_unit({**base, "mode": "d"})[None, :]
        k_ab = k(ua, ub)[0, 0]
        k_ad = k(ua, ud)[0, 0]
        assert k_ab == pytest.approx(k_ad)  # ordinal RBF would say a~b > a~d
        assert k_ab < k.variance

    def test_theta_roundtrip(self, space):
        k = mixed_kernel_for_space(space)
        theta = k.get_theta() + 0.3
        k.set_theta(theta)
        assert np.allclose(k.get_theta(), theta)

    def test_bounds_cover_theta(self, space):
        k = mixed_kernel_for_space(space)
        for v, (lo, hi) in zip(k.get_theta(), k.bounds()):
            assert lo <= v <= hi

    def test_clone_independent(self, space):
        k = mixed_kernel_for_space(space)
        c = k.clone()
        c.set_theta(c.get_theta() + 1.0)
        assert not np.allclose(c.get_theta(), k.get_theta())

    def test_pure_numeric_space(self, rng):
        k = MixedKernel(2, [False, False])
        U = rng.random((10, 2))
        assert k(U).shape == (10, 10)

    def test_pure_categorical_space(self, rng):
        k = MixedKernel(2, [True, True], n_choices=[3, 5])
        U = rng.random((10, 2))
        K = k(U)
        assert np.allclose(np.diag(K), k.variance)


class TestGPIntegration:
    def test_fits_category_jump_better_than_rbf(self, rng):
        """A function with a pure categorical offset: the mixed kernel
        should interpolate at least as well as the ordinal RBF."""
        space = Space(
            [
                RealParameter("x", 0.0, 1.0),
                CategoricalParameter("mode", ["a", "b", "c", "d"]),
            ]
        )
        offsets = {"a": 0.0, "b": 3.0, "c": -2.0, "d": 1.0}  # non-monotone
        configs = [space.sample(rng) for _ in range(60)]
        U = space.to_unit_array(configs)
        y = np.array(
            [np.sin(3 * c["x"]) + offsets[c["mode"]] for c in configs]
        )
        test_configs = [space.sample(rng) for _ in range(30)]
        Ut = space.to_unit_array(test_configs)
        yt = np.array(
            [np.sin(3 * c["x"]) + offsets[c["mode"]] for c in test_configs]
        )

        gp_mixed = GaussianProcess(mixed_kernel_for_space(space), seed=0)
        gp_mixed.fit(U, y)
        rms_mixed = np.sqrt(np.mean((gp_mixed.predict_mean(Ut) - yt) ** 2))

        gp_rbf = GaussianProcess(seed=0).fit(U, y)
        rms_rbf = np.sqrt(np.mean((gp_rbf.predict_mean(Ut) - yt) ** 2))

        assert rms_mixed < 0.5
        assert rms_mixed <= rms_rbf * 1.2

    def test_tuner_accepts_mixed_kernel(self, rng):
        """End-to-end: a GP with a MixedKernel drives a tuning loop."""
        from repro.apps import SuperLUDist2D
        from repro.core import History, Tuner
        from repro.hpc import cori_haswell

        app = SuperLUDist2D(cori_haswell(2))
        problem = app.make_problem(run=0)
        tuner = Tuner(problem)
        # patch the GP factory to use the mixed kernel
        space = problem.parameter_space

        def model_with_mixed(hist: History, rng_):
            X, y = hist.arrays()
            if X.shape[0] == 0:
                return None
            gp = GaussianProcess(mixed_kernel_for_space(space), max_fun=40, seed=0)
            gp.fit(X, y)
            return gp.predict

        tuner._model = model_with_mixed
        res = tuner.tune({"matrix": "Si5H12"}, 6, seed=0)
        assert res.n_evaluations == 6
        assert res.history.n_successes > 0
