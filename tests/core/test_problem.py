"""Tests for repro.core.problem: tuning problems and evaluations."""

from __future__ import annotations

import math

import pytest

from repro.core import (
    Evaluation,
    IntegerParameter,
    OutputParameter,
    RealParameter,
    Space,
    SpaceError,
    TuningProblem,
    task_key,
)


def _mk(objective, constraint=None, name="p"):
    return TuningProblem(
        name=name,
        input_space=Space([IntegerParameter("t", 0, 10)]),
        parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
        output_space=Space([OutputParameter("y")]),
        objective=objective,
        constraint=constraint,
    )


class TestTaskKey:
    def test_order_independent(self):
        assert task_key({"a": 1, "b": 2}) == task_key({"b": 2, "a": 1})

    def test_distinguishes_values(self):
        assert task_key({"a": 1}) != task_key({"a": 2})

    def test_hashable(self):
        {task_key({"a": 1}): "ok"}


class TestEvaluation:
    def test_failed_flags(self):
        assert Evaluation({}, {}, None).failed
        assert Evaluation({}, {}, float("nan")).failed
        assert Evaluation({}, {}, float("inf")).failed
        assert not Evaluation({}, {}, 1.0).failed

    def test_roundtrip(self):
        ev = Evaluation({"t": 1}, {"x": 0.5}, 2.5, {"note": "hi"})
        clone = Evaluation.from_dict(ev.to_dict())
        assert clone.task == ev.task and clone.config == ev.config
        assert clone.output == ev.output and clone.metadata == ev.metadata

    def test_roundtrip_failure(self):
        ev = Evaluation({"t": 1}, {"x": 0.5}, None)
        assert Evaluation.from_dict(ev.to_dict()).failed


class TestTuningProblem:
    def test_requires_name(self):
        with pytest.raises(SpaceError):
            _mk(lambda t, c: 1.0, name="")

    def test_rejects_overlapping_spaces(self):
        with pytest.raises(SpaceError):
            TuningProblem(
                name="p",
                input_space=Space([RealParameter("x", 0, 1)]),
                parameter_space=Space([RealParameter("x", 0, 1)]),
                output_space=Space([OutputParameter("y")]),
                objective=lambda t, c: 1.0,
            )

    def test_evaluate_success(self):
        p = _mk(lambda t, c: c["x"] * 2)
        ev = p.evaluate({"t": 1}, {"x": 0.25})
        assert not ev.failed and ev.output == pytest.approx(0.5)

    def test_evaluate_validates_task_and_config(self):
        p = _mk(lambda t, c: 1.0)
        with pytest.raises(SpaceError):
            p.evaluate({"t": 99}, {"x": 0.5})
        with pytest.raises(SpaceError):
            p.evaluate({"t": 1}, {"x": 5.0})

    def test_objective_exception_becomes_failure(self):
        def boom(t, c):
            raise RuntimeError("crash")

        ev = _mk(boom).evaluate({"t": 1}, {"x": 0.5})
        assert ev.failed and "crash" in ev.metadata["failure"]

    def test_none_output_is_failure(self):
        ev = _mk(lambda t, c: None).evaluate({"t": 1}, {"x": 0.5})
        assert ev.failed and ev.metadata["failure"] == "non-finite"

    def test_nan_output_is_failure(self):
        ev = _mk(lambda t, c: math.nan).evaluate({"t": 1}, {"x": 0.5})
        assert ev.failed

    def test_constraint_blocks_evaluation(self):
        calls = []

        def obj(t, c):
            calls.append(c)
            return 1.0

        p = _mk(obj, constraint=lambda t, c: c["x"] < 0.5)
        ev = p.evaluate({"t": 1}, {"x": 0.9})
        assert ev.failed and ev.metadata["failure"] == "constraint"
        assert not calls  # objective never ran

    def test_feasible_defaults_true(self):
        assert _mk(lambda t, c: 1.0).feasible({"t": 1}, {"x": 0.5})

    def test_with_parameter_space(self):
        p = _mk(lambda t, c: c["x"])
        reduced = p.with_parameter_space(p.parameter_space.fix({}))
        assert reduced.name == p.name
        assert reduced.objective is p.objective

    def test_describe_blocks(self):
        desc = _mk(lambda t, c: 1.0).describe()
        assert {e["name"] for e in desc["input_space"]} == {"t"}
        assert {e["name"] for e in desc["parameter_space"]} == {"x"}
        assert {e["name"] for e in desc["output_space"]} == {"y"}
