"""Tests for repro.core.kernels: PSD-ness, gradients, hyperparameters."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RBF, Matern32, Matern52, kernel_from_name
from repro.core.kernels import sq_dists

ALL_KERNELS = [RBF, Matern52, Matern32]


class TestSqDists:
    def test_matches_bruteforce(self, rng):
        X = rng.random((10, 3))
        Y = rng.random((7, 3))
        ls = np.array([0.5, 1.0, 2.0])
        D = sq_dists(X, Y, ls)
        for i in range(10):
            for j in range(7):
                expect = np.sum(((X[i] - Y[j]) / ls) ** 2)
                assert D[i, j] == pytest.approx(expect, abs=1e-10)

    def test_nonnegative(self, rng):
        X = rng.random((50, 4))
        assert np.all(sq_dists(X, X, np.ones(4)) >= 0)


@pytest.mark.parametrize("cls", ALL_KERNELS)
class TestKernelCommon:
    def test_symmetry(self, cls, rng):
        k = cls(3)
        X = rng.random((12, 3))
        K = k(X)
        assert np.allclose(K, K.T)

    def test_diagonal_is_variance(self, cls, rng):
        k = cls(2, variance=2.5)
        X = rng.random((6, 2))
        assert np.allclose(np.diag(k(X)), 2.5)
        assert np.allclose(k.diag(X), 2.5)

    def test_psd(self, cls, rng):
        k = cls(3)
        X = rng.random((20, 3))
        eigs = np.linalg.eigvalsh(k(X))
        assert eigs.min() > -1e-8

    def test_decay_with_distance(self, cls):
        k = cls(1, lengthscales=[0.3])
        near = k(np.array([[0.0]]), np.array([[0.1]]))[0, 0]
        far = k(np.array([[0.0]]), np.array([[0.9]]))[0, 0]
        assert near > far

    def test_theta_roundtrip(self, cls):
        k = cls(3, variance=2.0, lengthscales=[0.1, 0.2, 0.3])
        theta = k.get_theta()
        k2 = cls(3)
        k2.set_theta(theta)
        assert k2.variance == pytest.approx(2.0)
        assert np.allclose(k2.lengthscales, [0.1, 0.2, 0.3])

    def test_theta_shape_check(self, cls):
        with pytest.raises(ValueError):
            cls(3).set_theta(np.zeros(2))

    def test_bounds_cover_theta(self, cls):
        k = cls(4)
        bounds = k.bounds()
        assert len(bounds) == k.n_params
        theta = k.get_theta()
        for v, (lo, hi) in zip(theta, bounds):
            assert lo <= v <= hi

    def test_invalid_params(self, cls):
        with pytest.raises(ValueError):
            cls(0)
        with pytest.raises(ValueError):
            cls(2, variance=-1.0)
        with pytest.raises(ValueError):
            cls(2, lengthscales=[0.5])

    def test_clone_independent(self, cls):
        k = cls(2)
        c = k.clone()
        c.set_theta(c.get_theta() + 1.0)
        assert not np.allclose(c.get_theta(), k.get_theta())


class TestRBFGradient:
    def test_gradient_matches_finite_difference(self, rng):
        k = RBF(3, variance=1.7, lengthscales=[0.2, 0.5, 1.1])
        X = rng.random((8, 3))
        G = k.gradient(X)
        theta0 = k.get_theta()
        eps = 1e-6
        for i in range(k.n_params):
            th = theta0.copy()
            th[i] += eps
            k.set_theta(th)
            K_plus = k(X)
            th[i] -= 2 * eps
            k.set_theta(th)
            K_minus = k(X)
            k.set_theta(theta0)
            fd = (K_plus - K_minus) / (2 * eps)
            assert np.allclose(G[i], fd, atol=1e-5), f"param {i}"

    def test_matern_has_no_gradient(self):
        assert not Matern52(2).has_gradient
        with pytest.raises(NotImplementedError):
            Matern52(2).gradient(np.zeros((2, 2)))


class TestRegistry:
    def test_lookup(self):
        assert isinstance(kernel_from_name("rbf", 2), RBF)
        assert isinstance(kernel_from_name("matern52", 2), Matern52)
        assert isinstance(kernel_from_name("matern32", 2), Matern32)

    def test_unknown(self):
        with pytest.raises(ValueError):
            kernel_from_name("periodic", 2)


class TestRBFGradientVectorized:
    def test_matches_naive_per_dimension_loop(self, rng):
        """The broadcast gradient equals the obvious one-dim-at-a-time form."""
        k = RBF(4, variance=2.3, lengthscales=[0.1, 0.4, 0.9, 2.0])
        X = rng.random((20, 4))
        G = k.gradient(X)
        K = k(X)
        assert np.allclose(G[0], K)
        for j in range(4):
            d = X[:, j][:, None] - X[:, j][None, :]
            naive = K * d * d / k.lengthscales[j] ** 2
            assert np.allclose(G[1 + j], naive), f"dim {j}"

    def test_no_cross_dimension_leakage(self, rng):
        """Points varying only along dim 0 give zero gradient for other dims."""
        k = RBF(3)
        X = np.zeros((6, 3))
        X[:, 0] = np.linspace(0.0, 1.0, 6)
        G = k.gradient(X)
        assert np.any(G[1] != 0.0)
        assert np.allclose(G[2], 0.0) and np.allclose(G[3], 0.0)
