"""Tests for the surrogate="auto" policy across the tuner and TLA layers.

The policy's core contract: below ``n_dense_max`` the loop is
bit-identical to the historical dense-GP tuner (same rng consumption,
same proposals); above it the sparse surrogate takes over transparently.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import Tuner, TunerOptions
from repro.core.acquisition import ExpectedImprovement
from repro.core.history import History, TaskData
from repro.core.optimizer import propose_batch
from repro.core.problem import Evaluation
from repro.core.sparse import PartitionedGP, SparseGP
from repro.tla.base import TLAStrategy


class TestTunerPolicy:
    def test_auto_is_bit_identical_to_dense_below_threshold(self, quadratic_problem):
        """A Fig. 3-style small-budget run: the auto policy must replay
        the dense path exactly (proposals, history, incumbents)."""
        auto = Tuner(
            quadratic_problem, TunerOptions(surrogate="auto")
        ).tune({"t": 1}, 12, seed=42)
        dense = Tuner(
            quadratic_problem, TunerOptions(surrogate="dense")
        ).tune({"t": 1}, 12, seed=42)
        assert auto.history.configs() == dense.history.configs()
        assert auto.best_so_far() == dense.best_so_far()
        assert "sparse_fits" not in auto.perf["counters"]

    def test_auto_switches_to_sparse_above_threshold(self, quadratic_problem):
        opts = TunerOptions(surrogate="auto", n_dense_max=5, n_inducing=8)
        tuner = Tuner(quadratic_problem, opts)
        res = tuner.tune({"t": 1}, 10, seed=0)
        assert tuner._surrogate_kind == "sparse"
        assert isinstance(tuner._gp, SparseGP)
        assert res.perf["counters"]["sparse_fits"] >= 1
        assert res.n_evaluations == 10

    def test_auto_regret_within_noise_of_dense(self, quadratic_problem):
        """Sparse-mode tuning still finds the quadratic optimum."""
        opts = TunerOptions(surrogate="auto", n_dense_max=4, n_inducing=10)
        res = Tuner(quadratic_problem, opts).tune({"t": 1}, 20, seed=0)
        assert res.best_output == pytest.approx(0.1, abs=0.02)

    def test_explicit_partitioned_runs(self, quadratic_problem):
        opts = TunerOptions(surrogate="partitioned", leaf_size=6)
        tuner = Tuner(quadratic_problem, opts)
        res = tuner.tune({"t": 1}, 12, seed=0)
        assert isinstance(tuner._gp, PartitionedGP)
        assert res.perf["counters"]["partition_leaf_fits"] >= 1
        assert res.best_output == pytest.approx(0.1, abs=0.05)

    def test_mixed_kernel_stays_dense(self, quadratic_problem):
        opts = TunerOptions(surrogate="auto", kernel="mixed", n_dense_max=2)
        tuner = Tuner(quadratic_problem, opts)
        tuner.tune({"t": 1}, 6, seed=0)
        assert tuner._surrogate_kind == "dense"

    def test_crossing_threshold_mid_run_rebuilds(self, quadratic_problem):
        """Seed the loop with a warm history that crosses n_dense_max
        mid-run; the surrogate kind flips without disturbing the budget."""
        opts = TunerOptions(surrogate="auto", n_dense_max=8, n_inducing=6)
        tuner = Tuner(quadratic_problem, opts)
        hist = History({"t": 1}, quadratic_problem.parameter_space)
        rng = np.random.default_rng(0)
        for _ in range(6):
            cfg = quadratic_problem.parameter_space.sample(rng)
            hist.append(
                Evaluation(
                    task={"t": 1},
                    config=cfg,
                    output=(cfg["x"] - 0.37) ** 2 + 0.1,
                )
            )
        res = tuner.tune({"t": 1}, 6, seed=1, history=hist)
        assert tuner._surrogate_kind == "sparse"
        assert res.n_evaluations == 12


class TestBatchProposerGuard:
    def test_partitioned_gp_takes_pending_penalty_fallback(self):
        """PartitionedGP has no _state snapshot; propose_batch must not
        crash on it and still produce a batch."""
        from repro.core.space import RealParameter, Space

        space = Space([RealParameter("x", 0.0, 1.0), RealParameter("z", 0.0, 1.0)])
        rng = np.random.default_rng(0)
        X = rng.random((60, 2))
        y = (X[:, 0] - 0.4) ** 2 + (X[:, 1] - 0.6) ** 2
        pg = PartitionedGP("rbf", leaf_size=30, seed=0).fit(X, y)
        batch = propose_batch(
            pg.predict,
            space,
            ExpectedImprovement(),
            np.random.default_rng(1),
            q=3,
            gp=pg,
            X_obs=X,
            y_obs=y,
        )
        assert len(batch) == 3
        assert pg.n_train == 60  # no fantasy updates leaked in

    def test_sparse_gp_supports_fantasization(self):
        from repro.core.space import RealParameter, Space

        space = Space([RealParameter("x", 0.0, 1.0), RealParameter("z", 0.0, 1.0)])
        rng = np.random.default_rng(0)
        X = rng.random((50, 2))
        y = (X[:, 0] - 0.4) ** 2 + (X[:, 1] - 0.6) ** 2
        sp = SparseGP("rbf", n_inducing=15, seed=0).fit(X, y)
        batch = propose_batch(
            sp.predict,
            space,
            ExpectedImprovement(),
            np.random.default_rng(1),
            q=3,
            gp=sp,
            X_obs=X,
            y_obs=y,
        )
        assert len(batch) == 3
        assert sp.n_train == 50  # fantasies restored


class _MinimalStrategy(TLAStrategy):
    name = "minimal"

    def model(self, target, rng):  # pragma: no cover - unused
        gp = self._target_gp(target, rng)
        return None if gp is None else gp.predict


class TestTLATargetPolicy:
    def _target(self, n, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.random((n, 2))
        y = np.sin(3 * X[:, 0]) + X[:, 1]
        return TaskData({"t": 0}, X, y, "tgt")

    def test_dense_below_threshold(self):
        strat = _MinimalStrategy(n_dense_max=100)
        gp = strat._target_gp(self._target(30), np.random.default_rng(0))
        from repro.core.gp import GaussianProcess

        assert isinstance(gp, GaussianProcess)

    def test_sparse_above_threshold(self):
        strat = _MinimalStrategy(n_dense_max=40, n_inducing=12)
        gp = strat._target_gp(self._target(80), np.random.default_rng(0))
        assert isinstance(gp, SparseGP)
        mu, sd = gp.predict(np.random.default_rng(1).random((5, 2)))
        assert mu.shape == (5,) and np.all(sd > 0)

    def test_crossing_threshold_rebuilds_sparse(self):
        strat = _MinimalStrategy(n_dense_max=50, n_inducing=10, refit_every=5)
        rng = np.random.default_rng(0)
        gp_small = strat._target_gp(self._target(40), rng)
        from repro.core.gp import GaussianProcess

        assert isinstance(gp_small, GaussianProcess)
        gp_big = strat._target_gp(self._target(60), rng)
        assert isinstance(gp_big, SparseGP)
