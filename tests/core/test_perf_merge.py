"""Tests for cross-process perf aggregation (snapshot -> merge)."""

from __future__ import annotations

import pytest

from repro.core import perf
from repro.core.perf import PerfStats


def make_snapshot() -> dict:
    s = PerfStats()
    s.incr("gp_fits", 3)
    s.add_time("fit", 0.5)
    s.add_time("fit", 0.5)
    s.gauge("depth", 2.0)
    s.gauge("depth", 4.0)
    return s.snapshot()


class TestStatsMerge:
    def test_counters_add(self):
        s = PerfStats()
        s.incr("gp_fits", 1)
        s.merge(make_snapshot())
        assert s.counters["gp_fits"] == 4

    def test_timers_add_totals_and_counts(self):
        s = PerfStats()
        s.add_time("fit", 1.0)
        s.merge(make_snapshot())
        t = s.snapshot()["timers"]["fit"]
        assert t["total_s"] == pytest.approx(2.0)
        assert t["count"] == 3

    def test_gauges_accumulate_sample_statistics(self):
        s = PerfStats()
        s.gauge("depth", 10.0)
        s.merge(make_snapshot())  # samples 2.0, 4.0 -> last 4, max 4
        g = s.snapshot()["gauges"]["depth"]
        assert g["last"] == 4.0  # incoming snapshot is "newer"
        assert g["max"] == 10.0
        assert g["mean"] == pytest.approx((10.0 + 2.0 + 4.0) / 3)
        assert g["count"] == 3

    def test_merge_into_empty_collector(self):
        s = PerfStats()
        s.merge(make_snapshot())
        snap = s.snapshot()
        assert snap["counters"] == {"gp_fits": 3}
        assert snap["timers"]["fit"]["count"] == 2
        assert snap["gauges"]["depth"]["count"] == 2

    def test_merge_round_trip_is_lossless(self):
        """snapshot -> merge into a fresh collector -> identical snapshot."""
        snap = make_snapshot()
        s = PerfStats()
        s.merge(snap)
        assert s.snapshot() == snap

    def test_merge_empty_snapshot_is_noop(self):
        s = PerfStats()
        s.incr("hits")
        before = s.snapshot()
        s.merge({})
        assert s.snapshot() == before

    def test_gauge_snapshot_without_count_defaults_to_one_sample(self):
        s = PerfStats()
        s.merge({"gauges": {"old": {"last": 2.0, "max": 3.0, "mean": 2.5}}})
        g = s.snapshot()["gauges"]["old"]
        assert g["count"] == 1
        assert g["mean"] == 2.5


class TestModuleLevelMerge:
    def test_merge_reaches_all_active_collectors(self):
        with perf.collect() as outer:
            with perf.collect() as inner:
                perf.merge(make_snapshot())
            assert inner.snapshot()["counters"]["gp_fits"] == 3
        assert outer.snapshot()["counters"]["gp_fits"] == 3

    def test_module_snapshot_is_innermost(self):
        with perf.collect():
            with perf.collect():
                perf.incr("x")
                assert perf.snapshot()["counters"]["x"] == 1

    def test_subprocess_pattern(self):
        """The fabric/pool pattern: child collects, parent merges."""

        def child_work() -> dict:
            # what a forked worker runs under its own collector
            with perf.collect() as stats:
                perf.incr("evaluations")
                with perf.timer("evaluate"):
                    pass
            return stats.snapshot()

        snap = child_work()
        with perf.collect() as parent:
            perf.merge(snap)
        got = parent.snapshot()
        assert got["counters"]["evaluations"] == 1
        assert got["timers"]["evaluate"]["count"] == 1
