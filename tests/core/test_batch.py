"""Tests for batch proposal: constant-liar / kriging-believer fantasies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExpectedImprovement,
    GaussianProcess,
    PendingPenalty,
    RBF,
    RealParameter,
    Space,
)
from repro.core.optimizer import LIE_STRATEGIES, _lie_value, propose_batch


@pytest.fixture
def space_1d() -> Space:
    return Space([RealParameter("x", 0.0, 1.0)])


@pytest.fixture
def fitted_gp():
    rng = np.random.default_rng(0)
    X = rng.random((12, 1))
    y = (X[:, 0] - 0.37) ** 2 + 0.1
    gp = GaussianProcess(RBF(1), optimize=False)
    gp.fit(X, y)
    return gp, X, y


class TestLieValues:
    def test_constant_liar_values(self):
        y = np.array([1.0, 3.0, 2.0])
        assert _lie_value("cl-min", None, None, y) == 1.0
        assert _lie_value("cl-mean", None, None, y) == 2.0
        assert _lie_value("cl-max", None, None, y) == 3.0

    def test_kriging_believer_uses_posterior_mean(self, fitted_gp):
        gp, X, y = fitted_gp
        u = np.array([0.4])
        lie = _lie_value("kb", gp.predict, u, y)
        mean, _ = gp.predict(u[None, :])
        assert lie == pytest.approx(float(mean[0]))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            _lie_value("wat", None, None, np.ones(2))

    def test_registry_is_complete(self):
        assert set(LIE_STRATEGIES) == {"cl-min", "cl-mean", "cl-max", "kb"}


class TestProposeBatchGP:
    def test_batch_size_and_distinct(self, fitted_gp, space_1d):
        gp, X, y = fitted_gp
        rng = np.random.default_rng(1)
        batch = propose_batch(
            gp.predict, space_1d, ExpectedImprovement(), rng,
            q=4, gp=gp, X_obs=X, y_obs=y,
        )
        assert len(batch) == 4
        xs = [round(c["x"], 10) for c in batch]
        assert len(set(xs)) == 4

    @pytest.mark.parametrize("lie", LIE_STRATEGIES)
    def test_all_lie_strategies_work(self, fitted_gp, space_1d, lie):
        gp, X, y = fitted_gp
        rng = np.random.default_rng(2)
        batch = propose_batch(
            gp.predict, space_1d, ExpectedImprovement(), rng,
            q=3, gp=gp, X_obs=X, y_obs=y, lie=lie,
        )
        assert len(batch) == 3

    def test_gp_state_restored(self, fitted_gp, space_1d):
        """Fantasies must not leak into the caller's surrogate."""
        gp, X, y = fitted_gp
        n_before = gp.n_train
        grid = np.linspace(0, 1, 20)[:, None]
        mean_before, std_before = gp.predict(grid)
        propose_batch(
            gp.predict, space_1d, ExpectedImprovement(),
            np.random.default_rng(3), q=5, gp=gp, X_obs=X, y_obs=y,
        )
        assert gp.n_train == n_before
        mean_after, std_after = gp.predict(grid)
        np.testing.assert_allclose(mean_after, mean_before)
        np.testing.assert_allclose(std_after, std_before)

    def test_pending_points_not_reproposed(self, fitted_gp, space_1d):
        gp, X, y = fitted_gp
        rng = np.random.default_rng(4)
        # first find where a q=1 proposal would land
        solo = propose_batch(
            gp.predict, space_1d, ExpectedImprovement(),
            np.random.default_rng(4), q=1, gp=gp, X_obs=X, y_obs=y,
        )[0]
        pending_u = space_1d.to_unit_array([solo])
        batch = propose_batch(
            gp.predict, space_1d, ExpectedImprovement(), rng,
            q=2, gp=gp, X_obs=X, y_obs=y,
            X_pending=pending_u, evaluated=[solo],
        )
        # with the argmax fantasy-blocked, new picks land elsewhere
        for cfg in batch:
            assert abs(cfg["x"] - solo["x"]) > 1e-6

    def test_invalid_q(self, fitted_gp, space_1d):
        gp, X, y = fitted_gp
        with pytest.raises(ValueError):
            propose_batch(
                gp.predict, space_1d, ExpectedImprovement(),
                np.random.default_rng(0), q=0, gp=gp, X_obs=X, y_obs=y,
            )

    def test_respects_feasibility_predicate(self, fitted_gp, space_1d):
        gp, X, y = fitted_gp
        batch = propose_batch(
            gp.predict, space_1d, ExpectedImprovement(),
            np.random.default_rng(5), q=3, gp=gp, X_obs=X, y_obs=y,
            feasible=lambda cfg: cfg["x"] < 0.5,
        )
        assert all(c["x"] < 0.5 for c in batch)


class TestProposeBatchFallback:
    """Without a GP, PendingPenalty keeps batches diverse."""

    def test_generic_predict_diverse_batch(self, space_1d):
        def predict(U):
            m = (U[:, 0] - 0.37) ** 2 + 0.1
            return m, np.full(U.shape[0], 0.05)

        batch = propose_batch(
            predict, space_1d, ExpectedImprovement(),
            np.random.default_rng(6), q=4,
            X_obs=np.array([[0.2], [0.8]]), y_obs=np.array([0.13, 0.28]),
        )
        xs = sorted(c["x"] for c in batch)
        assert len(batch) == 4
        assert all(b - a > 1e-4 for a, b in zip(xs, xs[1:]))


class TestPendingPenalty:
    def test_identity_without_pending(self):
        base = ExpectedImprovement()
        acq = PendingPenalty(base, None)

        def predict(U):
            return U[:, 0], np.ones(U.shape[0])

        U = np.random.default_rng(0).random((16, 1))
        np.testing.assert_allclose(acq(predict, U, 1.0), base(predict, U, 1.0))

    def test_zero_at_pending_point(self):
        acq = PendingPenalty(ExpectedImprovement(), np.array([[0.5]]), radius=0.2)

        def predict(U):
            return np.zeros(U.shape[0]), np.ones(U.shape[0])

        scores = acq(predict, np.array([[0.5], [0.9]]), 1.0)
        assert scores[0] == 0.0
        assert scores[1] > 0.0

    def test_invalid_radius(self):
        with pytest.raises(ValueError):
            PendingPenalty(ExpectedImprovement(), None, radius=0.0)
