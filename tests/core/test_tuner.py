"""Tests for repro.core.tuner: the NoTLA BO loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IntegerParameter,
    OutputParameter,
    RealParameter,
    Space,
    Tuner,
    TunerOptions,
)
from repro.core.problem import TuningProblem


class TestTunerBasics:
    def test_budget_respected(self, quadratic_problem):
        res = Tuner(quadratic_problem).tune({"t": 1}, 7, seed=0)
        assert res.n_evaluations == 7

    def test_finds_quadratic_optimum(self, quadratic_problem):
        res = Tuner(quadratic_problem).tune({"t": 1}, 20, seed=0)
        assert res.best_output == pytest.approx(0.1, abs=0.01)
        assert res.best_config["x"] == pytest.approx(0.37, abs=0.1)

    def test_beats_random_sampling(self, quadratic_problem, rng):
        res = Tuner(quadratic_problem).tune({"t": 1}, 15, seed=3)
        random_best = min(
            (quadratic_problem.parameter_space.sample(rng)["x"] - 0.37) ** 2 + 0.1
            for _ in range(15)
        )
        assert res.best_output <= random_best * 1.5

    def test_reproducible_with_seed(self, quadratic_problem):
        a = Tuner(quadratic_problem).tune({"t": 1}, 8, seed=42)
        b = Tuner(quadratic_problem).tune({"t": 1}, 8, seed=42)
        assert a.best_so_far() == b.best_so_far()

    def test_different_seeds_differ(self, quadratic_problem):
        a = Tuner(quadratic_problem).tune({"t": 1}, 6, seed=1)
        b = Tuner(quadratic_problem).tune({"t": 1}, 6, seed=2)
        assert a.history.configs() != b.history.configs()

    def test_invalid_budget(self, quadratic_problem):
        with pytest.raises(ValueError):
            Tuner(quadratic_problem).tune({"t": 1}, 0)

    def test_validates_task(self, quadratic_problem):
        with pytest.raises(Exception):
            Tuner(quadratic_problem).tune({"t": 99}, 3)

    def test_no_duplicate_configs_on_continuous_space(self, quadratic_problem):
        res = Tuner(quadratic_problem).tune({"t": 1}, 12, seed=0)
        xs = [round(c["x"], 12) for c in res.history.configs()]
        assert len(set(xs)) == len(xs)

    def test_callbacks_fire_per_evaluation(self, quadratic_problem):
        seen = []
        tuner = Tuner(quadratic_problem, callbacks=[seen.append])
        tuner.tune({"t": 1}, 5, seed=0)
        assert len(seen) == 5

    def test_continue_from_history(self, quadratic_problem):
        t = Tuner(quadratic_problem)
        first = t.tune({"t": 1}, 5, seed=0)
        second = t.tune({"t": 1}, 5, seed=1, history=first.history)
        assert second.n_evaluations == 10

    def test_continuation_feeds_surrogate_without_consuming_budget(
        self, quadratic_problem
    ):
        """Prior evaluations skip the random phase but cost no budget.

        Regression for the ``tune(history=...)`` contract: the second
        run must (a) add exactly ``n_samples`` new evaluations on top of
        the carried-over ones, and (b) start model-guided immediately —
        the carried history already satisfies ``n_initial``, so no new
        random-design evaluations happen.
        """
        opts = TunerOptions(n_initial=3)
        first = Tuner(quadratic_problem, opts).tune({"t": 1}, 5, seed=0)
        assert first.history.n_successes >= opts.n_initial
        carried = len(first.history)

        t2 = Tuner(quadratic_problem, opts)
        second = t2.tune({"t": 1}, 4, seed=1, history=first.history)
        # (a) budget: exactly 4 new evaluations appended in place
        assert second.history is first.history
        assert second.n_evaluations == carried + 4
        # (b) every continuation iteration fit the surrogate — none fell
        # back to the initial random design
        assert second.perf["counters"].get("gp_fits", 0) >= 1
        n_modeled = second.perf["counters"].get("gp_fits", 0) + second.perf[
            "counters"
        ].get("gp_model_reuses", 0) + second.perf["counters"].get(
            "gp_incremental_updates", 0
        )
        assert n_modeled >= 4

    def test_continuation_uses_prior_best(self, quadratic_problem):
        """The continued run's best-so-far starts from the prior best."""
        t = Tuner(quadratic_problem)
        first = t.tune({"t": 1}, 6, seed=0)
        prior_best = first.best_output
        second = t.tune({"t": 1}, 3, seed=1, history=first.history)
        assert second.best_output <= prior_best

    def test_result_summary(self, quadratic_problem):
        res = Tuner(quadratic_problem).tune({"t": 1}, 5, seed=0)
        s = res.summary()
        assert s["problem"] == "quadratic"
        assert s["tuner"] == "NoTLA"
        assert s["n_evaluations"] == 5

    def test_summary_carries_perf_stats(self, quadratic_problem):
        res = Tuner(quadratic_problem).tune({"t": 1}, 5, seed=0)
        perf = res.summary()["perf"]
        assert perf["counters"].get("gp_fits", 0) >= 1
        assert "iteration" in perf["timers"]


class TestFailureHandling:
    @pytest.fixture
    def flaky_problem(self):
        """Objective fails whenever x > 0.6 (like NIMROD's OOM region)."""

        def obj(task, cfg):
            if cfg["x"] > 0.6:
                return None
            return (cfg["x"] - 0.37) ** 2 + 0.1

        return TuningProblem(
            name="flaky",
            input_space=Space([IntegerParameter("t", 0, 10)]),
            parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
            output_space=Space([OutputParameter("y")]),
            objective=obj,
        )

    def test_failures_consume_budget(self, flaky_problem):
        res = Tuner(flaky_problem).tune({"t": 1}, 10, seed=0)
        assert res.n_evaluations == 10
        assert res.history.n_failures + res.history.n_successes == 10

    def test_still_finds_optimum_despite_failures(self, flaky_problem):
        res = Tuner(flaky_problem).tune({"t": 1}, 20, seed=0)
        assert res.best_output == pytest.approx(0.1, abs=0.02)

    def test_all_failures_no_crash(self):
        dead = TuningProblem(
            name="dead",
            input_space=Space([IntegerParameter("t", 0, 10)]),
            parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
            output_space=Space([OutputParameter("y")]),
            objective=lambda t, c: None,
        )
        res = Tuner(dead).tune({"t": 1}, 6, seed=0)
        assert res.history.n_failures == 6


class TestOptions:
    def test_refit_every_reduces_optimizations(self, quadratic_problem, monkeypatch):
        from repro.core import gp as gp_mod

        count = {"n": 0}
        orig = gp_mod.GaussianProcess._optimize_hyperparameters

        def counting(self, X, ys):
            count["n"] += 1
            return orig(self, X, ys)

        monkeypatch.setattr(
            gp_mod.GaussianProcess, "_optimize_hyperparameters", counting
        )
        opts = TunerOptions(n_initial=2, refit_every=3)
        Tuner(quadratic_problem, opts).tune({"t": 1}, 10, seed=0)
        refit_all = count["n"]
        assert refit_all <= 4  # 8 modeling iterations / 3 + first

    def test_incremental_updates_between_refits(self, quadratic_problem):
        opts = TunerOptions(n_initial=2, refit_every=3, incremental=True)
        res = Tuner(quadratic_problem, opts).tune({"t": 1}, 10, seed=0)
        counters = res.perf["counters"]
        assert counters.get("gp_incremental_updates", 0) >= 1

    def test_incremental_matches_full_refit_trajectory(self, quadratic_problem):
        # the surrogates agree to round-off; the proposal argmax can
        # amplify that, so the trajectories match tightly but not bitwise
        trajs = {}
        for incremental in (False, True):
            opts = TunerOptions(n_initial=2, refit_every=3, incremental=incremental)
            res = Tuner(quadratic_problem, opts).tune({"t": 1}, 10, seed=0)
            trajs[incremental] = res.best_so_far()
        np.testing.assert_allclose(trajs[True], trajs[False], atol=1e-6)

    def test_sampler_option(self, quadratic_problem):
        opts = TunerOptions(n_initial=4, sampler="lhs")
        res = Tuner(quadratic_problem, opts).tune({"t": 1}, 6, seed=0)
        assert res.n_evaluations == 6

    def test_kernel_option(self, quadratic_problem):
        opts = TunerOptions(kernel="matern52")
        res = Tuner(quadratic_problem, opts).tune({"t": 1}, 6, seed=0)
        assert res.n_evaluations == 6
