"""Tests for repro.core.space: parameters, spaces, unit-cube mapping."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.space import (
    CategoricalParameter,
    FixedSpace,
    IntegerParameter,
    OutputParameter,
    Parameter,
    RealParameter,
    Space,
    SpaceError,
)


# ---------------------------------------------------------------------------
# RealParameter
# ---------------------------------------------------------------------------
class TestRealParameter:
    def test_bounds_validation(self):
        with pytest.raises(SpaceError):
            RealParameter("x", 1.0, 1.0)
        with pytest.raises(SpaceError):
            RealParameter("x", 2.0, 1.0)
        with pytest.raises(SpaceError):
            RealParameter("x", 0.0, float("inf"))

    def test_name_validation(self):
        with pytest.raises(SpaceError):
            RealParameter("", 0.0, 1.0)

    def test_contains_half_open(self):
        p = RealParameter("x", 0.0, 10.0)
        assert p.contains(0.0)
        assert p.contains(9.999)
        assert not p.contains(10.0)
        assert not p.contains(-0.1)
        assert not p.contains("abc")

    def test_unit_roundtrip_midpoint(self):
        p = RealParameter("x", 2.0, 6.0)
        assert p.to_unit(4.0) == pytest.approx(0.5)
        assert p.from_unit(0.5) == pytest.approx(4.0)

    def test_from_unit_clamps(self):
        p = RealParameter("x", 0.0, 1.0)
        assert p.contains(p.from_unit(-0.5))
        assert p.contains(p.from_unit(1.5))

    def test_from_unit_stays_inside_half_open(self):
        p = RealParameter("x", 0.0, 1.0)
        assert p.from_unit(1.0) < 1.0

    def test_to_unit_rejects_out_of_range(self):
        p = RealParameter("x", 0.0, 1.0)
        with pytest.raises(SpaceError):
            p.to_unit(2.0)

    def test_sample_in_range(self, rng):
        p = RealParameter("x", -3.0, 7.0)
        for _ in range(50):
            assert p.contains(p.sample(rng))

    def test_grid(self):
        p = RealParameter("x", 0.0, 1.0)
        g = p.grid(10)
        assert len(g) == 10
        assert all(p.contains(v) for v in g)

    def test_serialization_roundtrip(self):
        p = RealParameter("x", -1.5, 2.5)
        assert Parameter.from_dict(p.to_dict()) == p

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, u):
        p = RealParameter("x", -5.0, 13.0)
        v = p.from_unit(u)
        assert p.contains(v)
        assert p.to_unit(v) == pytest.approx(min(u, p.to_unit(v) + 1e-9), abs=1e-6)


# ---------------------------------------------------------------------------
# IntegerParameter
# ---------------------------------------------------------------------------
class TestIntegerParameter:
    def test_half_open_range(self):
        p = IntegerParameter("k", 1, 16)
        assert p.contains(1) and p.contains(15)
        assert not p.contains(16) and not p.contains(0)

    def test_rejects_non_integers(self):
        p = IntegerParameter("k", 0, 5)
        assert not p.contains(1.5)
        assert not p.contains("2")

    def test_bad_bounds(self):
        with pytest.raises(SpaceError):
            IntegerParameter("k", 5, 5)
        with pytest.raises(SpaceError):
            IntegerParameter("k", 1.5, 3)

    def test_n_values(self):
        assert IntegerParameter("k", 1, 16).n_values == 15

    def test_roundtrip_every_value(self):
        p = IntegerParameter("k", -3, 9)
        for v in range(-3, 9):
            assert p.from_unit(p.to_unit(v)) == v

    def test_from_unit_covers_all_values(self):
        p = IntegerParameter("k", 0, 4)
        got = {p.from_unit(u) for u in np.linspace(0, 1, 101)}
        assert got == {0, 1, 2, 3}

    def test_single_value_range(self):
        p = IntegerParameter("k", 7, 8)
        assert p.to_unit(7) == 0.5
        assert p.from_unit(0.0) == 7 and p.from_unit(1.0) == 7

    def test_grid_small_and_large(self):
        assert IntegerParameter("k", 0, 5).grid() == [0, 1, 2, 3, 4]
        big = IntegerParameter("k", 0, 1000).grid(16)
        assert len(big) <= 16 and all(0 <= v < 1000 for v in big)

    def test_serialization_roundtrip(self):
        p = IntegerParameter("k", 2, 31)
        assert Parameter.from_dict(p.to_dict()) == p

    @given(st.integers(-50, 49))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, v):
        p = IntegerParameter("k", -50, 50)
        assert p.from_unit(p.to_unit(v)) == v


# ---------------------------------------------------------------------------
# CategoricalParameter
# ---------------------------------------------------------------------------
class TestCategoricalParameter:
    def test_requires_choices(self):
        with pytest.raises(SpaceError):
            CategoricalParameter("c", [])

    def test_rejects_duplicates(self):
        with pytest.raises(SpaceError):
            CategoricalParameter("c", ["a", "a"])

    def test_roundtrip_every_category(self):
        p = CategoricalParameter("c", ["x", "y", "z", "w"])
        for cat in p.categories:
            assert p.from_unit(p.to_unit(cat)) == cat

    def test_contains(self):
        p = CategoricalParameter("c", ["a", "b"])
        assert p.contains("a") and not p.contains("z")

    def test_from_unit_covers_all(self):
        p = CategoricalParameter("c", ["a", "b", "c"])
        got = {p.from_unit(u) for u in np.linspace(0, 1, 100)}
        assert got == {"a", "b", "c"}

    def test_unknown_value_raises(self):
        with pytest.raises(SpaceError):
            CategoricalParameter("c", ["a"]).to_unit("b")

    def test_sample(self, rng):
        p = CategoricalParameter("c", ["a", "b", "c"])
        seen = {p.sample(rng) for _ in range(100)}
        assert seen == {"a", "b", "c"}

    def test_serialization_roundtrip(self):
        p = CategoricalParameter("c", ["NATURAL", "COLAMD"])
        assert Parameter.from_dict(p.to_dict()) == p


# ---------------------------------------------------------------------------
# OutputParameter
# ---------------------------------------------------------------------------
class TestOutputParameter:
    def test_contains_finite_only(self):
        p = OutputParameter("y")
        assert p.contains(1.5) and p.contains(0)
        assert not p.contains(float("nan")) and not p.contains(None)

    def test_no_unit_embedding(self):
        p = OutputParameter("y")
        with pytest.raises(SpaceError):
            p.to_unit(1.0)
        with pytest.raises(SpaceError):
            p.from_unit(0.5)

    def test_serialization(self):
        p = OutputParameter("runtime")
        assert Parameter.from_dict(p.to_dict()) == p


# ---------------------------------------------------------------------------
# Space
# ---------------------------------------------------------------------------
class TestSpace:
    def test_duplicate_names_rejected(self):
        with pytest.raises(SpaceError):
            Space([RealParameter("x", 0, 1), IntegerParameter("x", 0, 2)])

    def test_basic_introspection(self, mixed_space):
        assert mixed_space.dim == 3
        assert mixed_space.names == ["x", "k", "mode"]
        assert "k" in mixed_space and "nope" not in mixed_space
        assert mixed_space["k"].name == "k"
        assert mixed_space[0].name == "x"
        with pytest.raises(KeyError):
            mixed_space["nope"]

    def test_to_unit_shape_and_range(self, mixed_space):
        u = mixed_space.to_unit({"x": 0.5, "k": 8, "mode": "b"})
        assert u.shape == (3,)
        assert np.all((u >= 0) & (u <= 1))

    def test_to_unit_missing_param(self, mixed_space):
        with pytest.raises(SpaceError):
            mixed_space.to_unit({"x": 0.5})

    def test_from_unit_shape_check(self, mixed_space):
        with pytest.raises(SpaceError):
            mixed_space.from_unit([0.5, 0.5])

    def test_roundtrip(self, mixed_space):
        cfg = {"x": 0.25, "k": 3, "mode": "c"}
        assert mixed_space.from_unit(mixed_space.to_unit(cfg)) == pytest.approx(
            cfg, abs=1e-9
        ) or mixed_space.from_unit(mixed_space.to_unit(cfg)) == cfg

    def test_array_roundtrip(self, mixed_space, rng):
        configs = [mixed_space.sample(rng) for _ in range(20)]
        U = mixed_space.to_unit_array(configs)
        assert U.shape == (20, 3)
        back = mixed_space.from_unit_array(U)
        for c, b in zip(configs, back):
            assert b["k"] == c["k"] and b["mode"] == c["mode"]
            assert b["x"] == pytest.approx(c["x"], abs=1e-9)

    def test_empty_array(self, mixed_space):
        assert mixed_space.to_unit_array([]).shape == (0, 3)

    def test_validate(self, mixed_space):
        mixed_space.validate({"x": 0.1, "k": 1, "mode": "a"})
        with pytest.raises(SpaceError):
            mixed_space.validate({"x": 0.1, "k": 100, "mode": "a"})
        with pytest.raises(SpaceError):
            mixed_space.validate({"x": 0.1, "k": 1})

    def test_sample_valid(self, mixed_space, rng):
        for _ in range(30):
            assert mixed_space.contains(mixed_space.sample(rng))

    def test_subspace_and_drop(self, mixed_space):
        sub = mixed_space.subspace(["mode", "x"])
        assert sub.names == ["mode", "x"]
        dropped = mixed_space.drop(["k"])
        assert dropped.names == ["x", "mode"]
        with pytest.raises(SpaceError):
            mixed_space.subspace(["zzz"])
        with pytest.raises(SpaceError):
            mixed_space.drop(["zzz"])

    def test_serialization_roundtrip(self, mixed_space):
        clone = Space.from_list(mixed_space.to_list())
        assert clone.names == mixed_space.names
        assert clone.to_list() == mixed_space.to_list()

    @given(st.lists(st.floats(0, 1), min_size=3, max_size=3))
    @settings(max_examples=50, deadline=None)
    def test_from_unit_always_valid(self, coords):
        space = Space(
            [
                RealParameter("x", 0.0, 1.0),
                IntegerParameter("k", 1, 16),
                CategoricalParameter("mode", ["a", "b", "c"]),
            ]
        )
        assert space.contains(space.from_unit(coords))


# ---------------------------------------------------------------------------
# FixedSpace (reduced tuning, paper Fig. 6/7)
# ---------------------------------------------------------------------------
class TestFixedSpace:
    def test_fix_validates(self, mixed_space):
        with pytest.raises(SpaceError):
            mixed_space.fix({"zzz": 1})
        with pytest.raises(SpaceError):
            mixed_space.fix({"k": 99})

    def test_fixed_space_dim_shrinks(self, mixed_space):
        fixed = mixed_space.fix({"k": 5})
        assert isinstance(fixed, FixedSpace)
        assert fixed.dim == 2
        assert fixed.names == ["x", "mode"]

    def test_from_unit_includes_pins(self, mixed_space):
        fixed = mixed_space.fix({"k": 5, "mode": "b"})
        cfg = fixed.from_unit([0.5])
        assert cfg == {"x": pytest.approx(0.5), "k": 5, "mode": "b"}

    def test_sample_includes_pins(self, mixed_space, rng):
        fixed = mixed_space.fix({"mode": "c"})
        for _ in range(10):
            cfg = fixed.sample(rng)
            assert cfg["mode"] == "c"
            assert mixed_space.contains(cfg)

    def test_to_unit_ignores_pins(self, mixed_space):
        fixed = mixed_space.fix({"k": 5})
        u = fixed.to_unit({"x": 0.5, "k": 5, "mode": "a"})
        assert u.shape == (2,)

    def test_contains_honors_pins(self, mixed_space):
        fixed = mixed_space.fix({"k": 5})
        assert fixed.contains({"x": 0.5, "k": 5, "mode": "a"})
        assert not fixed.contains({"x": 0.5, "k": 6, "mode": "a"})
