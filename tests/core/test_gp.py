"""Tests for repro.core.gp: fitting, prediction, serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RBF, GaussianProcess, Matern52
from repro.core.gp import cholesky_with_jitter


def _train(rng, n=25, d=2, noise=0.0):
    X = rng.random((n, d))
    y = np.sin(3 * X[:, 0]) + 0.5 * X[:, 1] ** 2
    if noise:
        y = y + rng.normal(0, noise, n)
    return X, y


class TestCholeskyJitter:
    def test_clean_matrix_no_jitter(self):
        K = np.eye(4) * 2.0
        L, jitter = cholesky_with_jitter(K)
        assert jitter == 0.0
        assert np.allclose(L @ L.T, K)

    def test_singular_matrix_gets_jitter(self):
        K = np.ones((5, 5))  # rank 1
        L, jitter = cholesky_with_jitter(K)
        assert jitter > 0
        assert np.all(np.isfinite(L))

    def test_largest_ladder_rung_reachable(self):
        """Regression: an off-by-one stopped the ladder at 1e-4 * diag_mean,
        one rung short of its documented 1e-3 maximum."""
        rng = np.random.default_rng(3)
        n = 6
        Q, _ = np.linalg.qr(rng.normal(size=(n, n)))
        eigs = np.ones(n)
        eigs[-1] = -5e-4  # only the top rung can lift this above zero
        K = (Q * eigs) @ Q.T
        K = 0.5 * (K + K.T)
        diag_mean = float(np.mean(np.diag(K)))
        L, jitter = cholesky_with_jitter(K)
        assert jitter == pytest.approx(1e-3 * diag_mean)
        assert np.all(np.isfinite(L))


class TestFitting:
    def test_interpolates_noiseless_data(self, rng):
        X, y = _train(rng)
        gp = GaussianProcess(RBF(2), seed=0).fit(X, y)
        mean, std = gp.predict(X)
        assert np.allclose(mean, y, atol=1e-2)
        assert np.all(std < 0.2)

    def test_prediction_reverts_to_prior_far_away(self, rng):
        X = rng.random((10, 1)) * 0.2  # all data in [0, 0.2]
        y = np.sin(10 * X[:, 0])
        gp = GaussianProcess(RBF(1), seed=0).fit(X, y)
        _, std_near = gp.predict(np.array([[0.1]]))
        _, std_far = gp.predict(np.array([[0.95]]))
        assert std_far[0] > std_near[0]

    def test_mean_reverts_to_data_mean(self, rng):
        X = rng.random((15, 1)) * 0.1
        y = 5.0 + rng.normal(0, 0.1, 15)
        gp = GaussianProcess(RBF(1), seed=0).fit(X, y)
        far = gp.predict_mean(np.array([[0.99]]))
        assert far[0] == pytest.approx(np.mean(y), abs=0.5)

    def test_constant_targets(self, rng):
        X = rng.random((10, 2))
        gp = GaussianProcess(seed=0).fit(X, np.full(10, 3.3))
        mean = gp.predict_mean(rng.random((5, 2)))
        assert np.allclose(mean, 3.3, atol=1e-6)

    def test_single_point(self, rng):
        gp = GaussianProcess(seed=0).fit(np.array([[0.5]]), np.array([2.0]))
        assert gp.predict_mean(np.array([[0.5]]))[0] == pytest.approx(2.0, abs=1e-3)

    def test_default_kernel_created(self, rng):
        X, y = _train(rng, d=3)
        gp = GaussianProcess(seed=0).fit(X, y)
        assert gp.kernel is not None and gp.kernel.dim == 3

    def test_dimension_mismatch(self, rng):
        X, y = _train(rng, d=2)
        with pytest.raises(ValueError):
            GaussianProcess(RBF(3)).fit(X, y)

    def test_shape_mismatch(self, rng):
        with pytest.raises(ValueError):
            GaussianProcess().fit(rng.random((5, 2)), np.zeros(4))

    def test_empty_data(self):
        with pytest.raises(ValueError):
            GaussianProcess().fit(np.zeros((0, 2)), np.zeros(0))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_matern_kernel_fit(self, rng):
        X, y = _train(rng)
        gp = GaussianProcess(Matern52(2), seed=0).fit(X, y)
        assert np.allclose(gp.predict_mean(X), y, atol=0.05)

    def test_noisy_data_smooths(self, rng):
        X = np.linspace(0, 1, 40)[:, None]
        y_true = np.sin(4 * X[:, 0])
        y = y_true + rng.normal(0, 0.3, 40)
        gp = GaussianProcess(RBF(1), seed=0).fit(X, y)
        # learned noise should be substantial, and prediction closer to
        # the true function than the noisy targets on average
        assert gp.noise_variance > 1e-4
        rms_pred = np.sqrt(np.mean((gp.predict_mean(X) - y_true) ** 2))
        rms_noise = np.sqrt(np.mean((y - y_true) ** 2))
        assert rms_pred < rms_noise

    def test_optimize_off_keeps_hyperparameters(self, rng):
        X, y = _train(rng)
        k = RBF(2, variance=1.0, lengthscales=[0.5, 0.5])
        theta0 = k.get_theta().copy()
        GaussianProcess(k, optimize=False).fit(X, y)
        assert np.allclose(k.get_theta(), theta0)

    def test_log_marginal_likelihood_finite(self, rng):
        X, y = _train(rng)
        gp = GaussianProcess(seed=0).fit(X, y)
        assert np.isfinite(gp.log_marginal_likelihood())

    def test_n_train(self, rng):
        gp = GaussianProcess(seed=0)
        assert gp.n_train == 0 and not gp.fitted
        X, y = _train(rng, n=13)
        gp.fit(X, y)
        assert gp.n_train == 13 and gp.fitted


class TestMLERestore:
    def test_failed_mle_restores_hyperparameters(self, rng, monkeypatch):
        """Regression: when every MLE start fails, the kernel used to keep
        whatever theta the last L-BFGS-B probe happened to evaluate."""
        from types import SimpleNamespace

        from repro.core import gp as gp_mod
        from repro.core import perf

        X, y = _train(rng)
        kernel = RBF(2, variance=1.0, lengthscales=[0.5, 0.5])
        model = GaussianProcess(kernel, optimize=True, seed=0)
        theta0 = np.concatenate([kernel.get_theta(), [np.log(model.noise_variance)]])

        def failing_minimize(fun, x0, **kwargs):
            fun(np.asarray(x0) + 3.0)  # probe a garbage theta, then fail
            return SimpleNamespace(fun=float("nan"), x=np.asarray(x0) + 3.0)

        monkeypatch.setattr(gp_mod.sopt, "minimize", failing_minimize)
        with perf.collect() as stats:
            model.fit(X, y)
        np.testing.assert_allclose(model._theta(), theta0)
        assert stats.snapshot()["counters"]["gp_mle_restores"] == 1
        assert np.all(np.isfinite(model.predict_mean(X)))


class TestSerialization:
    def test_roundtrip_predictions(self, rng):
        X, y = _train(rng)
        gp = GaussianProcess(RBF(2), seed=0).fit(X, y)
        clone = GaussianProcess.from_dict(gp.to_dict())
        Xq = rng.random((10, 2))
        m1, s1 = gp.predict(Xq)
        m2, s2 = clone.predict(Xq)
        assert np.allclose(m1, m2, atol=1e-8)
        assert np.allclose(s1, s2, atol=1e-8)

    def test_roundtrip_is_bitwise_exact(self, rng):
        """The registry contract: a deserialized model predicts the exact
        bytes of the live GP — through JSON, so the stored document (not
        just the in-memory dict) is what's pinned."""
        import json

        X, y = _train(rng)
        gp = GaussianProcess(RBF(2), seed=0).fit(X, y)
        clone = GaussianProcess.from_dict(json.loads(json.dumps(gp.to_dict())))
        Xq = rng.random((16, 2))
        m1, s1 = gp.predict(Xq)
        m2, s2 = clone.predict(Xq)
        assert np.array_equal(m1, m2)
        assert np.array_equal(s1, s2)

    def test_roundtrip_bitwise_through_frozen_view(self, rng):
        from repro.tla.store import frozen_view

        X, y = _train(rng)
        gp = GaussianProcess(RBF(2), seed=0).fit(X, y)
        frozen = frozen_view(GaussianProcess.from_dict(gp.to_dict()))
        assert frozen is not None
        Xq = rng.random((16, 2))
        m1, s1 = gp.predict(Xq)
        m2, s2 = frozen.predict(Xq)
        assert np.array_equal(m1, m2)
        assert np.array_equal(s1, s2)

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess().to_dict()

    def test_dict_is_jsonable(self, rng):
        import json

        X, y = _train(rng, n=8)
        gp = GaussianProcess(RBF(2), seed=0).fit(X, y)
        json.dumps(gp.to_dict())
