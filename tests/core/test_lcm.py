"""Tests for repro.core.lcm: multitask GP with unequal samples per task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCM


def _correlated_tasks(rng, n_per_task=(30, 20), shift=0.05):
    """Two tasks sharing a sine landscape, the second shifted slightly."""
    sets = []
    for i, n in enumerate(n_per_task):
        X = rng.random((n, 1))
        y = np.sin(4.0 * (X[:, 0] + i * shift)) + 0.1 * i
        sets.append((X, y))
    return sets


class TestConstruction:
    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            LCM(0, 1)
        with pytest.raises(ValueError):
            LCM(2, 0)
        with pytest.raises(ValueError):
            LCM(2, 1, n_latent=0)

    def test_n_params(self):
        lcm = LCM(3, 4, n_latent=2)
        # 2 * (4 + 2*3) + 3 = 23
        assert lcm.n_params == 23

    def test_dataset_count_checked(self, rng):
        lcm = LCM(2, 1)
        with pytest.raises(ValueError):
            lcm.fit([(rng.random((5, 1)), rng.random(5))])

    def test_dimension_checked(self, rng):
        lcm = LCM(1, 2)
        with pytest.raises(ValueError):
            lcm.fit([(rng.random((5, 3)), rng.random(5))])

    def test_needs_some_data(self):
        lcm = LCM(2, 1)
        with pytest.raises(ValueError):
            lcm.fit([(np.zeros((0, 1)), np.zeros(0)), (np.zeros((0, 1)), np.zeros(0))])


class TestFitPredict:
    def test_interpolates_each_task(self, rng):
        sets = _correlated_tasks(rng)
        lcm = LCM(2, 1, max_fun=40, seed=0).fit(sets)
        for i, (X, y) in enumerate(sets):
            mean = lcm.predict(i, X, return_std=False)
            assert np.sqrt(np.mean((mean - y) ** 2)) < 0.15

    def test_unequal_samples_including_empty_target(self, rng):
        """The Multitask(TS) cold start: sources full, target empty."""
        sets = _correlated_tasks(rng)
        empty = (np.zeros((0, 1)), np.zeros(0))
        lcm = LCM(3, 1, max_fun=30, seed=0).fit(sets + [empty])
        mean, std = lcm.predict(2, np.array([[0.3], [0.7]]))
        assert np.all(np.isfinite(mean)) and np.all(std > 0)

    def test_transfer_improves_sparse_task(self, rng):
        """A 2-sample target task should borrow shape from a 40-sample
        source when they are strongly correlated."""
        X_src = rng.random((40, 1))
        y_src = np.sin(4.0 * X_src[:, 0])
        X_tgt = np.array([[0.1], [0.9]])
        y_tgt = np.sin(4.0 * X_tgt[:, 0])
        lcm = LCM(2, 1, max_fun=60, seed=0).fit([(X_src, y_src), (X_tgt, y_tgt)])
        Xq = np.linspace(0.05, 0.95, 20)[:, None]
        pred = lcm.predict(1, Xq, return_std=False)
        rms = np.sqrt(np.mean((pred - np.sin(4.0 * Xq[:, 0])) ** 2))
        assert rms < 0.4  # a 2-point GP alone would be far worse

    def test_predict_task_range_checked(self, rng):
        lcm = LCM(2, 1, max_fun=10, seed=0).fit(_correlated_tasks(rng))
        with pytest.raises(ValueError):
            lcm.predict(5, np.array([[0.5]]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LCM(2, 1).predict(0, np.array([[0.5]]))

    def test_std_positive_and_grows_off_data(self, rng):
        X = rng.random((20, 1)) * 0.3
        y = np.sin(5 * X[:, 0])
        lcm = LCM(1, 1, max_fun=40, seed=0).fit([(X, y)])
        _, std_near = lcm.predict(0, np.array([[0.15]]))
        _, std_far = lcm.predict(0, np.array([[0.95]]))
        assert std_far[0] > std_near[0] > 0

    def test_task_scales_respected(self, rng):
        """Tasks with very different output scales predict in their own."""
        X = rng.random((25, 1))
        sets = [(X, np.sin(4 * X[:, 0])), (X, 100.0 * np.sin(4 * X[:, 0]) + 500.0)]
        lcm = LCM(2, 1, max_fun=40, seed=0).fit(sets)
        m0 = lcm.predict(0, X, return_std=False)
        m1 = lcm.predict(1, X, return_std=False)
        assert np.abs(m0).max() < 10
        assert m1.mean() == pytest.approx(sets[1][1].mean(), abs=30)


class TestMLERestore:
    def test_failed_mle_restores_theta(self, rng, monkeypatch):
        """Regression: when every MLE start fails, the model used to adopt
        an arbitrary probed theta instead of keeping the one it started with."""
        from types import SimpleNamespace

        from repro.core import lcm as lcm_mod
        from repro.core import perf

        datasets = _correlated_tasks(rng)
        model = LCM(2, 1, seed=0)
        theta0 = model._theta.copy()

        def failing_minimize(fun, x0, args=(), **kwargs):
            fun(np.asarray(x0) + 1.0, *args)  # probe garbage, then fail
            return SimpleNamespace(fun=float("nan"), x=np.asarray(x0) + 1.0)

        monkeypatch.setattr(lcm_mod.sopt, "minimize", failing_minimize)
        with perf.collect() as stats:
            model.fit(datasets)
        np.testing.assert_allclose(model._theta, theta0)
        assert stats.snapshot()["counters"]["lcm_mle_restores"] == 1
        assert np.all(np.isfinite(model.predict(0, rng.random((5, 1)))[0]))


class TestUtilities:
    def test_warm_start(self, rng):
        sets = _correlated_tasks(rng)
        a = LCM(2, 1, max_fun=40, seed=0).fit(sets)
        b = LCM(2, 1, optimize=False)
        b.warm_start_from(a)
        b.fit(sets)
        assert np.allclose(a._theta, b._theta)

    def test_warm_start_shape_check(self):
        with pytest.raises(ValueError):
            LCM(2, 1).warm_start_from(LCM(3, 1))

    def test_task_correlation_matrix(self, rng):
        lcm = LCM(2, 1, max_fun=60, seed=0).fit(_correlated_tasks(rng, shift=0.0))
        C = lcm.task_correlation()
        assert C.shape == (2, 2)
        assert np.allclose(np.diag(C), 1.0)
        # identical tasks should be learned as positively correlated
        assert C[0, 1] > 0.3


def _unequal_tasks(rng, sizes, dim):
    """Correlated tasks with per-task sizes (0 = empty, the TS cold start)."""
    w = rng.standard_normal(dim)
    sets = []
    for i, n in enumerate(sizes):
        X = rng.random((n, dim))
        y = np.sin(3.0 * X @ w + 0.2 * i) + 0.1 * i
        sets.append((X, y))
    return sets


class TestAnalyticGradient:
    @pytest.mark.parametrize(
        "n_tasks,dim,n_latent,sizes",
        [
            (2, 1, 1, (12, 7)),
            (3, 2, 2, (10, 6, 4)),
            (3, 2, 2, (9, 7, 0)),  # empty target: the TS cold start
        ],
    )
    def test_gradient_matches_central_differences(
        self, rng, n_tasks, dim, n_latent, sizes
    ):
        from repro.core.lcm import _make_workspace

        sets = _unequal_tasks(rng, sizes, dim)
        model = LCM(n_tasks, dim, n_latent=n_latent, optimize=False, seed=0).fit(sets)
        st = model._state
        ws = _make_workspace(st.X, st.t, n_tasks)
        y = (st.y_raw - st.y_means[st.t]) / st.y_stds[st.t]
        theta = model._theta + 0.05 * rng.standard_normal(model.n_params)

        nll, grad = model._nll_grad(theta, ws, y)
        assert nll == pytest.approx(model._nll(theta, st.X, st.t, y), rel=1e-10)

        eps = 1e-5
        fd = np.empty_like(grad)
        for i in range(model.n_params):
            tp, tm = theta.copy(), theta.copy()
            tp[i] += eps
            tm[i] -= eps
            fd[i] = (
                model._nll(tp, st.X, st.t, y) - model._nll(tm, st.X, st.t, y)
            ) / (2 * eps)
        np.testing.assert_allclose(grad, fd, rtol=1e-5, atol=1e-6)

    def test_gradient_evals_counted(self, rng):
        from repro.core import perf

        sets = _correlated_tasks(rng)
        with perf.collect() as stats:
            LCM(2, 1, max_fun=10, seed=0).fit(sets)
        assert stats.snapshot()["counters"]["lcm_grad_evals"] >= 1

    def test_fd_mode_still_supported(self, rng):
        sets = _correlated_tasks(rng)
        a = LCM(2, 1, max_fun=40, gradient="fd", seed=0).fit(sets)
        assert np.all(np.isfinite(a.predict(0, rng.random((4, 1)))[0]))

    def test_gradient_mode_validated(self):
        with pytest.raises(ValueError):
            LCM(2, 1, gradient="symbolic")


class TestParallelRestarts:
    def test_parallel_matches_sequential(self, rng):
        from repro.core import perf

        sets = _correlated_tasks(rng)
        seq = LCM(2, 1, max_fun=30, n_restarts=2, n_jobs=1, seed=3).fit(sets)
        with perf.collect() as stats:
            par = LCM(2, 1, max_fun=30, n_restarts=2, n_jobs=2, seed=3).fit(sets)
        np.testing.assert_allclose(seq._theta, par._theta)
        assert seq.last_nll_ == pytest.approx(par.last_nll_)
        assert stats.snapshot()["counters"]["lcm_parallel_starts"] == 3

    def test_restarts_never_worse_than_single_start(self, rng):
        sets = _correlated_tasks(rng)
        single = LCM(2, 1, max_fun=30, seed=3).fit(sets)
        multi = LCM(2, 1, max_fun=30, n_restarts=3, seed=3).fit(sets)
        assert multi.last_nll_ <= single.last_nll_ + 1e-9


class TestIncrementalUpdate:
    def _grow(self, sets, task, X_app, y_app):
        return [
            (np.vstack([X, X_app]), np.concatenate([y, y_app])) if i == task else (X, y)
            for i, (X, y) in enumerate(sets)
        ]

    @pytest.mark.parametrize("task", [0, 1, 2])
    def test_update_matches_full_refit(self, rng, task):
        """update() is pure amortization: predictions match a fresh fit
        on the grown datasets exactly, whichever task grew."""
        sets = _unequal_tasks(rng, (12, 9, 6), 2)
        base = LCM(3, 2, n_latent=2, max_fun=25, seed=0).fit(sets)
        X_app, y_app = rng.random((2, 2)), rng.standard_normal(2) * 0.1

        inc = LCM(3, 2, n_latent=2, optimize=False)
        inc.warm_start_from(base)
        inc.fit(sets)
        inc.update(task, X_app, y_app)

        ref = LCM(3, 2, n_latent=2, optimize=False)
        ref.warm_start_from(base)
        ref.fit(self._grow(sets, task, X_app, y_app))

        Xq = rng.random((10, 2))
        for i in range(3):
            m1, s1 = inc.predict(i, Xq)
            m2, s2 = ref.predict(i, Xq)
            np.testing.assert_allclose(m1, m2, rtol=1e-8, atol=1e-8)
            np.testing.assert_allclose(s1, s2, rtol=1e-8, atol=1e-8)
        assert inc.last_nll_ == pytest.approx(ref.last_nll_, rel=1e-8)

    def test_update_fills_empty_target(self, rng):
        """Cold start: fit with an empty target, then update() it in."""
        from repro.core import perf

        sets = _unequal_tasks(rng, (14, 0), 1)
        model = LCM(2, 1, max_fun=25, seed=0).fit(sets)
        X_app, y_app = rng.random((3, 1)), rng.standard_normal(3) * 0.1
        with perf.collect() as stats:
            model.update(1, X_app, y_app)
        assert stats.snapshot()["counters"]["lcm_incremental_updates"] == 3

        ref = LCM(2, 1, optimize=False)
        ref.warm_start_from(model)
        ref.fit(self._grow(sets, 1, X_app, y_app))
        Xq = rng.random((8, 1))
        for i in range(2):
            np.testing.assert_allclose(
                model.predict(i, Xq)[0], ref.predict(i, Xq)[0], rtol=1e-8, atol=1e-8
            )

    def test_extends_fitted_classification(self, rng):
        sets = _unequal_tasks(rng, (10, 5), 1)
        model = LCM(2, 1, max_fun=15, seed=0).fit(sets)
        assert model.extends_fitted(sets) == []

        X_app, y_app = rng.random((1, 1)), np.array([0.2])
        grown = self._grow(sets, 1, X_app, y_app)
        appends = model.extends_fitted(grown)
        assert appends is not None and len(appends) == 1
        task, Xa, ya = appends[0]
        assert task == 1
        np.testing.assert_array_equal(Xa, X_app)
        np.testing.assert_array_equal(ya, y_app)

        # mutated history (not a prefix) and shrunk history both diverge
        mutated = [(sets[0][0], sets[0][1] + 1.0), sets[1]]
        assert model.extends_fitted(mutated) is None
        shrunk = [(sets[0][0][:-1], sets[0][1][:-1]), sets[1]]
        assert model.extends_fitted(shrunk) is None

    def test_update_requires_fit(self, rng):
        with pytest.raises(RuntimeError):
            LCM(2, 1).update(0, rng.random((1, 1)), np.zeros(1))
