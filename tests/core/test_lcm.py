"""Tests for repro.core.lcm: multitask GP with unequal samples per task."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import LCM


def _correlated_tasks(rng, n_per_task=(30, 20), shift=0.05):
    """Two tasks sharing a sine landscape, the second shifted slightly."""
    sets = []
    for i, n in enumerate(n_per_task):
        X = rng.random((n, 1))
        y = np.sin(4.0 * (X[:, 0] + i * shift)) + 0.1 * i
        sets.append((X, y))
    return sets


class TestConstruction:
    def test_invalid_shapes(self):
        with pytest.raises(ValueError):
            LCM(0, 1)
        with pytest.raises(ValueError):
            LCM(2, 0)
        with pytest.raises(ValueError):
            LCM(2, 1, n_latent=0)

    def test_n_params(self):
        lcm = LCM(3, 4, n_latent=2)
        # 2 * (4 + 2*3) + 3 = 23
        assert lcm.n_params == 23

    def test_dataset_count_checked(self, rng):
        lcm = LCM(2, 1)
        with pytest.raises(ValueError):
            lcm.fit([(rng.random((5, 1)), rng.random(5))])

    def test_dimension_checked(self, rng):
        lcm = LCM(1, 2)
        with pytest.raises(ValueError):
            lcm.fit([(rng.random((5, 3)), rng.random(5))])

    def test_needs_some_data(self):
        lcm = LCM(2, 1)
        with pytest.raises(ValueError):
            lcm.fit([(np.zeros((0, 1)), np.zeros(0)), (np.zeros((0, 1)), np.zeros(0))])


class TestFitPredict:
    def test_interpolates_each_task(self, rng):
        sets = _correlated_tasks(rng)
        lcm = LCM(2, 1, max_fun=40, seed=0).fit(sets)
        for i, (X, y) in enumerate(sets):
            mean = lcm.predict(i, X, return_std=False)
            assert np.sqrt(np.mean((mean - y) ** 2)) < 0.15

    def test_unequal_samples_including_empty_target(self, rng):
        """The Multitask(TS) cold start: sources full, target empty."""
        sets = _correlated_tasks(rng)
        empty = (np.zeros((0, 1)), np.zeros(0))
        lcm = LCM(3, 1, max_fun=30, seed=0).fit(sets + [empty])
        mean, std = lcm.predict(2, np.array([[0.3], [0.7]]))
        assert np.all(np.isfinite(mean)) and np.all(std > 0)

    def test_transfer_improves_sparse_task(self, rng):
        """A 2-sample target task should borrow shape from a 40-sample
        source when they are strongly correlated."""
        X_src = rng.random((40, 1))
        y_src = np.sin(4.0 * X_src[:, 0])
        X_tgt = np.array([[0.1], [0.9]])
        y_tgt = np.sin(4.0 * X_tgt[:, 0])
        lcm = LCM(2, 1, max_fun=60, seed=0).fit([(X_src, y_src), (X_tgt, y_tgt)])
        Xq = np.linspace(0.05, 0.95, 20)[:, None]
        pred = lcm.predict(1, Xq, return_std=False)
        rms = np.sqrt(np.mean((pred - np.sin(4.0 * Xq[:, 0])) ** 2))
        assert rms < 0.4  # a 2-point GP alone would be far worse

    def test_predict_task_range_checked(self, rng):
        lcm = LCM(2, 1, max_fun=10, seed=0).fit(_correlated_tasks(rng))
        with pytest.raises(ValueError):
            lcm.predict(5, np.array([[0.5]]))

    def test_predict_before_fit(self):
        with pytest.raises(RuntimeError):
            LCM(2, 1).predict(0, np.array([[0.5]]))

    def test_std_positive_and_grows_off_data(self, rng):
        X = rng.random((20, 1)) * 0.3
        y = np.sin(5 * X[:, 0])
        lcm = LCM(1, 1, max_fun=40, seed=0).fit([(X, y)])
        _, std_near = lcm.predict(0, np.array([[0.15]]))
        _, std_far = lcm.predict(0, np.array([[0.95]]))
        assert std_far[0] > std_near[0] > 0

    def test_task_scales_respected(self, rng):
        """Tasks with very different output scales predict in their own."""
        X = rng.random((25, 1))
        sets = [(X, np.sin(4 * X[:, 0])), (X, 100.0 * np.sin(4 * X[:, 0]) + 500.0)]
        lcm = LCM(2, 1, max_fun=40, seed=0).fit(sets)
        m0 = lcm.predict(0, X, return_std=False)
        m1 = lcm.predict(1, X, return_std=False)
        assert np.abs(m0).max() < 10
        assert m1.mean() == pytest.approx(sets[1][1].mean(), abs=30)


class TestMLERestore:
    def test_failed_mle_restores_theta(self, rng, monkeypatch):
        """Regression: when every MLE start fails, the model used to adopt
        an arbitrary probed theta instead of keeping the one it started with."""
        from types import SimpleNamespace

        from repro.core import lcm as lcm_mod
        from repro.core import perf

        datasets = _correlated_tasks(rng)
        model = LCM(2, 1, seed=0)
        theta0 = model._theta.copy()

        def failing_minimize(fun, x0, args=(), **kwargs):
            fun(np.asarray(x0) + 1.0, *args)  # probe garbage, then fail
            return SimpleNamespace(fun=float("nan"), x=np.asarray(x0) + 1.0)

        monkeypatch.setattr(lcm_mod.sopt, "minimize", failing_minimize)
        with perf.collect() as stats:
            model.fit(datasets)
        np.testing.assert_allclose(model._theta, theta0)
        assert stats.snapshot()["counters"]["lcm_mle_restores"] == 1
        assert np.all(np.isfinite(model.predict(0, rng.random((5, 1)))[0]))


class TestUtilities:
    def test_warm_start(self, rng):
        sets = _correlated_tasks(rng)
        a = LCM(2, 1, max_fun=40, seed=0).fit(sets)
        b = LCM(2, 1, optimize=False)
        b.warm_start_from(a)
        b.fit(sets)
        assert np.allclose(a._theta, b._theta)

    def test_warm_start_shape_check(self):
        with pytest.raises(ValueError):
            LCM(2, 1).warm_start_from(LCM(3, 1))

    def test_task_correlation_matrix(self, rng):
        lcm = LCM(2, 1, max_fun=60, seed=0).fit(_correlated_tasks(rng, shift=0.0))
        C = lcm.task_correlation()
        assert C.shape == (2, 2)
        assert np.allclose(np.diag(C), 1.0)
        # identical tasks should be learned as positively correlated
        assert C[0, 1] > 0.3
