"""Tests for the task-aware (cross-task) surrogate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    IntegerParameter,
    RealParameter,
    Space,
    TaskAwareSurrogate,
)


@pytest.fixture
def spaces():
    input_space = Space([IntegerParameter("m", 10, 101)])
    parameter_space = Space([RealParameter("x", 0.0, 1.0)])
    return input_space, parameter_space


def _synthetic(m, x):
    """Runtime-like: scale grows with m, optimum x* drifts with m."""
    opt = 0.2 + 0.005 * m
    return (m / 10.0) * (1.0 + (x - opt) ** 2)


def _dataset(spaces, n=120, seed=0):
    input_space, parameter_space = spaces
    rng = np.random.default_rng(seed)
    tasks, configs, ys = [], [], []
    for _ in range(n):
        t = input_space.sample(rng)
        c = parameter_space.sample(rng)
        tasks.append(t)
        configs.append(c)
        ys.append(_synthetic(t["m"], c["x"]))
    return tasks, configs, ys


class TestFitting:
    def test_needs_data(self, spaces):
        model = TaskAwareSurrogate(*spaces)
        with pytest.raises(ValueError):
            model.fit([], [], [])

    def test_length_mismatch(self, spaces):
        model = TaskAwareSurrogate(*spaces)
        with pytest.raises(ValueError):
            model.fit([{"m": 10}], [{"x": 0.1}, {"x": 0.2}], [1.0, 2.0])

    def test_log_output_requires_positive(self, spaces):
        model = TaskAwareSurrogate(*spaces)
        with pytest.raises(ValueError):
            model.fit([{"m": 10}, {"m": 20}], [{"x": 0.1}, {"x": 0.2}], [1.0, -2.0])

    def test_n_tasks_seen(self, spaces):
        tasks, configs, ys = _dataset(spaces, n=50)
        model = TaskAwareSurrogate(*spaces).fit(tasks, configs, ys)
        assert model.n_tasks_seen >= 10

    def test_predict_before_fit(self, spaces):
        with pytest.raises(RuntimeError):
            TaskAwareSurrogate(*spaces).predict({"m": 10}, [{"x": 0.5}])


class TestPrediction:
    def test_interpolates_seen_region(self, spaces):
        tasks, configs, ys = _dataset(spaces)
        model = TaskAwareSurrogate(*spaces, seed=0).fit(tasks, configs, ys)
        preds = model.predict({"m": 50}, [{"x": 0.3}, {"x": 0.9}])
        truth = [_synthetic(50, 0.3), _synthetic(50, 0.9)]
        assert np.allclose(preds, truth, rtol=0.3)

    def test_unseen_task_prediction(self, spaces):
        """The headline capability: predict for a task nobody measured."""
        input_space, parameter_space = spaces
        rng = np.random.default_rng(1)
        tasks, configs, ys = [], [], []
        for _ in range(150):
            t = input_space.sample(rng)
            if 55 <= t["m"] <= 65:  # leave a task-space hole
                continue
            c = parameter_space.sample(rng)
            tasks.append(t)
            configs.append(c)
            ys.append(_synthetic(t["m"], c["x"]))
        model = TaskAwareSurrogate(*spaces, seed=0).fit(tasks, configs, ys)
        pred = model.predict({"m": 60}, [{"x": 0.5}])[0]
        assert pred == pytest.approx(_synthetic(60, 0.5), rel=0.35)

    def test_scale_tracks_task(self, spaces):
        tasks, configs, ys = _dataset(spaces)
        model = TaskAwareSurrogate(*spaces, seed=0).fit(tasks, configs, ys)
        small = model.predict({"m": 15}, [{"x": 0.3}])[0]
        large = model.predict({"m": 95}, [{"x": 0.3}])[0]
        assert large > small * 3

    def test_return_std(self, spaces):
        tasks, configs, ys = _dataset(spaces)
        model = TaskAwareSurrogate(*spaces, seed=0).fit(tasks, configs, ys)
        mean, std = model.predict({"m": 50}, [{"x": 0.5}], return_std=True)
        assert mean.shape == (1,) and std.shape == (1,)
        assert std[0] > 0

    def test_linear_output_mode(self, spaces):
        tasks, configs, ys = _dataset(spaces)
        model = TaskAwareSurrogate(*spaces, log_output=False, seed=0)
        model.fit(tasks, configs, ys)
        pred = model.predict({"m": 50}, [{"x": 0.3}])[0]
        assert pred == pytest.approx(_synthetic(50, 0.3), rel=0.4)


class TestRecommendation:
    def test_predict_best_config_finds_drifting_optimum(self, spaces):
        tasks, configs, ys = _dataset(spaces, n=200)
        model = TaskAwareSurrogate(*spaces, seed=0).fit(tasks, configs, ys)
        for m in (20, 80):
            cfg, pred = model.predict_best_config(
                {"m": m}, rng=np.random.default_rng(0)
            )
            expect_opt = 0.2 + 0.005 * m
            assert cfg["x"] == pytest.approx(expect_opt, abs=0.15)
            assert pred > 0


class TestCrowdIntegration:
    def test_query_task_model(self):
        from repro.apps import DemoFunction
        from repro.crowd import CrowdClient, CrowdRepository, MetaDescription, PerformanceRecord

        repo = CrowdRepository()
        _, key = repo.register_user("u", "u@lab.gov")
        app = DemoFunction()
        problem = app.make_problem(noisy=False)
        rng = np.random.default_rng(0)
        for t in (0.5, 0.8, 1.1, 1.4):
            for _ in range(25):
                cfg = problem.parameter_space.sample(rng)
                y = problem.objective({"t": t}, cfg)
                repo.upload(
                    PerformanceRecord(
                        problem_name="demo",
                        task_parameters={"t": t},
                        tuning_parameters=cfg,
                        output=y + 2.5,  # shift positive for log modeling
                    ),
                    key,
                )
        meta = MetaDescription.from_dict(
            {
                "api_key": key,
                "tuning_problem_name": "demo",
                "problem_space": problem.describe(),
            }
        )
        client = CrowdClient(repo, meta)
        model = client.query_task_model(problem.input_space, seed=0)
        assert model.n_tasks_seen == 4
        # prediction for an unseen task between measured ones
        pred = model.predict({"t": 0.95}, [{"x": 0.2}])[0]
        truth = problem.objective({"t": 0.95}, {"x": 0.2}) + 2.5
        assert pred == pytest.approx(truth, rel=0.4)
