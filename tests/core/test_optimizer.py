"""Tests for repro.core.optimizer: acquisition search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExpectedImprovement,
    IntegerParameter,
    RealParameter,
    SearchOptions,
    Space,
    search_next,
)
from repro.core.optimizer import reference_best


def _sphere_predict(center):
    """A deterministic 'model': mean = distance^2 to center, tiny std."""
    center = np.asarray(center)

    def predict(X):
        mean = np.sum((X - center) ** 2, axis=1)
        return mean, np.full(X.shape[0], 1e-3)

    return predict


class TestReferenceBest:
    def test_empty_observations(self):
        assert reference_best(_sphere_predict([0.5]), np.empty((0, 1))) == 0.0

    def test_uses_model_view(self):
        predict = _sphere_predict([0.5, 0.5])
        X_obs = np.array([[0.5, 0.5], [0.0, 0.0]])
        assert reference_best(predict, X_obs) == pytest.approx(0.0, abs=1e-12)


class TestSearchNext:
    def test_finds_model_optimum(self, rng):
        space = Space([RealParameter("a", 0, 1), RealParameter("b", 0, 1)])
        predict = _sphere_predict([0.3, 0.7])
        cfg = search_next(
            predict,
            space,
            ExpectedImprovement(),
            rng,
            X_obs=np.array([[0.9, 0.9]]),
            options=SearchOptions(n_candidates=512, n_local=2),
        )
        assert cfg["a"] == pytest.approx(0.3, abs=0.1)
        assert cfg["b"] == pytest.approx(0.7, abs=0.1)

    def test_returns_valid_config(self, mixed_space, rng):
        predict = _sphere_predict([0.5, 0.5, 0.5])
        cfg = search_next(predict, mixed_space, ExpectedImprovement(), rng)
        assert mixed_space.contains(cfg)

    def test_avoids_evaluated_configs(self, rng):
        space = Space([IntegerParameter("k", 0, 4)])
        predict = _sphere_predict([0.0])
        evaluated = [{"k": 0}]  # the model optimum is k=0; must avoid it
        cfg = search_next(
            predict, space, ExpectedImprovement(), rng, evaluated=evaluated
        )
        assert cfg["k"] != 0

    def test_exhausted_space_returns_duplicate_eventually(self, rng):
        space = Space([IntegerParameter("k", 0, 2)])
        predict = _sphere_predict([0.0])
        evaluated = [{"k": 0}, {"k": 1}]
        cfg = search_next(
            predict, space, ExpectedImprovement(), rng, evaluated=evaluated
        )
        assert cfg["k"] in (0, 1)  # duplicates allowed only as last resort

    def test_exhausted_space_prefers_feasible_duplicate(self, rng):
        """Regression: the last-resort duplicate used to ignore ``feasible``
        and could return a configuration the problem cannot run at all."""
        space = Space([IntegerParameter("k", 0, 3)])
        predict = _sphere_predict([1.0])  # the model optimum is the top bin
        evaluated = [{"k": 0}, {"k": 1}, {"k": 2}]
        cfg = search_next(
            predict,
            space,
            ExpectedImprovement(),
            rng,
            evaluated=evaluated,
            feasible=lambda c: c["k"] != 2,
        )
        assert cfg["k"] in (0, 1)

    def test_incumbent_perturbations_used(self, rng):
        """With most candidates around the incumbent, the search still
        improves on it."""
        space = Space([RealParameter("a", 0, 1)])
        predict = _sphere_predict([0.42])
        cfg = search_next(
            predict,
            space,
            ExpectedImprovement(),
            rng,
            X_obs=np.array([[0.5]]),
            options=SearchOptions(
                n_candidates=256, incumbent_fraction=0.9, incumbent_scale=0.05
            ),
        )
        assert cfg["a"] == pytest.approx(0.42, abs=0.08)


class TestSearchOptions:
    def test_validation(self):
        with pytest.raises(ValueError):
            SearchOptions(n_candidates=0)
