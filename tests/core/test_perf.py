"""Tests for repro.core.perf: counters, nested timers, collector stack."""

from __future__ import annotations

from repro.core import perf
from repro.core.perf import PerfStats


class TestPerfStats:
    def test_counters_accumulate(self):
        s = PerfStats()
        s.incr("fits")
        s.incr("fits", 3)
        assert s.counters["fits"] == 4

    def test_timers_accumulate(self):
        s = PerfStats()
        s.add_time("search", 0.5)
        s.add_time("search", 0.25)
        snap = s.snapshot()["timers"]["search"]
        assert snap["total_s"] == 0.75
        assert snap["count"] == 2
        assert snap["mean_ms"] == 375.0

    def test_snapshot_is_detached(self):
        s = PerfStats()
        s.incr("fits")
        snap = s.snapshot()
        s.incr("fits")
        assert snap["counters"]["fits"] == 1

    def test_snapshot_jsonable(self):
        import json

        s = PerfStats()
        s.incr("fits")
        s.add_time("search", 0.1)
        json.dumps(s.snapshot())

    def test_reset(self):
        s = PerfStats()
        s.incr("fits")
        s.add_time("search", 0.1)
        s.reset()
        assert s.snapshot() == {"counters": {}, "timers": {}}

    def test_format_mentions_entries(self):
        s = PerfStats()
        s.incr("gp_fits", 7)
        s.add_time("surrogate", 0.002)
        text = s.format()
        assert "gp_fits" in text and "surrogate" in text


class TestCollectorStack:
    def test_collect_isolates_a_run(self):
        with perf.collect() as stats:
            perf.incr("gp_fits")
        assert stats.snapshot()["counters"]["gp_fits"] == 1
        perf.incr("gp_fits")  # outside the block: not recorded into stats
        assert stats.snapshot()["counters"]["gp_fits"] == 1

    def test_events_also_reach_outer_collectors(self):
        with perf.collect() as outer:
            with perf.collect() as inner:
                perf.incr("gp_fits")
            assert outer.snapshot()["counters"]["gp_fits"] == 1
            assert inner.snapshot()["counters"]["gp_fits"] == 1

    def test_global_always_receives(self):
        before = perf.GLOBAL.counters.get("gp_fits", 0)
        with perf.collect():
            perf.incr("gp_fits")
        assert perf.GLOBAL.counters["gp_fits"] == before + 1

    def test_current_returns_innermost(self):
        assert perf.current() is perf.GLOBAL
        with perf.collect() as stats:
            assert perf.current() is stats


class TestTimers:
    def test_timer_records_duration(self):
        with perf.collect() as stats:
            with perf.timer("search"):
                pass
        t = stats.snapshot()["timers"]["search"]
        assert t["count"] == 1 and t["total_s"] >= 0.0

    def test_nested_timers_use_dotted_paths(self):
        with perf.collect() as stats:
            with perf.timer("iteration"):
                with perf.timer("surrogate"):
                    pass
                with perf.timer("search"):
                    pass
        timers = stats.snapshot()["timers"]
        assert "iteration" in timers
        assert "iteration.surrogate" in timers
        assert "iteration.search" in timers

    def test_timer_path_unwinds_on_exception(self):
        try:
            with perf.timer("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with perf.collect() as stats:
            with perf.timer("other"):
                pass
        assert "other" in stats.snapshot()["timers"]  # not "outer.other"
