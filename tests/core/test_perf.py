"""Tests for repro.core.perf: counters, nested timers, collector stack."""

from __future__ import annotations

import threading

from repro.core import perf
from repro.core.perf import PerfStats


class TestPerfStats:
    def test_counters_accumulate(self):
        s = PerfStats()
        s.incr("fits")
        s.incr("fits", 3)
        assert s.counters["fits"] == 4

    def test_timers_accumulate(self):
        s = PerfStats()
        s.add_time("search", 0.5)
        s.add_time("search", 0.25)
        snap = s.snapshot()["timers"]["search"]
        assert snap["total_s"] == 0.75
        assert snap["count"] == 2
        assert snap["mean_ms"] == 375.0

    def test_snapshot_is_detached(self):
        s = PerfStats()
        s.incr("fits")
        snap = s.snapshot()
        s.incr("fits")
        assert snap["counters"]["fits"] == 1

    def test_snapshot_jsonable(self):
        import json

        s = PerfStats()
        s.incr("fits")
        s.add_time("search", 0.1)
        json.dumps(s.snapshot())

    def test_reset(self):
        s = PerfStats()
        s.incr("fits")
        s.add_time("search", 0.1)
        s.reset()
        assert s.snapshot() == {"counters": {}, "timers": {}}

    def test_format_mentions_entries(self):
        s = PerfStats()
        s.incr("gp_fits", 7)
        s.add_time("surrogate", 0.002)
        text = s.format()
        assert "gp_fits" in text and "surrogate" in text


class TestCollectorStack:
    def test_collect_isolates_a_run(self):
        with perf.collect() as stats:
            perf.incr("gp_fits")
        assert stats.snapshot()["counters"]["gp_fits"] == 1
        perf.incr("gp_fits")  # outside the block: not recorded into stats
        assert stats.snapshot()["counters"]["gp_fits"] == 1

    def test_events_also_reach_outer_collectors(self):
        with perf.collect() as outer:
            with perf.collect() as inner:
                perf.incr("gp_fits")
            assert outer.snapshot()["counters"]["gp_fits"] == 1
            assert inner.snapshot()["counters"]["gp_fits"] == 1

    def test_global_always_receives(self):
        before = perf.GLOBAL.counters.get("gp_fits", 0)
        with perf.collect():
            perf.incr("gp_fits")
        assert perf.GLOBAL.counters["gp_fits"] == before + 1

    def test_current_returns_innermost(self):
        assert perf.current() is perf.GLOBAL
        with perf.collect() as stats:
            assert perf.current() is stats


class TestTimers:
    def test_timer_records_duration(self):
        with perf.collect() as stats:
            with perf.timer("search"):
                pass
        t = stats.snapshot()["timers"]["search"]
        assert t["count"] == 1 and t["total_s"] >= 0.0

    def test_nested_timers_use_dotted_paths(self):
        with perf.collect() as stats:
            with perf.timer("iteration"):
                with perf.timer("surrogate"):
                    pass
                with perf.timer("search"):
                    pass
        timers = stats.snapshot()["timers"]
        assert "iteration" in timers
        assert "iteration.surrogate" in timers
        assert "iteration.search" in timers

    def test_timer_path_unwinds_on_exception(self):
        try:
            with perf.timer("outer"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        with perf.collect() as stats:
            with perf.timer("other"):
                pass
        assert "other" in stats.snapshot()["timers"]  # not "outer.other"


class TestGauges:
    def test_gauge_tracks_last_max_mean(self):
        s = PerfStats()
        for v in (2.0, 6.0, 4.0):
            s.gauge("queue_depth", v)
        g = s.snapshot()["gauges"]["queue_depth"]
        assert g["last"] == 4.0
        assert g["max"] == 6.0
        assert g["mean"] == 4.0

    def test_module_gauge_reaches_collectors(self):
        with perf.collect() as stats:
            perf.gauge("utilization", 0.5)
        assert stats.snapshot()["gauges"]["utilization"]["last"] == 0.5

    def test_format_mentions_gauges(self):
        s = PerfStats()
        s.gauge("queue_depth", 3.0)
        assert "queue_depth" in s.format()

    def test_no_gauges_key_when_empty(self):
        assert "gauges" not in PerfStats().snapshot()


class TestThreadSafety:
    def test_concurrent_counters_exact(self):
        """Unguarded dict read-modify-write would drop increments."""
        s = PerfStats()
        n_threads, n_incr = 8, 2000

        def work():
            for _ in range(n_incr):
                s.incr("hits")

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert s.counters["hits"] == n_threads * n_incr

    def test_concurrent_module_events_reach_collector(self):
        with perf.collect() as stats:
            threads = [
                threading.Thread(target=lambda: [perf.incr("evals") for _ in range(500)])
                for _ in range(6)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert stats.snapshot()["counters"]["evals"] == 3000

    def test_timer_paths_are_thread_local(self):
        """A worker's open timer must not prefix another thread's names."""
        inner_started = threading.Event()
        release = threading.Event()

        def slow_timer():
            with perf.timer("worker"):
                inner_started.set()
                release.wait(timeout=5.0)

        with perf.collect() as stats:
            t = threading.Thread(target=slow_timer)
            t.start()
            inner_started.wait(timeout=5.0)
            with perf.timer("mainloop"):
                pass
            release.set()
            t.join()
        timers = stats.snapshot()["timers"]
        assert "mainloop" in timers  # not "worker.mainloop"
        assert "worker" in timers
