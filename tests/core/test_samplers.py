"""Tests for repro.core.samplers: initial designs, uniqueness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CategoricalParameter,
    IntegerParameter,
    Space,
    get_sampler,
)
from repro.core.samplers import (
    LatinHypercubeSampler,
    RandomSampler,
    SobolSampler,
    unique_configs,
)


@pytest.fixture
def small_space():
    return Space([IntegerParameter("k", 0, 3), CategoricalParameter("c", ["a", "b"])])


class TestRegistry:
    def test_lookup(self):
        assert isinstance(get_sampler("random"), RandomSampler)
        assert isinstance(get_sampler("lhs"), LatinHypercubeSampler)
        assert isinstance(get_sampler("sobol"), SobolSampler)

    def test_unknown(self):
        with pytest.raises(ValueError):
            get_sampler("nope")


class TestUniqueConfigs:
    def test_dedup_preserves_order(self):
        configs = [{"a": 1}, {"a": 2}, {"a": 1}, {"a": 3}]
        assert unique_configs(configs) == [{"a": 1}, {"a": 2}, {"a": 3}]

    def test_exclude(self):
        assert unique_configs([{"a": 1}, {"a": 2}], exclude=[{"a": 1}]) == [{"a": 2}]


@pytest.mark.parametrize("name", ["random", "lhs", "sobol"])
class TestSamplers:
    def test_raw_shape_and_range(self, name, rng):
        U = get_sampler(name).raw(64, 5, rng)
        assert U.shape == (64, 5)
        assert np.all((U >= 0) & (U < 1 + 1e-12))

    def test_sample_returns_valid_unique(self, name, mixed_space, rng):
        configs = get_sampler(name).sample(mixed_space, 30, rng)
        assert len(configs) == 30
        keys = {tuple(sorted((k, repr(v)) for k, v in c.items())) for c in configs}
        assert len(keys) == 30
        for c in configs:
            assert mixed_space.contains(c)

    def test_sample_respects_exclude(self, name, mixed_space, rng):
        first = get_sampler(name).sample(mixed_space, 5, rng)
        second = get_sampler(name).sample(mixed_space, 5, rng, exclude=first)
        keys1 = {tuple(sorted((k, repr(v)) for k, v in c.items())) for c in first}
        keys2 = {tuple(sorted((k, repr(v)) for k, v in c.items())) for c in second}
        assert not keys1 & keys2

    def test_exhausted_space_returns_fewer(self, name, small_space, rng):
        # only 3 * 2 = 6 distinct configurations exist
        configs = get_sampler(name).sample(small_space, 50, rng)
        assert len(configs) == 6

    def test_zero_request(self, name, mixed_space, rng):
        assert get_sampler(name).sample(mixed_space, 0, rng) == []


class TestLatinHypercube:
    def test_stratification(self, rng):
        n = 16
        U = LatinHypercubeSampler().raw(n, 3, rng)
        for j in range(3):
            strata = np.floor(U[:, j] * n).astype(int)
            assert sorted(strata) == list(range(n))


class TestSobolSampler:
    def test_scrambled_streams_differ(self):
        r1 = np.random.default_rng(1)
        r2 = np.random.default_rng(2)
        s = SobolSampler()
        assert not np.allclose(s.raw(16, 3, r1), s.raw(16, 3, r2))

    def test_dimension_guard(self, rng):
        with pytest.raises(ValueError):
            SobolSampler().raw(8, 500, rng)
