"""Focused tests for failure handling inside the acquisition search."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ExpectedImprovement,
    IntegerParameter,
    OutputParameter,
    RealParameter,
    SearchOptions,
    Space,
    Tuner,
    TunerOptions,
    TuningProblem,
    search_next,
)


def _flat_predict(U):
    """A model with no opinion: constant mean, constant std."""
    return np.zeros(U.shape[0]), np.ones(U.shape[0])


@pytest.fixture
def space():
    return Space([RealParameter("a", 0, 1), RealParameter("b", 0, 1)])


class TestTabuDamping:
    def test_repeated_search_avoids_failed_point(self, space, rng):
        failed = np.array([[0.5, 0.5]])
        for _ in range(5):
            cfg = search_next(
                _flat_predict,
                space,
                ExpectedImprovement(),
                rng,
                X_failed=failed,
                options=SearchOptions(n_candidates=256, failure_radius=0.2),
            )
            d = np.hypot(cfg["a"] - 0.5, cfg["b"] - 0.5)
            assert d > 0.05

    def test_empty_failed_array_is_noop(self, space, rng):
        cfg = search_next(
            _flat_predict,
            space,
            ExpectedImprovement(),
            rng,
            X_failed=np.empty((0, 2)),
        )
        assert space.contains(cfg)


class TestEmptyHistoryReference:
    def test_no_observations_still_proposes_model_minimum_region(self, space, rng):
        """With zero successes, EI must anchor on the model's own
        predictions — not a bogus zero reference that rewards variance."""

        def predict(U):
            mean = (U[:, 0] - 0.2) ** 2 + (U[:, 1] - 0.8) ** 2
            std = np.full(U.shape[0], 0.01)
            return mean, std

        hits = 0
        for seed in range(5):
            cfg = search_next(
                predict,
                space,
                ExpectedImprovement(),
                np.random.default_rng(seed),
                X_obs=np.empty((0, 2)),
            )
            if abs(cfg["a"] - 0.2) < 0.25 and abs(cfg["b"] - 0.8) < 0.25:
                hits += 1
        assert hits >= 3


class TestLearnFeasibilityOption:
    def _problem(self):
        def obj(task, cfg):
            if cfg["x"] > 0.75:
                return None
            return (cfg["x"] - 0.3) ** 2

        return TuningProblem(
            name="p",
            input_space=Space([IntegerParameter("t", 0, 2)]),
            parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
            output_space=Space([OutputParameter("y")]),
            objective=obj,
        )

    def test_learning_reduces_failures(self):
        problem = self._problem()
        fails = {}
        for mode, learn in (("on", True), ("off", False)):
            total = 0
            for seed in range(4):
                opts = TunerOptions(n_initial=2, learn_feasibility=learn)
                res = Tuner(problem, opts).tune({"t": 1}, 12, seed=seed)
                total += res.history.n_failures
            fails[mode] = total
        assert fails["on"] <= fails["off"]

    def test_both_modes_find_optimum(self):
        problem = self._problem()
        for learn in (True, False):
            opts = TunerOptions(n_initial=2, learn_feasibility=learn)
            res = Tuner(problem, opts).tune({"t": 1}, 15, seed=0)
            assert res.best_output == pytest.approx(0.0, abs=0.01)
