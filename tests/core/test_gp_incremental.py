"""Tests for the GP hot path: incremental updates and the factor cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import RBF, GaussianProcess, perf
from repro.core import gp as gp_mod


def _data(rng, n, d=3):
    X = rng.random((n, d))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 - 0.5 * X[:, 2]
    return X, y


class TestUpdateEquivalence:
    def test_matches_full_fit_over_20_appends(self, rng):
        """update() is an amortization, not an approximation: after every
        append the predictions equal a from-scratch non-optimizing fit."""
        X, y = _data(rng, 35)
        inc = GaussianProcess(RBF(3), optimize=False).fit(X[:15], y[:15])
        Xq = rng.random((40, 3))
        for i in range(15, 35):
            inc.update(X[i : i + 1], y[i : i + 1])
            ref = GaussianProcess(RBF(3), optimize=False, cache=False)
            ref.fit(X[: i + 1], y[: i + 1])
            m1, s1 = inc.predict(Xq)
            m2, s2 = ref.predict(Xq)
            np.testing.assert_allclose(m1, m2, atol=1e-8)
            np.testing.assert_allclose(s1, s2, atol=1e-8)

    def test_batch_append_matches_full_fit(self, rng):
        X, y = _data(rng, 30)
        inc = GaussianProcess(RBF(3), optimize=False).fit(X[:20], y[:20])
        inc.update(X[20:], y[20:])
        ref = GaussianProcess(RBF(3), optimize=False, cache=False).fit(X, y)
        Xq = rng.random((25, 3))
        np.testing.assert_allclose(inc.predict_mean(Xq), ref.predict_mean(Xq), atol=1e-8)

    def test_update_keeps_mle_hyperparameters(self, rng):
        X, y = _data(rng, 25)
        inc = GaussianProcess(RBF(3), optimize=True, seed=0).fit(X[:20], y[:20])
        theta = inc._theta().copy()
        inc.update(X[20:], y[20:])
        np.testing.assert_allclose(inc._theta(), theta)
        kernel = RBF(3)
        kernel.set_theta(theta[:-1])
        ref = GaussianProcess(
            kernel, noise_variance=float(np.exp(theta[-1])), optimize=False, cache=False
        ).fit(X, y)
        np.testing.assert_allclose(inc.predict_mean(X), ref.predict_mean(X), atol=1e-8)

    def test_update_counts_appended_points(self, rng):
        X, y = _data(rng, 14)
        inc = GaussianProcess(RBF(3), optimize=False).fit(X[:10], y[:10])
        with perf.collect() as stats:
            inc.update(X[10:], y[10:])
        assert stats.snapshot()["counters"]["gp_incremental_updates"] == 4
        assert inc.n_train == 14

    def test_update_after_deserialization(self, rng):
        X, y = _data(rng, 20)
        fitted = GaussianProcess(RBF(3), optimize=False).fit(X[:18], y[:18])
        clone = GaussianProcess.from_dict(fitted.to_dict())
        clone.update(X[18:], y[18:])
        ref = GaussianProcess(RBF(3), optimize=False, cache=False).fit(X, y)
        np.testing.assert_allclose(clone.predict_mean(X), ref.predict_mean(X), atol=1e-6)

    def test_update_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            GaussianProcess(RBF(2)).update(np.zeros((1, 2)), np.zeros(1))

    def test_update_shape_checks(self, rng):
        X, y = _data(rng, 10)
        inc = GaussianProcess(RBF(3), optimize=False).fit(X, y)
        with pytest.raises(ValueError):
            inc.update(np.zeros((1, 2)), np.zeros(1))  # wrong dimension
        with pytest.raises(ValueError):
            inc.update(np.zeros((2, 3)), np.zeros(1))  # row/target mismatch

    def test_empty_update_is_noop(self, rng):
        X, y = _data(rng, 10)
        inc = GaussianProcess(RBF(3), optimize=False).fit(X, y)
        inc.update(np.zeros((0, 3)), np.zeros(0))
        assert inc.n_train == 10


class TestUpdateFallback:
    def test_degenerate_append_falls_back_to_refit(self, rng, monkeypatch):
        """A numerically degenerate append triggers a full non-optimizing
        refit through the jitter ladder instead of corrupting the factor."""
        X, y = _data(rng, 12)
        model = GaussianProcess(RBF(3), optimize=False).fit(X[:10], y[:10])
        real = gp_mod._trtrs
        calls = {"n": 0}

        def singular_once(*args, **kwargs):
            calls["n"] += 1
            out = real(*args, **kwargs)
            if calls["n"] == 1:
                return out[0], 1  # claim the triangular solve hit a zero pivot
            return out

        monkeypatch.setattr(gp_mod, "_trtrs", singular_once)
        with perf.collect() as stats:
            model.update(X[10:], y[10:])
        assert stats.snapshot()["counters"]["gp_update_fallbacks"] == 1
        assert model.n_train == 12
        ref = GaussianProcess(RBF(3), optimize=False, cache=False).fit(X, y)
        np.testing.assert_allclose(model.predict_mean(X), ref.predict_mean(X), atol=1e-8)


class TestExtendsTrainingData:
    def test_identical_data_is_zero(self, rng):
        X, y = _data(rng, 8)
        model = GaussianProcess(RBF(3), optimize=False).fit(X, y)
        assert model.extends_training_data(X, y) == 0

    def test_appended_rows_counted(self, rng):
        X, y = _data(rng, 10)
        model = GaussianProcess(RBF(3), optimize=False).fit(X[:7], y[:7])
        assert model.extends_training_data(X, y) == 3

    def test_diverged_history_is_none(self, rng):
        X, y = _data(rng, 10)
        model = GaussianProcess(RBF(3), optimize=False).fit(X[:7], y[:7])
        y2 = y.copy()
        y2[3] += 1.0  # a past observation changed: not an append
        assert model.extends_training_data(X, y2) is None

    def test_shorter_history_is_none(self, rng):
        X, y = _data(rng, 10)
        model = GaussianProcess(RBF(3), optimize=False).fit(X, y)
        assert model.extends_training_data(X[:5], y[:5]) is None

    def test_unfitted_is_none(self, rng):
        X, y = _data(rng, 5)
        assert GaussianProcess(RBF(3)).extends_training_data(X, y) is None


class TestFactorCache:
    def test_fit_reuses_mle_factorization(self, rng):
        X, y = _data(rng, 20)
        with perf.collect() as stats:
            GaussianProcess(RBF(3), optimize=True, seed=0).fit(X, y)
        assert stats.snapshot()["counters"].get("kernel_cache_hits", 0) >= 1

    def test_cache_disabled_never_hits(self, rng):
        X, y = _data(rng, 20)
        with perf.collect() as stats:
            GaussianProcess(RBF(3), optimize=True, seed=0, cache=False).fit(X, y)
        assert stats.snapshot()["counters"].get("kernel_cache_hits", 0) == 0

    def test_cache_invalidated_on_new_data(self, rng):
        X, y = _data(rng, 20)
        model = GaussianProcess(RBF(3), optimize=False).fit(X[:10], y[:10])
        model.fit(X, y)  # same theta, different data: must refactorize
        assert model.n_train == 20
        ref = GaussianProcess(RBF(3), optimize=False, cache=False).fit(X, y)
        np.testing.assert_allclose(model.predict_mean(X), ref.predict_mean(X), atol=1e-10)
