"""Unit tests for repro.core.sparse: the large-n surrogate layer.

Covers the deterministic k-center inducing selection, SGPR accuracy and
incremental updates, the partitioned local-GP ensemble, bitwise frozen
views and dict round-trips for both classes, the structured jitter-ladder
failure, and the new perf counters.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import perf
from repro.core.frozen import frozen_view
from repro.core.gp import GaussianProcess, GPFitError, cholesky_with_jitter
from repro.core.sparse import (
    PartitionedGP,
    SparseGP,
    make_surrogate,
    resolve_surrogate_kind,
    select_inducing,
    surrogate_from_dict,
)


def _toy(n, d=2, seed=0, noise=0.01):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    f = np.sin(3 * X[:, 0]) + np.cos(2 * X[:, 1]) + 0.5 * X[:, 0] * X[:, 1]
    return X, f + noise * rng.standard_normal(n)


def _truth(X):
    return np.sin(3 * X[:, 0]) + np.cos(2 * X[:, 1]) + 0.5 * X[:, 0] * X[:, 1]


class TestSelectInducing:
    def test_deterministic_and_valid(self):
        X, _ = _toy(300)
        a = select_inducing(X, 40)
        b = select_inducing(X, 40)
        assert np.array_equal(a, b)
        assert len(np.unique(a)) == 40

    def test_prefix_property(self):
        """The greedy order is nested: first k of m-selection == k-selection."""
        X, _ = _toy(200)
        big = select_inducing(X, 60)
        small = select_inducing(X, 25)
        assert np.array_equal(big[:25], small)

    def test_caps_at_n(self):
        X, _ = _toy(10)
        assert len(select_inducing(X, 50)) == 10

    def test_spreads_over_the_cube(self):
        """k-center picks cover the data: max distance to nearest center
        shrinks well below a random subset's."""
        X, _ = _toy(500, seed=3)
        Z = X[select_inducing(X, 30)]
        d = np.sqrt(
            ((X[:, None, :] - Z[None, :, :]) ** 2).sum(-1)
        ).min(axis=1)
        assert d.max() < 0.35


class TestSparseGP:
    def test_accuracy_close_to_dense(self):
        X, y = _toy(600, seed=1)
        Xt, _ = _toy(80, seed=9)
        yt = _truth(Xt)
        sp = SparseGP("rbf", n_inducing=60, seed=0).fit(X, y)
        mu, sd = sp.predict(Xt)
        rmse = float(np.sqrt(np.mean((mu - yt) ** 2)))
        assert rmse < 0.05
        assert np.all(sd > 0)

    def test_update_matches_refit_with_fixed_inducing(self):
        X, y = _toy(500, seed=2)
        Z = X[select_inducing(X, 50)]
        a = SparseGP("rbf", inducing=Z, optimize=False, noise_variance=1e-3)
        a.fit(X[:400], y[:400])
        a.update(X[400:], y[400:])
        b = SparseGP("rbf", inducing=Z, optimize=False, noise_variance=1e-3)
        b.fit(X, y)
        Xt, _ = _toy(60, seed=7)
        mu_a, sd_a = a.predict(Xt)
        mu_b, sd_b = b.predict(Xt)
        np.testing.assert_allclose(mu_a, mu_b, atol=1e-8)
        np.testing.assert_allclose(sd_a, sd_b, atol=1e-8)

    def test_extends_training_data_contract(self):
        X, y = _toy(100)
        sp = SparseGP("rbf", n_inducing=20, seed=0).fit(X, y)
        Xn, yn = _toy(10, seed=21)
        X2 = np.vstack([X, Xn])
        y2 = np.concatenate([y, yn])
        assert sp.extends_training_data(X2, y2) == 10
        assert sp.extends_training_data(X, y) == 0
        assert sp.extends_training_data(X[:50], y[:50]) is None
        y_div = y2.copy()
        y_div[3] += 1.0
        assert sp.extends_training_data(X2, y_div) is None

    def test_dict_roundtrip_bitwise(self):
        X, y = _toy(300, seed=4)
        sp = SparseGP("rbf", n_inducing=40, seed=1).fit(X[:250], y[:250])
        sp.update(X[250:], y[250:])  # exercise the accumulator path
        Xt, _ = _toy(50, seed=8)
        mu, sd = sp.predict(Xt)
        clone = surrogate_from_dict(sp.to_dict())
        mu2, sd2 = clone.predict(Xt)
        assert np.array_equal(mu, mu2)
        assert np.array_equal(sd, sd2)
        assert clone.n_train == sp.n_train

    def test_frozen_view_bitwise_and_cached(self):
        X, y = _toy(200, seed=5)
        sp = SparseGP("rbf", n_inducing=30, seed=2).fit(X, y)
        Xt, _ = _toy(40, seed=6)
        mu, sd = sp.predict(Xt)
        fv = frozen_view(sp)
        mu2, sd2 = fv.predict(Xt)
        assert np.array_equal(mu, mu2)
        assert np.array_equal(sd, sd2)
        assert frozen_view(sp) is fv  # cached until the version moves
        sp.update(X[:1], y[:1])
        assert frozen_view(sp) is not fv

    def test_frozen_view_survives_update(self):
        """States are replaced, not mutated: an old view keeps serving the
        predictions of its freeze-time fit."""
        X, y = _toy(150, seed=11)
        sp = SparseGP("rbf", n_inducing=25, seed=3).fit(X, y)
        Xt, _ = _toy(30, seed=12)
        fv = frozen_view(sp)
        mu_before, sd_before = fv.predict(Xt)
        sp.update(*_toy(20, seed=13))
        mu_after, sd_after = fv.predict(Xt)
        assert np.array_equal(mu_before, mu_after)
        assert np.array_equal(sd_before, sd_after)

    def test_has_state_for_fantasization(self):
        """propose_batch duck-types gp._state save/restore; SparseGP
        participates (states are immutable snapshots)."""
        X, y = _toy(100)
        sp = SparseGP("rbf", n_inducing=20, seed=0).fit(X, y)
        saved = sp._state
        sp.update(X[:2], y[:2])
        sp._state = saved
        assert sp.n_train == 100

    def test_perf_counters(self):
        X, y = _toy(120)
        with perf.collect() as stats:
            sp = SparseGP("rbf", n_inducing=20, seed=0).fit(X, y)
            sp.update(X[:3], y[:3])
        snap = stats.snapshot()
        assert snap["counters"]["sparse_fits"] == 1
        assert snap["counters"]["sparse_updates"] == 3
        assert "sparse_select_inducing" in snap["timers"]

    def test_errors(self):
        with pytest.raises(ValueError):
            SparseGP("rbf", n_inducing=0)
        sp = SparseGP("rbf")
        with pytest.raises(RuntimeError):
            sp.predict(np.zeros((1, 2)))
        with pytest.raises(RuntimeError):
            sp.update(np.zeros((1, 2)), np.zeros(1))
        with pytest.raises(ValueError):
            sp.fit(np.zeros((0, 2)), np.zeros(0))


class TestPartitionedGP:
    def test_accuracy_and_leaf_structure(self):
        X, y = _toy(600, seed=1)
        Xt, _ = _toy(80, seed=9)
        yt = _truth(Xt)
        pg = PartitionedGP("rbf", leaf_size=100, top_k=3, seed=0).fit(X, y)
        assert pg.n_leaves >= 600 // 100
        mu, sd = pg.predict(Xt)
        rmse = float(np.sqrt(np.mean((mu - yt) ** 2)))
        assert rmse < 0.08
        assert np.all(sd > 0)

    def test_parallel_fit_matches_serial(self):
        X, y = _toy(400, seed=2)
        Xt, _ = _toy(50, seed=8)
        serial = PartitionedGP("rbf", leaf_size=80, seed=5, n_jobs=1).fit(X, y)
        parallel = PartitionedGP("rbf", leaf_size=80, seed=5, n_jobs=4).fit(X, y)
        mu_s, sd_s = serial.predict(Xt)
        mu_p, sd_p = parallel.predict(Xt)
        assert np.array_equal(mu_s, mu_p)
        assert np.array_equal(sd_s, sd_p)

    def test_update_agrees_with_refit_loosely(self):
        """Different partitions (grown vs rebuilt) cannot match bitwise;
        both must still model the function."""
        X, y = _toy(400, seed=3, noise=0.0)
        Xn, yn = _toy(40, seed=14, noise=0.0)
        inc = PartitionedGP("rbf", leaf_size=80, seed=1).fit(X, y)
        inc.update(Xn, yn)
        full = PartitionedGP("rbf", leaf_size=80, seed=1).fit(
            np.vstack([X, Xn]), np.concatenate([y, yn])
        )
        Xt, _ = _toy(60, seed=15)
        yt = _truth(Xt)
        mu_i, _ = inc.predict(Xt)
        mu_f, _ = full.predict(Xt)
        assert float(np.sqrt(np.mean((mu_i - yt) ** 2))) < 0.08
        assert float(np.sqrt(np.mean((mu_f - yt) ** 2))) < 0.08
        np.testing.assert_allclose(mu_i, mu_f, atol=0.15)

    def test_update_resplits_oversized_leaf(self):
        X, y = _toy(60, seed=4)
        pg = PartitionedGP("rbf", leaf_size=30, seed=0).fit(X, y)
        before = pg.n_leaves
        # 50 points in one corner overflow the nearest leaf past 2x
        Xn = 0.05 * np.random.default_rng(0).random((70, 2))
        pg.update(Xn, _truth(Xn))
        assert pg.n_leaves > before
        assert pg.n_train == 130
        for leaf in pg._leaves:
            assert leaf.X.shape[0] <= 2 * pg.leaf_size

    def test_dict_roundtrip_bitwise(self):
        X, y = _toy(250, seed=6)
        pg = PartitionedGP("rbf", leaf_size=60, seed=2).fit(X, y)
        Xt, _ = _toy(40, seed=16)
        mu, sd = pg.predict(Xt)
        clone = surrogate_from_dict(pg.to_dict())
        mu2, sd2 = clone.predict(Xt)
        assert np.array_equal(mu, mu2)
        assert np.array_equal(sd, sd2)
        assert clone.n_leaves == pg.n_leaves
        assert clone.n_train == pg.n_train

    def test_frozen_view_bitwise(self):
        X, y = _toy(200, seed=7)
        pg = PartitionedGP("rbf", leaf_size=50, seed=3).fit(X, y)
        Xt, _ = _toy(40, seed=17)
        mu, sd = pg.predict(Xt)
        fv = frozen_view(pg)
        mu2, sd2 = fv.predict(Xt)
        assert np.array_equal(mu, mu2)
        assert np.array_equal(sd, sd2)

    def test_extends_training_data_contract(self):
        X, y = _toy(100)
        pg = PartitionedGP("rbf", leaf_size=40, seed=0).fit(X, y)
        Xn, yn = _toy(10, seed=21)
        X2 = np.vstack([X, Xn])
        y2 = np.concatenate([y, yn])
        assert pg.extends_training_data(X2, y2) == 10
        assert pg.extends_training_data(X[:50], y[:50]) is None

    def test_no_state_attribute(self):
        """The ensemble has no single-state snapshot; the batch proposer's
        guard must see _state as absent/None and take the fallback."""
        X, y = _toy(80)
        pg = PartitionedGP("rbf", leaf_size=40, seed=0).fit(X, y)
        assert getattr(pg, "_state", None) is None

    def test_perf_counters(self):
        X, y = _toy(200)
        with perf.collect() as stats:
            pg = PartitionedGP("rbf", leaf_size=50, seed=0).fit(X, y)
            pg.predict(X[:10])
        snap = stats.snapshot()
        assert snap["counters"]["partition_leaf_fits"] == pg.n_leaves
        assert snap["counters"]["partition_merges"] == 1

    def test_rejects_kernel_instances(self):
        from repro.core.kernels import RBF

        with pytest.raises(TypeError):
            PartitionedGP(RBF(2))


class TestFactoryAndPolicy:
    def test_resolve_kinds(self):
        assert resolve_surrogate_kind("auto", 100, 1000) == "dense"
        assert resolve_surrogate_kind("auto", 1000, 1000) == "dense"
        assert resolve_surrogate_kind("auto", 1001, 1000) == "sparse"
        assert resolve_surrogate_kind("dense", 10**6, 1000) == "dense"
        assert resolve_surrogate_kind("partitioned", 5, 1000) == "partitioned"
        with pytest.raises(ValueError):
            resolve_surrogate_kind("bogus", 10, 1000)

    def test_make_surrogate(self):
        assert isinstance(make_surrogate("sparse", "rbf", n_inducing=7), SparseGP)
        assert isinstance(make_surrogate("partitioned", "rbf"), PartitionedGP)
        with pytest.raises(ValueError):
            make_surrogate("dense", "rbf")
        with pytest.raises(ValueError):
            make_surrogate("bogus", "rbf")

    def test_from_dict_dispatch(self):
        X, y = _toy(50)
        dense = GaussianProcess(seed=0).fit(X, y)
        assert isinstance(surrogate_from_dict(dense.to_dict()), GaussianProcess)
        sp = SparseGP("rbf", n_inducing=10, seed=0).fit(X, y)
        assert isinstance(surrogate_from_dict(sp.to_dict()), SparseGP)


class TestJitterLadderFailure:
    def test_gpfiterror_carries_jitter_ladder(self):
        K = -np.eye(3)  # negative definite: every rung fails
        with perf.collect() as stats:
            with pytest.raises(GPFitError) as exc_info:
                cholesky_with_jitter(K)
        err = exc_info.value
        # the as-is attempt plus all 8 ladder rungs
        assert len(err.jitters) == 9
        assert err.jitters[0] == 0.0
        assert list(err.jitters[1:]) == sorted(err.jitters[1:])
        assert "tried jitters" in str(err)
        snap = stats.snapshot()
        assert snap["counters"]["gp_jitter_retries"] == 8
        assert snap["counters"]["cholesky_failures"] == 1

    def test_gp_jitter_retries_on_recoverable_matrix(self):
        # rank-deficient PSD: fails exact, succeeds after small jitter
        v = np.array([[1.0], [1.0], [1.0]])
        K = v @ v.T
        with perf.collect() as stats:
            L, jitter = cholesky_with_jitter(K)
        assert jitter > 0
        assert np.isfinite(L).all()
        assert stats.snapshot()["counters"]["gp_jitter_retries"] >= 1

    def test_clean_matrix_records_nothing(self):
        with perf.collect() as stats:
            _, jitter = cholesky_with_jitter(np.eye(4))
        assert jitter == 0.0
        assert "gp_jitter_retries" not in stats.snapshot()["counters"]
