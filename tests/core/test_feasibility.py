"""Tests for the k-NN feasibility model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feasibility import KnnFeasibility


def _slab_data(rng, n=120, threshold=0.7):
    """Failures occupy the axis-aligned slab x0 > threshold."""
    X = rng.random((n, 3))
    ok = X[X[:, 0] <= threshold]
    fail = X[X[:, 0] > threshold]
    return ok, fail


class TestConstruction:
    def test_k_validated(self):
        with pytest.raises(ValueError):
            KnnFeasibility(np.zeros((2, 2)), np.zeros((1, 2)), k=0)

    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            KnnFeasibility(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_empty_data_all_feasible(self):
        model = KnnFeasibility(np.empty((0, 2)), np.empty((0, 2)))
        assert np.allclose(model.predict_proba(np.random.rand(5, 2)), 1.0)

    def test_no_failures_all_feasible(self, rng):
        model = KnnFeasibility(rng.random((20, 2)), np.empty((0, 2)))
        assert not model.informative
        assert np.allclose(model.predict_proba(rng.random((5, 2))), 1.0)


class TestPrediction:
    def test_recovers_failure_slab(self, rng):
        ok, fail = _slab_data(rng, n=200)
        model = KnnFeasibility(ok, fail)
        deep_fail = np.array([[0.95, 0.5, 0.5]])
        deep_ok = np.array([[0.2, 0.5, 0.5]])
        assert model.predict_proba(deep_fail)[0] < 0.45
        assert model.predict_proba(deep_ok)[0] > 0.8

    def test_probabilities_in_unit_interval(self, rng):
        ok, fail = _slab_data(rng)
        model = KnnFeasibility(ok, fail)
        p = model.predict_proba(rng.random((50, 3)))
        assert np.all((p >= 0) & (p <= 1))

    def test_smoothing_keeps_unexplored_open(self, rng):
        """A lone failure far away must not zero out distant regions."""
        model = KnnFeasibility(
            np.array([[0.1, 0.1]]), np.array([[0.9, 0.9]]), smoothing=1.0
        )
        far = model.predict_proba(np.array([[0.5, 0.1]]))[0]
        assert far > 0.3

    def test_failure_point_itself_low(self, rng):
        ok = rng.random((30, 2)) * 0.4
        fail = np.array([[0.9, 0.9]])
        model = KnnFeasibility(ok, fail, k=1, smoothing=0.1)
        assert model.predict_proba(np.array([[0.9, 0.9]]))[0] < 0.2

    def test_vectorized_matches_single(self, rng):
        ok, fail = _slab_data(rng)
        model = KnnFeasibility(ok, fail)
        U = rng.random((10, 3))
        batch = model.predict_proba(U)
        singles = np.array([model.predict_proba(u[None, :])[0] for u in U])
        assert np.allclose(batch, singles)

    def test_k_larger_than_points_ok(self, rng):
        model = KnnFeasibility(rng.random((2, 2)), rng.random((1, 2)), k=10)
        assert model.predict_proba(rng.random((3, 2))).shape == (3,)


class TestSearchIntegration:
    def test_search_avoids_failure_slab(self, rng):
        """EI multiplied by P(feasible) should not propose deep inside a
        known failure region."""
        from repro.core import ExpectedImprovement, RealParameter, Space
        from repro.core.optimizer import search_next

        ok, fail = _slab_data(rng, n=300)
        model = KnnFeasibility(ok, fail)
        space = Space([RealParameter(f"x{i}", 0, 1) for i in range(3)])

        # a model whose minimum sits deep in the failure slab
        def predict(U):
            return np.sum((U - np.array([0.95, 0.5, 0.5])) ** 2, axis=1), np.full(
                U.shape[0], 0.05
            )

        cfg = search_next(
            predict,
            space,
            ExpectedImprovement(),
            rng,
            X_obs=ok[:5],
            p_feasible=model.predict_proba,
        )
        assert cfg["x0"] <= 0.85  # steered away from the slab interior
