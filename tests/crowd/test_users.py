"""Tests for the user registry: registration, keys, authentication."""

from __future__ import annotations

import pytest

from repro.crowd.users import AuthError, UserRegistry


@pytest.fixture
def registry():
    r = UserRegistry()
    r.register("alice", "alice@lab.gov")
    r.register("bob", "bob@lab.gov")
    return r


class TestRegistration:
    def test_register_and_get(self, registry):
        assert registry.get("alice").email == "alice@lab.gov"
        assert registry.usernames() == ["alice", "bob"]

    def test_lookup_email(self, registry):
        assert registry.lookup_email("bob@lab.gov").username == "bob"
        with pytest.raises(KeyError):
            registry.lookup_email("nobody@x.y")

    def test_duplicate_username_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register("alice", "other@lab.gov")

    def test_duplicate_email_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.register("carol", "alice@lab.gov")

    def test_invalid_email(self, registry):
        with pytest.raises(ValueError):
            registry.register("x", "not-an-email")

    def test_unknown_user(self, registry):
        with pytest.raises(KeyError):
            registry.get("nobody")


class TestApiKeys:
    def test_key_format(self, registry):
        key = registry.issue_api_key("alice")
        assert len(key) == 20 and key.isalnum()

    def test_key_authenticates(self, registry):
        key = registry.issue_api_key("alice")
        assert registry.authenticate(key).username == "alice"

    def test_keys_are_unique_per_issue(self, registry):
        keys = {registry.issue_api_key("alice") for _ in range(10)}
        assert len(keys) == 10

    def test_key_not_stored_in_clear(self, registry):
        key = registry.issue_api_key("alice")
        user = registry.get("alice")
        assert key not in user.key_hashes

    def test_bad_key_rejected(self, registry):
        registry.issue_api_key("alice")
        with pytest.raises(AuthError):
            registry.authenticate("wrong-key-entirely!!")
        with pytest.raises(AuthError):
            registry.authenticate("")

    def test_revoke(self, registry):
        key = registry.issue_api_key("alice")
        assert registry.revoke_key("alice", key)
        with pytest.raises(AuthError):
            registry.authenticate(key)
        assert not registry.revoke_key("alice", key)  # already gone


class TestKeyPairs:
    def test_keypair_authenticates_with_private(self, registry):
        pair = registry.issue_keypair("bob")
        assert registry.authenticate(pair.private).username == "bob"

    def test_registry_stores_only_public(self, registry):
        pair = registry.issue_keypair("bob")
        user = registry.get("bob")
        assert pair.public in user.public_keys
        assert pair.private not in user.public_keys

    def test_public_key_does_not_authenticate(self, registry):
        """Knowing the stored public half must not grant access."""
        pair = registry.issue_keypair("bob")
        with pytest.raises(AuthError):
            registry.authenticate(pair.public)

    def test_revoke_keypair(self, registry):
        pair = registry.issue_keypair("bob")
        assert registry.revoke_key("bob", pair.private)
        with pytest.raises(AuthError):
            registry.authenticate(pair.private)


class TestGroups:
    def test_add_remove(self, registry):
        registry.add_to_group("alice", "ecp")
        assert "ecp" in registry.get("alice").groups
        registry.remove_from_group("alice", "ecp")
        assert "ecp" not in registry.get("alice").groups

    def test_empty_group_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.add_to_group("alice", "")
