"""Tests for query building: meta-description filters + SQL-like parser."""

from __future__ import annotations

import pytest

from repro.crowd.database import Collection
from repro.crowd.query import SqlQuery, SqlSyntaxError, build_filter


class TestBuildFilter:
    def test_empty_query_downloads_everything(self):
        """Paper: 'If these condition information is not given, a query
        will download all data available to the user.'"""
        assert build_filter(require_success=False) == {}

    def test_problem_name_only(self):
        flt = build_filter("demo", require_success=False)
        assert flt == {"problem_name": "demo"}

    def test_success_filter_default(self):
        flt = build_filter("demo")
        # single-key clauses fold into one flat conjunction, so the
        # equality on problem_name stays visible to the hash indexes
        assert flt == {"problem_name": "demo", "output": {"$ne": None}}

    def test_task_parameters_pin_exact_values(self):
        flt = build_filter("demo", task_parameters={"t": 3, "m": 100})
        assert flt == {
            "problem_name": "demo",
            "output": {"$ne": None},
            "task_parameters.t": 3,
            "task_parameters.m": 100,
        }

    def test_non_mergeable_clauses_keep_the_and(self):
        cs = {"machine_configurations": [{"Cori": {}}, {"Summit": {}}]}
        flt = build_filter("demo", configuration_space=cs, require_success=False)
        assert set(flt) == {"$and"}
        assert {"problem_name": "demo"} in flt["$and"] or any(
            c.get("problem_name") == "demo" for c in flt["$and"]
        )

    def test_input_space_bounds(self):
        ps = {"input_space": [{"name": "t", "lower_bound": 1, "upper_bound": 10}]}
        flt = build_filter(problem_space=ps, require_success=False)
        assert flt == {"task_parameters.t": {"$gte": 1, "$lt": 10}}

    def test_parameter_space_categories(self):
        ps = {"parameter_space": [{"name": "COLPERM", "categories": ["COLAMD"]}]}
        flt = build_filter(problem_space=ps, require_success=False)
        assert flt == {"tuning_parameters.COLPERM": {"$in": ["COLAMD"]}}

    def test_machine_configuration_block(self):
        """The paper's example: Cori, one Haswell node, 32 cores."""
        cs = {
            "machine_configurations": [
                {"Cori": {"haswell": {"nodes": 1, "cores": 32}}}
            ]
        }
        flt = build_filter(configuration_space=cs, require_success=False)
        clause = flt["$or"][0]
        assert clause["machine_configuration.machine_name"] == "Cori"
        assert clause["machine_configuration.partition"] == "haswell"
        assert clause["machine_configuration.nodes"] == 1
        assert clause["machine_configuration.cores"] == 32

    def test_multiple_machines_or(self):
        cs = {"machine_configurations": [{"Cori": {}}, {"Summit": {}}]}
        flt = build_filter(configuration_space=cs, require_success=False)
        assert len(flt["$or"]) == 2

    def test_software_version_range(self):
        """The paper's example: gcc between 8.0.0 and 9.0.0."""
        cs = {
            "software_configurations": [
                {"gcc": {"version_from": [8, 0, 0], "version_to": [9, 0, 0]}}
            ]
        }
        flt = build_filter(configuration_space=cs, require_success=False)
        assert flt == {
            "software_configuration.gcc.version_split": {
                "$gte": [8, 0, 0],
                "$lt": [9, 0, 0],
            }
        }

    def test_software_presence_only(self):
        cs = {"software_configurations": [{"scalapack": {}}]}
        flt = build_filter(configuration_space=cs, require_success=False)
        assert flt == {"software_configuration.scalapack": {"$exists": True}}

    def test_user_configurations(self):
        cs = {"user_configurations": ["user_A", "user_B"]}
        flt = build_filter(configuration_space=cs, require_success=False)
        assert flt == {"owner": {"$in": ["user_A", "user_B"]}}

    def test_version_range_filters_documents(self):
        """End-to-end: the version filter works through the store."""
        c = Collection("r")
        for v in ([7, 5, 0], [8, 3, 0], [9, 1, 0]):
            c.insert({"software_configuration": {"gcc": {"version_split": v}}})
        cs = {
            "software_configurations": [
                {"gcc": {"version_from": [8, 0, 0], "version_to": [9, 0, 0]}}
            ]
        }
        flt = build_filter(configuration_space=cs, require_success=False)
        found = c.find(flt)
        assert len(found) == 1
        assert found[0]["software_configuration"]["gcc"]["version_split"] == [8, 3, 0]

    def test_space_entry_needs_name(self):
        with pytest.raises(ValueError):
            build_filter(problem_space={"input_space": [{"lower_bound": 1}]})


class TestSqlParser:
    def test_select_all(self):
        q = SqlQuery.parse("SELECT *")
        assert q.filter == {} and q.limit is None

    def test_simple_comparison(self):
        q = SqlQuery.parse("SELECT * WHERE output < 3.5")
        assert q.filter == {"output": {"$lt": 3.5}}

    def test_all_operators(self):
        ops = {"=": "$eq", "!=": "$ne", "<>": "$ne", "<": "$lt",
               "<=": "$lte", ">": "$gt", ">=": "$gte"}
        for sql_op, mongo_op in ops.items():
            q = SqlQuery.parse(f"SELECT * WHERE v {sql_op} 1")
            assert q.filter == {"v": {mongo_op: 1}}

    def test_string_literals(self):
        q = SqlQuery.parse("SELECT * WHERE owner = 'user_A'")
        assert q.filter == {"owner": {"$eq": "user_A"}}

    def test_escaped_quote(self):
        q = SqlQuery.parse(r"SELECT * WHERE name = 'O\'Brien'")
        assert q.filter == {"name": {"$eq": "O'Brien"}}

    def test_dotted_paths(self):
        q = SqlQuery.parse("SELECT * WHERE task_parameters.m >= 5000")
        assert q.filter == {"task_parameters.m": {"$gte": 5000}}

    def test_and_or_precedence(self):
        q = SqlQuery.parse("SELECT * WHERE a = 1 OR b = 2 AND c = 3")
        # AND binds tighter than OR
        assert q.filter == {
            "$or": [
                {"a": {"$eq": 1}},
                {"$and": [{"b": {"$eq": 2}}, {"c": {"$eq": 3}}]},
            ]
        }

    def test_parentheses_override(self):
        q = SqlQuery.parse("SELECT * WHERE (a = 1 OR b = 2) AND c = 3")
        assert q.filter == {
            "$and": [
                {"$or": [{"a": {"$eq": 1}}, {"b": {"$eq": 2}}]},
                {"c": {"$eq": 3}},
            ]
        }

    def test_not(self):
        q = SqlQuery.parse("SELECT * WHERE NOT output = null")
        assert q.filter == {"$not": {"output": {"$eq": None}}}

    def test_in_list(self):
        q = SqlQuery.parse("SELECT * WHERE owner IN ('a', 'b', 'c')")
        assert q.filter == {"owner": {"$in": ["a", "b", "c"]}}

    def test_booleans_and_null(self):
        q = SqlQuery.parse("SELECT * WHERE flag = true AND other = false")
        assert q.filter == {
            "$and": [{"flag": {"$eq": True}}, {"other": {"$eq": False}}]
        }

    def test_order_by_and_limit(self):
        q = SqlQuery.parse("SELECT * WHERE v > 0 ORDER BY output DESC LIMIT 5")
        assert q.order_by == "output" and q.descending and q.limit == 5

    def test_order_by_asc_default(self):
        q = SqlQuery.parse("SELECT * ORDER BY output ASC")
        assert not q.descending

    def test_case_insensitive_keywords(self):
        q = SqlQuery.parse("select * where v = 1 order by v limit 2")
        assert q.limit == 2

    @pytest.mark.parametrize(
        "bad",
        [
            "WHERE v = 1",  # missing SELECT
            "SELECT v",  # only * supported
            "SELECT * WHERE",  # dangling WHERE
            "SELECT * WHERE v =",  # missing value
            "SELECT * WHERE = 3",  # missing field
            "SELECT * WHERE v ~ 3",  # bad operator char
            "SELECT * LIMIT 'five'",  # non-integer limit
            "SELECT * WHERE v IN ()",  # empty IN
            "SELECT * WHERE v = 1 garbage",  # trailing tokens
        ],
    )
    def test_syntax_errors(self, bad):
        with pytest.raises(SqlSyntaxError):
            SqlQuery.parse(bad)

    def test_parsed_filter_executes(self):
        c = Collection("r")
        c.insert_many([{"v": i, "tag": "x" if i % 2 else "y"} for i in range(10)])
        q = SqlQuery.parse("SELECT * WHERE v >= 3 AND tag = 'x' ORDER BY v DESC")
        found = c.find(q.filter, sort=q.order_by, descending=q.descending)
        assert [d["v"] for d in found] == [9, 7, 5, 3]


class TestMachineClause:
    def test_multi_partition_is_or_of_partitions(self):
        """Regression: two partitions used to collapse into one flat dict,
        keeping only the last partition's keys (last-wins overwrite)."""
        cs = {
            "machine_configurations": [
                {
                    "Cori": {
                        "haswell": {"nodes": 1, "cores": 32},
                        "knl": {"nodes": 4, "cores": 68},
                    }
                }
            ]
        }
        flt = build_filter(configuration_space=cs, require_success=False)
        clause = flt["$or"][0]
        subs = clause["$or"]
        assert len(subs) == 2
        by_part = {c["machine_configuration.partition"]: c for c in subs}
        assert by_part["haswell"]["machine_configuration.cores"] == 32
        assert by_part["knl"]["machine_configuration.cores"] == 68
        for c in subs:
            assert c["machine_configuration.machine_name"] == "Cori"

    def test_multi_machine_entry(self):
        """One entry naming two machines matches either of them."""
        cs = {
            "machine_configurations": [
                {"Cori": {"haswell": {"nodes": 1}}, "Summit": {}}
            ]
        }
        flt = build_filter(configuration_space=cs, require_success=False)
        subs = flt["$or"][0]["$or"]
        assert {"machine_configuration.machine_name": "Summit"} in subs
        assert {
            "machine_configuration.machine_name": "Cori",
            "machine_configuration.partition": "haswell",
            "machine_configuration.nodes": 1,
        } in subs

    def test_multi_partition_filters_documents(self):
        """End-to-end through the store: either partition matches, and
        each partition's details apply only to itself."""
        c = Collection("r")
        docs = [
            {"machine_configuration": {"machine_name": "Cori", "partition": "haswell", "cores": 32}},
            {"machine_configuration": {"machine_name": "Cori", "partition": "knl", "cores": 68}},
            {"machine_configuration": {"machine_name": "Cori", "partition": "knl", "cores": 32}},
            {"machine_configuration": {"machine_name": "Summit", "partition": "haswell", "cores": 32}},
        ]
        c.insert_many(docs)
        cs = {
            "machine_configurations": [
                {"Cori": {"haswell": {"cores": 32}, "knl": {"cores": 68}}}
            ]
        }
        flt = build_filter(configuration_space=cs, require_success=False)
        found = c.find(flt)
        parts = sorted(d["machine_configuration"]["partition"] for d in found)
        assert parts == ["haswell", "knl"]
        assert all(d["machine_configuration"]["machine_name"] == "Cori" for d in found)


class TestSqlParserPrecedence:
    def test_not_binds_tighter_than_and(self):
        q = SqlQuery.parse("SELECT * WHERE NOT a = 1 AND b = 2")
        assert q.filter == {
            "$and": [{"$not": {"a": {"$eq": 1}}}, {"b": {"$eq": 2}}]
        }

    def test_and_binds_tighter_than_or(self):
        q = SqlQuery.parse("SELECT * WHERE a = 1 OR b = 2 AND c = 3")
        assert q.filter == {
            "$or": [
                {"a": {"$eq": 1}},
                {"$and": [{"b": {"$eq": 2}}, {"c": {"$eq": 3}}]},
            ]
        }

    def test_parentheses_override_precedence(self):
        q = SqlQuery.parse("SELECT * WHERE (a = 1 OR b = 2) AND c = 3")
        assert q.filter == {
            "$and": [
                {"$or": [{"a": {"$eq": 1}}, {"b": {"$eq": 2}}]},
                {"c": {"$eq": 3}},
            ]
        }

    def test_not_applies_to_parenthesized_group(self):
        q = SqlQuery.parse("SELECT * WHERE NOT (a = 1 OR b = 2)")
        assert q.filter == {
            "$not": {"$or": [{"a": {"$eq": 1}}, {"b": {"$eq": 2}}]}
        }

    def test_escaped_quote_in_string(self):
        q = SqlQuery.parse(r"SELECT * WHERE name = 'O\'Brien'")
        assert q.filter == {"name": {"$eq": "O'Brien"}}

    def test_trailing_garbage_names_offender(self):
        with pytest.raises(SqlSyntaxError, match="trailing tokens.*garbage"):
            SqlQuery.parse("SELECT * WHERE v = 1 garbage")
