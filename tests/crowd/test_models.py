"""Tests for surrogate-model storage and the PS-from-models workflow."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.synthetic import DemoFunction
from repro.core import GaussianProcess
from repro.crowd import Accessibility, CrowdRepository, ModelStore
from repro.crowd.users import AuthError
from repro.tla import MultitaskPS, TransferTuner


@pytest.fixture
def repo():
    return CrowdRepository()


@pytest.fixture
def keys(repo):
    _, a = repo.register_user("alice", "a@lab.gov")
    _, b = repo.register_user("bob", "b@lab.gov")
    return {"alice": a, "bob": b}


@pytest.fixture
def store(repo):
    return ModelStore(repo)


def _trained_gp(seed=0, n=30, d=1):
    rng = np.random.default_rng(seed)
    X = rng.random((n, d))
    y = np.sin(4 * X[:, 0])
    return GaussianProcess(seed=seed).fit(X, y)


class TestUploadQuery:
    def test_roundtrip_predictions(self, store, keys):
        gp = _trained_gp()
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, gp)
        models = store.query_models(keys["bob"], "demo")
        assert len(models) == 1
        loaded = models[0].load()
        Xq = np.linspace(0, 1, 10)[:, None]
        assert np.allclose(loaded.predict_mean(Xq), gp.predict_mean(Xq), atol=1e-8)

    def test_metadata(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(n=25))
        m = store.query_models(keys["bob"], "demo")[0]
        assert m.owner == "alice"
        assert m.n_samples == 25
        assert m.task_parameters == {"t": 0.8}

    def test_auth_required(self, store):
        with pytest.raises(AuthError):
            store.upload_model("bad", "demo", {"t": 1}, _trained_gp())

    def test_problem_name_required(self, store, keys):
        with pytest.raises(ValueError):
            store.upload_model(keys["alice"], "", {"t": 1}, _trained_gp())

    def test_task_filter(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(1))
        store.upload_model(keys["alice"], "demo", {"t": 1.2}, _trained_gp(2))
        found = store.query_models(keys["bob"], "demo", task={"t": 1.2})
        assert len(found) == 1 and found[0].task_parameters == {"t": 1.2}

    def test_latest_only_per_task_and_owner(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(1, n=10))
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(2, n=40))
        models = store.query_models(keys["bob"], "demo")
        assert len(models) == 1 and models[0].n_samples == 40
        both = store.query_models(keys["bob"], "demo", latest_only=False)
        assert len(both) == 2

    def test_private_models_hidden(self, store, keys):
        store.upload_model(
            keys["alice"], "demo", {"t": 0.8}, _trained_gp(),
            accessibility=Accessibility("private"),
        )
        assert store.query_models(keys["bob"], "demo") == []
        assert len(store.query_models(keys["alice"], "demo")) == 1

    def test_group_models_visible_to_members_only(self, repo, store, keys):
        _, carol = repo.register_user("carol", "c@lab.gov")
        repo.users.add_to_group("carol", "hpc")
        store.upload_model(
            keys["alice"], "demo", {"t": 0.8}, _trained_gp(),
            accessibility=Accessibility("group", groups=["hpc"]),
        )
        assert len(store.query_models(carol, "demo")) == 1  # member
        assert store.query_models(keys["bob"], "demo") == []  # outsider
        assert len(store.query_models(keys["alice"], "demo")) == 1  # owner

    def test_load_latest_is_newest_wins_across_owners(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(1, n=50))
        store.upload_model(keys["bob"], "demo", {"t": 0.8}, _trained_gp(2, n=10))
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(3, n=20))
        latest = store.load_latest(keys["bob"], "demo", {"t": 0.8})
        # newest upload wins regardless of owner or sample count
        assert latest is not None
        assert latest.owner == "alice" and latest.n_samples == 20
        assert store.load_latest(keys["bob"], "demo", {"t": 9.9}) is None

    def test_load_latest_skips_invisible_duplicates(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(1, n=10))
        store.upload_model(
            keys["bob"], "demo", {"t": 0.8}, _trained_gp(2, n=30),
            accessibility=Accessibility("private"),
        )
        seen = store.load_latest(keys["alice"], "demo", {"t": 0.8})
        assert seen is not None and seen.n_samples == 10
        # the private re-upload is still the latest for its owner
        own = store.load_latest(keys["bob"], "demo", {"t": 0.8})
        assert own is not None and own.n_samples == 30

    def test_query_best_model(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp(1, n=10))
        store.upload_model(keys["bob"], "demo", {"t": 0.8}, _trained_gp(2, n=50))
        best = store.query_best_model(keys["alice"], "demo", {"t": 0.8})
        assert best is not None and best.n_samples == 50
        assert store.query_best_model(keys["alice"], "demo", {"t": 9.9}) is None

    def test_delete_own(self, store, keys):
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, _trained_gp())
        store.upload_model(keys["bob"], "demo", {"t": 0.8}, _trained_gp())
        assert store.delete_own(keys["alice"], "demo") == 1
        assert store.count() == 1


class TestMultitaskPSFromCrowdModels:
    def test_transfer_from_stored_models_only(self, repo, keys, store):
        """The [11] history-database mode: user B transfer-tunes from
        user A's *model*, never seeing A's raw samples."""
        app = DemoFunction()
        problem = app.make_problem(noisy=False)
        space = problem.parameter_space

        # user A fits and shares a surrogate of task t=0.8
        rng = np.random.default_rng(0)
        configs = [space.sample(rng) for _ in range(60)]
        X = space.to_unit_array(configs)
        y = np.array([problem.objective({"t": 0.8}, c) for c in configs])
        gp = GaussianProcess(seed=0).fit(X, y)
        store.upload_model(keys["alice"], "demo", {"t": 0.8}, gp)

        # user B rebuilds the strategy from the stored model alone
        stored = store.query_best_model(keys["bob"], "demo", {"t": 0.8})
        strategy = MultitaskPS()
        strategy.prepare_from_models(
            [stored.load()], dim=space.dim, rng=np.random.default_rng(1)
        )
        assert strategy.prepared

        tuner = TransferTuner(problem, strategy, sources=[])
        res = tuner.tune({"t": 1.0}, 6, seed=2)
        assert res.n_evaluations == 6
        assert res.best_output < 1.0  # beats the y=1 baseline easily

    def test_prepare_from_models_requires_models(self):
        with pytest.raises(ValueError):
            MultitaskPS().prepare_from_models([], dim=1, rng=np.random.default_rng(0))
