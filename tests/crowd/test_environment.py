"""Tests for automatic environment parsing (Spack/Slurm/CK)."""

from __future__ import annotations

import pytest

from repro.crowd.environment import (
    EnvironmentParseError,
    parse_ck_meta,
    parse_slurm_environment,
    parse_spack_spec,
    parse_version,
)
from repro.hpc import SlurmSim, cori_haswell


class TestParseVersion:
    def test_plain(self):
        assert parse_version("7.2.0") == [7, 2, 0]

    def test_suffixes_dropped(self):
        assert parse_version("9.3.0rc1") == [9, 3, 0]

    def test_partial(self):
        assert parse_version("11") == [11]

    def test_garbage(self):
        with pytest.raises(EnvironmentParseError):
            parse_version("abc")


class TestParseSpackSpec:
    def test_full_spec(self):
        out = parse_spack_spec(
            "superlu-dist@7.2.0%gcc@9.3.0+openmp~cuda arch=cray-cnl7-haswell"
        )
        assert out["name"] == "superlu-dist"
        assert out["version_split"] == [7, 2, 0]
        assert out["compiler"] == {"name": "gcc", "version_split": [9, 3, 0]}
        assert out["variants"] == {"openmp": True, "cuda": False}
        assert out["arch"] == "cray-cnl7-haswell"
        assert out["source"] == "spack"

    def test_name_only(self):
        assert parse_spack_spec("hypre")["name"] == "hypre"

    def test_name_and_version(self):
        out = parse_spack_spec("scalapack@2.1.0")
        assert out["version_split"] == [2, 1, 0]
        assert "compiler" not in out

    def test_compiler_without_version(self):
        out = parse_spack_spec("hypre%intel")
        assert out["compiler"] == {"name": "intel"}

    def test_empty_rejected(self):
        with pytest.raises(EnvironmentParseError):
            parse_spack_spec("")


class TestParseSlurm:
    def test_typical_environment(self):
        env = {
            "SLURM_JOB_ID": "123456",
            "SLURM_JOB_NUM_NODES": "8",
            "SLURM_NTASKS": "256",
            "SLURM_CPUS_PER_TASK": "1",
            "SLURM_JOB_PARTITION": "haswell",
            "SLURM_JOB_NODELIST": "nid0[5000-5007]",
        }
        out = parse_slurm_environment(env)
        assert out["nodes"] == 8 and out["ntasks"] == 256
        assert out["partition"] == "haswell"
        assert out["job_id"] == 123456
        assert out["source"] == "slurm"

    def test_nnodes_fallback(self):
        assert parse_slurm_environment({"SLURM_NNODES": "4"})["nodes"] == 4

    def test_no_slurm_vars(self):
        with pytest.raises(EnvironmentParseError):
            parse_slurm_environment({"PATH": "/bin"})

    def test_roundtrip_with_scheduler_sim(self):
        """SlurmSim's environment must parse back to the allocation."""
        sim = SlurmSim(cori_haswell(16))
        job = sim.salloc(8, ntasks_per_node=32)
        out = parse_slurm_environment(job.environment())
        assert out["nodes"] == 8
        assert out["ntasks"] == 256
        assert out["partition"] == "haswell"


class TestParseCkMeta:
    def test_typical_meta(self):
        out = parse_ck_meta(
            {"data_name": "hypre", "version": "2.24.0", "tags": ["solver", "amg"]}
        )
        assert out["name"] == "hypre"
        assert out["version_split"] == [2, 24, 0]
        assert out["tags"] == ["solver", "amg"]
        assert out["source"] == "ck"

    def test_alternate_name_keys(self):
        assert parse_ck_meta({"soft_name": "x"})["name"] == "x"
        assert parse_ck_meta({"package_name": "y"})["name"] == "y"

    def test_nested_version(self):
        out = parse_ck_meta({"data_name": "x", "customize": {"version": "1.2"}})
        assert out["version_split"] == [1, 2]

    def test_no_name(self):
        with pytest.raises(EnvironmentParseError):
            parse_ck_meta({"version": "1.0"})

    def test_non_mapping(self):
        with pytest.raises(EnvironmentParseError):
            parse_ck_meta("not a dict")
