"""Tests for tag-name matching of machine/software configurations."""

from __future__ import annotations

from repro.crowd.configmatch import TagMatcher, default_matcher


class TestTagMatcher:
    def test_exact_canonical(self):
        m = default_matcher()
        assert m.match_machine("Cori") == "Cori"

    def test_alias_hits(self):
        m = default_matcher()
        assert m.match_machine("cori-haswell") == "Cori"
        assert m.match_machine("NERSC Cori") == "Cori"

    def test_case_and_separator_insensitive(self):
        m = default_matcher()
        assert m.match_machine("CORI_HASWELL") == "Cori"
        assert m.match_machine("cori haswell") == "Cori"

    def test_fuzzy_near_miss(self):
        m = default_matcher()
        assert m.match_machine("corri-haswell") == "Cori"  # typo

    def test_unknown_returns_none(self):
        m = default_matcher()
        assert m.match_machine("Fugaku") is None
        assert m.match_machine("") is None

    def test_software_aliases(self):
        m = default_matcher()
        assert m.match_software("SuperLU_DIST") == "superlu-dist"
        assert m.match_software("ScaLAPACK") == "scalapack"
        assert m.match_software("craympich") == "cray-mpich"

    def test_custom_entries(self):
        m = TagMatcher()
        m.add_machine("MyCluster", aliases=["mc1"], site="here")
        assert m.match_machine("mc1") == "MyCluster"
        assert m.machine_info("MyCluster")["site"] == "here"
        assert m.machines() == ["MyCluster"]

    def test_normalize_machine_configuration(self):
        m = default_matcher()
        config = {"cori_knl": {"knl": {"nodes": 32}}, "Unknown9000": {"x": 1}}
        out = m.normalize_machine_configuration(config)
        assert "Cori" in out and out["Cori"] == {"knl": {"nodes": 32}}
        assert "Unknown9000" in out  # unmatched names pass through

    def test_default_matcher_knows_paper_software(self):
        m = default_matcher()
        for package in ("scalapack", "superlu-dist", "hypre", "nimrod", "gcc"):
            assert m.match_software(package) == package
