"""Tests for the repository browse views."""

from __future__ import annotations

import pytest

from repro.crowd import Accessibility, CrowdRepository, PerformanceRecord
from repro.crowd.views import (
    contributor_stats,
    leaderboard,
    machine_breakdown,
    render_html,
    render_text,
)


@pytest.fixture
def repo_with_data():
    repo = CrowdRepository()
    _, key_a = repo.register_user("alice", "a@lab.gov")
    _, key_b = repo.register_user("bob", "b@lab.gov")

    def rec(task, cfg, out, machine=None, access=None):
        return PerformanceRecord(
            problem_name="p",
            task_parameters=task,
            tuning_parameters=cfg,
            output=out,
            machine_configuration=machine or {"machine_name": "Cori", "partition": "haswell"},
            accessibility=access or Accessibility(),
        )

    # task A: alice has 3 samples (one failure), bob has the best
    repo.upload(rec({"m": 1}, {"x": 1}, 5.0), key_a)
    repo.upload(rec({"m": 1}, {"x": 2}, None), key_a)
    repo.upload(rec({"m": 1}, {"x": 3}, 7.0), key_a)
    repo.upload(rec({"m": 1}, {"x": 4}, 3.0), key_b)
    # task B: alice only, on KNL
    repo.upload(
        rec({"m": 2}, {"x": 5}, 11.0,
            machine={"machine_name": "Cori", "partition": "knl"}),
        key_a,
    )
    # a private record bob can't see
    repo.upload(
        rec({"m": 3}, {"x": 6}, 1.0, access=Accessibility("private")), key_a
    )
    return repo, key_a, key_b


class TestLeaderboard:
    def test_best_per_task(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        rows = leaderboard(repo, key_a, "p")
        by_task = {tuple(r.task_parameters.items()): r for r in rows}
        row_a = by_task[(("m", 1),)]
        assert row_a.best_output == 3.0
        assert row_a.best_owner == "bob"
        assert row_a.n_samples == 4
        assert row_a.n_failures == 1
        assert row_a.contributors == ["alice", "bob"]

    def test_sorted_by_samples(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        rows = leaderboard(repo, key_a, "p")
        assert rows[0].n_samples >= rows[-1].n_samples

    def test_access_control(self, repo_with_data):
        repo, key_a, key_b = repo_with_data
        tasks_a = {tuple(r.task_parameters.items()) for r in leaderboard(repo, key_a, "p")}
        tasks_b = {tuple(r.task_parameters.items()) for r in leaderboard(repo, key_b, "p")}
        assert (("m", 3),) in tasks_a
        assert (("m", 3),) not in tasks_b

    def test_empty_problem(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        assert leaderboard(repo, key_a, "nothing") == []


class TestStats:
    def test_contributor_stats(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        stats = {e["user"]: e for e in contributor_stats(repo, key_a, "p")}
        assert stats["alice"]["samples"] == 5
        assert stats["alice"]["failures"] == 1
        assert stats["alice"]["best"] == 1.0
        assert stats["bob"]["samples"] == 1 and stats["bob"]["best"] == 3.0

    def test_machine_breakdown(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        counts = machine_breakdown(repo, key_a, "p")
        assert counts["Cori/haswell"] == 5
        assert counts["Cori/knl"] == 1


class TestRendering:
    def test_text_view(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        text = render_text(repo, key_a, "p")
        assert "=== p ===" in text
        assert "Cori/haswell" in text
        assert "bob" in text

    def test_html_view_escapes_user_content(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        evil = PerformanceRecord(
            problem_name="p",
            task_parameters={"m": "<script>alert(1)</script>"},
            tuning_parameters={"x": 1},
            output=2.0,
        )
        repo.upload(evil, key_a)
        html = render_html(repo, key_a, "p")
        assert "<script>alert(1)</script>" not in html
        assert "&lt;script&gt;" in html
        assert html.startswith("<!DOCTYPE html>")

    def test_html_contains_leaderboard(self, repo_with_data):
        repo, key_a, _ = repo_with_data
        html = render_html(repo, key_a, "p")
        assert "Leaderboard" in html and "Contributors" in html
        assert "bob" in html
