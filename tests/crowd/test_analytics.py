"""Tests for performance-variability analytics (paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.crowd import PerformanceRecord
from repro.crowd.analytics import (
    detect_outliers,
    group_repeats,
    variability_report,
)


def _rec(output, cfg=None, task=None):
    return PerformanceRecord(
        problem_name="p",
        task_parameters=task or {"t": 1},
        tuning_parameters=cfg or {"x": 0.5},
        output=output,
    )


def _noisy_records(rng, base, n, cv, cfg):
    return [_rec(base * (1 + rng.normal(0, cv)), cfg=cfg) for _ in range(n)]


class TestGroupRepeats:
    def test_groups_by_task_and_config(self):
        records = [
            _rec(1.0, cfg={"x": 0.1}),
            _rec(1.1, cfg={"x": 0.1}),
            _rec(2.0, cfg={"x": 0.2}),
            _rec(5.0, cfg={"x": 0.1}, task={"t": 2}),
        ]
        groups = group_repeats(records)
        assert len(groups) == 1  # only x=0.1/t=1 has >= 2 repeats
        assert groups[0].n == 2

    def test_failures_ignored(self):
        records = [_rec(1.0), _rec(None), _rec(1.2)]
        groups = group_repeats(records)
        assert groups[0].n == 2

    def test_sorted_by_repeat_count(self):
        records = [_rec(1.0, cfg={"x": 0.1})] * 0
        records += [_rec(1.0 + i * 0.01, cfg={"x": 0.1}) for i in range(5)]
        records += [_rec(2.0 + i * 0.01, cfg={"x": 0.2}) for i in range(3)]
        groups = group_repeats(records)
        assert [g.n for g in groups] == [5, 3]

    def test_min_repeats(self):
        records = [_rec(1.0), _rec(1.1)]
        assert group_repeats(records, min_repeats=3) == []


class TestGroupStatistics:
    def test_basic_stats(self):
        records = [_rec(v) for v in (1.0, 1.2, 0.8)]
        g = group_repeats(records)[0]
        assert g.mean == pytest.approx(1.0)
        assert g.median == pytest.approx(1.0)
        assert g.relative_std == pytest.approx(np.std([1.0, 1.2, 0.8], ddof=1), abs=1e-9)
        assert g.spread == pytest.approx(1.5)

    def test_single_like_group_zero_std(self):
        g = group_repeats([_rec(2.0), _rec(2.0)])[0]
        assert g.std == 0.0 and g.relative_std == 0.0

    def test_modified_z_scores_flag_spike(self):
        g = group_repeats([_rec(v) for v in (1.0, 1.02, 0.99, 1.01, 3.0)])[0]
        z = g.modified_z_scores()
        assert abs(z[-1]) > 3.5
        assert all(abs(v) < 3.5 for v in z[:-1])


class TestVariabilityReport:
    def test_pooled_cv_recovers_injected_noise(self, rng):
        records = []
        for i in range(8):
            records += _noisy_records(rng, base=10.0 + i, n=12, cv=0.05,
                                      cfg={"x": i / 10})
        report = variability_report(records, problem_name="p")
        assert report.pooled_relative_std == pytest.approx(0.05, abs=0.02)
        assert report.suggest_noise_model() == report.pooled_relative_std
        assert report.n_repeat_groups == 8

    def test_noisy_groups_flagged(self, rng):
        quiet = _noisy_records(rng, 10.0, 10, 0.02, {"x": 0.1})
        loud = _noisy_records(rng, 10.0, 10, 0.40, {"x": 0.9})
        report = variability_report(quiet + loud, noisy_threshold=0.15)
        assert len(report.noisy_groups) == 1
        assert report.noisy_groups[0].tuning_parameters == {"x": 0.9}

    def test_no_repeats(self):
        report = variability_report([_rec(1.0, cfg={"x": i / 10}) for i in range(5)])
        assert report.n_repeat_groups == 0
        assert report.pooled_relative_std == 0.0

    def test_table_and_summary(self, rng):
        records = _noisy_records(rng, 5.0, 6, 0.1, {"x": 0.3})
        report = variability_report(records, problem_name="demo")
        assert "rel.std" in report.table()
        assert report.summary()["problem"] == "demo"


class TestOutlierDetection:
    def test_finds_injected_outlier(self, rng):
        records = _noisy_records(rng, 10.0, 15, 0.02, {"x": 0.5})
        spike = _rec(30.0, cfg={"x": 0.5})
        found = detect_outliers(records + [spike])
        assert len(found) >= 1
        assert found[0][0].uid == spike.uid
        assert abs(found[0][1]) > 3.5

    def test_clean_data_no_outliers(self, rng):
        records = _noisy_records(rng, 10.0, 20, 0.03, {"x": 0.5})
        assert detect_outliers(records) == []

    def test_small_groups_cannot_convict(self):
        # 2 samples can never exceed the threshold (need >= 3)
        records = [_rec(1.0), _rec(100.0)]
        assert detect_outliers(records) == []
