"""Tests for the document store (MongoDB substitute)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crowd.database import Collection, DocumentStore, QuerySyntaxError


@pytest.fixture
def coll():
    c = Collection("records")
    c.insert_many(
        [
            {"name": "a", "value": 1, "meta": {"machine": "Cori", "nodes": 8}},
            {"name": "b", "value": 5, "meta": {"machine": "Cori", "nodes": 32}},
            {"name": "c", "value": 3, "meta": {"machine": "Summit", "nodes": 8}},
            {"name": "d", "value": None},
        ]
    )
    return c


class TestInsertFind:
    def test_ids_assigned_sequentially(self):
        c = Collection("x")
        assert c.insert({"a": 1}) == 1
        assert c.insert({"a": 2}) == 2

    def test_find_all(self, coll):
        assert len(coll.find()) == 4

    def test_equality_filter(self, coll):
        assert [d["name"] for d in coll.find({"value": 3})] == ["c"]

    def test_nested_path(self, coll):
        found = coll.find({"meta.machine": "Cori"})
        assert {d["name"] for d in found} == {"a", "b"}

    def test_range_operators(self, coll):
        assert {d["name"] for d in coll.find({"value": {"$gte": 3}})} == {"b", "c"}
        assert {d["name"] for d in coll.find({"value": {"$lt": 3}})} == {"a"}
        assert {d["name"] for d in coll.find({"value": {"$gt": 1, "$lte": 3}})} == {"c"}

    def test_in_nin(self, coll):
        assert {d["name"] for d in coll.find({"name": {"$in": ["a", "c"]}})} == {
            "a",
            "c",
        }
        assert {d["name"] for d in coll.find({"name": {"$nin": ["a", "b", "c"]}})} == {
            "d"
        }

    def test_ne_and_none(self, coll):
        assert {d["name"] for d in coll.find({"value": {"$ne": None}})} == {
            "a",
            "b",
            "c",
        }

    def test_exists(self, coll):
        assert {d["name"] for d in coll.find({"meta.nodes": {"$exists": True}})} == {
            "a",
            "b",
            "c",
        }

    def test_regex(self, coll):
        assert {d["name"] for d in coll.find({"meta.machine": {"$regex": "^Co"}})} == {
            "a",
            "b",
        }

    def test_and_or_not(self, coll):
        flt = {"$or": [{"value": 1}, {"meta.machine": "Summit"}]}
        assert {d["name"] for d in coll.find(flt)} == {"a", "c"}
        flt = {"$and": [{"meta.machine": "Cori"}, {"value": {"$gt": 2}}]}
        assert {d["name"] for d in coll.find(flt)} == {"b"}
        assert {d["name"] for d in coll.find({"$not": {"value": None}})} == {
            "a",
            "b",
            "c",
        }

    def test_sort_and_limit(self, coll):
        names = [d["name"] for d in coll.find({"value": {"$ne": None}}, sort="value")]
        assert names == ["a", "c", "b"]
        names = [
            d["name"]
            for d in coll.find({"value": {"$ne": None}}, sort="value", descending=True, limit=2)
        ]
        assert names == ["b", "c"]

    def test_find_one_and_count(self, coll):
        assert coll.find_one({"name": "b"})["value"] == 5
        assert coll.find_one({"name": "zzz"}) is None
        assert coll.count({"meta.machine": "Cori"}) == 2

    def test_type_mismatch_is_no_match(self, coll):
        assert coll.find({"name": {"$gt": 5}}) == []

    def test_bad_operator_raises(self, coll):
        with pytest.raises(QuerySyntaxError):
            coll.find({"value": {"$regexp": "x"}})
        with pytest.raises(QuerySyntaxError):
            coll.find({"$xor": [{"a": 1}]})
        with pytest.raises(QuerySyntaxError):
            coll.find({"$and": "not-a-list"})

    def test_returned_docs_are_copies(self, coll):
        doc = coll.find({"name": "a"})[0]
        doc["meta"]["machine"] = "Hacked"
        assert coll.find({"name": "a"})[0]["meta"]["machine"] == "Cori"

    def test_inserted_docs_are_copied(self):
        c = Collection("x")
        src = {"nested": {"v": 1}}
        c.insert(src)
        src["nested"]["v"] = 99
        assert c.find_one({})["nested"]["v"] == 1


class TestUpdateDelete:
    def test_update(self, coll):
        n = coll.update({"meta.machine": "Cori"}, {"value": 0})
        assert n == 2
        assert coll.count({"value": 0}) == 2

    def test_update_preserves_id(self, coll):
        before = coll.find_one({"name": "a"})["_id"]
        coll.update({"name": "a"}, {"_id": 999, "value": 7})
        doc = coll.find_one({"name": "a"})
        assert doc["_id"] == before and doc["value"] == 7

    def test_delete(self, coll):
        assert coll.delete({"value": None}) == 1
        assert len(coll.find()) == 3


class TestIndexes:
    def test_indexed_equality_matches_scan(self, coll):
        scan = {d["name"] for d in coll.find({"meta.machine": "Cori"})}
        coll.create_index("meta.machine")
        indexed = {d["name"] for d in coll.find({"meta.machine": "Cori"})}
        assert indexed == scan

    def test_index_maintained_by_insert_update_delete(self):
        c = Collection("x")
        c.create_index("k")
        c.insert({"k": "a"})
        c.insert({"k": "b"})
        assert len(c.find({"k": "a"})) == 1
        c.update({"k": "a"}, {"k": "b"})
        assert len(c.find({"k": "b"})) == 2
        c.delete({"k": "b"})
        assert c.find({"k": "b"}) == []

    def test_index_with_operator_falls_back_to_scan(self, coll):
        coll.create_index("value")
        assert {d["name"] for d in coll.find({"value": {"$gte": 3}})} == {"b", "c"}

    def test_mass_delete_leaves_no_empty_buckets(self):
        c = Collection("x")
        c.create_index("k")
        c.insert_many([{"k": f"key-{i}", "grp": i % 2} for i in range(200)])
        assert len(c._indexes["k"]) == 200
        c.delete({"grp": 0})
        # every deleted distinct value's bucket is pruned, not left empty
        assert all(bucket for bucket in c._indexes["k"].values())
        assert len(c._indexes["k"]) == 100
        c.delete({})
        assert c._indexes["k"] == {}

    def test_update_prunes_abandoned_buckets(self):
        c = Collection("x")
        c.create_index("k")
        c.insert({"k": "old"})
        c.update({"k": "old"}, {"k": "new"})
        assert "old" not in {k for k in c._indexes["k"]}
        assert len(c.find({"k": "new"})) == 1

    def test_count_uses_index(self):
        c = Collection("x")
        c.insert_many([{"k": "a", "v": i} for i in range(5)])
        c.insert_many([{"k": "b", "v": i} for i in range(3)])
        c.create_index("k")
        # narrow the pool through the index, then apply the rest of
        # the filter to the candidates only
        assert c.count({"k": "a"}) == 5
        assert c.count({"k": "a", "v": {"$lt": 2}}) == 2
        assert c.count({"k": "missing"}) == 0
        assert c.count() == 8

    def test_unsorted_find_with_limit_short_circuits(self):
        c = Collection("x")
        c.insert_many([{"v": i % 3} for i in range(50)])
        got = c.find({"v": 1}, limit=4)
        assert len(got) == 4
        assert all(d["v"] == 1 for d in got)
        assert c.find({"v": 1}, limit=0) == []
        assert c.find({"v": 1}, limit=-2) == []
        # sorted queries still see every match before limiting
        top = c.find({}, sort="v", descending=True, limit=2)
        assert [d["v"] for d in top] == [2, 2]


class TestStore:
    def test_collection_creation(self):
        store = DocumentStore()
        c1 = store.collection("a")
        assert store["a"] is c1
        assert "a" in store and "b" not in store
        assert store.collection_names() == ["a"]

    def test_invalid_names(self):
        store = DocumentStore()
        with pytest.raises(ValueError):
            store.collection("")
        with pytest.raises(ValueError):
            store.collection("a.b")

    def test_drop(self):
        store = DocumentStore()
        store.collection("a")
        store.drop("a")
        assert "a" not in store

    def test_persistence_roundtrip(self, tmp_path, coll):
        store = DocumentStore()
        store._collections["records"] = coll
        coll.create_index("name")
        path = tmp_path / "db.json"
        store.save(path)
        loaded = DocumentStore.load(path)
        assert loaded["records"].count() == 4
        assert loaded["records"].find_one({"name": "b"})["value"] == 5
        # index survives and works
        assert len(loaded["records"].find({"name": "a"})) == 1

    def test_load_rejects_foreign_files(self, tmp_path):
        p = tmp_path / "x.json"
        p.write_text('{"something": "else"}')
        with pytest.raises(ValueError):
            DocumentStore.load(p)


class TestPropertyBased:
    @given(
        st.lists(
            st.dictionaries(
                st.sampled_from(["a", "b", "c"]),
                st.integers(-10, 10),
                min_size=1,
            ),
            min_size=1,
            max_size=20,
        ),
        st.integers(-10, 10),
    )
    @settings(max_examples=50, deadline=None)
    def test_find_eq_matches_python_filter(self, docs, needle):
        c = Collection("x")
        c.insert_many(docs)
        got = {d["_id"] for d in c.find({"a": needle})}
        expect = {
            i + 1 for i, d in enumerate(docs) if d.get("a") == needle
        }
        assert got == expect

    @given(st.lists(st.integers(-100, 100), min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_range_query_partition(self, values):
        """$lt and $gte partition every finite value set."""
        c = Collection("x")
        c.insert_many([{"v": v} for v in values])
        lo = c.count({"v": {"$lt": 0}})
        hi = c.count({"v": {"$gte": 0}})
        assert lo + hi == len(values)
