"""Columnar record plane: frozen views, row-vs-column parity, batching.

The columnar fast path must be *bit-identical* to the row path for every
filter shape it accepts (and transparently fall back for the rest), the
frozen zero-copy views must be immutable-but-compatible stand-ins for
the old deep copies, and batched journaling must replay exactly like the
historical one-op-per-insert form.
"""

from __future__ import annotations

import copy
import json
import random
import sys
import threading

import pytest

from repro.crowd.columnar import (
    ColumnarView,
    FrozenDict,
    FrozenList,
    freeze,
    thaw,
)
from repro.crowd.database import Collection, DocumentStore, QuerySyntaxError


# ---------------------------------------------------------------------------
# frozen documents
# ---------------------------------------------------------------------------


class TestFrozen:
    def test_freeze_builds_frozen_containers(self):
        doc = {"a": 1, "b": {"c": [1, 2, {"d": 3}]}, "t": (1, [2])}
        frozen = freeze(doc)
        assert isinstance(frozen, FrozenDict)
        assert isinstance(frozen["b"], FrozenDict)
        assert isinstance(frozen["b"]["c"], FrozenList)
        assert isinstance(frozen["b"]["c"][2], FrozenDict)
        assert isinstance(frozen["t"], tuple)
        assert isinstance(frozen["t"][1], FrozenList)

    def test_frozen_equals_plain_and_serializes(self):
        doc = {"a": 1, "b": {"c": [1, 2]}}
        frozen = freeze(doc)
        assert frozen == doc
        assert json.dumps(frozen, sort_keys=True) == json.dumps(doc, sort_keys=True)
        assert repr(frozen) == repr(doc)

    def test_dict_mutators_raise(self):
        frozen = freeze({"a": 1, "b": [1, 2]})
        with pytest.raises(TypeError):
            frozen["a"] = 2
        with pytest.raises(TypeError):
            del frozen["a"]
        with pytest.raises(TypeError):
            frozen.pop("a")
        with pytest.raises(TypeError):
            frozen.update({"x": 1})
        with pytest.raises(TypeError):
            frozen.setdefault("y", 0)
        with pytest.raises(TypeError):
            frozen.clear()

    def test_list_mutators_raise(self):
        frozen = freeze({"b": [1, 2]})["b"]
        with pytest.raises(TypeError):
            frozen[0] = 9
        with pytest.raises(TypeError):
            frozen.append(3)
        with pytest.raises(TypeError):
            frozen.extend([3])
        with pytest.raises(TypeError):
            frozen.sort()
        with pytest.raises(TypeError):
            frozen.reverse()
        with pytest.raises(TypeError):
            frozen.pop()

    def test_deepcopy_of_frozen_is_plain_and_mutable(self):
        frozen = freeze({"a": {"b": [1, 2]}})
        dup = copy.deepcopy(frozen)
        assert type(dup) is dict
        assert type(dup["a"]) is dict
        assert type(dup["a"]["b"]) is list
        dup["a"]["b"].append(3)  # the legacy mutable-copy contract
        assert frozen["a"]["b"] == [1, 2]

    def test_thaw_roundtrip(self):
        doc = {"a": 1, "b": {"c": [1, {"d": 2}]}, "t": (1, 2)}
        thawed = thaw(freeze(doc))
        assert thawed == doc
        assert type(thawed) is dict
        assert type(thawed["b"]["c"]) is list
        assert type(thawed["b"]["c"][1]) is dict
        assert type(thawed["t"]) is tuple

    def test_freeze_is_idempotent(self):
        frozen = freeze({"a": [1]})
        assert freeze(frozen) is frozen


# ---------------------------------------------------------------------------
# collection semantics under the columnar plane
# ---------------------------------------------------------------------------


def _pair(docs):
    """(columnar, row-only) collections holding identical documents."""
    fast = Collection("c")
    fast.enable_columnar()
    slow = Collection("c")
    for d in docs:
        fast.insert(d)
        slow.insert(d)
    return fast, slow


class TestCollectionFrozenReads:
    def test_default_find_returns_mutable_copies(self):
        coll = Collection("c")
        coll.enable_columnar()
        coll.insert({"a": {"b": [1]}})
        out = coll.find({})[0]
        out["a"]["b"].append(2)
        assert coll.find({})[0]["a"]["b"] == [1]

    def test_frozen_find_returns_immutable_views(self):
        coll = Collection("c")
        coll.enable_columnar()
        coll.insert({"a": {"b": [1]}})
        out = coll.find({}, frozen=True)[0]
        assert isinstance(out, FrozenDict)
        with pytest.raises(TypeError):
            out["a"] = 1
        with pytest.raises(TypeError):
            out["a"]["b"].append(2)

    def test_frozen_find_is_zero_copy(self):
        coll = Collection("c")
        coll.insert({"a": 1})
        first = coll.find({}, frozen=True)[0]
        second = coll.find({}, frozen=True)[0]
        assert first is second  # the stored object itself

    def test_insert_does_not_alias_caller_doc(self):
        coll = Collection("c")
        doc = {"a": {"b": [1]}}
        coll.insert(doc)
        doc["a"]["b"].append(2)
        assert coll.find({})[0]["a"]["b"] == [1]


class TestInsertManyBatching:
    def test_insert_many_assigns_sequential_ids(self):
        coll = Collection("c")
        assert coll.insert_many([{"a": 1}, {"a": 2}, {"a": 3}]) == [1, 2, 3]
        assert coll.insert({"a": 4}) == 4

    def test_insert_many_emits_one_batched_op(self):
        store = DocumentStore()
        ops = []
        store.set_observer(ops.append)
        store["c"].insert_many([{"a": 1}, {"a": 2}])
        assert len(ops) == 1
        assert ops[0]["op"] == "insert_many"
        assert [d["a"] for d in ops[0]["docs"]] == [1, 2]
        assert [d["_id"] for d in ops[0]["docs"]] == [1, 2]

    def test_insert_many_empty_is_silent(self):
        store = DocumentStore()
        ops = []
        store.set_observer(ops.append)
        assert store["c"].insert_many([]) == []
        assert ops == []

    def test_apply_op_replays_both_insert_forms(self):
        src = DocumentStore()
        ops = []
        src.set_observer(ops.append)
        src["c"].insert({"a": 1})  # historical one-doc form
        src["c"].insert_many([{"a": 2}, {"a": 3}])  # batched form
        replayed = DocumentStore()
        for op in json.loads(json.dumps(ops)):  # as the WAL would ship them
            replayed.apply_op(op)
        assert replayed["c"].find({}) == src["c"].find({})

    def test_batched_op_journal_is_json_safe(self):
        store = DocumentStore()
        ops = []
        store.set_observer(ops.append)
        store["c"].insert_many([{"a": {"nested": [1, 2]}}])
        json.dumps(ops[0], sort_keys=True)  # FrozenDict/FrozenList are dict/list


# ---------------------------------------------------------------------------
# row-vs-column parity
# ---------------------------------------------------------------------------

_OWNERS = ["alice", "bob", "carol"]
_PROBLEMS = ["p1", "p2", None]


def _random_doc(rng: random.Random) -> dict:
    doc = {
        "problem_name": rng.choice(_PROBLEMS),
        "owner": rng.choice(_OWNERS),
        "output": rng.choice([None, rng.uniform(-5, 5), rng.randint(-3, 3), True]),
        "timestamp": rng.choice([rng.uniform(0, 100), rng.randint(0, 100), None]),
        "task_parameters": {"n": rng.randint(1, 3)},
        "tags": [rng.choice("xyz") for _ in range(rng.randint(0, 2))],
    }
    if rng.random() < 0.3:
        doc["extra"] = rng.choice(["s", 1, 1.0, True, {"k": 1}, [1, 2]])
    if doc["problem_name"] is None:
        del doc["problem_name"]
    return doc


_FILTERS = [
    {},
    {"owner": "alice"},
    {"owner": {"$eq": "bob"}},
    {"owner": {"$ne": "alice"}},
    {"output": None},
    {"output": {"$exists": True}},
    {"output": {"$exists": False}},
    {"output": {"$gt": 0}},
    {"output": {"$gte": -1, "$lt": 2}},
    {"timestamp": {"$lte": 50}},
    {"timestamp": {"$gt": 25.5, "$lt": 75.0}},
    {"owner": {"$in": ["alice", "carol"]}},
    {"owner": {"$nin": ["bob"]}},
    {"owner": {"$regex": "^a"}},
    {"task_parameters.n": 2},
    {"task_parameters.n": {"$gte": 2}},
    {"missing.path": None},
    {"extra": 1},
    {"extra": {"k": 1}},
    {"tags": ["x"]},
    {"$and": [{"owner": "alice"}, {"output": {"$exists": True}}]},
    {"$or": [{"owner": "bob"}, {"timestamp": {"$gt": 90}}]},
    {"$not": {"owner": "alice"}},
    {"$and": [{"$or": [{"owner": "alice"}, {"owner": "bob"}]}, {"output": {"$lt": 0}}]},
    {"output": True},
    {"output": 1},
]

_SORTS = [None, "timestamp", "output", "owner", "extra", "task_parameters.n"]
_LIMITS = [None, 0, 1, 3, 100]


class TestRowColumnParity:
    def test_randomized_parity_grid(self):
        rng = random.Random(1234)
        fast, slow = _pair([_random_doc(rng) for _ in range(150)])
        checked = 0
        for flt in _FILTERS:
            for sort in _SORTS:
                for descending in (False, True):
                    for limit in _LIMITS:
                        got = fast.find(
                            flt, sort=sort, descending=descending, limit=limit
                        )
                        want = slow.find(
                            flt, sort=sort, descending=descending, limit=limit
                        )
                        assert got == want, (flt, sort, descending, limit)
                        checked += 1
                    assert fast.count(flt) == slow.count(flt)
        assert checked == len(_FILTERS) * len(_SORTS) * 2 * len(_LIMITS)

    def test_parity_under_mutation_interleavings(self):
        rng = random.Random(99)
        fast, slow = _pair([_random_doc(rng) for _ in range(60)])
        for step in range(40):
            roll = rng.random()
            if roll < 0.45:
                doc = _random_doc(rng)
                fast.insert(doc)
                slow.insert(doc)
            elif roll < 0.65:
                owner = rng.choice(_OWNERS)
                changes = {"output": rng.uniform(0, 1), "touched": step}
                assert fast.update({"owner": owner}, changes) == slow.update(
                    {"owner": owner}, changes
                )
            elif roll < 0.8:
                flt = {"timestamp": {"$gt": rng.uniform(0, 100)}}
                assert fast.delete(flt) == slow.delete(flt)
            else:
                # out-of-order restore: forces a dirty rebuild
                doc = _random_doc(rng)
                doc["_id"] = rng.randint(1, 300)
                fast.restore(doc)
                slow.restore(doc)
            flt = rng.choice(_FILTERS)
            sort = rng.choice(_SORTS)
            desc = rng.choice([False, True])
            limit = rng.choice(_LIMITS)
            assert fast.find(flt, sort=sort, descending=desc, limit=limit) == slow.find(
                flt, sort=sort, descending=desc, limit=limit
            ), (step, flt, sort, desc, limit)
            assert fast.count(flt) == slow.count(flt)

    def test_frozen_results_equal_mutable_results(self):
        rng = random.Random(7)
        fast, _ = _pair([_random_doc(rng) for _ in range(50)])
        for flt in _FILTERS[:8]:
            assert fast.find(flt, sort="timestamp", frozen=True) == fast.find(
                flt, sort="timestamp"
            )

    def test_indexed_field_parity(self):
        fast, slow = _pair(
            [{"k": v, "King": i} for i, v in enumerate(["a", "b", "a", "c"])]
        )
        fast.create_index("k")
        slow.create_index("k")
        for flt in ({"k": "a"}, {"k": "zzz"}, {"$and": [{"k": "a"}, {"King": 0}]}):
            assert fast.find(flt) == slow.find(flt)

    def test_sort_stability_matches_row_path(self):
        docs = [{"v": 1, "tag": i} for i in range(5)]
        docs += [{"v": None, "tag": i} for i in range(5, 8)]
        docs += [{"v": 1.0, "tag": i} for i in range(8, 11)]
        fast, slow = _pair(docs)
        for desc in (False, True):
            assert fast.find({}, sort="v", descending=desc) == slow.find(
                {}, sort="v", descending=desc
            )

    def test_mixed_type_sort_parity(self):
        docs = [
            {"v": x}
            for x in [3, "b", None, 2.5, "a", True, False, {"z": 1}, [1], 3.0, None]
        ]
        fast, slow = _pair(docs)
        for desc in (False, True):
            assert fast.find({}, sort="v", descending=desc) == slow.find(
                {}, sort="v", descending=desc
            )

    def test_bad_operator_still_raises(self):
        fast, _ = _pair([{"a": 1}])
        with pytest.raises(QuerySyntaxError):
            fast.find({"a": {"$regexp": "x"}})
        with pytest.raises(QuerySyntaxError):
            fast.find({"$xor": [{"a": 1}]})
        with pytest.raises(QuerySyntaxError):
            fast.find({"$and": "not-a-list"})

    def test_unsupported_shapes_fall_back_not_crash(self):
        # huge ints past float64 exactness, NaN arguments, bad regexes
        fast, slow = _pair(
            [{"v": 2**60}, {"v": 2**60 + 1}, {"v": 1}, {"v": float("nan")}]
        )
        for flt in (
            {"v": {"$gt": 2**60}},
            {"v": {"$gte": 2**53 + 1}},
            {"v": float("nan")},
            {"v": {"$in": [float("nan"), 1]}},
        ):
            assert fast.find(flt) == slow.find(flt)
        # a bad regex only raises when it meets a string value — on both paths
        fast2, slow2 = _pair([{"v": "text"}])
        with pytest.raises(Exception):
            slow2.find({"v": {"$regex": "("}})
        with pytest.raises(Exception):
            fast2.find({"v": {"$regex": "("}})


# ---------------------------------------------------------------------------
# concurrency: incremental maintenance under writer/reader pressure
# ---------------------------------------------------------------------------


class TestConcurrentWritersVsReaders:
    def test_no_stale_or_torn_reads(self):
        coll = Collection("c")
        coll.enable_columnar()
        coll.create_index("owner")
        stop = threading.Event()
        errors: list[BaseException] = []
        old_interval = sys.getswitchinterval()
        sys.setswitchinterval(1e-5)
        try:
            def writer(seed: int) -> None:
                rng = random.Random(seed)
                try:
                    for i in range(200):
                        roll = rng.random()
                        if roll < 0.6:
                            coll.insert({"owner": f"w{seed}", "n": i})
                        elif roll < 0.8:
                            coll.update({"owner": f"w{seed}"}, {"touched": i})
                        else:
                            coll.delete({"owner": f"w{seed}", "n": i - 10})
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            def reader() -> None:
                try:
                    while not stop.is_set():
                        frozen = coll.find({"owner": "w0"}, frozen=True)
                        for doc in frozen:
                            # torn read would show a half-written doc
                            assert doc["owner"] == "w0"
                            assert isinstance(doc["n"], int)
                        n = coll.count({"owner": {"$in": ["w0", "w1"]}})
                        assert n >= 0
                        both = coll.find(
                            {"owner": {"$in": ["w0", "w1"]}}, sort="n"
                        )
                        assert len(both) >= 0
                except BaseException as exc:  # pragma: no cover
                    errors.append(exc)

            writers = [threading.Thread(target=writer, args=(i,)) for i in range(2)]
            readers = [threading.Thread(target=reader) for _ in range(2)]
            for t in writers + readers:
                t.start()
            for t in writers:
                t.join()
            stop.set()
            for t in readers:
                t.join()
        finally:
            sys.setswitchinterval(old_interval)
        assert errors == []
        # final state visible and consistent: columnar count == row scan
        slow = Collection("c")
        for d in coll.find({}):
            slow.insert({k: v for k, v in d.items() if k != "_id"})
        assert coll.count({"owner": "w1"}) == slow.count({"owner": "w1"})


# ---------------------------------------------------------------------------
# the view's incremental maintenance internals
# ---------------------------------------------------------------------------


class TestViewMaintenance:
    def test_in_order_inserts_append_without_rebuild(self):
        coll = Collection("c")
        coll.enable_columnar()
        coll.insert({"a": 1})
        assert coll.find({"a": 1})  # builds the column
        view = coll._columnar
        assert not view._dirty
        coll.insert({"a": 2})
        assert not view._dirty  # appended incrementally
        assert [d["a"] for d in coll.find({})] == [1, 2]

    def test_update_marks_dirty_and_rebuild_recovers(self):
        coll = Collection("c")
        coll.enable_columnar()
        coll.insert_many([{"a": 1}, {"a": 2}])
        assert coll.count({"a": 1}) == 1
        coll.update({"a": 1}, {"a": 9})
        assert coll._columnar._dirty
        assert coll.count({"a": 9}) == 1
        assert coll.count({"a": 1}) == 0

    def test_out_of_order_restore_keeps_id_order(self):
        coll = Collection("c")
        coll.enable_columnar()
        coll.restore({"_id": 5, "a": "late"})
        coll.restore({"_id": 2, "a": "early"})
        assert [d["_id"] for d in coll.find({})] == [2, 5]
        assert [d["_id"] for d in coll.find({}, frozen=True)] == [2, 5]

    def test_standalone_view_select(self):
        docs = {}
        view = ColumnarView(docs)
        docs[1] = freeze({"_id": 1, "v": 3})
        docs[2] = freeze({"_id": 2, "v": 1})
        view.ensure_clean()
        mask = view.filter_mask({"v": {"$gt": 0}})
        assert mask is not None and mask.sum() == 2
        out = view.select(mask, sort="v")
        assert [d["v"] for d in out] == [1, 3]
