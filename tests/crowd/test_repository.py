"""Tests for the crowd repository: auth, access control, queries."""

from __future__ import annotations

import pytest

from repro.crowd import (
    Accessibility,
    AuthError,
    CrowdRepository,
    PerformanceRecord,
)


@pytest.fixture
def repo():
    return CrowdRepository()


@pytest.fixture
def users(repo):
    _, key_a = repo.register_user("alice", "alice@lab.gov")
    _, key_b = repo.register_user("bob", "bob@lab.gov")
    return {"alice": key_a, "bob": key_b}


def _rec(output=1.0, problem="demo", access=None, machine=None, software=None, task=None):
    return PerformanceRecord(
        problem_name=problem,
        task_parameters=task or {"t": 1},
        tuning_parameters={"x": 0.5},
        output=output,
        machine_configuration=machine or {},
        software_configuration=software or {},
        accessibility=access or Accessibility(),
    )


class TestUpload:
    def test_requires_valid_key(self, repo, users):
        with pytest.raises(AuthError):
            repo.upload(_rec(), "bad-key")

    def test_owner_forced_to_uploader(self, repo, users):
        rec = _rec()
        rec.owner = "mallory"
        repo.upload(rec, users["alice"])
        stored = repo.query(users["alice"], problem_name="demo")
        assert stored[0].owner == "alice"

    def test_machine_name_normalized(self, repo, users):
        rec = _rec(machine={"machine_name": "cori-haswell", "nodes": 4})
        repo.upload(rec, users["alice"])
        stored = repo.query(users["alice"], problem_name="demo")[0]
        assert stored.machine_configuration["machine_name"] == "Cori"

    def test_software_names_normalized(self, repo, users):
        rec = _rec(software={"SuperLU_DIST": {"version_split": [7, 2, 0]}})
        repo.upload(rec, users["alice"])
        stored = repo.query(users["alice"], problem_name="demo")[0]
        assert "superlu-dist" in stored.software_configuration

    def test_timestamps_monotonic(self, repo, users):
        repo.upload(_rec(), users["alice"])
        repo.upload(_rec(), users["alice"])
        recs = repo.query(users["alice"], problem_name="demo")
        assert recs[0].timestamp < recs[1].timestamp

    def test_upload_many(self, repo, users):
        ids = repo.upload_many([_rec(), _rec(), _rec()], users["alice"])
        assert len(ids) == 3 and repo.count() == 3


class TestAccessControl:
    def test_public_records_visible_to_others(self, repo, users):
        repo.upload(_rec(), users["alice"])
        assert len(repo.query(users["bob"], problem_name="demo")) == 1

    def test_private_records_hidden(self, repo, users):
        repo.upload(_rec(access=Accessibility("private")), users["alice"])
        assert repo.query(users["bob"], problem_name="demo") == []
        assert len(repo.query(users["alice"], problem_name="demo")) == 1

    def test_group_records(self, repo, users):
        repo.upload(
            _rec(access=Accessibility("group", groups=["ecp"])), users["alice"]
        )
        assert repo.query(users["bob"], problem_name="demo") == []
        repo.users.add_to_group("bob", "ecp")
        assert len(repo.query(users["bob"], problem_name="demo")) == 1

    def test_problems_listing_respects_access(self, repo, users):
        repo.upload(_rec(problem="open"), users["alice"])
        repo.upload(
            _rec(problem="hidden", access=Accessibility("private")), users["alice"]
        )
        assert repo.problems(users["bob"]) == ["open"]
        assert repo.problems(users["alice"]) == ["hidden", "open"]


class TestQuery:
    def test_failures_excluded_by_default(self, repo, users):
        repo.upload(_rec(output=None), users["alice"])
        repo.upload(_rec(output=2.0), users["alice"])
        assert len(repo.query(users["bob"], problem_name="demo")) == 1
        both = repo.query(users["bob"], problem_name="demo", require_success=False)
        assert len(both) == 2

    def test_task_range_restriction(self, repo, users):
        for t in (1, 5, 9):
            repo.upload(_rec(task={"t": t}), users["alice"])
        ps = {"input_space": [{"name": "t", "lower_bound": 2, "upper_bound": 8}]}
        found = repo.query(users["bob"], problem_name="demo", problem_space=ps)
        assert [r.task_parameters["t"] for r in found] == [5]

    def test_machine_restriction(self, repo, users):
        repo.upload(
            _rec(machine={"machine_name": "Cori", "partition": "haswell", "nodes": 8}),
            users["alice"],
        )
        repo.upload(
            _rec(machine={"machine_name": "Cori", "partition": "knl", "nodes": 8}),
            users["alice"],
        )
        cs = {"machine_configurations": [{"Cori": {"haswell": {}}}]}
        found = repo.query(users["bob"], problem_name="demo", configuration_space=cs)
        assert len(found) == 1
        assert found[0].machine_configuration["partition"] == "haswell"

    def test_user_restriction(self, repo, users):
        repo.upload(_rec(), users["alice"])
        repo.upload(_rec(), users["bob"])
        cs = {"user_configurations": ["alice"]}
        found = repo.query(users["bob"], problem_name="demo", configuration_space=cs)
        assert [r.owner for r in found] == ["alice"]

    def test_limit(self, repo, users):
        repo.upload_many([_rec() for _ in range(5)], users["alice"])
        assert len(repo.query(users["bob"], problem_name="demo", limit=2)) == 2

    def test_sql_front_end(self, repo, users):
        for out in (3.0, 1.0, 2.0):
            repo.upload(_rec(output=out), users["alice"])
        found = repo.query_sql(
            users["bob"], "SELECT * WHERE output >= 2 ORDER BY output DESC"
        )
        assert [r.output for r in found] == [3.0, 2.0]

    def test_sql_respects_access(self, repo, users):
        repo.upload(_rec(access=Accessibility("private")), users["alice"])
        assert repo.query_sql(users["bob"], "SELECT *") == []


class TestDeleteAndPersistence:
    def test_delete_own_only(self, repo, users):
        repo.upload(_rec(), users["alice"])
        repo.upload(_rec(), users["bob"])
        assert repo.delete_own(users["alice"], "demo") == 1
        remaining = repo.query(users["alice"], problem_name="demo")
        assert [r.owner for r in remaining] == ["bob"]

    def test_save_and_load_records(self, repo, users, tmp_path):
        repo.upload_many([_rec(), _rec()], users["alice"])
        path = tmp_path / "repo.json"
        repo.save(path)
        other = CrowdRepository()
        assert other.load_records(path) == 2
        assert other.count() == 2
