"""Tests for the performance-record schema and accessibility."""

from __future__ import annotations

import pytest

from repro.crowd.records import Accessibility, PerformanceRecord


class TestAccessibility:
    def test_levels_validated(self):
        with pytest.raises(ValueError):
            Accessibility("secret")

    def test_group_needs_groups(self):
        with pytest.raises(ValueError):
            Accessibility("group")

    def test_public_visible_to_all(self):
        a = Accessibility("public")
        assert a.visible_to("anyone", "owner", [])

    def test_private_only_owner(self):
        a = Accessibility("private")
        assert a.visible_to("owner", "owner", [])
        assert not a.visible_to("other", "owner", ["g1"])

    def test_group_visibility(self):
        a = Accessibility("group", groups=["ecp"])
        assert a.visible_to("member", "owner", ["ecp", "other"])
        assert not a.visible_to("outsider", "owner", ["other"])
        assert a.visible_to("owner", "owner", [])  # owner always sees

    def test_roundtrip(self):
        a = Accessibility("group", groups=["x"])
        b = Accessibility.from_dict(a.to_dict())
        assert b.level == "group" and b.groups == ["x"]

    def test_from_none_is_public(self):
        assert Accessibility.from_dict(None).level == "public"


class TestPerformanceRecord:
    def _rec(self, **kw):
        defaults = dict(
            problem_name="demo",
            task_parameters={"t": 1},
            tuning_parameters={"x": 0.5},
            output=1.5,
        )
        defaults.update(kw)
        return PerformanceRecord(**defaults)

    def test_needs_problem_name(self):
        with pytest.raises(ValueError):
            self._rec(problem_name="")

    def test_uids_unique(self):
        a, b = self._rec(), self._rec()
        assert a.uid != b.uid

    def test_failed_flag(self):
        assert self._rec(output=None).failed
        assert not self._rec(output=2.0).failed

    def test_doc_roundtrip(self):
        rec = self._rec(
            owner="alice",
            machine_configuration={"machine_name": "Cori", "nodes": 8},
            software_configuration={"gcc": {"version_split": [9, 3, 0]}},
            accessibility=Accessibility("group", groups=["ecp"]),
        )
        clone = PerformanceRecord.from_doc(rec.to_doc())
        assert clone.problem_name == "demo"
        assert clone.task_parameters == {"t": 1}
        assert clone.tuning_parameters == {"x": 0.5}
        assert clone.machine_configuration["nodes"] == 8
        assert clone.accessibility.level == "group"
        assert clone.uid == rec.uid

    def test_doc_is_jsonable(self):
        import json

        json.dumps(self._rec().to_doc())
