"""Tests for the crowd-tuning API: meta descriptions + utility functions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.synthetic import DemoFunction
from repro.crowd import (
    CrowdClient,
    CrowdRepository,
    MetaDescription,
    PerformanceRecord,
)
from repro.crowd.users import AuthError
from repro.tla import MultitaskTS


@pytest.fixture
def repo():
    return CrowdRepository()


@pytest.fixture
def keys(repo):
    _, a = repo.register_user("user_A", "a@lab.gov")
    _, b = repo.register_user("user_B", "b@lab.gov")
    return {"user_A": a, "user_B": b}


@pytest.fixture
def demo_problem():
    return DemoFunction().make_problem(noisy=False)


def _upload_source(repo, key, problem, task, n, seed=0):
    rng = np.random.default_rng(seed)
    space = problem.parameter_space
    for _ in range(n):
        cfg = space.sample(rng)
        repo.upload(
            PerformanceRecord(
                problem_name=problem.name,
                task_parameters=dict(task),
                tuning_parameters=cfg,
                output=problem.objective(task, cfg),
            ),
            key,
        )


def _meta(key, sync="no", **extra):
    doc = {
        "api_key": key,
        "tuning_problem_name": "demo",
        "problem_space": {
            "input_space": [
                {"name": "t", "type": "real", "lower_bound": 0, "upper_bound": 10}
            ],
            "parameter_space": [
                {"name": "x", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}
            ],
            "output_space": [{"name": "y", "type": "output"}],
        },
        "sync_crowd_repo": sync,
    }
    doc.update(extra)
    return MetaDescription.from_dict(doc)


class TestMetaDescription:
    def test_requires_key_and_name(self):
        with pytest.raises(ValueError):
            MetaDescription.from_dict({"api_key": "k"})
        with pytest.raises(ValueError):
            MetaDescription.from_dict({"tuning_problem_name": "p"})

    def test_sync_flag_parsing(self, keys):
        assert _meta(keys["user_A"], sync="yes").sync_crowd_repo
        assert not _meta(keys["user_A"], sync="no").sync_crowd_repo
        assert _meta(keys["user_A"], sync=True).sync_crowd_repo

    def test_malformed_space_rejected(self, keys):
        with pytest.raises(Exception):
            MetaDescription.from_dict(
                {
                    "api_key": keys["user_A"],
                    "tuning_problem_name": "p",
                    "problem_space": {"parameter_space": [{"type": "real"}]},
                }
            )

    def test_parameter_space_built(self, keys):
        space = _meta(keys["user_A"]).parameter_space()
        assert space.names == ["x"]

    def test_malformed_configuration_space_rejected(self, keys):
        """Regression: validate() checked the problem space but accepted
        any configuration_space, deferring the crash to query time."""
        bad_blocks = [
            "cori",  # not a mapping at all
            {"machine_configurations": "cori"},  # bare string, not a list
            {"machine_configurations": {"machine_name": "cori"}},  # mapping
            {"machine_configurations": ["cori"]},  # entry not a mapping
            {"software_configurations": [{"mpi": {"version_from": "4.0"}}]},
            {"user_configurations": "alice"},
        ]
        for block in bad_blocks:
            with pytest.raises(ValueError):
                _meta(keys["user_A"], configuration_space=block)

    def test_valid_configuration_space_accepted(self, keys):
        meta = _meta(
            keys["user_A"],
            configuration_space={
                "machine_configurations": [{"machine_name": "cori", "nodes": 8}],
                "software_configurations": [
                    {"mpi": {"version_from": [4, 0], "version_to": [4, 2]}},
                    {"blas": {}},
                ],
                "user_configurations": ["alice", "bob"],
            },
        )
        assert meta.configuration_space["user_configurations"] == ["alice", "bob"]

    def test_resolve_environment_spack_and_slurm(self, keys):
        meta = _meta(
            keys["user_A"],
            machine_configuration={
                "machine_name": "Cori",
                "slurm": "yes",
                "slurm_environment": {
                    "SLURM_JOB_NUM_NODES": "8",
                    "SLURM_JOB_PARTITION": "haswell",
                },
            },
            software_configuration={"spack": "scalapack@2.1.0%gcc@9.3.0"},
        )
        machine, software = meta.resolve_environment()
        assert machine["nodes"] == 8 and machine["partition"] == "haswell"
        assert software["scalapack"]["version_split"] == [2, 1, 0]


class TestCrowdClient:
    def test_bad_key_fails_at_construction(self, repo, keys):
        meta = _meta(keys["user_A"])
        meta.api_key = "nope"
        with pytest.raises(AuthError):
            CrowdClient(repo, meta)

    def test_query_function_evaluations(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 10)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        assert len(client.query_function_evaluations()) == 10

    def test_query_source_data_groups_by_task(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 12, seed=0)
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 1.2}, 7, seed=1)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        sources = client.query_source_data()
        assert len(sources) == 2
        # sorted by sample count, largest first (stacking order)
        assert sources[0].n == 12 and sources[1].n == 7
        assert sources[0].task == {"t": 0.8}

    def test_min_samples_filter(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 3)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        assert client.query_source_data(min_samples=5) == []

    def test_query_surrogate_model_predicts(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 40)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        gp = client.query_surrogate_model(task={"t": 0.8})
        x = np.array([[0.5]])
        pred = gp.predict_mean(x)[0]
        true = demo_problem.objective({"t": 0.8}, {"x": 0.5})
        assert pred == pytest.approx(true, abs=0.3)

    def test_query_surrogate_needs_data(self, repo, keys):
        client = CrowdClient(repo, _meta(keys["user_B"]))
        with pytest.raises(ValueError):
            client.query_surrogate_model()

    def test_query_predict_output(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 40)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        preds = client.query_predict_output([{"x": 0.2}, {"x": 0.7}], task={"t": 0.8})
        assert preds.shape == (2,)

    def test_query_sensitivity_analysis(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 60)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        report = client.query_sensitivity_analysis(
            task={"t": 0.8}, n_base=128, seed=0
        )
        assert report.indices.names == ["x"]
        # a 1-parameter problem: x explains everything
        assert report.indices.ST[0] > 0.8

    def test_sensitivity_needs_enough_data(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 2)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        with pytest.raises(ValueError):
            client.query_sensitivity_analysis()


class TestEndToEndTuning:
    def test_sync_uploads_evaluations(self, repo, keys, demo_problem):
        client = CrowdClient(repo, _meta(keys["user_B"], sync="yes"))
        client.tune(demo_problem, {"t": 1.0}, 4, seed=0)
        assert repo.count() == 4

    def test_no_sync_no_uploads(self, repo, keys, demo_problem):
        client = CrowdClient(repo, _meta(keys["user_B"], sync="no"))
        client.tune(demo_problem, {"t": 1.0}, 4, seed=0)
        assert repo.count() == 0

    def test_transfer_used_when_sources_exist(self, repo, keys, demo_problem):
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.8}, 30)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        res = client.tune(
            demo_problem, {"t": 1.0}, 4, strategy=MultitaskTS(), seed=0
        )
        assert res.tuner_name == "Multitask (TS)"

    def test_target_task_excluded_from_sources(self, repo, keys, demo_problem):
        """Records for the target task itself must not be a TLA source."""
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 1.0}, 30)
        client = CrowdClient(repo, _meta(keys["user_B"]))
        res = client.tune(
            demo_problem, {"t": 1.0}, 3, strategy=MultitaskTS(), seed=0
        )
        assert res.tuner_name == "NoTLA"  # no *other* task available

    def test_falls_back_to_notla_without_sources(self, repo, keys, demo_problem):
        client = CrowdClient(repo, _meta(keys["user_B"]))
        res = client.tune(
            demo_problem, {"t": 1.0}, 3, strategy=MultitaskTS(), seed=0
        )
        assert res.tuner_name == "NoTLA"

    def test_crowd_accumulation_improves_later_users(self, repo, keys, demo_problem):
        """The crowd story: user B tunes after user A's data exists and
        immediately starts near the transferred optimum."""
        _upload_source(repo, keys["user_A"], demo_problem, {"t": 0.9}, 60)
        client = CrowdClient(repo, _meta(keys["user_B"], sync="yes"))
        res = client.tune(
            demo_problem, {"t": 1.0}, 5, strategy=MultitaskTS(), seed=0
        )
        notla = CrowdClient(repo, _meta(keys["user_B"])).tune(
            demo_problem, {"t": 1.0}, 5, seed=0
        )
        assert res.best_output <= notla.best_output + 0.05
