"""Tests for the request/response API service."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import GaussianProcess
from repro.crowd.server import CrowdServer


@pytest.fixture
def server():
    return CrowdServer()


@pytest.fixture
def key(server):
    resp = server.handle(
        {"route": "register", "username": "alice", "email": "a@lab.gov"}
    )
    assert resp["ok"]
    return resp["api_key"]


def _upload(server, key, out=1.0, task=None, cfg=None, **extra):
    req = {
        "route": "upload",
        "api_key": key,
        "problem_name": "p",
        "task_parameters": task or {"m": 1},
        "tuning_parameters": cfg or {"x": 0.5},
        "output": out,
    }
    req.update(extra)
    return server.handle(req)


class TestDispatch:
    def test_unknown_route(self, server):
        resp = server.handle({"route": "teleport"})
        assert not resp["ok"] and resp["error"] == "not_found"

    def test_non_mapping_request(self, server):
        resp = server.handle("garbage")
        assert not resp["ok"] and resp["error"] == "bad_request"

    def test_missing_fields_are_bad_request(self, server, key):
        resp = server.handle({"route": "upload", "api_key": key})
        assert not resp["ok"] and resp["error"] == "bad_request"

    def test_bad_key_is_auth_error(self, server):
        resp = server.handle({"route": "problems", "api_key": "nope"})
        assert not resp["ok"] and resp["error"] == "auth"

    def test_never_raises(self, server):
        for req in ({}, {"route": None}, {"route": "query"}, 42, None):
            resp = server.handle(req)  # type: ignore[arg-type]
            assert resp["ok"] is False

    def test_routes_listing(self, server):
        assert "upload" in server.routes() and "register" in server.routes()


class TestJsonTransport:
    def test_json_roundtrip(self, server, key):
        payload = json.dumps(
            {
                "route": "upload",
                "api_key": key,
                "problem_name": "p",
                "task_parameters": {"m": 1},
                "tuning_parameters": {"x": 0.5},
                "output": 2.0,
            }
        )
        resp = json.loads(server.handle_json(payload))
        assert resp["ok"]

    def test_invalid_json(self, server):
        resp = json.loads(server.handle_json("{not json"))
        assert not resp["ok"] and resp["error"] == "bad_request"


class TestAccountRoutes:
    def test_register_and_reuse_key(self, server):
        resp = server.handle(
            {"route": "register", "username": "bob", "email": "b@lab.gov"}
        )
        assert resp["ok"]
        probe = server.handle({"route": "problems", "api_key": resp["api_key"]})
        assert probe["ok"] and probe["problems"] == []

    def test_duplicate_registration(self, server, key):
        resp = server.handle(
            {"route": "register", "username": "alice", "email": "x@lab.gov"}
        )
        assert not resp["ok"] and resp["error"] == "bad_request"

    def test_issue_additional_key(self, server, key):
        resp = server.handle({"route": "issue_key", "api_key": key})
        assert resp["ok"]
        assert server.handle({"route": "problems", "api_key": resp["api_key"]})["ok"]


class TestRecordRoutes:
    def test_upload_and_query(self, server, key):
        assert _upload(server, key, out=3.0)["ok"]
        assert _upload(server, key, out=1.5, cfg={"x": 0.7})["ok"]
        resp = server.handle(
            {"route": "query", "api_key": key, "problem_name": "p"}
        )
        assert resp["ok"] and len(resp["records"]) == 2

    def test_query_sql(self, server, key):
        for out in (3.0, 1.0, 2.0):
            _upload(server, key, out=out, cfg={"x": out})
        resp = server.handle(
            {
                "route": "query_sql",
                "api_key": key,
                "sql": "SELECT * WHERE output < 2.5 ORDER BY output",
            }
        )
        assert [r["output"] for r in resp["records"]] == [1.0, 2.0]

    def test_sql_syntax_error_is_bad_request(self, server, key):
        resp = server.handle(
            {"route": "query_sql", "api_key": key, "sql": "DROP TABLE users"}
        )
        assert not resp["ok"] and resp["error"] == "bad_request"

    def test_problems_listing(self, server, key):
        _upload(server, key)
        resp = server.handle({"route": "problems", "api_key": key})
        assert resp["problems"] == ["p"]


class TestModelRoutes:
    def test_model_roundtrip_over_protocol(self, server, key):
        rng = np.random.default_rng(0)
        X = rng.random((20, 2))
        gp = GaussianProcess(seed=0).fit(X, X[:, 0] + X[:, 1])
        up = server.handle(
            {
                "route": "upload_model",
                "api_key": key,
                "problem_name": "p",
                "task_parameters": {"m": 1},
                "model": gp.to_dict(),
            }
        )
        assert up["ok"]
        down = server.handle(
            {"route": "query_models", "api_key": key, "problem_name": "p"}
        )
        assert down["ok"] and len(down["models"]) == 1
        clone = GaussianProcess.from_dict(down["models"][0]["model"])
        Xq = rng.random((5, 2))
        assert np.allclose(clone.predict_mean(Xq), gp.predict_mean(Xq), atol=1e-8)


class TestBrowseRoutes:
    def test_leaderboard_route(self, server, key):
        _upload(server, key, out=5.0)
        _upload(server, key, out=2.0, cfg={"x": 0.9})
        resp = server.handle(
            {"route": "leaderboard", "api_key": key, "problem_name": "p"}
        )
        assert resp["ok"]
        assert resp["rows"][0]["best_output"] == 2.0

    def test_contributors_route(self, server, key):
        _upload(server, key)
        resp = server.handle(
            {"route": "contributors", "api_key": key, "problem_name": "p"}
        )
        assert resp["contributors"][0]["user"] == "alice"

    def test_browse_html_route(self, server, key):
        _upload(server, key)
        resp = server.handle(
            {"route": "browse_html", "api_key": key, "problem_name": "p"}
        )
        assert resp["ok"] and resp["html"].startswith("<!DOCTYPE html>")
