"""Full-repository persistence: records + models across save/load."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import GaussianProcess
from repro.crowd import CrowdRepository, ModelStore, PerformanceRecord


@pytest.fixture
def populated(tmp_path):
    repo = CrowdRepository()
    _, key = repo.register_user("alice", "a@lab.gov")
    for i in range(5):
        repo.upload(
            PerformanceRecord(
                problem_name="p",
                task_parameters={"m": 1},
                tuning_parameters={"x": i / 10},
                output=float(i),
            ),
            key,
        )
    store = ModelStore(repo)
    rng = np.random.default_rng(0)
    X = rng.random((15, 1))
    gp = GaussianProcess(seed=0).fit(X, np.sin(4 * X[:, 0]))
    store.upload_model(key, "p", {"m": 1}, gp)
    path = tmp_path / "dump.json"
    repo.save(path)
    return repo, key, path, gp


class TestMergeFrom:
    def test_merges_all_collections(self, populated):
        _, _, path, _ = populated
        fresh = CrowdRepository()
        merged = fresh.merge_from(path)
        assert merged["performance_records"] == 5
        assert merged["surrogate_models"] == 1
        assert fresh.count() == 5

    def test_models_survive_roundtrip(self, populated):
        _, _, path, gp = populated
        fresh = CrowdRepository()
        fresh.merge_from(path)
        _, key2 = fresh.register_user("bob", "b@lab.gov")
        models = ModelStore(fresh).query_models(key2, "p")
        assert len(models) == 1
        clone = models[0].load()
        Xq = np.linspace(0, 1, 7)[:, None]
        assert np.allclose(clone.predict_mean(Xq), gp.predict_mean(Xq), atol=1e-8)

    def test_federating_two_sites(self, populated, tmp_path):
        """Merging dumps from two repositories accumulates both."""
        _, _, path_a, _ = populated
        site_b = CrowdRepository()
        _, key_b = site_b.register_user("carol", "c@lab.gov")
        site_b.upload(
            PerformanceRecord(
                problem_name="q",
                task_parameters={"m": 2},
                tuning_parameters={"x": 0.9},
                output=7.0,
            ),
            key_b,
        )
        path_b = tmp_path / "site_b.json"
        site_b.save(path_b)

        combined = CrowdRepository()
        combined.merge_from(path_a)
        combined.merge_from(path_b)
        _, key = combined.register_user("dan", "d@lab.gov")
        assert set(combined.problems(key)) == {"p", "q"}

    def test_load_records_still_works(self, populated):
        _, _, path, _ = populated
        fresh = CrowdRepository()
        assert fresh.load_records(path) == 5
