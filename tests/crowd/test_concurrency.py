"""Thread-safety of the document store / repository boundary.

These tests hammer one ``CrowdRepository`` from concurrent uploader and
reader threads under an aggressively small ``sys.setswitchinterval`` so
the interpreter forces thread switches inside the mutation paths.  On
the pre-lock code the readers crash with ``RuntimeError: dictionary
changed size during iteration`` (or observe torn index state); with the
``RLock`` at the :class:`Collection` boundary every interleaving is
safe.
"""

from __future__ import annotations

import sys
import threading

import pytest

from repro.crowd.database import Collection
from repro.crowd.records import PerformanceRecord
from repro.crowd.repository import CrowdRepository

N_WRITERS = 4
N_READERS = 4
N_OPS = 150


@pytest.fixture(autouse=True)
def _aggressive_switching():
    old = sys.getswitchinterval()
    sys.setswitchinterval(1e-5)
    try:
        yield
    finally:
        sys.setswitchinterval(old)


def _run_threads(targets):
    errors: list[BaseException] = []

    def wrap(fn):
        def run():
            try:
                fn()
            except BaseException as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        return run

    threads = [threading.Thread(target=wrap(fn)) for fn in targets]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return errors


class TestCollectionConcurrency:
    def test_concurrent_insert_find_count(self):
        c = Collection("x")
        c.create_index("k")
        stop = threading.Event()

        def writer(wid):
            def run():
                for i in range(N_OPS):
                    c.insert({"k": f"w{wid}", "i": i})
                    if i % 10 == 0:
                        c.update({"k": f"w{wid}", "i": i}, {"seen": True})
            return run

        def reader():
            def run():
                while not stop.is_set():
                    c.find({"k": "w0"})
                    c.count({})
                    c.find({}, sort="i", limit=5)
            return run

        errors: list[BaseException] = []

        def guarded(fn):
            def run():
                try:
                    fn()
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
            return run

        reader_threads = [
            threading.Thread(target=guarded(reader())) for _ in range(N_READERS)
        ]
        for t in reader_threads:
            t.start()
        write_errors = _run_threads([writer(w) for w in range(N_WRITERS)])
        stop.set()
        for t in reader_threads:
            t.join()
        assert write_errors == []
        assert errors == []
        assert len(c) == N_WRITERS * N_OPS

    def test_concurrent_delete_and_find(self):
        c = Collection("x")
        c.create_index("k")
        c.insert_many([{"k": i % 10, "i": i} for i in range(500)])

        def deleter(group):
            def run():
                c.delete({"k": group})
            return run

        def reader():
            def run():
                for _ in range(50):
                    c.find({})
                    c.count({"k": 3})
            return run

        errors = _run_threads(
            [deleter(g) for g in range(5)] + [reader() for _ in range(4)]
        )
        assert errors == []
        assert len(c) == 250
        assert all(bucket for bucket in c._indexes["k"].values())


class TestRepositoryConcurrency:
    def test_concurrent_upload_and_query(self):
        repo = CrowdRepository()
        _, key = repo.register_user("alice", "a@lab.gov")
        stop = threading.Event()

        def uploader(wid):
            def run():
                for i in range(N_OPS):
                    repo.upload(
                        PerformanceRecord(
                            problem_name="demo",
                            task_parameters={"t": i % 5},
                            tuning_parameters={"x": float(i), "w": wid},
                            output=float(i),
                        ),
                        key,
                    )
            return run

        query_errors: list[BaseException] = []

        def querier():
            def run():
                while not stop.is_set():
                    try:
                        repo.query(key, problem_name="demo")
                        repo.query(
                            key, problem_name="demo", task_parameters={"t": 1}
                        )
                        repo.problems(key)
                    except BaseException as exc:  # noqa: BLE001
                        query_errors.append(exc)
                        return
            return run

        query_threads = [threading.Thread(target=querier()) for _ in range(3)]
        for t in query_threads:
            t.start()
        upload_errors = _run_threads([uploader(w) for w in range(N_WRITERS)])
        stop.set()
        for t in query_threads:
            t.join()
        assert upload_errors == []
        assert query_errors == []
        records = repo.query(key, problem_name="demo")
        assert len(records) == N_WRITERS * N_OPS
        # uids unique even though uploads raced on the uid counter
        assert len({r.uid for r in records}) == N_WRITERS * N_OPS
        # timestamps strictly increase — the logical clock never forked
        stamps = sorted(r.timestamp for r in records)
        assert len(set(stamps)) == len(stamps)
