"""Registry regression tests for sparse large-history builds.

A crowd-sized ``(problem, task)`` history must build in bounded time
(the sparse surrogate's O(nm^2), not the dense O(n^3)) and serve every
subsequent ``predict`` fit-free from the resident frozen view.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.core import perf
from repro.core.sparse import FrozenSparseGP, surrogate_from_dict
from repro.crowd import CrowdRepository, PerformanceRecord
from repro.crowd.records import Accessibility
from repro.registry import ModelRegistry, RegistryOptions

SPACE = {
    "parameter_space": [
        {"name": "x", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}
    ]
}
TASK = {"t": 1}


@pytest.fixture
def repo():
    return CrowdRepository()


@pytest.fixture
def key(repo):
    return repo.register_user("alice", "a@lab.gov")[1]


def _upload_history(repo, key, n, seed=0):
    """Upload n public successful records without triggering builds."""
    rng = np.random.default_rng(seed)
    for _ in range(n):
        x = float(rng.random())
        rec = PerformanceRecord(
            problem_name="demo",
            task_parameters=dict(TASK),
            tuning_parameters={"x": x},
            output=float(np.sin(6 * x) + 0.01 * rng.standard_normal()),
            accessibility=Accessibility(level="public"),
        )
        repo.upload(rec, key)


class TestSparseRegistryBuilds:
    def test_5k_history_builds_bounded_and_serves_fit_free(self, repo, key):
        registry = ModelRegistry(
            repo,
            RegistryOptions(n_dense_max=512, n_inducing=48, min_new_samples=10**9),
        )
        registry.register_problem("demo", SPACE)
        _upload_history(repo, key, 5000)

        t0 = time.perf_counter()
        entry = registry.build("demo", TASK)
        build_s = time.perf_counter() - t0
        assert entry is not None
        assert entry.n_samples == 5000
        assert entry.model["type"] == "sparse"
        # O(nm^2) with m=48 over n=5000: comfortably inside a generous
        # bound that a dense 5000-point MLE would blow through
        assert build_s < 60.0

        configs = [{"x": v} for v in np.linspace(0.0, 0.99, 32)]
        with perf.collect() as stats:
            out = registry.predict("demo", TASK, configs)
        counters = stats.snapshot()["counters"]
        assert "sparse_fits" not in counters
        assert "gp_fits" not in counters
        assert counters.get("registry_predict_batches") == 1
        assert len(out["mean"]) == 32 and len(out["std"]) == 32
        assert np.all(np.isfinite(out["mean"]))

        # the resident predictor is the frozen sparse view
        predictor = registry._predictor_for(entry)
        assert isinstance(predictor, FrozenSparseGP)

    def test_served_model_reconstructs_bitwise_client_side(self, repo, key):
        registry = ModelRegistry(
            repo,
            RegistryOptions(n_dense_max=100, n_inducing=24, min_new_samples=10**9),
        )
        registry.register_problem("demo", SPACE)
        _upload_history(repo, key, 400)
        entry = registry.build("demo", TASK)
        assert entry.model["type"] == "sparse"

        configs = [{"x": v} for v in np.linspace(0.0, 0.99, 16)]
        served = registry.predict("demo", TASK, configs)
        clone = surrogate_from_dict(dict(entry.model))
        X = registry.problem_space("demo").to_unit_array(configs)
        mean, std = clone.predict(X)
        assert [float(v) for v in mean] == served["mean"]
        assert [float(v) for v in std] == served["std"]

    def test_small_history_keeps_dense_entries(self, repo, key):
        """Below n_dense_max the entry format is the historical dense one
        (no "type" dispatch needed by old readers)."""
        registry = ModelRegistry(
            repo, RegistryOptions(n_dense_max=512, min_new_samples=10**9)
        )
        registry.register_problem("demo", SPACE)
        _upload_history(repo, key, 50)
        entry = registry.build("demo", TASK)
        assert entry is not None
        assert "type" not in entry.model
        out = registry.predict("demo", TASK, [{"x": 0.5}])
        assert len(out["mean"]) == 1

    def test_sparse_build_deterministic_across_replicas(self, repo, key):
        """Content-determined entries: two registries over the same record
        set build byte-identical sparse models (anti-entropy convergence)."""
        opts = RegistryOptions(n_dense_max=100, n_inducing=16, min_new_samples=10**9)
        registry = ModelRegistry(repo, opts)
        registry.register_problem("demo", SPACE)
        _upload_history(repo, key, 300)
        a = registry.build("demo", TASK)

        repo2 = CrowdRepository()
        key2 = repo2.register_user("bob", "b@lab.gov")[1]
        registry2 = ModelRegistry(repo2, opts)
        registry2.register_problem("demo", SPACE)
        _upload_history(repo2, key2, 300)
        b = registry2.build("demo", TASK)
        assert a.model == b.model
