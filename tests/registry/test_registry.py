"""Unit tests for the frozen surrogate-model registry core.

Covers the write side (version tracking, debounced builds, background
mode), the read side (serving, staleness, the resident LRU) and the
replication hooks (newest-wins apply of problem/entry documents).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import perf
from repro.crowd import CrowdRepository, PerformanceRecord
from repro.core.problem import task_key
from repro.crowd.records import Accessibility
from repro.registry import (
    DataVersionTracker,
    ModelRegistry,
    RegistryBuilder,
    RegistryEntry,
    RegistryOptions,
    record_counts,
    space_fingerprint,
)

SPACE = {
    "parameter_space": [
        {"name": "x", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}
    ]
}
TASK = {"t": 1}


@pytest.fixture
def repo():
    return CrowdRepository()


@pytest.fixture
def key(repo):
    return repo.register_user("alice", "a@lab.gov")[1]


def _record(i, *, task=None, output=0.0, level="public", problem="demo"):
    return PerformanceRecord(
        problem_name=problem,
        task_parameters=dict(TASK if task is None else task),
        tuning_parameters={"x": (i % 10) / 10.0},
        output=output,
        accessibility=Accessibility(level=level),
    )


def _feed(registry, repo, key, n, *, task=None, start=0):
    """Upload + notify n eligible records, the way the server does."""
    for i in range(start, start + n):
        rec = _record(i, task=task, output=float(i))
        repo.upload(rec, key)
        registry.notify_record(rec)


class TestVersionTracker:
    def test_bump_get_and_keys(self):
        v = DataVersionTracker()
        assert v.get("p", "t1") == 0
        assert v.bump("p", "t1") == 1
        assert v.bump("p", "t1", 2) == 3
        v.bump("q", "t2")
        assert v.keys() == [("p", "t1"), ("q", "t2")]
        assert v.keys(problem_name="q") == [("q", "t2")]
        assert len(v) == 2


class TestEligibility:
    def test_only_public_successful_records_count(self):
        assert record_counts({"output": 1.0})
        assert not record_counts({"output": None})
        assert not record_counts(
            {"output": 1.0, "accessibility": {"level": "private"}}
        )

    def test_ineligible_records_bump_nothing(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        registry.notify_record(_record(0, output=None))
        registry.notify_record(_record(1, level="private"))
        assert registry.versions.get("demo", repr(task_key(TASK))) == 0


class TestRegisterProblem:
    def test_requires_name_and_parameter_space(self, repo):
        registry = ModelRegistry(repo)
        with pytest.raises(ValueError):
            registry.register_problem("", SPACE)
        with pytest.raises(ValueError):
            registry.register_problem("demo", {})
        with pytest.raises(Exception):
            registry.register_problem("demo", {"parameter_space": [{"type": "real"}]})

    def test_newest_wins(self, repo):
        registry = ModelRegistry(repo)
        assert registry.register_problem("demo", SPACE, timestamp=5.0)
        # an older registration does not overwrite
        assert not registry.register_problem("demo", SPACE, timestamp=1.0)
        assert registry.register_problem("demo", SPACE, timestamp=9.0)
        assert registry.problem_space("demo") is not None


class TestBuildAndServe:
    def test_unregistered_problem_is_not_served(self, repo, key):
        registry = ModelRegistry(repo)
        _feed(registry, repo, key, 4)
        with pytest.raises(LookupError):
            registry.predict("demo", TASK, [{"x": 0.5}])

    def test_too_few_samples_is_not_served(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 1)
        with pytest.raises(LookupError):
            registry.predict("demo", TASK, [{"x": 0.5}])

    def test_build_on_upload_then_serve_without_fits(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 5)
        entry = registry.entry_for("demo", TASK)
        assert entry is not None
        assert entry.data_version == 5 and entry.n_samples == 5
        with perf.collect() as stats:
            out = registry.predict("demo", TASK, [{"x": 0.2}, {"x": 0.8}])
        assert stats.counters.get("gp_fits", 0) == 0
        assert stats.counters["registry_hits"] == 1
        assert stats.counters["registry_predict_batches"] == 1
        assert len(out["mean"]) == 2 and len(out["std"]) == 2
        assert not out["stale"]
        assert out["space_fingerprint"] == space_fingerprint(SPACE)

    def test_build_is_deterministic_across_replicas(self):
        entries = []
        for _ in range(2):
            repo = CrowdRepository()
            k = repo.register_user("alice", "a@lab.gov")[1]
            registry = ModelRegistry(repo)
            registry.register_problem("demo", SPACE, timestamp=1.0)
            _feed(registry, repo, k, 6)
            entries.append(registry.entry_for("demo", TASK).to_doc())
        # replicas holding the same record set build byte-identical
        # entries (modulo upload timestamps, which the router stamps
        # identically in the real deployment)
        for doc in entries:
            doc.pop("timestamp")
        assert entries[0] == entries[1]

    def test_debounce_min_new_samples(self, repo, key):
        registry = ModelRegistry(
            repo, RegistryOptions(min_new_samples=3, min_samples=2)
        )
        registry.register_problem("demo", SPACE)
        with perf.collect() as stats:
            _feed(registry, repo, key, 2)
        assert stats.counters.get("registry_builds", 0) == 0
        with perf.collect() as stats:
            _feed(registry, repo, key, 1, start=2)  # third notification: due
        assert stats.counters["registry_builds"] == 1
        assert registry.entry_for("demo", TASK).data_version == 3

    def test_stale_entry_is_served_and_counted(self, repo, key):
        registry = ModelRegistry(
            repo, RegistryOptions(min_new_samples=100, min_samples=2)
        )
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 3)
        registry.predict("demo", TASK, [{"x": 0.5}])  # build on first demand
        _feed(registry, repo, key, 2, start=3)  # not enough to rebuild
        with perf.collect() as stats:
            out = registry.predict("demo", TASK, [{"x": 0.5}])
        assert out["stale"]
        assert out["data_version"] == 3
        assert stats.counters["registry_stale_served"] == 1

    def test_model_meta_round_trips_the_exact_model(self, repo, key):
        from repro.core import GaussianProcess

        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 5)
        meta = registry.model_meta("demo", TASK, include_model=True)
        assert meta["kernel"] == "rbf" and meta["n_samples"] == 5
        gp = GaussianProcess.from_dict(meta["model"])
        X = np.linspace(0, 0.9, 7)[:, None]
        served = registry.predict(
            "demo", TASK, [{"x": float(v)} for v in X.ravel()]
        )
        mean, std = gp.predict(X)
        assert np.array_equal(np.array(served["mean"]), mean.ravel())
        assert np.array_equal(np.array(served["std"]), std.ravel())

    def test_sensitivity_served_from_frozen_model(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 6)
        with perf.collect() as stats:
            out = registry.sensitivity("demo", TASK, n_base=64, n_bootstrap=8, seed=0)
        assert stats.counters.get("gp_fits", 0) == 0
        assert out["names"] == ["x"]
        assert len(out["S1"]) == 1 and len(out["ST"]) == 1
        # deterministic given the frozen model + seed
        again = registry.sensitivity("demo", TASK, n_base=64, n_bootstrap=8, seed=0)
        assert again["S1"] == out["S1"] and again["ST"] == out["ST"]


class TestResidentCache:
    def test_lru_bounded_by_max_resident(self, repo, key):
        registry = ModelRegistry(
            repo, RegistryOptions(max_resident=2, min_samples=2)
        )
        registry.register_problem("demo", SPACE)
        for t in range(4):
            _feed(registry, repo, key, 3, task={"t": t}, start=3 * t)
        assert registry.resident_count() <= 2
        # evicted entries are rebuilt from their stored snapshot, not refit
        with perf.collect() as stats:
            registry.predict("demo", {"t": 0}, [{"x": 0.5}])
        assert stats.counters.get("gp_fits", 0) == 0


class TestReplicationHooks:
    def test_apply_entry_newest_wins(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 4)
        doc = registry.entry_for("demo", TASK).to_doc()
        stale = dict(doc, data_version=1, timestamp=0.5)
        assert not registry.apply_entry(stale)  # older: rejected
        newer = dict(doc, data_version=doc["data_version"] + 1)
        assert registry.apply_entry(newer)
        assert registry.entry_for("demo", TASK).data_version == doc["data_version"] + 1

    def test_applied_entry_evicts_resident_predictor(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        _feed(registry, repo, key, 4)
        registry.predict("demo", TASK, [{"x": 0.5}])
        doc = registry.entry_for("demo", TASK).to_doc()
        registry.apply_entry(dict(doc, data_version=doc["data_version"] + 1))
        # the healed entry is what gets served now
        out = registry.predict("demo", TASK, [{"x": 0.5}])
        assert out["data_version"] == doc["data_version"] + 1

    def test_notify_docs_mirrors_notify_record(self, repo, key):
        registry = ModelRegistry(repo)
        registry.register_problem("demo", SPACE)
        docs = []
        for i in range(3):
            rec = _record(i, output=float(i))
            repo.upload(rec, key)
            docs.append(rec.to_doc())
        registry.notify_docs(docs)
        assert registry.entry_for("demo", TASK) is not None
        assert registry.versions.get("demo", repr(task_key(TASK))) == 3


class TestBackgroundBuilder:
    def test_background_build_flush(self, repo, key):
        registry = ModelRegistry(
            repo, RegistryOptions(background=True, min_samples=2)
        )
        try:
            registry.register_problem("demo", SPACE)
            _feed(registry, repo, key, 4)
            assert registry.flush(timeout_s=10.0)
            assert registry.entry_for("demo", TASK) is not None
        finally:
            registry.close()

    def test_builder_survives_a_failing_build(self):
        calls = []

        def build(problem, task):
            calls.append(problem)
            if problem == "bad":
                raise RuntimeError("boom")

        builder = RegistryBuilder(build, background=True)
        try:
            builder.notify("bad", {}, "tk1")
            builder.notify("good", {}, "tk2")
            assert builder.flush(timeout_s=10.0)
            assert calls == ["bad", "good"]
        finally:
            builder.close()


class TestEntrySchema:
    def test_doc_round_trip(self):
        entry = RegistryEntry(
            problem_name="demo",
            task_parameters={"t": 1},
            task_key="(('t', 1),)",
            data_version=3,
            n_samples=3,
            kernel="rbf",
            seed=0,
            model={"kind": "gp"},
            timestamp=4.5,
            space_fingerprint="abc",
        )
        assert RegistryEntry.from_doc(entry.to_doc()) == entry
        assert entry.meta()["n_samples"] == 3

    def test_fingerprint_is_stable_and_order_insensitive(self):
        a = {"parameter_space": [{"name": "x"}], "input_space": []}
        b = {"input_space": [], "parameter_space": [{"name": "x"}]}
        assert space_fingerprint(a) == space_fingerprint(b)
        assert space_fingerprint(a) != space_fingerprint({"parameter_space": []})
