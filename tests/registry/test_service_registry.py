"""The registry inside the sharded service: end-to-end serving, cache
invalidation, WAL recovery, anti-entropy healing, and the CrowdClient
consult-first/fit-locally fallback contract.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import perf
from repro.crowd import CrowdClient, MetaDescription
from repro.registry import REGISTRY_MODELS, REGISTRY_PROBLEMS, RegistryOptions
from repro.service import RouterOptions, build_service
from repro.service.shard import shard_key

PROBLEM = "demo"
TASK = {"t": 2}
SPACE = {
    "input_space": [
        {"name": "t", "type": "real", "lower_bound": 0, "upper_bound": 10}
    ],
    "parameter_space": [
        {"name": "x", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0}
    ],
    "output_space": [{"name": "y", "type": "output"}],
}
PROBE = [{"x": 0.15}, {"x": 0.4}, {"x": 0.85}]


def _upload(endpoint, key, i, *, task=None):
    return endpoint.handle(
        {
            "route": "upload",
            "api_key": key,
            "problem_name": PROBLEM,
            "task_parameters": dict(TASK if task is None else task),
            "tuning_parameters": {"x": (i % 10) / 10.0},
            "output": float(i % 7) - 3.0,
        }
    )


def _register(endpoint, key):
    return endpoint.handle(
        {
            "route": "register_problem",
            "api_key": key,
            "problem_name": PROBLEM,
            "problem_space": SPACE,
        }
    )


def _predict(endpoint, key, *, task=None, configs=PROBE):
    return endpoint.handle(
        {
            "route": "predict",
            "api_key": key,
            "problem_name": PROBLEM,
            "task_parameters": dict(TASK if task is None else task),
            "configurations": list(configs),
        }
    )


def _meta(key):
    return MetaDescription.from_dict(
        {
            "api_key": key,
            "tuning_problem_name": PROBLEM,
            "problem_space": SPACE,
        }
    )


@pytest.fixture()
def svc():
    service = build_service(3, replication=2, registry=RegistryOptions())
    yield service
    service.close()


@pytest.fixture()
def key(svc):
    return svc.register_user("alice", "alice@lab.gov")[1]


class TestRegistryRoutes:
    def test_register_problem_broadcasts_to_every_shard(self, svc, key):
        response = _register(svc.client, key)
        assert response["ok"]
        assert response["replicas_acked"] == 3
        for shard in svc.shards.values():
            doc = shard.repository.store[REGISTRY_PROBLEMS].find_one(
                {"problem_name": PROBLEM}
            )
            assert doc is not None
            assert doc["problem_space"] == SPACE

    def test_predict_without_registry_is_not_found(self):
        service = build_service(2)  # no registry attached
        try:
            _, k = service.register_user("bob", "b@lab.gov")
            assert _predict(service.client, k)["error"] == "not_found"
        finally:
            service.close()

    def test_predict_needs_registered_problem(self, svc, key):
        for i in range(4):
            _upload(svc.client, key, i)
        assert _predict(svc.client, key)["error"] == "not_found"

    def test_repeated_predict_never_refits(self, svc, key):
        _register(svc.client, key)
        for i in range(6):
            _upload(svc.client, key, i)
        first = _predict(svc.client, key)
        assert first["ok"]
        # the acceptance pin: after the first build, serving is fit-free
        with perf.collect() as stats:
            for _ in range(5):
                response = _predict(svc.client, key)
                assert response["mean"] == first["mean"]
        assert stats.counters.get("gp_fits", 0) == 0

    def test_predict_cache_hit_and_upload_invalidation(self, svc, key):
        _register(svc.client, key)
        for i in range(5):
            _upload(svc.client, key, i)
        first = _predict(svc.client, key)
        before = {n: t.n_requests for n, t in svc.transports.items()}
        assert _predict(svc.client, key) == first
        # served from the router cache: no shard saw the second call
        assert {n: t.n_requests for n, t in svc.transports.items()} == before
        # a write to the same (problem, task) invalidates the entry
        _upload(svc.client, key, 5)
        fresh = _predict(svc.client, key)
        assert fresh["data_version"] == first["data_version"] + 1

    def test_uploads_to_other_tasks_leave_entry_alone(self, svc, key):
        _register(svc.client, key)
        for i in range(5):
            _upload(svc.client, key, i)
        first = _predict(svc.client, key)
        for i in range(3):
            _upload(svc.client, key, i, task={"t": 9})
        assert _predict(svc.client, key)["data_version"] == first["data_version"]


class TestCrowdClientConsultation:
    def test_predictions_bit_identical_to_local_fallback(self, svc, key):
        for i in range(8):
            _upload(svc.client, key, i)
        repo = svc.repository_view()
        via_registry = CrowdClient(repo, _meta(key))
        local = CrowdClient(repo, _meta(key), use_registry=False)
        via_registry.query_predict_output(PROBE, TASK)  # first call: builds
        with perf.collect() as stats:
            served = via_registry.query_predict_output(PROBE, TASK)
        assert stats.counters.get("gp_fits", 0) == 0
        with perf.collect() as stats:
            fitted = local.query_predict_output(PROBE, TASK, seed=0)
        assert stats.counters.get("gp_fits", 0) >= 1
        assert np.array_equal(served, fitted)

    def test_surrogate_model_reconstructed_not_refit(self, svc, key):
        for i in range(8):
            _upload(svc.client, key, i)
        client = CrowdClient(svc.repository_view(), _meta(key))
        client.query_predict_output(PROBE, TASK)  # triggers the build
        with perf.collect() as stats:
            gp = client.query_surrogate_model(TASK)
        assert stats.counters.get("gp_fits", 0) == 0
        X = np.array([[c["x"]] for c in PROBE])
        local = CrowdClient(
            svc.repository_view(), _meta(key), use_registry=False
        ).query_surrogate_model(TASK, seed=0)
        assert np.array_equal(gp.predict_mean(X), local.predict_mean(X))

    def test_sensitivity_report_served_fit_free(self, svc, key):
        for i in range(10):
            _upload(svc.client, key, i)
        client = CrowdClient(svc.repository_view(), _meta(key))
        client.query_predict_output(PROBE, TASK)  # triggers the build
        with perf.collect() as stats:
            report = client.query_sensitivity_analysis(TASK, n_base=64, seed=0)
        assert stats.counters.get("gp_fits", 0) == 0
        assert report.indices.names == ["x"]
        assert report.n_samples == 10
        assert report.space.names == ["x"]

    def test_cross_task_and_max_samples_queries_fit_locally(self, svc, key):
        for i in range(8):
            _upload(svc.client, key, i)
        client = CrowdClient(svc.repository_view(), _meta(key))
        with perf.collect() as stats:
            client.query_predict_output(PROBE)  # task=None: local path
        assert stats.counters.get("gp_fits", 0) == 1
        with perf.collect() as stats:
            client.query_sensitivity_analysis(TASK, n_base=64, max_samples=6, seed=0)
        assert stats.counters.get("gp_fits", 0) >= 1

    def test_no_registry_falls_back_permanently(self):
        service = build_service(2)  # no registry
        try:
            _, k = service.register_user("bob", "b@lab.gov")
            for i in range(6):
                _upload(service.client, k, i)
            client = CrowdClient(service.repository_view(), _meta(k))
            with perf.collect() as stats:
                out = client.query_predict_output(PROBE, TASK, seed=0)
            assert stats.counters.get("gp_fits", 0) == 1
            assert out.shape == (len(PROBE),)
            assert not client._use_registry  # one failed probe disables it
        finally:
            service.close()


class TestDurabilityAndHealing:
    def test_entries_survive_shard_restart(self, tmp_path):
        service = build_service(
            2,
            replication=2,
            data_dir=tmp_path,
            registry=RegistryOptions(),
            options=RouterOptions(replication=2, cache_size=0),
        )
        try:
            _, k = service.register_user("bob", "b@lab.gov")
            _register(service.client, k)
            for i in range(6):
                _upload(service.client, k, i)
            first = _predict(service.client, k)
            assert first["ok"]
            for name in list(service.shards):
                service.restart_shard(name)
            # recovery rebuilt the stores from WAL: the entry is intact
            # and serving needs no refit
            with perf.collect() as stats:
                recovered = _predict(service.client, k)
            assert stats.counters.get("gp_fits", 0) == 0
            assert recovered["mean"] == first["mean"]
            assert recovered["std"] == first["std"]
            assert recovered["data_version"] == first["data_version"]
        finally:
            service.close()

    def test_anti_entropy_heals_entries_to_replicas(self):
        # a huge debounce keeps uploads from building: the only build
        # happens on demand, on the shard that served the first predict
        service = build_service(
            3,
            replication=2,
            registry=RegistryOptions(min_new_samples=10**6),
            options=RouterOptions(replication=2, cache_size=0),
        )
        try:
            _, k = service.register_user("bob", "b@lab.gov")
            _register(service.client, k)
            for i in range(6):
                _upload(service.client, k, i)
            first = _predict(service.client, k)
            assert first["ok"]
            ring_key = shard_key(PROBLEM, TASK)
            primary, backup = service.router.ring.preference(ring_key, 2)
            assert service.shards[primary].repository.store[
                REGISTRY_MODELS
            ].find_one({"problem_name": PROBLEM})
            assert (
                service.shards[backup].repository.store[REGISTRY_MODELS].find_one(
                    {"problem_name": PROBLEM}
                )
                is None
            )
            service.router.anti_entropy_round()
            healed = service.shards[backup].repository.store[
                REGISTRY_MODELS
            ].find_one({"problem_name": PROBLEM})
            assert healed is not None
            # the healed replica serves the identical model, fit-free
            service.kill_shard(primary)
            with perf.collect() as stats:
                survived = _predict(service.client, k)
            assert stats.counters.get("gp_fits", 0) == 0
            assert survived["ok"]
            assert survived["mean"] == first["mean"]
        finally:
            service.close()

    def test_anti_entropy_is_quiescent_when_converged(self, svc, key):
        _register(svc.client, key)
        for i in range(6):
            _upload(svc.client, key, i)
        _predict(svc.client, key)
        svc.router.anti_entropy_round()
        stats = svc.router.anti_entropy_round()
        assert stats["healed"] == 0
