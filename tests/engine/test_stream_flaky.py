"""CrowdStreamer over a flaky transport: faults become retries, not
lost records."""

from __future__ import annotations

from repro.core.problem import Evaluation
from repro.crowd.server import CrowdServer
from repro.engine.faults import RetryPolicy
from repro.engine.stream import CrowdStreamer
from repro.service import ServiceClient, SimTransport, build_service


def _make_server():
    server = CrowdServer()
    response = server.handle(
        {"route": "register", "username": "alice", "email": "a@lab.gov"}
    )
    return server, response["api_key"]


def _evaluations(n):
    return [
        Evaluation(task={"t": i % 3}, config={"x": float(i)}, output=float(i))
        for i in range(n)
    ]


class TestStreamerOverFlakyTransport:
    def test_every_upload_lands_despite_faults(self):
        server, key = _make_server()
        transport = SimTransport(server.handle, "s0", fault_rate=0.3, seed=11)
        client = ServiceClient(
            transport,
            retry=RetryPolicy(max_retries=8, base_s=0.0),
            sleep=lambda s: None,
        )
        streamer = CrowdStreamer(client, key, "demo")
        for ev in _evaluations(40):
            streamer(ev)
        assert streamer.errors == []
        assert streamer.n_uploaded == 40
        # faults really fired — the client had to retry to get here
        assert client.n_retries > 0
        # server-side count matches exactly: nothing lost, nothing doubled
        stored = server.repository.query(key, problem_name="demo")
        assert len(stored) == 40
        assert {int(r.tuning_parameters["x"]) for r in stored} == set(range(40))

    def test_unretried_faults_would_lose_records(self):
        """Control: the same fault schedule without retries drops data
        (this is the failure the ServiceClient exists to absorb)."""
        server, key = _make_server()
        transport = SimTransport(server.handle, "s0", fault_rate=0.3, seed=11)
        client = ServiceClient(
            transport, retry=RetryPolicy(max_retries=0), sleep=lambda s: None
        )
        streamer = CrowdStreamer(client, key, "demo")
        for ev in _evaluations(40):
            streamer(ev)
        assert streamer.n_uploaded < 40
        assert len(streamer.errors) == 40 - streamer.n_uploaded
        assert all(e["error"] == "unavailable" for e in streamer.errors)
        stored = server.repository.query(key, problem_name="demo")
        assert len(stored) == streamer.n_uploaded

    def test_streamer_over_whole_flaky_service(self):
        """End to end: streamer -> retrying client -> router -> flaky
        shard transports; the deduplicated service view is complete."""
        svc = build_service(3, replication=2, fault_rate=0.15, seed=5)
        try:
            _, key = svc.register_user("alice", "a@lab.gov")
            streamer = CrowdStreamer(svc.client, key, "demo")
            for ev in _evaluations(30):
                streamer(ev)
            assert streamer.n_uploaded == 30
            assert streamer.errors == []
            records = svc.client.handle(
                {"route": "query", "api_key": key, "problem_name": "demo"}
            )["records"]
            assert len(records) == 30
        finally:
            svc.close()
