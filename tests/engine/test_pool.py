"""Tests for the worker pool: threading, latency, timeouts, allocations."""

from __future__ import annotations

import queue
import time

import pytest

from repro.core import perf
from repro.core.problem import Evaluation
from repro.engine import EvalJob, ScriptedFaults, WorkerPool
from repro.hpc import SlurmSim, cori_haswell


def make_eval(config):
    return Evaluation({"t": 1}, dict(config), config["x"] * 2.0)


def drain(pool, n, timeout=10.0):
    return [pool.get(timeout=timeout) for _ in range(n)]


class TestLifecycle:
    def test_submit_and_collect(self):
        with WorkerPool(make_eval, 2) as pool:
            ids = [pool.submit({"x": float(i)}) for i in range(6)]
            assert ids == list(range(6))
            outcomes = drain(pool, 6)
        assert {o.job.job_id for o in outcomes} == set(range(6))
        assert all(o.ok for o in outcomes)
        assert all(o.evaluation.output == o.job.config["x"] * 2.0 for o in outcomes)
        assert pool.inflight == 0

    def test_invalid_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(make_eval, 0)

    def test_close_idempotent(self):
        pool = WorkerPool(make_eval, 2).start()
        pool.close()
        pool.close()

    def test_objective_exception_reported_not_raised(self):
        def boom(config):
            raise RuntimeError("kaboom")

        with WorkerPool(boom, 1) as pool:
            pool.submit({"x": 1.0})
            out = pool.get(timeout=5.0)
        assert out.evaluation is None
        assert out.error.startswith("error:")


class TestSlurmIntegration:
    def test_workers_hold_allocations_for_lifetime(self):
        sim = SlurmSim(cori_haswell(16))
        pool = WorkerPool(make_eval, 4, scheduler=sim, nodes_per_worker=2)
        assert sim.free_nodes == 16
        with pool:
            assert sim.free_nodes == 8
            pool.submit({"x": 1.0})
            out = pool.get(timeout=5.0)
            assert out.metadata["nodelist"].startswith("nid")
            assert out.metadata["slurm_job_id"] == pool.allocation(out.worker_id).job_id
        assert sim.free_nodes == 16  # all released on close

    def test_cluster_too_small(self):
        sim = SlurmSim(cori_haswell(4))
        from repro.hpc import AllocationError

        with pytest.raises(AllocationError):
            WorkerPool(make_eval, 8, scheduler=sim, nodes_per_worker=1).start()


class TestLatency:
    def test_parallel_speedup(self):
        latency = lambda ev: 0.08
        n = 4

        def run(workers):
            t0 = time.perf_counter()
            with WorkerPool(make_eval, workers, latency_fn=latency) as pool:
                for i in range(n):
                    pool.submit({"x": float(i)})
                drain(pool, n)
            return time.perf_counter() - t0

        serial = run(1)
        parallel = run(4)
        assert serial > 4 * 0.08 * 0.9
        assert parallel < serial / 1.5

    def test_latency_recorded_in_metadata(self):
        with WorkerPool(make_eval, 1, latency_fn=lambda ev: 0.03) as pool:
            pool.submit({"x": 1.0})
            out = pool.get(timeout=5.0)
        assert out.latency_s == pytest.approx(0.03)
        assert out.metadata["latency_s"] == pytest.approx(0.03)

    def test_heterogeneous_workers_have_distinct_speeds(self):
        pool = WorkerPool(make_eval, 8, heterogeneity=0.5, seed=7)
        assert len(set(pool._speeds)) > 1
        pool2 = WorkerPool(make_eval, 8, heterogeneity=0.5, seed=7)
        assert pool._speeds == pool2._speeds  # seeded => reproducible


class TestTimeouts:
    def test_slow_evaluation_times_out(self):
        with WorkerPool(
            make_eval, 1, latency_fn=lambda ev: 10.0, timeout_s=0.05
        ) as pool:
            with perf.collect() as stats:
                pool.submit({"x": 1.0})
                out = pool.get(timeout=5.0)
        assert out.error == "timeout"
        assert out.evaluation is None
        assert stats.counters["engine_timeouts"] == 1

    def test_fast_evaluation_unaffected(self):
        with WorkerPool(
            make_eval, 1, latency_fn=lambda ev: 0.01, timeout_s=1.0
        ) as pool:
            pool.submit({"x": 1.0})
            assert pool.get(timeout=5.0).ok


class TestRetryPlumbing:
    def test_resubmit_increments_attempt_and_delays(self):
        faults = ScriptedFaults({(0, 0)})
        with WorkerPool(make_eval, 1, fault_injector=faults) as pool:
            pool.submit({"x": 1.0})
            out = pool.get(timeout=5.0)
            assert out.error == "crash"
            t0 = time.monotonic()
            pool.resubmit(out.job, delay_s=0.05)
            out2 = pool.get(timeout=5.0)
            waited = time.monotonic() - t0
        assert out2.ok
        assert out2.job.attempt == 1
        assert out2.job.job_id == out.job.job_id
        assert waited >= 0.04

    def test_shutdown_interrupts_backoff(self):
        """Closing the pool must not wait out long retry delays."""
        pool = WorkerPool(make_eval, 1).start()
        pool.resubmit(EvalJob(0, {"x": 1.0}), delay_s=30.0)
        t0 = time.perf_counter()
        pool.close()
        assert time.perf_counter() - t0 < 5.0


class TestInstrumentation:
    def test_perf_counters_and_gauges(self):
        with perf.collect() as stats:
            with WorkerPool(make_eval, 2, latency_fn=lambda ev: 0.02) as pool:
                for i in range(4):
                    pool.submit({"x": float(i)})
                drain(pool, 4)
        snap = stats.snapshot()
        assert snap["counters"]["engine_evaluations"] == 4
        assert "engine_queue_depth" in snap["gauges"]

    def test_utilization_bounds(self):
        with WorkerPool(make_eval, 2, latency_fn=lambda ev: 0.03) as pool:
            for i in range(4):
                pool.submit({"x": float(i)})
            drain(pool, 4)
            assert 0.0 < pool.utilization(10.0) <= 1.0
        assert pool.utilization(0.0) == 0.0

    def test_queue_empty_raised_on_get_timeout(self):
        with WorkerPool(make_eval, 1) as pool:
            with pytest.raises(queue.Empty):
                pool.get(timeout=0.05)
