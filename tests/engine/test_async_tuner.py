"""Tests for the asynchronous tuning event loop."""

from __future__ import annotations

import pytest

from repro.core import Tuner, TunerOptions
from repro.core.history import History
from repro.crowd.server import CrowdServer
from repro.engine import AsyncTuner, CrowdStreamer, EngineOptions
from repro.hpc import SlurmSim, cori_haswell


def opts(**kw):
    return TunerOptions(n_initial=3, **kw)


class TestSequentialParity:
    def test_one_worker_matches_sequential_tuner(self, quadratic_problem):
        """With one worker and no latency/faults the engine degenerates to
        the sequential loop and must reproduce it bit-for-bit."""
        task = {"t": 1}
        seq = Tuner(quadratic_problem, opts()).tune(task, 10, seed=42)
        asy = AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=1)
        ).tune(task, 10, seed=42)
        assert [e.config for e in asy.history] == [e.config for e in seq.history]
        assert asy.best_so_far() == seq.best_so_far()


class TestBudgetAndProgress:
    def test_budget_respected(self, quadratic_problem):
        res = AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=4, batch=2)
        ).tune({"t": 1}, 11, seed=0)
        assert res.n_evaluations == 11

    def test_finds_optimum_with_four_workers(self, quadratic_problem):
        res = AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=4, batch=2)
        ).tune({"t": 1}, 16, seed=3)
        assert res.best_output < 0.12  # true optimum is 0.1 at x=0.37

    def test_distinct_configs_within_run(self, quadratic_problem):
        res = AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=4, batch=4)
        ).tune({"t": 1}, 12, seed=5)
        xs = [round(e.config["x"], 12) for e in res.history]
        assert len(set(xs)) == len(xs)

    def test_continuation_history_feeds_model_not_budget(self, quadratic_problem):
        tuner = AsyncTuner(quadratic_problem, opts(), EngineOptions(n_workers=2))
        first = tuner.tune({"t": 1}, 6, seed=1)
        cont = tuner.tune({"t": 1}, 4, seed=2, history=first.history)
        assert cont.history is first.history
        assert cont.n_evaluations == 10  # 6 carried over + 4 new

    def test_invalid_options(self, quadratic_problem):
        with pytest.raises(ValueError):
            EngineOptions(n_workers=0)
        with pytest.raises(ValueError):
            EngineOptions(batch=0)
        with pytest.raises(ValueError):
            EngineOptions(lie="nope")
        with pytest.raises(ValueError):
            AsyncTuner(quadratic_problem).tune({"t": 1}, 0)


class TestLatencyOverlap:
    def test_parallel_workers_overlap_evaluations(self, quadratic_problem):
        import time

        eng = dict(base_latency_s=0.05)
        t0 = time.perf_counter()
        AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=1, **eng)
        ).tune({"t": 1}, 8, seed=0)
        serial = time.perf_counter() - t0
        t0 = time.perf_counter()
        AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=4, batch=2, **eng)
        ).tune({"t": 1}, 8, seed=0)
        parallel = time.perf_counter() - t0
        assert parallel < serial

    def test_perf_gauges_present(self, quadratic_problem):
        res = AsyncTuner(
            quadratic_problem,
            opts(),
            EngineOptions(n_workers=2, base_latency_s=0.01),
        ).tune({"t": 1}, 6, seed=0)
        gauges = res.perf["gauges"]
        assert "engine_worker_utilization" in gauges
        assert "engine_pending_fantasies" in gauges
        assert 0.0 < gauges["engine_worker_utilization"]["max"] <= 1.0


class TestSlurmBackedRun:
    def test_run_with_scheduler_releases_nodes(self, quadratic_problem):
        sim = SlurmSim(cori_haswell(8))
        res = AsyncTuner(
            quadratic_problem,
            opts(),
            EngineOptions(n_workers=4, nodes_per_worker=2),
            scheduler=sim,
        ).tune({"t": 1}, 6, seed=0)
        assert sim.free_nodes == 8
        assert all("nodelist" in e.metadata for e in res.history)


class TestCrowdStreaming:
    def test_every_evaluation_uploaded_as_it_lands(self, quadratic_problem):
        server = CrowdServer()
        key = server.handle(
            {"route": "register", "username": "worker0", "email": "w0@crowd.io"}
        )["api_key"]
        streamer = CrowdStreamer(
            server,
            key,
            quadratic_problem.name,
            machine_configuration={"machine": "cori"},
        )
        res = AsyncTuner(
            quadratic_problem,
            opts(),
            EngineOptions(n_workers=2, batch=2),
            callbacks=[streamer],
        ).tune({"t": 1}, 8, seed=0)
        assert streamer.n_uploaded == 8
        assert not streamer.errors
        records = server.handle(
            {
                "route": "query",
                "api_key": key,
                "problem_name": quadratic_problem.name,
            }
        )["records"]
        assert len(records) == 8
        uploaded_outputs = sorted(r["output"] for r in records)
        assert uploaded_outputs == sorted(e.output for e in res.history)
        # engine bookkeeping rides along in the machine configuration
        assert all("worker" in r["machine_configuration"] for r in records)

    def test_bad_key_counts_errors_but_does_not_kill_tuning(self, quadratic_problem):
        streamer = CrowdStreamer(CrowdServer(), "bogus", quadratic_problem.name)
        res = AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=2), callbacks=[streamer]
        ).tune({"t": 1}, 5, seed=0)
        assert res.n_evaluations == 5
        assert streamer.n_uploaded == 0
        assert len(streamer.errors) == 5


class TestHistoryContinuesSequentialRun:
    def test_async_continues_sequential_history(self, quadratic_problem):
        seq = Tuner(quadratic_problem, opts()).tune({"t": 1}, 5, seed=7)
        cont = AsyncTuner(
            quadratic_problem, opts(), EngineOptions(n_workers=2)
        ).tune({"t": 1}, 5, seed=8, history=seq.history)
        assert isinstance(cont.history, History)
        assert cont.n_evaluations == 10
