"""Fault injection and recovery: retries, backoff, failure records."""

from __future__ import annotations

import pytest

from repro.engine import AsyncTuner, EngineOptions, FaultInjector, RetryPolicy, ScriptedFaults


class TestFaultInjector:
    def test_rate_zero_never_crashes(self):
        inj = FaultInjector(0.0)
        assert not any(inj.should_crash(0, j, 0) for j in range(100))

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultInjector(1.0)
        with pytest.raises(ValueError):
            FaultInjector(-0.1)

    def test_deterministic_given_seed(self):
        a = FaultInjector(0.3, seed=9)
        b = FaultInjector(0.3, seed=9)
        decisions = [(j, k) for j in range(50) for k in range(3)]
        assert [a.should_crash(0, j, k) for j, k in decisions] == [
            b.should_crash(1, j, k) for j, k in decisions  # worker id irrelevant
        ]

    def test_rate_roughly_respected(self):
        inj = FaultInjector(0.25, seed=0)
        hits = sum(inj.should_crash(0, j, 0) for j in range(2000))
        assert 0.18 < hits / 2000 < 0.32

    def test_different_seeds_differ(self):
        a = [FaultInjector(0.5, seed=1).should_crash(0, j, 0) for j in range(64)]
        b = [FaultInjector(0.5, seed=2).should_crash(0, j, 0) for j in range(64)]
        assert a != b


class TestRetryPolicy:
    def test_allows_bounded_attempts(self):
        p = RetryPolicy(max_retries=2)
        assert p.allows(0) and p.allows(1) and not p.allows(2)

    def test_backoff_grows_and_caps(self):
        p = RetryPolicy(base_s=0.01, factor=2.0, cap_s=0.03)
        assert p.backoff_s(0) == pytest.approx(0.01)
        assert p.backoff_s(1) == pytest.approx(0.02)
        assert p.backoff_s(5) == pytest.approx(0.03)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(base_s=-1.0)


class TestRecovery:
    def test_killed_worker_retried_then_recorded_as_failure(self, quadratic_problem):
        """A job that crashes on every attempt exhausts its retries and is
        recorded as a failure feeding the feasibility model."""
        faults = ScriptedFaults({(2, 0), (2, 1), (2, 2)})
        retry = RetryPolicy(max_retries=2, base_s=0.0)
        res = AsyncTuner(
            quadratic_problem,
            None,
            EngineOptions(n_workers=2, retry=retry),
            fault_injector=faults,
        ).tune({"t": 1}, 8, seed=0)
        assert res.n_evaluations == 8
        assert res.history.n_failures == 1
        assert sorted(faults.triggered) == [(2, 0), (2, 1), (2, 2)]
        failed = [e for e in res.history if e.failed]
        assert failed[0].metadata["failure"] == "crash"
        assert failed[0].metadata["attempts"] == 3
        # the failed configuration lands in the feasibility training set
        assert res.history.failed_array().shape == (1, 1)
        assert res.perf["counters"]["engine_worker_crashes"] == 3
        assert res.perf["counters"]["engine_retries"] == 2

    def test_transient_crash_retried_to_success(self, quadratic_problem):
        """One crash then success: the retry recovers, nothing is lost."""
        faults = ScriptedFaults({(1, 0)})
        res = AsyncTuner(
            quadratic_problem,
            None,
            EngineOptions(n_workers=2, retry=RetryPolicy(max_retries=2, base_s=0.0)),
            fault_injector=faults,
        ).tune({"t": 1}, 6, seed=0)
        assert res.n_evaluations == 6
        assert res.history.n_failures == 0
        assert faults.triggered == [(1, 0)]
        assert res.perf["counters"]["engine_retries"] == 1
        recovered = [
            e for e in res.history if e.metadata.get("attempts", 1) == 2
        ]
        assert len(recovered) == 1

    def test_timeout_retries_exhaust_to_failure(self, quadratic_problem):
        """Latency above the ceiling: timeout, retries, failure record."""
        res = AsyncTuner(
            quadratic_problem,
            None,
            EngineOptions(
                n_workers=2,
                base_latency_s=5.0,
                timeout_s=0.02,
                retry=RetryPolicy(max_retries=1, base_s=0.0),
            ),
        ).tune({"t": 1}, 2, seed=0)
        assert res.n_evaluations == 2
        assert res.history.n_failures == 2
        assert all(e.metadata["failure"] == "timeout" for e in res.history)
        assert res.perf["counters"]["engine_timeouts"] == 4  # 2 jobs x 2 attempts

    def test_no_retries_policy(self, quadratic_problem):
        faults = ScriptedFaults({(0, 0)})
        res = AsyncTuner(
            quadratic_problem,
            None,
            EngineOptions(n_workers=1, retry=RetryPolicy(max_retries=0)),
            fault_injector=faults,
        ).tune({"t": 1}, 3, seed=0)
        assert res.history.n_failures == 1
        assert res.perf["counters"].get("engine_retries", 0) == 0

    def test_random_faults_reproducible_end_to_end(self, quadratic_problem):
        """Same seed + same fault seed => identical histories, despite
        threads: fault decisions hash (seed, job, attempt), not timing."""

        def run():
            return AsyncTuner(
                quadratic_problem,
                None,
                EngineOptions(
                    n_workers=1,
                    fault_rate=0.3,
                    fault_seed=11,
                    retry=RetryPolicy(max_retries=0),
                ),
            ).tune({"t": 1}, 10, seed=4)

        a, b = run(), run()
        assert [e.config for e in a.history] == [e.config for e in b.history]
        assert [e.failed for e in a.history] == [e.failed for e in b.history]
        assert a.history.n_failures > 0  # the rate actually fired
