"""Tests for the variability and bandit CLI subcommands."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestVariabilityCommand:
    def test_runs_and_reports(self, capsys):
        rc = main(
            [
                "variability",
                "--app",
                "nimrod",
                "--machine",
                "cori-haswell",
                "--nodes",
                "4",
                "--configs",
                "3",
                "--repeats",
                "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pooled relative std" in out
        assert "outliers" in out

    def test_noiseless_app_zero_variability(self, capsys):
        rc = main(
            ["variability", "--app", "demo", "--configs", "3", "--repeats", "4"]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "pooled relative std: 0.0000" in out


class TestBanditCommand:
    def test_runs_and_reports_json(self, capsys):
        rc = main(["bandit", "--app", "demo", "--budget", "4"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["app"] == "demo"
        assert payload["configs_screened"] > 4
        assert payload["best_config"] is not None

    def test_machine_app(self, capsys):
        rc = main(
            [
                "bandit",
                "--app",
                "nimrod",
                "--machine",
                "cori-haswell",
                "--nodes",
                "8",
                "--budget",
                "3",
                "--rungs",
                "2",
            ]
        )
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cost_spent"] >= 3.0

    def test_bad_app(self):
        with pytest.raises(SystemExit):
            main(["bandit", "--app", "nope"])


class TestFabricCommand:
    def test_runs_and_reports(self, capsys, tmp_path):
        rc = main(
            [
                "fabric",
                "--procs", "2",
                "--samples", "6",
                "--latency-s", "0.01",
                "--data-dir", str(tmp_path),
                "--shards", "2",
                "--seed", "0",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "2 process(es), 6 evaluations" in out
        assert "streamed to crowd service: 6 records across 2 shard(s)" in out
        assert "(0 errors)" in out
        assert "durable queue: 6/6 jobs completed" in out

    def test_kill_after_recovers(self, capsys):
        rc = main(
            [
                "fabric",
                "--procs", "4",
                "--samples", "10",
                "--latency-s", "0.05",
                "--kill-after", "3",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "[fabric] killed worker" in out
        assert "workers killed: 1" in out
        assert "10 evaluations" in out
