"""Tests for :class:`repro.fabric.tuner.FabricTuner`.

The load-bearing assertion is sequential parity: one fabric process, no
faults, no latency must reproduce the sequential :class:`Tuner`
trajectory bit-for-bit — same contract the threaded engine pins, now
across a process boundary and a durable queue.
"""

from __future__ import annotations

import pytest

from repro.core import Tuner, TunerOptions
from repro.fabric import DurableJobQueue, FabricOptions, FabricTuner
from repro.service import build_service


def opts(**kw):
    return TunerOptions(n_initial=3, **kw)


class TestSequentialParity:
    def test_one_process_matches_sequential_tuner(self, quadratic_problem):
        task = {"t": 1}
        seq = Tuner(quadratic_problem, opts()).tune(task, 10, seed=42)
        fab = FabricTuner(
            quadratic_problem, opts(), FabricOptions(n_procs=1)
        ).tune(task, 10, seed=42)
        assert [e.config for e in fab.history] == [e.config for e in seq.history]
        assert fab.best_so_far() == seq.best_so_far()
        assert [e.output for e in fab.history] == [e.output for e in seq.history]


class TestBudgetAndOutcomes:
    def test_budget_respected_multiproc(self, quadratic_problem):
        res = FabricTuner(
            quadratic_problem, opts(), FabricOptions(n_procs=4, batch=2)
        ).tune({"t": 1}, 11, seed=0)
        assert res.n_evaluations == 11

    def test_finds_optimum_with_four_processes(self, quadratic_problem):
        res = FabricTuner(
            quadratic_problem, opts(), FabricOptions(n_procs=4, batch=2)
        ).tune({"t": 1}, 16, seed=3)
        assert res.best_output < 0.12  # true optimum is 0.1 at x=0.37

    def test_worker_kill_does_not_lose_budget(self, quadratic_problem):
        """A worker crash mid-run re-dispatches its job; the run still
        delivers exactly n_samples evaluations, one marked retried."""
        fault = lambda job_id, attempt: job_id == 2 and attempt == 0  # noqa: E731
        tuner = FabricTuner(
            quadratic_problem,
            opts(),
            FabricOptions(n_procs=2, base_latency_s=0.02),
            fault=fault,
        )
        res = tuner.tune({"t": 1}, 8, seed=0)
        assert res.n_evaluations == 8
        assert tuner._last_redispatches == 1
        assert any(e.metadata.get("attempts", 1) > 1 for e in res.history)
        assert all(not e.failed for e in res.history)

    def test_evaluation_metadata_records_worker(self, quadratic_problem):
        res = FabricTuner(
            quadratic_problem, opts(), FabricOptions(n_procs=2)
        ).tune({"t": 1}, 6, seed=0)
        for e in res.history:
            assert "worker" in e.metadata
            assert e.metadata["attempts"] >= 1

    def test_worker_perf_counters_in_result(self, quadratic_problem):
        res = FabricTuner(
            quadratic_problem, opts(), FabricOptions(n_procs=2)
        ).tune({"t": 1}, 6, seed=0)
        # evaluations ran in worker processes; their counters must have
        # folded into the parent's TuningResult.perf snapshot
        assert res.perf["counters"]["fabric_evaluations"] == 6
        assert res.perf["timers"]["evaluate"]["count"] == 6
        gauges = res.perf["gauges"]
        assert "fabric_worker_utilization" in gauges
        assert "fabric_wall_s" in gauges

    def test_durable_queue_records_the_run(self, quadratic_problem, tmp_path):
        res = FabricTuner(
            quadratic_problem,
            opts(),
            FabricOptions(n_procs=2, data_dir=tmp_path),
        ).tune({"t": 1}, 6, seed=0)
        assert res.n_evaluations == 6
        queue = DurableJobQueue(tmp_path)
        assert queue.n_done == 6
        assert queue.n_pending == 0
        queue.close()

    def test_invalid_inputs(self, quadratic_problem):
        with pytest.raises(ValueError):
            FabricOptions(n_procs=0)
        with pytest.raises(ValueError):
            FabricOptions(lease_s=0.0)
        with pytest.raises(ValueError):
            FabricTuner(quadratic_problem).tune({"t": 1}, 0)
        with pytest.raises(ValueError):
            FabricTuner(quadratic_problem, crowd=object())  # no api_key
        with pytest.raises(ValueError):
            FabricTuner(quadratic_problem, consult=True)  # no endpoint


class TestCrowdIntegration:
    def test_streams_every_evaluation_to_the_service(self, quadratic_problem):
        with build_service(2) as svc:
            _, key = svc.register_user("fabric-w0", "w0@crowd.io")
            tuner = FabricTuner(
                quadratic_problem,
                opts(),
                FabricOptions(n_procs=2),
                crowd=svc.client,
                api_key=key,
                machine_configuration={"machine": "testbox"},
            )
            res = tuner.tune({"t": 1}, 8, seed=0)
            assert tuner.streamer.n_uploaded == 8
            assert not tuner.streamer.errors
            records = svc.client.handle(
                {
                    "route": "query",
                    "api_key": key,
                    "problem_name": quadratic_problem.name,
                }
            )["records"]
            assert len(records) == 8
            assert sorted(r["output"] for r in records) == sorted(
                e.output for e in res.history
            )
            # fabric bookkeeping rides along in the machine configuration
            assert all("worker" in r["machine_configuration"] for r in records)

    def test_consult_seeds_surrogate_without_spending_budget(
        self, quadratic_problem
    ):
        with build_service(2) as svc:
            _, key = svc.register_user("seeder", "s@crowd.io")
            # a first run populates the crowd database for the task
            FabricTuner(
                quadratic_problem,
                opts(),
                FabricOptions(n_procs=1),
                crowd=svc.client,
                api_key=key,
            ).tune({"t": 1}, 6, seed=1)
            # a second run consults: 6 crowd records seed the history,
            # the new budget is spent on top of them
            res = FabricTuner(
                quadratic_problem,
                opts(),
                FabricOptions(n_procs=1),
                crowd=svc.client,
                api_key=key,
                consult=True,
            ).tune({"t": 1}, 4, seed=2)
            assert res.n_evaluations == 10  # 6 seeded + 4 new
            seeded = [e for e in res.history if e.metadata.get("crowd_seed")]
            assert len(seeded) == 6
            assert res.perf["counters"]["fabric_consulted_records"] == 6

    def test_consult_empty_crowd_is_a_fresh_run(self, quadratic_problem):
        with build_service(1) as svc:
            _, key = svc.register_user("lone", "l@crowd.io")
            res = FabricTuner(
                quadratic_problem,
                opts(),
                FabricOptions(n_procs=1),
                crowd=svc.client,
                api_key=key,
                consult=True,
            ).tune({"t": 1}, 5, seed=0)
            assert res.n_evaluations == 5

    def test_on_progress_hook_sees_every_completion(self, quadratic_problem):
        seen = []
        FabricTuner(
            quadratic_problem,
            opts(),
            FabricOptions(n_procs=2),
            on_progress=lambda done, coord: seen.append(done),
        ).tune({"t": 1}, 6, seed=0)
        assert seen == list(range(1, 7))
