"""Tests for the multi-process fabric coordinator.

These run real ``fork``-ed worker processes; latencies are kept small
and every scenario bounds its waits, so the suite stays fast even on
loaded CI machines.
"""

from __future__ import annotations

import queue as queue_mod
import time

import pytest

from repro.core import perf
from repro.core.problem import Evaluation
from repro.fabric import DurableJobQueue, FabricCoordinator, FabricOptions


def evaluate(cfg):
    return Evaluation({"t": 1}, dict(cfg), (cfg["x"] - 0.37) ** 2 + 0.1, {})


def collect(coordinator, n, timeout=30.0):
    return [coordinator.get(timeout=timeout) for _ in range(n)]


class TestBasicExecution:
    def test_all_jobs_complete_once(self):
        opts = FabricOptions(n_procs=2)
        with FabricCoordinator(evaluate, opts) as c:
            ids = [c.submit({"x": i / 8}) for i in range(8)]
            outcomes = collect(c, 8)
        assert sorted(o.job_id for o in outcomes) == ids
        assert all(o.ok and o.evaluation is not None for o in outcomes)
        for o in outcomes:
            assert o.evaluation.output == pytest.approx(
                (o.config["x"] - 0.37) ** 2 + 0.1
            )

    def test_single_process_fabric(self):
        with FabricCoordinator(evaluate, FabricOptions(n_procs=1)) as c:
            c.submit({"x": 0.5})
            [o] = collect(c, 1)
        assert o.worker_id == 0 and o.attempt == 0 and o.redispatches == 0

    def test_objective_exception_is_an_error_outcome(self):
        def boom(cfg):
            raise RuntimeError("bad configuration")

        with FabricCoordinator(boom, FabricOptions(n_procs=1)) as c:
            c.submit({"x": 0.5})
            [o] = collect(c, 1)
        assert not o.ok
        assert "bad configuration" in o.error
        assert o.evaluation is None

    def test_worker_perf_counters_fold_into_parent(self):
        with perf.collect() as stats:
            with FabricCoordinator(evaluate, FabricOptions(n_procs=2)) as c:
                for i in range(6):
                    c.submit({"x": i / 6})
                collect(c, 6)
        snap = stats.snapshot()
        assert snap["counters"]["fabric_evaluations"] == 6
        assert snap["timers"]["evaluate"]["count"] == 6

    def test_get_timeout_raises_empty(self):
        with FabricCoordinator(evaluate, FabricOptions(n_procs=1)) as c:
            with pytest.raises(queue_mod.Empty):
                c.get(timeout=0.05)

    def test_close_is_idempotent(self):
        c = FabricCoordinator(evaluate, FabricOptions(n_procs=1)).start()
        c.close()
        c.close()
        with pytest.raises(RuntimeError):
            c.add_worker()


class TestKillAndRedispatch:
    def test_killed_workers_job_is_redispatched(self):
        opts = FabricOptions(n_procs=2, base_latency_s=0.25, lease_s=30.0)
        with FabricCoordinator(evaluate, opts) as c:
            ids = [c.submit({"x": i / 4}) for i in range(4)]
            deadline = time.monotonic() + 10.0
            while not c.busy_workers():
                c._pump()
                time.sleep(0.01)
                assert time.monotonic() < deadline, "workers never got busy"
            victim = c.busy_workers()[0]
            c.kill_worker(victim)
            outcomes = collect(c, 4)
        assert sorted(o.job_id for o in outcomes) == ids
        assert all(o.ok for o in outcomes)
        assert c.queue.redispatches >= 1
        assert any(o.attempt >= 1 for o in outcomes)

    def test_injected_fault_crashes_exactly_one_attempt(self):
        """fault() firing on attempt 0 of job 0 kills that worker; the
        re-dispatched attempt must succeed on a surviving process."""
        fault = lambda job_id, attempt: job_id == 0 and attempt == 0  # noqa: E731
        opts = FabricOptions(n_procs=2, lease_s=30.0)
        with FabricCoordinator(evaluate, opts, fault=fault) as c:
            ids = [c.submit({"x": i / 3}) for i in range(3)]
            outcomes = collect(c, 3)
        by_id = {o.job_id: o for o in outcomes}
        assert sorted(by_id) == ids
        assert by_id[0].ok and by_id[0].attempt == 1
        assert c.queue.redispatches == 1

    def test_job_abandoned_after_max_redispatch(self):
        """A job that crashes its worker every attempt is completed as a
        durable failure instead of looping forever."""
        fault = lambda job_id, attempt: True  # noqa: E731
        opts = FabricOptions(n_procs=1, max_redispatch=0)
        with FabricCoordinator(evaluate, opts, fault=fault) as c:
            jid = c.submit({"x": 0.5})
            [o] = collect(c, 1)
        assert o.job_id == jid
        assert not o.ok and o.error == "lease-exhausted"
        assert o.evaluation is None
        assert c.queue.job(jid).state == "done"


class TestStragglers:
    def test_expired_lease_redispatches_but_applies_once(self):
        """Every evaluation outlives its lease: jobs re-dispatch, the
        stale/fresh token race resolves to exactly one applied completion
        per job, and the run still delivers every outcome exactly once."""
        opts = FabricOptions(
            n_procs=2, base_latency_s=0.25, lease_s=0.08, max_redispatch=50
        )
        with perf.collect() as stats:
            with FabricCoordinator(evaluate, opts) as c:
                ids = [c.submit({"x": i / 4}) for i in range(4)]
                outcomes = collect(c, 4)
        assert sorted(o.job_id for o in outcomes) == ids
        assert all(o.ok for o in outcomes)
        assert c.queue.redispatches >= 1
        # every job applied exactly once, duplicates rejected not re-applied
        assert c.queue.n_done == 4
        counters = stats.snapshot()["counters"]
        assert counters["fabric_jobs_completed"] == 4


class TestElasticity:
    def test_add_and_remove_workers_mid_run(self):
        opts = FabricOptions(n_procs=1, base_latency_s=0.05)
        with FabricCoordinator(evaluate, opts) as c:
            ids = [c.submit({"x": i / 8}) for i in range(8)]
            first = c.get(timeout=30.0)
            added = c.add_worker()
            assert c.n_workers == 2
            rest = collect(c, 7)
            outcomes = [first] + rest
            c.remove_worker(added)
            deadline = time.monotonic() + 5.0
            while added in c.liveness() and time.monotonic() < deadline:
                c._pump()
                time.sleep(0.01)
            assert added not in c.liveness()
        assert sorted(o.job_id for o in outcomes) == ids
        assert c.queue.redispatches == 0  # graceful drain, no lost work
        workers_used = {o.worker_id for o in outcomes}
        assert workers_used <= {0, added}

    def test_graceful_remove_finishes_current_job(self):
        opts = FabricOptions(n_procs=1, base_latency_s=0.2)
        with FabricCoordinator(evaluate, opts) as c:
            jid = c.submit({"x": 0.5})
            deadline = time.monotonic() + 10.0
            while not c.busy_workers():
                c._pump()
                time.sleep(0.01)
                assert time.monotonic() < deadline
            c.remove_worker(0)  # stop queues behind the running job
            c.add_worker()  # capacity to absorb any (unexpected) redispatch
            [o] = collect(c, 1)
        assert o.job_id == jid and o.ok
        assert o.worker_id == 0  # the draining worker finished it
        assert c.queue.redispatches == 0


class TestLivenessAndAccounting:
    def test_heartbeats_keep_workers_live(self):
        opts = FabricOptions(n_procs=2, heartbeat_s=0.05)
        with FabricCoordinator(evaluate, opts) as c:
            time.sleep(0.4)  # several heartbeat periods of pure idleness
            c._pump()
            ages = c.liveness()
            assert set(ages) == {0, 1}
            assert all(age < 0.3 for age in ages.values())

    def test_busy_seconds_and_utilization(self):
        opts = FabricOptions(n_procs=2, base_latency_s=0.1)
        with FabricCoordinator(evaluate, opts) as c:
            t0 = time.perf_counter()
            for i in range(4):
                c.submit({"x": i / 4})
            collect(c, 4)
            wall = time.perf_counter() - t0
        assert c.busy_s >= 4 * 0.1 * 0.9
        assert 0.0 < c.utilization(wall) <= 1.0

    def test_recovered_queue_jobs_run_without_resubmission(self, tmp_path):
        q = DurableJobQueue(tmp_path)
        for i in range(3):
            q.enqueue({"x": i / 3})
        q.close()  # "crashed" run left pending jobs behind

        recovered = DurableJobQueue(tmp_path)
        with FabricCoordinator(
            evaluate, FabricOptions(n_procs=2), queue=recovered
        ) as c:
            assert c.inflight == 3
            outcomes = collect(c, 3)
        assert sorted(o.job_id for o in outcomes) == [0, 1, 2]
        assert all(o.ok for o in outcomes)
