"""Durability tests for the fabric's on-disk job queue.

The contract under test (ISSUE 9, satellite 3): kill the coordinator at
any point mid-stream, recover the queue from its directory, and

* no acknowledged completion is lost (WAL-then-ack),
* no job is ever *applied* twice (exactly-once via lease tokens),
* the WAL tail past the last snapshot replays, torn final line included.
"""

from __future__ import annotations

import json

import pytest

from repro.fabric import DurableJobQueue, JobState
from repro.fabric.jobqueue import _SNAP_NAME, _WAL_NAME


def fill(queue: DurableJobQueue, n: int) -> list[int]:
    return [queue.enqueue({"x": i / 10}) for i in range(n)]


class TestLifecycle:
    def test_enqueue_lease_complete(self):
        q = DurableJobQueue()
        jid = q.enqueue({"x": 0.5})
        job = q.lease(worker=0, now=0.0, lease_s=10.0)
        assert job.job_id == jid and job.state == JobState.LEASED
        assert q.lease(worker=1, now=0.0, lease_s=10.0) is None
        assert q.complete(jid, job.lease_token, {"y": 1.0}) == "applied"
        assert q.job(jid).state == JobState.DONE
        assert q.n_done == 1 and q.n_pending == 0

    def test_fifo_order(self):
        q = DurableJobQueue()
        ids = fill(q, 5)
        leased = [q.lease(0, 0.0, 10.0).job_id for _ in ids]
        assert leased == ids

    def test_expired_and_redispatch(self):
        q = DurableJobQueue()
        jid = q.enqueue({"x": 0.1})
        job = q.lease(0, now=0.0, lease_s=1.0)
        first_token = job.lease_token  # captured at dispatch time
        assert q.expired(now=0.5) == []
        assert [j.job_id for j in q.expired(now=2.0)] == [jid]
        q.redispatch(jid)
        fresh = q.lease(1, now=2.0, lease_s=1.0)
        assert fresh.job_id == jid
        assert fresh.attempt == 1
        assert fresh.lease_token != first_token
        assert q.redispatches == 1


class TestExactlyOnce:
    def test_same_token_replayed_not_reapplied(self):
        """A lost-ack retry of the *same* completion is an acked no-op."""
        q = DurableJobQueue()
        jid = q.enqueue({"x": 0.2})
        job = q.lease(0, 0.0, 10.0)
        assert q.complete(jid, job.lease_token, {"y": 1.0}) == "applied"
        assert q.complete(jid, job.lease_token, {"y": 1.0}) == "replayed"
        assert q.job(jid).result == {"y": 1.0}

    def test_stale_straggler_token_rejected(self):
        """Regression: a straggler finishing after re-dispatch must never
        overwrite the applied completion (the duplicate-completion bug)."""
        q = DurableJobQueue()
        jid = q.enqueue({"x": 0.3})
        stale = q.lease(0, now=0.0, lease_s=0.5).lease_token  # worker 0 quiet
        q.redispatch(jid)
        fresh = q.lease(1, now=1.0, lease_s=10.0).lease_token
        assert q.complete(jid, fresh, {"y": 2.0}) == "applied"
        assert q.complete(jid, stale, {"y": 9.0}) == "rejected"
        assert q.job(jid).result == {"y": 2.0}
        assert q.job(jid).token == fresh

    def test_straggler_winning_the_race_disarms_the_retry(self):
        """Whichever attempt completes first wins; the other is rejected."""
        q = DurableJobQueue()
        jid = q.enqueue({"x": 0.4})
        stale = q.lease(0, now=0.0, lease_s=0.5).lease_token
        q.redispatch(jid)
        fresh = q.lease(1, now=1.0, lease_s=10.0).lease_token
        assert q.complete(jid, stale, {"y": 1.0}) == "applied"
        assert q.complete(jid, fresh, {"y": 2.0}) == "rejected"
        assert q.job(jid).result == {"y": 1.0}


class TestCrashRecovery:
    """Coordinator kill = drop the queue object without close(); the WAL
    file handle dies with the process, recovery reads whatever hit disk
    (fsync_every=1 -> everything journaled before the ack)."""

    def test_acknowledged_completions_survive_a_kill(self, tmp_path):
        q = DurableJobQueue(tmp_path)
        ids = fill(q, 8)
        acked = []
        for _ in range(5):
            job = q.lease(0, 0.0, 10.0)
            assert q.complete(job.job_id, job.lease_token, {"y": 1.0}) == "applied"
            acked.append(job.job_id)
        del q  # kill: no close(), no snapshot

        rec = DurableJobQueue(tmp_path)
        assert rec.n_jobs == len(ids)
        assert sorted(j.job_id for j in rec.completed_jobs()) == sorted(acked)
        for jid in acked:
            assert rec.job(jid).result == {"y": 1.0}

    def test_unfinished_leases_revert_to_pending(self, tmp_path):
        q = DurableJobQueue(tmp_path)
        fill(q, 4)
        q.lease(0, 0.0, 100.0)
        q.lease(1, 0.0, 100.0)
        del q

        rec = DurableJobQueue(tmp_path)
        assert rec.n_pending == 4  # leases were soft state
        assert rec.n_leased == 0

    def test_completed_job_is_not_rerun_after_recovery(self, tmp_path):
        """No job runs twice: a recovered queue never re-leases DONE jobs,
        and the applied token still rejects the pre-crash straggler."""
        q = DurableJobQueue(tmp_path)
        ids = fill(q, 3)
        job = q.lease(0, 0.0, 10.0)
        q.complete(job.job_id, job.lease_token, {"y": 1.0})
        del q

        rec = DurableJobQueue(tmp_path)
        leased = []
        while (j := rec.lease(0, 0.0, 10.0)) is not None:
            leased.append(j.job_id)
        assert job.job_id not in leased
        assert sorted(leased + [job.job_id]) == ids
        # the pre-crash attempt's token survives for dedup
        assert rec.complete(job.job_id, job.lease_token, {"y": 1.0}) == "replayed"
        assert rec.complete(job.job_id, f"{job.job_id}.99", {}) == "rejected"

    def test_redispatch_counts_survive(self, tmp_path):
        q = DurableJobQueue(tmp_path)
        jid = q.enqueue({"x": 0.1})
        q.lease(0, 0.0, 0.1)
        q.redispatch(jid)
        q.lease(1, 1.0, 0.1)
        q.redispatch(jid)
        del q

        rec = DurableJobQueue(tmp_path)
        job = rec.job(jid)
        assert job.redispatches == 2
        assert job.attempt == 2
        assert rec.lease(2, 2.0, 10.0).lease_token == f"{jid}.2"

    def test_snapshot_plus_wal_tail(self, tmp_path):
        """Ops after the last snapshot replay from the journal tail."""
        q = DurableJobQueue(tmp_path, snapshot_every=5)
        fill(q, 7)  # snapshot fires at op 5; ops 6..7 live in the tail
        job = q.lease(0, 0.0, 10.0)
        q.complete(job.job_id, job.lease_token, {"y": 0.5})  # tail op
        del q

        rec = DurableJobQueue(tmp_path)
        assert rec.n_jobs == 7
        assert rec.n_done == 1
        assert rec.job(job.job_id).result == {"y": 0.5}

    def test_torn_final_wal_line_is_tolerated(self, tmp_path):
        q = DurableJobQueue(tmp_path)
        fill(q, 3)
        job = q.lease(0, 0.0, 10.0)
        q.complete(job.job_id, job.lease_token, {"y": 1.0})
        del q
        wal = tmp_path / _WAL_NAME
        wal.write_bytes(wal.read_bytes() + b'{"op": "enq')  # torn write

        rec = DurableJobQueue(tmp_path)
        assert rec.n_jobs == 3
        assert rec.n_done == 1
        # and the recovered queue keeps journaling correctly
        jid = rec.enqueue({"x": 0.9})
        del rec
        assert DurableJobQueue(tmp_path).job(jid).config == {"x": 0.9}

    def test_explicit_snapshot_truncates_wal(self, tmp_path):
        q = DurableJobQueue(tmp_path)
        fill(q, 4)
        q.snapshot()
        assert (tmp_path / _WAL_NAME).stat().st_size == 0
        blob = json.loads((tmp_path / _SNAP_NAME).read_text())
        assert blob["format"] == "gptunecrowd-fabric-queue-v1"
        assert len(blob["jobs"]) == 4
        del q
        assert DurableJobQueue(tmp_path).n_pending == 4

    def test_foreign_snapshot_rejected(self, tmp_path):
        (tmp_path / _SNAP_NAME).write_text(json.dumps({"format": "other"}))
        with pytest.raises(ValueError, match="not a fabric queue snapshot"):
            DurableJobQueue(tmp_path)


class TestMisc:
    def test_memory_only_queue_has_same_semantics(self):
        q = DurableJobQueue()
        jid = q.enqueue({"x": 0.1})
        job = q.lease(0, 0.0, 10.0)
        assert q.complete(jid, job.lease_token) == "applied"
        assert q.complete(jid, job.lease_token) == "replayed"
        q.close()
        q.close()  # idempotent

    def test_context_manager(self, tmp_path):
        with DurableJobQueue(tmp_path) as q:
            q.enqueue({"x": 0.1})
        assert DurableJobQueue(tmp_path).n_pending == 1

    def test_invalid_snapshot_every(self):
        with pytest.raises(ValueError):
            DurableJobQueue(snapshot_every=0)
