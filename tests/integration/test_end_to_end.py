"""Cross-module integration tests: the paper's workflows end to end."""

from __future__ import annotations

import numpy as np

from repro.apps import DemoFunction, HypreAMG, PDGEQRF, SuperLUDist2D
from repro.apps.hypre import HYPRE_DEFAULTS
from repro.apps.superlu import SUPERLU_DEFAULTS
from repro.core import TaskData, Tuner, TunerOptions
from repro.crowd import CrowdClient, CrowdRepository, MetaDescription, PerformanceRecord
from repro.hpc import cori_haswell
from repro.sensitivity import SensitivityAnalyzer, reduce_space
from repro.tla import EnsembleProposed, MultitaskTS, TransferTuner


def _collect(app, task, n, seed=0, run=999):
    """Random-sample n successful evaluations of an application."""
    rng = np.random.default_rng(seed)
    space = app.parameter_space()
    configs, ys = [], []
    while len(ys) < n:
        c = space.sample(rng)
        y = app.objective(task, c, run=run)
        if y is not None:
            configs.append(c)
            ys.append(y)
    return TaskData(dict(task), space.to_unit_array(configs), np.asarray(ys))


class TestTransferWorkflowOnPDGEQRF:
    """A miniature of the paper's Fig. 4 experiment."""

    def test_tla_beats_notla_at_small_budget(self):
        app = PDGEQRF(cori_haswell(8))
        src = _collect(app, {"m": 10000, "n": 10000}, 40, seed=0)
        target = {"m": 8000, "n": 8000}
        budget = 5

        def final_best(res):
            # all-failed runs (common for random NoTLA on this space,
            # where p > total ranks is easy to draw) count as +inf
            traj = res.best_so_far()
            return traj[-1] if np.isfinite(traj[-1]) else np.inf

        tla, notla = [], []
        for seed in (0, 1):
            problem = app.make_problem(run=seed)
            res_t = TransferTuner(problem, MultitaskTS(), [src]).tune(
                target, budget, seed=seed
            )
            res_n = Tuner(problem).tune(target, budget, seed=seed)
            tla.append(final_best(res_t))
            notla.append(final_best(res_n))
        assert np.mean(tla) < np.mean(notla) * 1.15 or not np.isfinite(
            np.mean(notla)
        )


class TestSensitivityReductionWorkflow:
    """A miniature of the paper's Fig. 6/7 experiments."""

    def test_superlu_reduced_space_tuning(self):
        app = SuperLUDist2D(cori_haswell(4))
        space = app.parameter_space()
        # sensitivity data from the Si5H12 analogue
        data = _collect(app, {"matrix": "Si5H12"}, 120, seed=1)
        report = SensitivityAnalyzer(space, gp_max_fun=60).analyze(
            data, n_base=256, n_bootstrap=0, seed=0
        )
        ranking = report.indices.ranking("ST")
        assert ranking[0] == "COLPERM"

        reduced = reduce_space(
            space,
            keep=["COLPERM", "nprows", "NSUP"],
            defaults=SUPERLU_DEFAULTS,
        )
        problem = app.make_problem(run=5)
        reduced_problem = problem.with_parameter_space(reduced)
        res = Tuner(reduced_problem).tune({"matrix": "H2O"}, 6, seed=0)
        # every evaluated config pinned LOOKAHEAD/NREL to defaults
        for ev in res.history.evaluations:
            assert ev.config["LOOKAHEAD"] == SUPERLU_DEFAULTS["LOOKAHEAD"]
            assert ev.config["NREL"] == SUPERLU_DEFAULTS["NREL"]
        assert res.best_output > 0

    def test_hypre_reduction_keeps_paper_parameters(self):
        app = HypreAMG(cori_haswell(1))
        space = app.parameter_space()
        data = _collect(app, app.default_task(), 150, seed=2)
        report = SensitivityAnalyzer(space, gp_max_fun=60).analyze(
            data, n_base=256, n_bootstrap=0, seed=0
        )
        top = set(report.indices.ranking("ST")[:4])
        # the paper's three reduced-tuning parameters should rank high
        assert len(top & {"smooth_type", "smooth_num_levels", "agg_num_levels"}) >= 2


class TestCrowdLifecycle:
    """The full Fig. 1 loop: tune -> upload -> another user transfers."""

    def test_two_user_story(self):
        repo = CrowdRepository()
        _, key_a = repo.register_user("user_A", "a@lab.gov")
        _, key_b = repo.register_user("user_B", "b@lab.gov")
        app = DemoFunction()
        problem = app.make_problem(noisy=False)

        meta_a = MetaDescription.from_dict(
            {
                "api_key": key_a,
                "tuning_problem_name": "demo",
                "problem_space": problem.describe(),
                "machine_configuration": {"machine_name": "cori-haswell"},
                "sync_crowd_repo": "yes",
            }
        )
        client_a = CrowdClient(repo, meta_a)
        client_a.tune(problem, {"t": 0.8}, 15, seed=0)
        assert repo.count() == 15

        # user B transfers from A's data on a different task
        meta_b = MetaDescription.from_dict(
            {
                "api_key": key_b,
                "tuning_problem_name": "demo",
                "problem_space": problem.describe(),
                "sync_crowd_repo": "yes",
            }
        )
        client_b = CrowdClient(repo, meta_b)
        res = client_b.tune(
            problem, {"t": 1.0}, 5, strategy=MultitaskTS(), seed=1
        )
        assert res.tuner_name == "Multitask (TS)"
        assert repo.count() == 20
        # records carry the normalized machine tag from user A
        recs = repo.query(key_b, problem_name="demo")
        assert any(
            r.machine_configuration.get("machine_name") == "Cori" for r in recs
        )

    def test_ensemble_through_crowd_api(self):
        repo = CrowdRepository()
        _, key = repo.register_user("solo", "s@lab.gov")
        app = DemoFunction()
        problem = app.make_problem(noisy=False)
        # seed the repo with source data
        rng = np.random.default_rng(0)
        for _ in range(25):
            cfg = problem.parameter_space.sample(rng)
            repo.upload(
                PerformanceRecord(
                    problem_name="demo",
                    task_parameters={"t": 0.8},
                    tuning_parameters=cfg,
                    output=problem.objective({"t": 0.8}, cfg),
                ),
                key,
            )
        meta = MetaDescription.from_dict(
            {
                "api_key": key,
                "tuning_problem_name": "demo",
                "problem_space": problem.describe(),
            }
        )
        res = CrowdClient(repo, meta).tune(
            problem, {"t": 1.2}, 6, strategy=EnsembleProposed(), seed=0
        )
        assert res.tuner_name == "Ensemble (proposed)"
        assert res.n_evaluations == 6


class TestReducedVsOriginalShape:
    def test_hypre_reduced_tuning_competitive(self):
        """Fig. 7's qualitative claim at miniature scale: with a tiny
        budget, tuning 3 sensitive parameters does at least as well as
        tuning all 12."""
        app = HypreAMG(cori_haswell(1))
        space = app.parameter_space()
        keep = ["smooth_type", "smooth_num_levels", "agg_num_levels"]
        rng = np.random.default_rng(0)
        reduced = reduce_space(space, keep=keep, defaults=HYPRE_DEFAULTS, rng=rng)

        budget, task = 8, app.default_task()
        red_best, orig_best = [], []
        for seed in (0, 1, 2):
            problem = app.make_problem(run=seed)
            opts = TunerOptions(n_initial=2)
            r = Tuner(problem.with_parameter_space(reduced), opts).tune(
                task, budget, seed=seed
            )
            o = Tuner(problem, opts).tune(task, budget, seed=seed)
            red_best.append(r.best_output)
            orig_best.append(o.best_output)
        assert np.mean(red_best) <= np.mean(orig_best) * 1.1
