"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    CategoricalParameter,
    IntegerParameter,
    OutputParameter,
    RealParameter,
    Space,
    TaskData,
    TuningProblem,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def mixed_space() -> Space:
    """A space with all three parameter kinds."""
    return Space(
        [
            RealParameter("x", 0.0, 1.0),
            IntegerParameter("k", 1, 16),
            CategoricalParameter("mode", ["a", "b", "c"]),
        ]
    )


@pytest.fixture
def quadratic_problem() -> TuningProblem:
    """A deterministic 1-D problem with known optimum x=0.37, y=0.1."""
    return TuningProblem(
        name="quadratic",
        input_space=Space([IntegerParameter("t", 0, 10)]),
        parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
        output_space=Space([OutputParameter("y")]),
        objective=lambda task, cfg: (cfg["x"] - 0.37) ** 2 + 0.1,
    )


@pytest.fixture
def shifted_quadratics():
    """A family of correlated tasks: optimum moves with the task parameter.

    Used as a cheap transfer-learning scenario: task t has optimum at
    x = 0.3 + 0.02 t, so tasks are strongly correlated but not identical.
    """

    def objective(task, cfg):
        opt = 0.3 + 0.02 * float(task["t"])
        return (cfg["x"] - opt) ** 2 + 0.05

    return TuningProblem(
        name="shifted-quadratic",
        input_space=Space([IntegerParameter("t", 0, 10)]),
        parameter_space=Space([RealParameter("x", 0.0, 1.0)]),
        output_space=Space([OutputParameter("y")]),
        objective=objective,
    )


def make_source_data(problem: TuningProblem, task, n, seed=0, label="src") -> TaskData:
    """Random-sample a source dataset for a task (successes only)."""
    rng = np.random.default_rng(seed)
    space = problem.parameter_space
    configs, ys = [], []
    while len(ys) < n:
        c = space.sample(rng)
        ev = problem.evaluate(task, c)
        if not ev.failed:
            configs.append(c)
            ys.append(ev.output)
    X = space.to_unit_array(configs)
    return TaskData(dict(task), X, np.asarray(ys), label=label)


@pytest.fixture
def source_factory():
    return make_source_data
