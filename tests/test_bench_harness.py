"""Tests for the benchmark harness — it computes every reported number."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent.parent / "benchmarks"))

from harness import (  # noqa: E402
    DISPLAY_NAMES,
    PAPER_TUNERS,
    collect_source,
    make_tuner,
    mean_trajectories,
    render_trajectories,
    run_comparison,
    save_results,
    speedup_over_notla,
    value_at,
)

from repro.apps import DemoFunction  # noqa: E402
from repro.core import Tuner  # noqa: E402
from repro.tla import TransferTuner  # noqa: E402


class TestCollectSource:
    def test_collects_exactly_n_successes(self):
        app = DemoFunction()
        src = collect_source(app, {"t": 0.8}, 12, seed=0)
        assert src.n == 12
        assert src.task == {"t": 0.8}

    def test_records_failures(self):
        from repro.apps import NIMROD
        from repro.hpc import cori_haswell

        app = NIMROD(cori_haswell(64))
        src = collect_source(app, {"mx": 6, "my": 8, "lphi": 1}, 15, seed=0)
        assert src.n == 15
        assert len(src.X_failed) > 0  # the OOM region was sampled

    def test_deterministic(self):
        app = DemoFunction()
        a = collect_source(app, {"t": 0.8}, 8, seed=5)
        b = collect_source(app, {"t": 0.8}, 8, seed=5)
        assert np.allclose(a.X, b.X) and np.allclose(a.y, b.y)


class TestMakeTuner:
    def test_notla(self):
        app = DemoFunction()
        tuner = make_tuner("notla", app.make_problem(), [])
        assert isinstance(tuner, Tuner) and not isinstance(tuner, TransferTuner)

    def test_tla_keys(self):
        app = DemoFunction()
        src = collect_source(app, {"t": 0.8}, 10, seed=0)
        tuner = make_tuner("stacking", app.make_problem(), [src])
        assert isinstance(tuner, TransferTuner)


class TestAggregation:
    @pytest.fixture
    def results(self):
        return {
            "notla": np.array([[4.0, 2.0], [6.0, 4.0]]),
            "stacking": np.array([[2.0, 1.0], [np.nan, 2.0]]),
        }

    def test_mean_trajectories_nan_aware(self, results):
        means = mean_trajectories(results)
        assert np.allclose(means["notla"], [5.0, 3.0])
        # first eval: only one finite run
        assert means["stacking"][0] == 2.0
        assert means["stacking"][1] == 1.5

    def test_value_at(self, results):
        assert value_at(results, "notla", 1) == 3.0

    def test_speedup_over_notla(self, results):
        assert speedup_over_notla(results, "stacking", 1) == pytest.approx(2.0)

    def test_speedup_nan_when_no_data(self):
        results = {
            "notla": np.array([[4.0]]),
            "stacking": np.array([[np.nan]]),
        }
        import math

        assert math.isnan(speedup_over_notla(results, "stacking", 0))

    def test_render_contains_all_tuners(self, results):
        text = render_trajectories("T", results, marks=[1])
        assert "NoTLA" in text and "Stacking" in text
        assert "speedup 2.00x" in text

    def test_display_names_cover_lineup(self):
        for key in PAPER_TUNERS:
            assert key in DISPLAY_NAMES


class TestRunComparison:
    def test_shapes_and_determinism(self):
        app = DemoFunction()
        src = collect_source(app, {"t": 0.8}, 15, seed=0)
        a = run_comparison(
            app, {"t": 1.0}, [src], tuners=["notla", "stacking"],
            n_evals=3, repeats=2,
        )
        assert a["notla"].shape == (2, 3)
        b = run_comparison(
            app, {"t": 1.0}, [src], tuners=["notla", "stacking"],
            n_evals=3, repeats=2,
        )
        assert np.allclose(a["stacking"], b["stacking"], equal_nan=True)


class TestSaveResults:
    def test_json_written_and_nan_safe(self, tmp_path, monkeypatch):
        import harness

        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        path = save_results("unit", {"a": np.array([1.0, np.nan]), "b": 3})
        import json

        blob = json.loads(path.read_text())
        assert blob["a"] == [1.0, None]
        assert blob["b"] == 3
