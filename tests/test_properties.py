"""Cross-cutting property-based tests (hypothesis).

Each class pins an invariant that must hold for *arbitrary* inputs, not
just the examples unit tests chose: parser round-trips, estimator
inequalities, distribution-law identities, conservation properties.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CategoricalParameter,
    GaussianProcess,
    IntegerParameter,
    KnnFeasibility,
    RealParameter,
    Space,
)
from repro.crowd.database import Collection
from repro.crowd.query import SqlQuery
from repro.hpc import NetworkModel, block_cyclic_rows
from repro.sensitivity import saltelli_sample, sobol_indices

# ---------------------------------------------------------------------------
# strategies
# ---------------------------------------------------------------------------

_idents = st.sampled_from(["x", "y", "task.m", "output", "owner"])
_numbers = st.integers(-1000, 1000) | st.floats(
    -1e6, 1e6, allow_nan=False, allow_infinity=False
).map(lambda v: round(v, 4))
_strings = st.text(
    alphabet=st.characters(whitelist_categories=("Ll", "Lu", "Nd"), max_codepoint=127),
    min_size=0,
    max_size=8,
)


def _comparison():
    ops = st.sampled_from(["=", "!=", "<", "<=", ">", ">="])
    values = _numbers | _strings
    return st.tuples(_idents, ops, values)


class TestSqlParserProperties:
    @given(st.lists(_comparison(), min_size=1, max_size=4), st.booleans())
    @settings(max_examples=80, deadline=None)
    def test_conjunctions_roundtrip(self, comparisons, use_or):
        """Any AND/OR chain of rendered comparisons parses cleanly and
        preserves the comparison count."""
        joiner = " OR " if use_or else " AND "
        rendered = []
        for field, op, value in comparisons:
            lit = f"'{value}'" if isinstance(value, str) else repr(value)
            rendered.append(f"{field} {op} {lit}")
        q = SqlQuery.parse("SELECT * WHERE " + joiner.join(rendered))
        flt = q.filter
        if len(comparisons) == 1:
            assert isinstance(flt, dict) and not flt.keys() & {"$and", "$or"}
        else:
            key = "$or" if use_or else "$and"
            assert len(flt[key]) == len(comparisons)

    @given(_numbers)
    @settings(max_examples=40, deadline=None)
    def test_parsed_filter_equivalent_to_python(self, threshold):
        docs = [{"v": i} for i in range(-5, 6)]
        c = Collection("t")
        c.insert_many(docs)
        q = SqlQuery.parse(f"SELECT * WHERE v <= {threshold!r}")
        got = {d["v"] for d in c.find(q.filter)}
        expect = {d["v"] for d in docs if d["v"] <= threshold}
        assert got == expect


class TestDocumentStoreProperties:
    @given(
        st.lists(st.integers(-20, 20), min_size=1, max_size=30),
        st.integers(-20, 20),
        st.integers(-20, 20),
    )
    @settings(max_examples=60, deadline=None)
    def test_update_then_query_consistent(self, values, needle, replacement):
        c = Collection("t")
        c.insert_many([{"v": v} for v in values])
        n_updated = c.update({"v": needle}, {"v": replacement})
        assert n_updated == values.count(needle)
        if replacement != needle:
            assert c.count({"v": needle}) == 0
        assert c.count({}) == len(values)

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=25))
    @settings(max_examples=60, deadline=None)
    def test_delete_is_complement_of_find(self, values):
        c = Collection("t")
        c.insert_many([{"v": v} for v in values])
        matching = len(c.find({"v": {"$gte": 5}}))
        deleted = c.delete({"v": {"$gte": 5}})
        assert deleted == matching
        assert c.count({}) == len(values) - deleted


class TestSaltelliSobolProperties:
    @given(st.integers(2, 6), st.integers(4, 7))
    @settings(max_examples=20, deadline=None)
    def test_additive_indices_sum_to_one(self, dim, log_n):
        """For an additive function, sum(S1) == sum(ST) == 1 (up to QMC
        estimation error)."""
        n = 2**log_n * 16
        design = saltelli_sample(n, dim, seed=0)
        w = np.arange(1, dim + 1, dtype=float)
        values = design.stacked() @ w
        res = sobol_indices(design, values, n_bootstrap=0)
        assert np.sum(res.S1) == pytest.approx(1.0, abs=0.15)
        assert np.sum(res.ST) == pytest.approx(1.0, abs=0.15)

    @given(st.integers(2, 5))
    @settings(max_examples=15, deadline=None)
    def test_st_at_least_s1(self, dim):
        """ST_i >= S1_i for any function (interactions add, never
        subtract), modulo estimator noise."""
        design = saltelli_sample(512, dim, seed=1)
        U = design.stacked()
        values = np.prod(1.0 + U, axis=1)  # interaction-rich
        res = sobol_indices(design, values, n_bootstrap=0)
        assert np.all(res.ST >= res.S1 - 0.05)


class TestBlockCyclicProperties:
    @given(st.integers(0, 500), st.integers(1, 64), st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_rows_conserved(self, m, mb, p):
        total = sum(block_cyclic_rows(m, mb, p, r) for r in range(p))
        assert total == m

    @given(st.integers(1, 500), st.integers(1, 64), st.integers(1, 12))
    @settings(max_examples=100, deadline=None)
    def test_first_rank_gets_most(self, m, mb, p):
        counts = [block_cyclic_rows(m, mb, p, r) for r in range(p)]
        assert counts[0] == max(counts)


class TestNetworkProperties:
    @given(
        st.floats(1e-7, 1e-4),
        st.floats(1e-12, 1e-8),
        st.integers(2, 1024),
        st.floats(1.0, 1e8),
    )
    @settings(max_examples=80, deadline=None)
    def test_collectives_dominate_p2p(self, alpha, beta, p, nbytes):
        """Any collective over p >= 2 ranks costs at least one message."""
        net = NetworkModel("t", alpha=alpha, beta=beta)
        floor = net.alpha  # at minimum one latency
        for op in (net.bcast, net.reduce, net.allreduce):
            assert op(nbytes, p) >= floor * 0.99

    @given(st.floats(1.0, 1e7), st.integers(2, 256))
    @settings(max_examples=60, deadline=None)
    def test_bcast_monotone_in_bytes(self, nbytes, p):
        net = NetworkModel("t", alpha=1e-6, beta=1e-9)
        assert net.bcast(2 * nbytes, p) >= net.bcast(nbytes, p)


class TestFeasibilityProperties:
    @given(st.integers(1, 40), st.integers(0, 40), st.integers(2, 5))
    @settings(max_examples=50, deadline=None)
    def test_probabilities_bounded(self, n_ok, n_fail, dim):
        rng = np.random.default_rng(n_ok * 100 + n_fail)
        model = KnnFeasibility(rng.random((n_ok, dim)), rng.random((n_fail, dim)))
        p = model.predict_proba(rng.random((20, dim)))
        assert np.all((p >= 0.0) & (p <= 1.0))

    @given(st.integers(3, 30), st.integers(2, 4))
    @settings(max_examples=40, deadline=None)
    def test_all_ok_means_all_feasible(self, n_ok, dim):
        rng = np.random.default_rng(n_ok)
        model = KnnFeasibility(rng.random((n_ok, dim)), np.empty((0, dim)))
        assert np.allclose(model.predict_proba(rng.random((10, dim))), 1.0)


class TestGPProperties:
    @given(st.integers(3, 25), st.integers(1, 3))
    @settings(max_examples=20, deadline=None)
    def test_posterior_std_zero_at_training_points(self, n, d):
        rng = np.random.default_rng(n * 10 + d)
        X = rng.random((n, d))
        y = np.sin(X.sum(axis=1) * 3.0)
        gp = GaussianProcess(optimize=False, noise_variance=1e-8).fit(X, y)
        _, std = gp.predict(X)
        assert np.all(std < 0.1)

    @given(st.integers(3, 20))
    @settings(max_examples=20, deadline=None)
    def test_prediction_invariant_to_y_shift(self, n):
        """Standardization: shifting targets shifts predictions exactly."""
        rng = np.random.default_rng(n)
        X = rng.random((n, 2))
        y = rng.random(n)
        Xq = rng.random((5, 2))
        gp1 = GaussianProcess(optimize=False).fit(X, y)
        gp2 = GaussianProcess(optimize=False).fit(X, y + 100.0)
        assert np.allclose(
            gp2.predict_mean(Xq), gp1.predict_mean(Xq) + 100.0, atol=1e-6
        )


class TestSpaceProperties:
    @given(
        st.lists(st.floats(0, 1), min_size=4, max_size=4),
        st.integers(2, 9),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_arbitrary_space(self, coords, n_cats):
        space = Space(
            [
                RealParameter("a", -3.0, 9.0),
                IntegerParameter("b", -5, 17),
                CategoricalParameter("c", [f"v{i}" for i in range(n_cats)]),
                RealParameter("d", 0.0, 1e-3),
            ]
        )
        cfg = space.from_unit(coords)
        assert space.contains(cfg)
        # second roundtrip is exactly stable (idempotence)
        cfg2 = space.from_unit(space.to_unit(cfg))
        assert cfg2["b"] == cfg["b"] and cfg2["c"] == cfg["c"]
        assert cfg2["a"] == pytest.approx(cfg["a"], abs=1e-9)
