"""Tests for the simulated transport and the retrying service client."""

from __future__ import annotations

import pytest

from repro.engine.faults import RetryPolicy
from repro.service import ServiceClient, SimTransport, TransportError


def _echo(request):
    return {"ok": True, "echo": dict(request)}


class _Counting:
    def __init__(self):
        self.calls = 0

    def __call__(self, request):
        self.calls += 1
        return {"ok": True, "n": self.calls}


class TestSimTransport:
    def test_delivers_to_target(self):
        t = SimTransport(_echo, "s0")
        assert t.request({"route": "x"})["ok"]
        assert t.n_requests == 1

    def test_faults_are_deterministic_per_seed(self):
        def outcomes(seed):
            t = SimTransport(_echo, "s0", fault_rate=0.5, seed=seed)
            out = []
            for _ in range(40):
                try:
                    t.request({})
                    out.append(True)
                except TransportError:
                    out.append(False)
            return out

        a, b = outcomes(7), outcomes(7)
        assert a == b
        assert outcomes(8) != a  # a different seed faults differently
        assert not all(a) and any(a)  # rate 0.5 drops some, not all

    def test_scripted_faults_hit_exact_sequence_numbers(self):
        t = SimTransport(_echo, "s0", scripted_faults=[2, 3])
        assert t.request({})["ok"]
        with pytest.raises(TransportError):
            t.request({})
        with pytest.raises(TransportError):
            t.request({})
        assert t.request({})["ok"]

    def test_down_endpoint_always_fails(self):
        t = SimTransport(_echo, "s0")
        t.down = True
        with pytest.raises(TransportError):
            t.request({})
        t.down = False
        assert t.request({})["ok"]

    def test_validation(self):
        with pytest.raises(ValueError):
            SimTransport(_echo, fault_rate=1.0)
        with pytest.raises(ValueError):
            SimTransport(_echo, latency_s=-1)


class TestServiceClient:
    def test_passthrough_without_faults(self):
        client = ServiceClient(SimTransport(_echo, "s0"))
        assert client.handle({"route": "x"})["ok"]
        assert client.n_retries == 0

    def test_retries_through_scripted_faults(self):
        target = _Counting()
        transport = SimTransport(target, "s0", scripted_faults=[1, 2])
        client = ServiceClient(
            transport, retry=RetryPolicy(max_retries=3, base_s=0.0), sleep=lambda s: None
        )
        response = client.handle({"route": "x"})
        assert response["ok"]
        assert client.n_retries == 2
        assert target.calls == 1  # dropped requests never reached it

    def test_exhausted_retries_surface_as_unavailable(self):
        transport = SimTransport(_echo, "s0")
        transport.down = True
        slept = []
        client = ServiceClient(
            transport,
            retry=RetryPolicy(max_retries=2, base_s=0.5, factor=2.0, cap_s=10.0),
            sleep=slept.append,
        )
        response = client.handle({"route": "x"})
        assert response == {
            "ok": False,
            "error": "unavailable",
            "message": "endpoint s0 is down",
            "attempts": 3,
        }
        assert slept == [0.5, 1.0]  # bounded exponential backoff

    def test_throttled_response_is_retried_with_retry_after(self):
        responses = iter(
            [
                {"ok": False, "error": "throttled", "retry_after": 0.25},
                {"ok": True},
            ]
        )

        class _Endpoint:
            def handle(self, request):
                return next(responses)

        slept = []
        client = ServiceClient(
            _Endpoint(),
            retry=RetryPolicy(max_retries=1, base_s=0.01, cap_s=1.0),
            sleep=slept.append,
        )
        assert client.handle({"route": "x"})["ok"]
        assert slept == [0.25]  # honored the server's hint

    def test_non_retryable_error_returned_verbatim(self):
        class _Endpoint:
            def handle(self, request):
                return {"ok": False, "error": "auth", "message": "bad key"}

        client = ServiceClient(_Endpoint(), sleep=lambda s: None)
        assert client.handle({})["error"] == "auth"
        assert client.n_retries == 0
