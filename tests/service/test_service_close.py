"""Shutdown tests: no daemon thread outlives a closed deployment.

Regression coverage for the background-thread leak: the router's
anti-entropy loop and each shard registry's builder thread kept running
after teardown, bleeding work (and file handles, with ``data_dir``)
across test boundaries and fabric runs.
"""

from __future__ import annotations

import threading
import time

from repro.registry import RegistryOptions
from repro.service import build_service

BACKGROUND = ("crowd-antientropy", "registry-builder")


def background_threads() -> list[str]:
    return [
        t.name
        for t in threading.enumerate()
        if t.is_alive() and any(t.name.startswith(b) for b in BACKGROUND)
    ]


def wait_gone(deadline_s: float = 5.0) -> list[str]:
    deadline = time.monotonic() + deadline_s
    while time.monotonic() < deadline:
        left = background_threads()
        if not left:
            return []
        time.sleep(0.01)
    return background_threads()


class TestServiceClose:
    def test_close_stops_anti_entropy_thread(self):
        svc = build_service(2, anti_entropy_interval_s=0.01)
        time.sleep(0.05)
        assert any(n.startswith("crowd-antientropy") for n in background_threads())
        svc.close()
        assert wait_gone() == []

    def test_close_stops_registry_builder_threads(self):
        svc = build_service(
            2, registry=RegistryOptions(background=True)
        )
        assert any(n.startswith("registry-builder") for n in background_threads())
        svc.close()
        assert wait_gone() == []

    def test_context_manager_closes_everything(self):
        with build_service(
            3,
            anti_entropy_interval_s=0.01,
            registry=RegistryOptions(background=True),
        ) as svc:
            _, key = svc.register_user("closer", "c@crowd.io")
            assert svc.client.handle(
                {
                    "route": "upload",
                    "api_key": key,
                    "problem_name": "p",
                    "task_parameters": {"t": 1},
                    "tuning_parameters": {"x": 0.5},
                    "output": 1.0,
                }
            )["ok"]
        assert wait_gone() == []

    def test_close_is_idempotent(self):
        svc = build_service(2, anti_entropy_interval_s=0.01)
        svc.close()
        svc.close()  # second close must be a no-op, not an error
        assert wait_gone() == []

    def test_close_after_partial_teardown(self):
        """Removing a shard first must not break the full shutdown."""
        svc = build_service(3, anti_entropy_interval_s=0.01)
        svc.remove_shard("shard-2")
        svc.close()
        assert wait_gone() == []

    def test_router_and_shard_close_idempotent(self):
        svc = build_service(
            2, registry=RegistryOptions(background=True)
        )
        with svc.router:
            pass
        svc.router.close()
        for shard in svc.shards.values():
            with shard:
                pass
            shard.close()
        svc.close()
        assert wait_gone() == []
