"""Router semantics: replication, pinned reads, fan-out merge, cache,
throttling, and degraded-mode behavior."""

from __future__ import annotations

import pytest

from repro.crowd.users import UserRegistry
from repro.service import (
    CrowdRouter,
    CrowdShard,
    RouterOptions,
    build_service,
)


def _upload(endpoint, key, i, problem="demo", task=None):
    return endpoint.handle(
        {
            "route": "upload",
            "api_key": key,
            "problem_name": problem,
            "task_parameters": task if task is not None else {"t": i % 5},
            "tuning_parameters": {"x": i},
            "output": float(i),
        }
    )


@pytest.fixture()
def svc():
    service = build_service(4, replication=2)
    yield service
    service.close()


@pytest.fixture()
def key(svc):
    return svc.register_user("alice", "alice@lab.gov")[1]


class _Clock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def _manual_router(**options):
    """Router over bare shards with an injectable clock."""
    users = UserRegistry()
    users.register("alice", "alice@lab.gov")
    api_key = users.issue_api_key("alice")
    shards = {f"s{i}": CrowdShard(f"s{i}", None, users=users) for i in range(3)}
    clock = _Clock()
    router = CrowdRouter(shards, RouterOptions(**options), clock=clock)
    return router, api_key, clock


class TestReplication:
    def test_each_record_stored_on_replication_shards(self, svc, key):
        for i in range(20):
            assert _upload(svc.client, key, i)["ok"]
        assert svc.total_records() == 40  # 20 records x replication=2

    def test_replicas_carry_identical_uid_and_timestamp(self, svc, key):
        _upload(svc.client, key, 0)
        docs = [
            d
            for shard in svc.shards.values()
            for d in shard.repository.store["performance_records"].find({})
        ]
        assert len(docs) == 2
        assert docs[0]["uid"] == docs[1]["uid"]
        assert docs[0]["timestamp"] == docs[1]["timestamp"]

    def test_fanout_query_dedups_replicas(self, svc, key):
        for i in range(15):
            _upload(svc.client, key, i)
        response = svc.client.handle(
            {"route": "query", "api_key": key, "problem_name": "demo"}
        )
        assert response["ok"]
        assert len(response["records"]) == 15
        uids = [r["uid"] for r in response["records"]]
        assert len(set(uids)) == 15

    def test_write_survives_one_dead_replica(self, svc, key):
        svc.kill_shard("shard-0")
        for i in range(20):
            assert _upload(svc.client, key, i)["ok"]
        response = svc.client.handle(
            {"route": "query", "api_key": key, "problem_name": "demo"}
        )
        assert len(response["records"]) == 20


class TestPinnedReads:
    def test_pinned_query_served_without_fanout(self, svc, key):
        for i in range(12):
            _upload(svc.client, key, i)
        before = {n: t.n_requests for n, t in svc.transports.items()}
        response = svc.client.handle(
            {
                "route": "query",
                "api_key": key,
                "problem_name": "demo",
                "task_parameters": {"t": 2},
            }
        )
        assert response["ok"]
        assert len(response["records"]) == sum(1 for i in range(12) if i % 5 == 2)
        touched = [
            n for n, t in svc.transports.items() if t.n_requests > before[n]
        ]
        assert len(touched) == 1  # single owning shard, no fan-out

    def test_pinned_query_falls_back_to_replica(self, svc, key):
        for i in range(12):
            _upload(svc.client, key, i)
        task = {"t": 3}
        expected = sum(1 for i in range(12) if i % 5 == 3)
        # kill shards until the primary for this task is certainly dead,
        # keeping one replica alive (replication=2 tolerates 1 failure)
        from repro.service.shard import shard_key

        prefs = svc.router.ring.preference(shard_key("demo", task), 2)
        svc.kill_shard(prefs[0])
        response = svc.client.handle(
            {
                "route": "query",
                "api_key": key,
                "problem_name": "demo",
                "task_parameters": task,
            }
        )
        assert response["ok"]
        assert len(response["records"]) == expected

    def test_pinned_query_unavailable_when_all_replicas_dead(self, svc, key):
        _upload(svc.client, key, 0, task={"t": 0})
        for name in svc.transports:
            svc.kill_shard(name)
        response = svc.router.handle(
            {
                "route": "query",
                "api_key": key,
                "problem_name": "demo",
                "task_parameters": {"t": 0},
            }
        )
        assert response == {
            "ok": False,
            "error": "unavailable",
            "message": response["message"],
        }


class TestMerges:
    def test_query_sql_merge_respects_global_order_and_limit(self, svc, key):
        for i in range(10):
            _upload(svc.client, key, i)
        response = svc.client.handle(
            {
                "route": "query_sql",
                "api_key": key,
                "sql": (
                    "SELECT * WHERE problem_name = 'demo' "
                    "ORDER BY output DESC LIMIT 4"
                ),
            }
        )
        assert response["ok"]
        outputs = [r["output"] for r in response["records"]]
        assert outputs == [9.0, 8.0, 7.0, 6.0]

    def test_problems_is_a_union_over_shards(self, svc, key):
        for i, problem in enumerate(["alpha", "beta", "gamma", "alpha"]):
            _upload(svc.client, key, i, problem=problem, task={"t": i})
        response = svc.client.handle({"route": "problems", "api_key": key})
        assert response == {"ok": True, "problems": ["alpha", "beta", "gamma"]}

    def test_leaderboard_not_skewed_by_replication(self, svc, key):
        for i in range(9):
            _upload(svc.client, key, i)
        response = svc.client.handle(
            {"route": "leaderboard", "api_key": key, "problem_name": "demo"}
        )
        assert response["ok"]
        total = sum(row["n_samples"] for row in response["rows"])
        assert total == 9  # replicas deduplicated before aggregation

    def test_contributors_counts_each_record_once(self, svc, key):
        for i in range(7):
            _upload(svc.client, key, i)
        response = svc.client.handle(
            {"route": "contributors", "api_key": key, "problem_name": "demo"}
        )
        assert response["ok"]
        (row,) = response["contributors"]
        assert row["user"] == "alice"
        assert row["samples"] == 7

    def test_browse_html_is_rejected(self, svc, key):
        response = svc.client.handle({"route": "browse_html", "api_key": key})
        assert response["error"] == "bad_request"

    def test_unknown_route(self, svc, key):
        assert svc.client.handle({"route": "nope"})["error"] == "not_found"


class TestCache:
    def test_repeat_query_is_served_from_cache(self, svc, key):
        for i in range(6):
            _upload(svc.client, key, i)
        request = {"route": "query", "api_key": key, "problem_name": "demo"}
        first = svc.client.handle(request)
        before = {n: t.n_requests for n, t in svc.transports.items()}
        second = svc.client.handle(request)
        assert second == first
        # cache hit: no shard saw the second request
        assert {n: t.n_requests for n, t in svc.transports.items()} == before

    def test_cached_response_is_a_copy(self, svc, key):
        _upload(svc.client, key, 0)
        request = {"route": "query", "api_key": key, "problem_name": "demo"}
        first = svc.client.handle(request)
        first["records"][0]["output"] = -1.0
        second = svc.client.handle(request)
        assert second["records"][0]["output"] == 0.0

    def test_cache_hits_are_frozen_views(self, svc, key):
        import pytest

        _upload(svc.client, key, 0)
        request = {"route": "query", "api_key": key, "problem_name": "demo"}
        svc.client.handle(request)  # miss: populate
        hit = svc.client.handle(request)  # hit: pinned frozen view
        with pytest.raises(TypeError):
            hit["records"][0]["output"] = -1.0
        with pytest.raises(TypeError):
            hit["records"].append({})
        # the pinned response stays intact for later hits
        again = svc.client.handle(request)
        assert again["records"][0]["output"] == 0.0

    def test_cache_key_canonicalization(self):
        from repro.service.router import _cache_key

        # key-order insensitive, value-identical requests share a key
        assert _cache_key({"a": 1, "b": [2, {"c": 3}]}) == _cache_key(
            {"b": [2, {"c": 3}], "a": 1}
        )
        # 1, 1.0 and True compare equal; the canonical key must not
        keys = {_cache_key({"t": v}) for v in (1, 1.0, True)}
        assert len(keys) == 3
        # containers of different kinds never collide
        assert _cache_key([1, 2]) != _cache_key({"0": 1, "1": 2})
        assert _cache_key({"t": [1]}) != _cache_key({"t": {"0": 1}})
        # keys are hashable (usable as OrderedDict keys)
        hash(_cache_key({"a": {"b": [1, (2, 3)]}}))

    def test_write_invalidates_cache_of_owning_shards(self, svc, key):
        _upload(svc.client, key, 0, task={"t": 0})
        request = {"route": "query", "api_key": key, "problem_name": "demo"}
        assert len(svc.client.handle(request)["records"]) == 1
        # fan-out queries are tagged with every shard, so any write
        # invalidates them: the next read sees the new record, not stale
        _upload(svc.client, key, 1, task={"t": 1})
        assert len(svc.client.handle(request)["records"]) == 2

    def test_query_models_cached_and_invalidated_by_upload_model(self, svc, key):
        """query_models fans out to every shard (tagged with all of
        them), so an upload_model to any single shard must invalidate
        the cached response."""
        import numpy as np

        from repro.core import GaussianProcess

        rng = np.random.default_rng(0)
        gp = GaussianProcess(seed=0).fit(rng.random((8, 1)), rng.random(8))

        def _upload_model(task):
            return svc.client.handle(
                {
                    "route": "upload_model",
                    "api_key": key,
                    "problem_name": "demo",
                    "task_parameters": task,
                    "model": gp.to_dict(),
                }
            )

        assert _upload_model({"t": 0})["ok"]
        request = {"route": "query_models", "api_key": key, "problem_name": "demo"}
        first = svc.client.handle(request)
        assert first["ok"] and len(first["models"]) == 1
        before = {n: t.n_requests for n, t in svc.transports.items()}
        assert svc.client.handle(request) == first
        # cache hit: no shard saw the repeat
        assert {n: t.n_requests for n, t in svc.transports.items()} == before
        # a model write lands on one shard yet must evict the fan-out entry
        assert _upload_model({"t": 1})["ok"]
        assert len(svc.client.handle(request)["models"]) == 2

    def test_cache_entry_expires_after_ttl(self):
        router, api_key, clock = _manual_router(
            replication=1, cache_ttl_s=10.0
        )
        _upload(router, api_key, 0)
        request = {"route": "query", "api_key": api_key, "problem_name": "demo"}
        router.handle(request)
        assert router._cache.hits == 0
        router.handle(request)
        assert router._cache.hits == 1
        clock.now = 11.0  # past the TTL
        router.handle(request)
        assert router._cache.hits == 1
        router.close()

    def test_cache_disabled_with_size_zero(self):
        router, api_key, _ = _manual_router(replication=1, cache_size=0)
        _upload(router, api_key, 0)
        request = {"route": "query", "api_key": api_key, "problem_name": "demo"}
        router.handle(request)
        router.handle(request)
        assert len(router._cache) == 0
        router.close()


class TestThrottling:
    def test_over_rate_requests_get_retry_after(self):
        router, api_key, clock = _manual_router(
            replication=1, rate_limit=1.0, burst=3
        )
        request = {"route": "problems", "api_key": api_key}
        for _ in range(3):
            assert router.handle(request)["ok"]
        response = router.handle(request)
        assert response["ok"] is False
        assert response["error"] == "throttled"
        assert response["retry_after"] > 0
        # tokens refill with the clock
        clock.now += response["retry_after"] + 0.001
        assert router.handle(request)["ok"]
        router.close()

    def test_keys_are_throttled_independently(self):
        router, api_key, _ = _manual_router(replication=1, rate_limit=1.0, burst=1)
        assert router.handle({"route": "problems", "api_key": api_key})["ok"]
        assert (
            router.handle({"route": "problems", "api_key": api_key})["error"]
            == "throttled"
        )
        # a different key has its own bucket (fails auth, not throttle)
        other = router.handle({"route": "problems", "api_key": "nope"})
        assert other["error"] == "auth"
        router.close()


class TestAccounts:
    def test_account_routes_live_on_admin_shard(self, svc):
        username, api_key = svc.register_user("bob", "bob@lab.gov")
        assert username == "bob"
        who = svc.client.handle({"route": "whoami", "api_key": api_key})
        assert who["ok"] and who["username"] == "bob"
        # shared registry: the key authenticates on every shard
        for shard in svc.shards.values():
            assert shard.repository.users.authenticate(api_key).username == "bob"

    def test_validation(self):
        with pytest.raises(ValueError):
            CrowdRouter({})
        with pytest.raises(ValueError):
            RouterOptions(replication=0)
        with pytest.raises(ValueError):
            build_service(0)
