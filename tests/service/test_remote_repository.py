"""The crowd-tuning API (CrowdClient + TLA) over the sharded service.

`RemoteRepository` adapts the service protocol back to the repository
surface, so everything downstream — `query_source_data`, transfer
tuning, evaluation sync — must behave exactly as against an in-process
`CrowdRepository`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.synthetic import DemoFunction
from repro.crowd import CrowdClient, MetaDescription, PerformanceRecord
from repro.crowd.users import AuthError
from repro.service import build_service
from repro.tla import MultitaskTS


@pytest.fixture()
def svc():
    service = build_service(3, replication=2)
    yield service
    service.close()


@pytest.fixture()
def remote(svc):
    return svc.repository_view()


@pytest.fixture()
def key(svc):
    return svc.register_user("user_A", "a@lab.gov")[1]


@pytest.fixture()
def problem():
    return DemoFunction().make_problem(noisy=False)


def _meta(key, sync="no"):
    return MetaDescription.from_dict(
        {
            "api_key": key,
            "tuning_problem_name": "demo",
            "problem_space": {
                "input_space": [
                    {"name": "t", "type": "real", "lower_bound": 0, "upper_bound": 10}
                ],
                "parameter_space": [
                    {
                        "name": "x",
                        "type": "real",
                        "lower_bound": 0.0,
                        "upper_bound": 1.0,
                    }
                ],
                "output_space": [{"name": "y", "type": "output"}],
            },
            "sync_crowd_repo": sync,
        }
    )


def _seed_tasks(remote, key, problem, tasks, n, seed=0):
    rng = np.random.default_rng(seed)
    space = problem.parameter_space
    for task in tasks:
        for _ in range(n):
            cfg = space.sample(rng)
            remote.upload(
                PerformanceRecord(
                    problem_name=problem.name,
                    task_parameters=dict(task),
                    tuning_parameters=cfg,
                    output=problem.objective(task, cfg),
                ),
                key,
            )


class TestRemoteRepository:
    def test_upload_and_query_round_trip(self, remote, key, problem):
        _seed_tasks(remote, key, problem, [{"t": 1.0}, {"t": 2.0}], 4)
        records = remote.query(key, problem_name="demo")
        assert len(records) == 8
        assert {r.owner for r in records} == {"user_A"}
        pinned = remote.query(key, problem_name="demo", task_parameters={"t": 1.0})
        assert len(pinned) == 4

    def test_query_sql_and_problems(self, remote, key, problem):
        _seed_tasks(remote, key, problem, [{"t": 3.0}], 5)
        assert remote.problems(key) == ["demo"]
        top = remote.query_sql(
            key, "SELECT * WHERE problem_name = 'demo' ORDER BY output LIMIT 2"
        )
        assert len(top) == 2
        assert top[0].output <= top[1].output

    def test_bad_key_raises_auth_error(self, remote, key, problem):
        with pytest.raises(AuthError):
            remote.query("not-a-key", problem_name="demo")
        with pytest.raises(AuthError):
            remote.users.authenticate("not-a-key")


class TestCrowdClientOverService:
    def test_client_authenticates_via_whoami(self, remote, key):
        client = CrowdClient(remote, _meta(key))
        assert client.user.username == "user_A"
        with pytest.raises(AuthError):
            CrowdClient(remote, _meta("bogus-key"))

    def test_query_source_data_groups_per_task(self, remote, key, problem):
        _seed_tasks(remote, key, problem, [{"t": 1.0}, {"t": 5.0}], 6)
        client = CrowdClient(remote, _meta(key))
        sources = client.query_source_data(problem.parameter_space)
        assert len(sources) == 2
        assert all(s.n == 6 for s in sources)

    def test_tune_transfer_learns_from_crowd_data(self, remote, key, problem):
        _seed_tasks(remote, key, problem, [{"t": 2.0}, {"t": 8.0}], 8, seed=1)
        client = CrowdClient(remote, _meta(key, sync="yes"))
        result = client.tune(
            problem,
            {"t": 5.0},
            6,
            strategy=MultitaskTS(),
            seed=0,
            min_source_samples=5,
        )
        assert len(result.history) == 6
        assert np.isfinite(result.best_output)
        # sync_crowd_repo=yes: the run's evaluations landed in the service
        target = remote.query(
            key, problem_name="demo", task_parameters={"t": 5.0}
        )
        assert len(target) == 6
