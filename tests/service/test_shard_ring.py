"""Tests for consistent-hash sharding (ShardRing, shard_key)."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.service.shard import ShardRing, shard_key

NAMES4 = [f"shard-{i}" for i in range(4)]


def _keys(n):
    return [shard_key("demo", {"t": i, "m": i % 7}) for i in range(n)]


class TestShardKey:
    def test_key_is_order_insensitive_in_task(self):
        assert shard_key("p", {"a": 1, "b": 2}) == shard_key("p", {"b": 2, "a": 1})

    def test_key_separates_problem_and_task(self):
        assert shard_key("p", {"a": 1}) != shard_key("q", {"a": 1})
        assert shard_key("p", {"a": 1}) != shard_key("p", {"a": 2})


class TestShardRing:
    def test_deterministic(self):
        r1 = ShardRing(NAMES4)
        r2 = ShardRing(NAMES4)
        for key in _keys(50):
            assert r1.preference(key, 3) == r2.preference(key, 3)

    def test_preference_distinct_and_capped(self):
        ring = ShardRing(NAMES4)
        for key in _keys(50):
            prefs = ring.preference(key, 3)
            assert len(prefs) == len(set(prefs)) == 3
            # k beyond the shard count is capped, never an error
            assert len(ring.preference(key, 99)) == 4

    def test_primary_is_first_preference(self):
        ring = ShardRing(NAMES4)
        for key in _keys(20):
            assert ring.primary(key) == ring.preference(key, 2)[0]

    def test_distribution_roughly_balanced(self):
        ring = ShardRing(NAMES4, vnodes=128)
        owners = Counter(ring.primary(k) for k in _keys(2000))
        assert set(owners) == set(NAMES4)
        for count in owners.values():
            # 4 shards, 2000 keys: each should get a meaningful share
            assert 200 <= count <= 900

    def test_adding_a_shard_remaps_a_minority_of_keys(self):
        keys = _keys(2000)
        before = ShardRing(NAMES4, vnodes=128)
        after = ShardRing(NAMES4 + ["shard-4"], vnodes=128)
        moved = sum(1 for k in keys if before.primary(k) != after.primary(k))
        # consistent hashing: ~1/5 of keys move, never a wholesale reshuffle
        assert moved < len(keys) // 2

    def test_validation(self):
        with pytest.raises(ValueError):
            ShardRing([])
        with pytest.raises(ValueError):
            ShardRing(["a", "a"])
        with pytest.raises(ValueError):
            ShardRing(["a"], vnodes=0)
