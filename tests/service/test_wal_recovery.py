"""Durability tests: WAL, snapshots, and crash recovery.

The pinned acceptance test is :func:`TestCrashRecovery.
test_shard_killed_mid_stream_recovers_bit_identical`: a shard is killed
(its in-memory state simply dropped, no close/snapshot) in the middle of
a write stream and must recover snapshot + WAL tail to *bit-identical*
``DocumentStore`` contents.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.crowd.users import UserRegistry
from repro.service import CrowdShard, WriteAheadLog, load_shard_state
from repro.service.wal import read_wal, wal_path, write_snapshot


def _upload(shard, key, i, problem="demo"):
    return shard.handle(
        {
            "route": "upload",
            "api_key": key,
            "problem_name": problem,
            "task_parameters": {"t": i % 3},
            "tuning_parameters": {"x": i},
            "output": float(i),
        }
    )


def _new_shard(tmp_path, name="s0", **kwargs):
    users = UserRegistry()
    users.register("alice", "a@lab.gov")
    key = users.issue_api_key("alice")
    shard = CrowdShard(name, tmp_path / name, users=users, **kwargs)
    return shard, key


def _store_bytes(shard) -> str:
    return json.dumps(shard.repository.store.to_jsonable(), sort_keys=True)


class TestWriteAheadLog:
    def test_append_assigns_increasing_seq(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        assert wal.append({"op": "insert", "c": "x", "doc": {"_id": 1}}) == 1
        assert wal.append({"op": "delete", "c": "x", "flt": {}}) == 2
        wal.close()
        ops = read_wal(tmp_path / "wal.jsonl")
        assert [o["seq"] for o in ops] == [1, 2]

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        wal = WriteAheadLog(path)
        wal.append({"op": "insert", "c": "x", "doc": {"_id": 1}})
        wal.close()
        with open(path, "a") as fh:
            fh.write('{"seq": 2, "op": "insert", "c": "x", "doc": {"_i')
        ops = read_wal(path)
        assert len(ops) == 1

    def test_corrupt_middle_entry_raises(self, tmp_path):
        path = tmp_path / "wal.jsonl"
        path.write_text('not json\n{"seq": 1, "op": "drop", "c": "x"}\n')
        with pytest.raises(ValueError, match="corrupt WAL entry"):
            read_wal(path)

    def test_fsync_batching(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=3)
        for i in range(4):
            wal.append({"op": "drop", "c": f"c{i}"})
        wal.sync()
        wal.close()
        assert len(read_wal(tmp_path / "wal.jsonl")) == 4

    def test_rejects_bad_config(self, tmp_path):
        with pytest.raises(ValueError):
            WriteAheadLog(tmp_path / "w", fsync_every=0)

    def test_append_many_numbers_like_individual_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"op": "drop", "c": "a"})
        last = wal.append_many(
            [
                {"op": "insert", "c": "x", "doc": {"_id": 1}},
                {"op": "insert", "c": "x", "doc": {"_id": 2}},
                {"op": "delete", "c": "x", "flt": {}},
            ]
        )
        assert last == 4
        wal.append({"op": "drop", "c": "b"})
        wal.close()
        ops = read_wal(tmp_path / "wal.jsonl")
        assert [o["seq"] for o in ops] == [1, 2, 3, 4, 5]
        assert [o["op"] for o in ops] == ["drop", "insert", "insert", "delete", "drop"]

    def test_append_many_empty_batch_is_a_noop(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        wal.append({"op": "drop", "c": "a"})
        assert wal.append_many([]) == 1
        wal.close()
        assert len(read_wal(tmp_path / "wal.jsonl")) == 1

    def test_append_many_respects_fsync_batching(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal.jsonl", fsync_every=100)
        wal.append_many([{"op": "drop", "c": f"c{i}"} for i in range(10)])
        wal.sync()
        wal.close()
        assert len(read_wal(tmp_path / "wal.jsonl")) == 10

    def test_mixed_op_form_journal_recovers(self, tmp_path):
        """A journal holding both historical per-insert ops and the
        batched ``insert_many`` form replays to the same store."""
        from repro.crowd.database import DocumentStore

        src = DocumentStore()
        wal = WriteAheadLog(tmp_path / "wal.jsonl")
        src.set_observer(lambda op: wal.append(json.loads(json.dumps(op))))
        src["c"].insert({"a": 1})  # historical one-doc op
        src["c"].insert_many([{"a": 2}, {"a": 3}])  # batched op
        src["c"].update({"a": 2}, {"a": 20})
        wal.close()
        ops = read_wal(tmp_path / "wal.jsonl")
        assert [o["op"] for o in ops] == ["insert", "insert_many", "update"]
        store, last_seq = load_shard_state(tmp_path)
        assert last_seq == 3
        assert store["c"].find({}) == src["c"].find({})


class TestCrashRecovery:
    def test_shard_killed_mid_stream_recovers_bit_identical(self, tmp_path):
        """PINNED: kill a shard mid-write-stream; snapshot + WAL tail
        must reproduce the exact DocumentStore contents."""
        shard, key = _new_shard(tmp_path, snapshot_every=7)
        for i in range(23):  # crosses several snapshot boundaries
            assert _upload(shard, key, i)["ok"]
        pre = _store_bytes(shard)
        # crash: drop the object without close()/snapshot()
        del shard
        recovered, _ = _new_shard(tmp_path, snapshot_every=7)
        assert _store_bytes(recovered) == pre
        recovered.close()

    def test_recovery_with_no_snapshot_yet(self, tmp_path):
        shard, key = _new_shard(tmp_path, snapshot_every=10_000)
        for i in range(5):
            _upload(shard, key, i)
        pre = _store_bytes(shard)
        del shard
        recovered, _ = _new_shard(tmp_path, snapshot_every=10_000)
        assert _store_bytes(recovered) == pre
        assert recovered.count() == 5
        recovered.close()

    def test_recovery_tolerates_torn_wal_tail(self, tmp_path):
        shard, key = _new_shard(tmp_path)
        for i in range(6):
            _upload(shard, key, i)
        pre = _store_bytes(shard)
        del shard
        with open(wal_path(tmp_path / "s0"), "a") as fh:
            fh.write('{"seq": 999, "op": "insert", "c": "performance_re')
        recovered, _ = _new_shard(tmp_path)
        assert _store_bytes(recovered) == pre
        recovered.close()

    def test_replay_skips_ops_covered_by_snapshot(self, tmp_path):
        """Even if WAL truncation never ran after a snapshot, replay is
        idempotent: ops with seq <= snapshot.wal_seq are skipped."""
        shard, key = _new_shard(tmp_path, snapshot_every=10_000)
        for i in range(4):
            _upload(shard, key, i)
        data_dir = tmp_path / "s0"
        # snapshot manually but DO NOT truncate the WAL (simulates a
        # crash between snapshot write and truncation)
        shard._wal.sync()
        write_snapshot(data_dir, shard.repository.store, shard._wal.seq)
        pre = _store_bytes(shard)
        del shard
        store, last_seq = load_shard_state(data_dir)
        assert json.dumps(store.to_jsonable(), sort_keys=True) == pre
        assert store["performance_records"].count({}) == 4

    def test_uploads_continue_after_recovery(self, tmp_path):
        users = UserRegistry()
        users.register("alice", "a@lab.gov")
        key = users.issue_api_key("alice")
        shard = CrowdShard("s0", tmp_path / "s0", users=users, snapshot_every=4)
        for i in range(6):
            _upload(shard, key, i)
        timestamps = {
            d["timestamp"]
            for d in shard.repository.store["performance_records"].find({})
        }
        del shard
        recovered = CrowdShard("s0", tmp_path / "s0", users=users, snapshot_every=4)
        _upload(recovered, key, 99)
        docs = recovered.repository.store["performance_records"].find({})
        assert len(docs) == 7
        # the post-recovery record's timestamp continues past the
        # recovered clock — never a duplicate of a replayed stamp
        new_ts = {d["timestamp"] for d in docs} - timestamps
        assert len(new_ts) == 1
        assert next(iter(new_ts)) > max(timestamps)
        recovered.close()

    def test_service_restart_resumes_router_uids(self, tmp_path):
        # rebuilding a persisted deployment must seed the router past
        # every recovered uid — a reset counter would re-issue uid 1 and
        # the new record would dedup-collide with a pre-crash one
        from repro.service import build_service

        svc = build_service(3, replication=2, data_dir=tmp_path, snapshot_every=8)
        _, key = svc.register_user("alice", "a@lab.gov")
        for i in range(17):
            response = svc.client.handle(
                {
                    "route": "upload",
                    "api_key": key,
                    "problem_name": "demo",
                    "task_parameters": {"t": i % 3},
                    "tuning_parameters": {"x": i},
                    "output": float(i),
                }
            )
            assert response["ok"]
        svc.close()

        revived = build_service(
            3, replication=2, data_dir=tmp_path, users=svc.users
        )
        assert revived.router._next_uid == 18
        response = revived.client.handle(
            {
                "route": "upload",
                "api_key": key,
                "problem_name": "demo",
                "task_parameters": {"t": 99},
                "tuning_parameters": {"x": 99},
                "output": 99.0,
            }
        )
        assert response["ok"]
        records = revived.client.handle(
            {"route": "query", "api_key": key, "problem_name": "demo"}
        )["records"]
        uids = [r["uid"] for r in records]
        assert len(records) == 18
        assert len(set(uids)) == 18
        revived.close()

    def test_snapshot_truncates_wal(self, tmp_path):
        shard, key = _new_shard(tmp_path, snapshot_every=10_000)
        for i in range(5):
            _upload(shard, key, i)
        assert len(read_wal(wal_path(tmp_path / "s0"))) == 5
        shard.snapshot()
        assert read_wal(wal_path(tmp_path / "s0")) == []
        # state still fully recoverable from the snapshot alone
        pre = _store_bytes(shard)
        del shard
        recovered, _ = _new_shard(tmp_path, snapshot_every=10_000)
        assert _store_bytes(recovered) == pre
        recovered.close()

    def test_memory_only_shard_has_no_files(self, tmp_path):
        users = UserRegistry()
        users.register("alice", "a@lab.gov")
        key = users.issue_api_key("alice")
        shard = CrowdShard("mem", None, users=users)
        _upload(shard, key, 0)
        assert shard.count() == 1
        assert list(Path(tmp_path).iterdir()) == []
        shard.close()
