"""Self-healing replication: quorum writes/reads, hinted handoff,
read-repair, anti-entropy, idempotent retry, and live membership."""

from __future__ import annotations

import shutil

import pytest

from repro.core import perf
from repro.engine.faults import RetryPolicy
from repro.service import (
    RouterOptions,
    ServiceClient,
    SimTransport,
    build_service,
)
from repro.service.shard import shard_key

_RECORDS = "performance_records"


def _upload(endpoint, key, i, problem="demo", task=None):
    return endpoint.handle(
        {
            "route": "upload",
            "api_key": key,
            "problem_name": problem,
            "task_parameters": task if task is not None else {"t": i % 5},
            "tuning_parameters": {"x": i},
            "output": float(i),
        }
    )


def _pinned_query(endpoint, key, task, problem="demo"):
    return endpoint.handle(
        {
            "route": "query",
            "api_key": key,
            "problem_name": problem,
            "task_parameters": task,
        }
    )


def _copies(svc, uid: int) -> int:
    """Stored replicas of one uid across the whole cluster."""
    return sum(
        len(shard.repository.store[_RECORDS].find({"uid": uid}))
        for shard in svc.shards.values()
    )


@pytest.fixture()
def svc():
    service = build_service(4, replication=2)
    yield service
    service.close()


@pytest.fixture()
def key(svc):
    return svc.register_user("alice", "alice@lab.gov")[1]


class TestUploadStatus:
    def test_healthy_upload_response_is_pinned(self, svc, key):
        # the documented default-mode response: the legacy fields plus
        # exactly the three replication-visibility keys, nothing else
        assert _upload(svc.client, key, 0) == {
            "ok": True,
            "uid": 1,
            "status": "ok",
            "replicas_acked": 2,
            "replicas_total": 2,
        }

    def test_degraded_status_when_a_replica_is_down(self, svc, key):
        task = {"t": 0}
        prefs = svc.router.ring.preference(shard_key("demo", task), 2)
        svc.kill_shard(prefs[1])
        response = _upload(svc.client, key, 0, task=task)
        assert response["ok"] is True  # legacy W=1: one ack suffices
        assert response["status"] == "degraded"
        assert response["replicas_acked"] == 1
        assert response["replicas_total"] == 2
        assert svc.router.hints_pending(prefs[1]) == 1

    def test_degraded_status_when_primary_is_down(self, svc, key):
        task = {"t": 1}
        prefs = svc.router.ring.preference(shard_key("demo", task), 2)
        svc.kill_shard(prefs[0])
        response = _upload(svc.client, key, 0, task=task)
        assert response["ok"] is True
        assert response["status"] == "degraded"

    def test_unavailable_reports_zero_acks(self, svc, key):
        for name in svc.transports:
            svc.kill_shard(name)
        response = _upload(svc.router, key, 0)
        assert response["ok"] is False
        assert response["error"] == "unavailable"
        assert response["replicas_acked"] == 0
        assert response["replicas_total"] == 2
        # nothing landed anywhere: no hint may resurrect a nacked write
        assert svc.router.hints_pending() == 0


class TestQuorumWrites:
    def test_quorum_met_upload_acks(self):
        svc = build_service(4, replication=2, write_quorum=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            response = _upload(svc.client, key, 0)
            assert response["ok"] is True
            assert response["status"] == "ok"
            assert response["replicas_acked"] == 2
        finally:
            svc.close()

    def test_quorum_miss_is_an_error_not_a_silent_ok(self):
        svc = build_service(4, replication=2, write_quorum=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            task = {"t": 0}
            prefs = svc.router.ring.preference(shard_key("demo", task), 2)
            svc.kill_shard(prefs[1])
            stats = perf.PerfStats()
            with perf.collect(stats):
                response = _upload(svc.client, key, 0, task=task)
            assert response["ok"] is False
            assert response["error"] == "quorum"
            assert response["status"] == "degraded"
            assert response["replicas_acked"] == 1
            assert response["replicas_total"] == 2
            counters = stats.snapshot()["counters"]
            assert counters["service_quorum_failures"] == 1
            # the surviving replica holds the write; the dead one is
            # hinted, so the record reaches full replication on revive
            assert _copies(svc, response["uid"]) == 1
            svc.revive_shard(prefs[1])
            assert _copies(svc, response["uid"]) == 2
        finally:
            svc.close()

    def test_quorum_options_validated(self):
        with pytest.raises(ValueError):
            RouterOptions(replication=2, write_quorum=3)
        with pytest.raises(ValueError):
            RouterOptions(replication=2, write_quorum=0)
        with pytest.raises(ValueError):
            RouterOptions(replication=2, read_quorum=3)
        with pytest.raises(ValueError):
            RouterOptions(anti_entropy_interval_s=0.0)


class TestHintedHandoff:
    def test_kill_mid_stream_then_replay_on_recovery(self, svc, key):
        victim = "shard-0"
        acked = []
        for i in range(10):
            acked.append(_upload(svc.client, key, i)["uid"])
        svc.kill_shard(victim)
        stats = perf.PerfStats()
        with perf.collect(stats):
            for i in range(10, 30):
                response = _upload(svc.client, key, i)
                assert response["ok"]
                acked.append(response["uid"])
            pending = svc.router.hints_pending(victim)
            # revive fires the transport's on_up hook -> automatic replay
            svc.revive_shard(victim)
        counters = stats.snapshot()["counters"]
        assert pending > 0
        assert counters["service_hints_stored"] == pending
        assert counters["service_hints_replayed"] == pending
        assert svc.router.hints_pending(victim) == 0
        # every acked write is fully replicated again
        for uid in acked:
            assert _copies(svc, uid) == 2

    def test_hint_buffer_is_bounded(self):
        svc = build_service(
            2,
            options=RouterOptions(replication=2, max_hints_per_shard=3),
        )
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            svc.kill_shard("shard-0")
            stats = perf.PerfStats()
            with perf.collect(stats):
                for i in range(8):
                    # shard-0 is in every 2-of-2 preference list
                    assert _upload(svc.client, key, i)["ok"]
            assert svc.router.hints_pending("shard-0") == 3
            counters = stats.snapshot()["counters"]
            assert counters["service_hints_dropped"] == 5
            # dropped hints are not lost data: anti-entropy still heals
            svc.revive_shard("shard-0")
            svc.router.anti_entropy_round()
            assert svc.shards["shard-0"].count() == 8
        finally:
            svc.close()


class TestReadRepair:
    def _stale_replica(self, svc, key, task):
        """Upload, then wipe one replica's copy of the task's bucket."""
        uids = [_upload(svc.client, key, i, task=task)["uid"] for i in range(4)]
        prefs = svc.router.ring.preference(shard_key("demo", task), 2)
        stale = prefs[1]
        svc.shards[stale].repository.store[_RECORDS].delete(
            {"uid": {"$in": uids}}
        )
        return uids, prefs, stale

    def test_quorum_read_converges_a_stale_replica(self):
        svc = build_service(4, replication=2, read_quorum=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            task = {"t": 7}
            uids, prefs, stale = self._stale_replica(svc, key, task)
            assert svc.shards[stale].repository.store[_RECORDS].find({}) == []
            stats = perf.PerfStats()
            with perf.collect(stats):
                response = _pinned_query(svc.client, key, task)
            # the merged read is complete despite the stale replica...
            assert sorted(r["uid"] for r in response["records"]) == uids
            # ...and the stale replica was repaired in passing
            counters = stats.snapshot()["counters"]
            assert counters["service_read_repairs"] == len(uids)
            for uid in uids:
                assert _copies(svc, uid) == 2
            # second read: nothing left to repair
            stats2 = perf.PerfStats()
            with perf.collect(stats2):
                again = _pinned_query(svc.client, key, task)
            assert again["records"] == response["records"]
            assert "service_read_repairs" not in stats2.snapshot()["counters"]
        finally:
            svc.close()

    def test_legacy_read_quorum_1_does_not_repair(self, svc, key):
        task = {"t": 7}
        uids, prefs, stale = self._stale_replica(svc, key, task)
        stats = perf.PerfStats()
        with perf.collect(stats):
            response = _pinned_query(svc.client, key, task)
        assert response["ok"]
        assert "service_read_repairs" not in stats.snapshot()["counters"]
        assert svc.shards[stale].repository.store[_RECORDS].find({}) == []

    def test_fanout_merge_is_newest_wins(self, svc, key):
        task = {"t": 2}
        uid = _upload(svc.client, key, 0, task=task)["uid"]
        prefs = svc.router.ring.preference(shard_key("demo", task), 2)
        # plant an older divergent version of the same uid on one replica
        doc = svc.shards[prefs[0]].repository.store[_RECORDS].find(
            {"uid": uid}
        )[0]
        doc.pop("_id")
        doc["output"] = -99.0
        doc["timestamp"] = doc["timestamp"] - 0.5
        svc.shards[prefs[1]].repository.store[_RECORDS].delete({"uid": uid})
        svc.shards[prefs[1]].handle({"route": "replicate", "records": [doc]})
        response = svc.client.handle(
            {"route": "query", "api_key": key, "problem_name": "demo"}
        )
        (record,) = response["records"]
        assert record["output"] == 0.0  # newest version won the merge


class TestIdempotentRetry:
    def test_exactly_one_record_after_n_faulted_attempts(self):
        svc = build_service(2, replication=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            # acks 1 and 2 are lost *after* the router applied the write
            flaky = SimTransport(
                svc.router.handle, "router", scripted_response_faults=[1, 2]
            )
            client = ServiceClient(
                flaky,
                retry=RetryPolicy(max_retries=4, base_s=0.0),
                sleep=lambda s: None,
            )
            response = _upload(client, key, 0)
            assert response["ok"]
            assert response["uid"] == 1  # retries reuse the original stamp
            assert flaky.n_requests == 3  # two lost acks + the success
            assert svc.total_records() == 2  # replication, not duplication
            assert _copies(svc, 1) == 2
        finally:
            svc.close()

    def test_without_token_retries_would_duplicate(self):
        # the regression the token fixes: strip the idempotency key and
        # the same fault schedule stores two copies per replica
        svc = build_service(2, replication=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]

            class _Stripping(ServiceClient):
                def _stamp_idempotency(self, request):
                    return request

            flaky = SimTransport(
                svc.router.handle, "router", scripted_response_faults=[1]
            )
            client = _Stripping(
                flaky,
                retry=RetryPolicy(max_retries=4, base_s=0.0),
                sleep=lambda s: None,
            )
            assert _upload(client, key, 0)["ok"]
            assert svc.total_records() == 4  # 2 uids x 2 replicas
        finally:
            svc.close()

    def test_distinct_uploads_are_not_deduplicated(self, svc, key):
        first = _upload(svc.client, key, 0, task={"t": 0})
        second = _upload(svc.client, key, 1, task={"t": 0})
        assert first["uid"] != second["uid"]
        response = _pinned_query(svc.client, key, {"t": 0})
        assert len(response["records"]) == 2


class TestAntiEntropy:
    def test_heals_replica_restored_from_old_snapshot(self, tmp_path):
        svc = build_service(3, replication=2, data_dir=tmp_path, snapshot_every=4)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            for i in range(8):
                assert _upload(svc.client, key, i, task={"t": i})["ok"]
            svc.snapshot_all()
            victim = max(svc.shards, key=lambda n: svc.shards[n].count())
            backup = tmp_path / "backup"
            shutil.copytree(tmp_path / victim, backup)
            for i in range(8, 16):
                assert _upload(svc.client, key, i, task={"t": i})["ok"]
            full_count = svc.shards[victim].count()

            # crash the node and restore it from the stale image
            svc.shards[victim].close()
            shutil.rmtree(tmp_path / victim)
            shutil.copytree(backup, tmp_path / victim)
            svc.restart_shard(victim)
            assert svc.shards[victim].count() < full_count

            stats = perf.PerfStats()
            with perf.collect(stats):
                round_stats = svc.router.anti_entropy_round()
            assert svc.shards[victim].count() == full_count
            counters = stats.snapshot()["counters"]
            assert counters["service_antientropy_rounds"] == 1
            assert (
                counters["service_antientropy_records_healed"]
                == round_stats["healed"]
                > 0
            )
            # converged: a second round heals nothing
            assert svc.router.anti_entropy_round()["healed"] == 0
            for i in range(16):
                response = _pinned_query(svc.client, key, {"t": i})
                assert len(response["records"]) == 1
        finally:
            svc.close()

    def test_background_thread_heals_without_manual_rounds(self):
        svc = build_service(
            3,
            options=RouterOptions(replication=2, anti_entropy_interval_s=0.02),
        )
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            uid = _upload(svc.client, key, 0, task={"t": 0})["uid"]
            prefs = svc.router.ring.preference(shard_key("demo", {"t": 0}), 2)
            svc.shards[prefs[1]].repository.store[_RECORDS].delete({"uid": uid})
            deadline = 200
            import time

            while _copies(svc, uid) < 2 and deadline:
                time.sleep(0.01)
                deadline -= 1
            assert _copies(svc, uid) == 2
        finally:
            svc.close()


class TestMembership:
    def _fill(self, svc, key, n=24):
        uids = []
        for i in range(n):
            response = _upload(svc.client, key, i, task={"t": i % 8})
            assert response["ok"]
            uids.append(response["uid"])
        return uids

    def test_join_streams_buckets_to_the_new_shard(self):
        svc = build_service(3, replication=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            uids = self._fill(svc, key)
            assert svc.total_records() == 2 * len(uids)
            name = svc.add_shard()
            assert name == "shard-3"
            # handoff converged: exactly K copies of everything, the new
            # shard took real ownership, and every read still works
            assert svc.total_records() == 2 * len(uids)
            assert svc.shards[name].count() > 0
            for uid in uids:
                assert _copies(svc, uid) == 2
            for t in range(8):
                response = _pinned_query(svc.client, key, {"t": t})
                assert len(response["records"]) == 3
        finally:
            svc.close()

    def test_graceful_leave_streams_data_out_first(self):
        svc = build_service(4, replication=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            uids = self._fill(svc, key)
            victim = max(svc.shards, key=lambda n: svc.shards[n].count())
            svc.remove_shard(victim)
            assert victim not in svc.shards
            assert svc.total_records() == 2 * len(uids)
            for uid in uids:
                assert _copies(svc, uid) == 2
            for t in range(8):
                response = _pinned_query(svc.client, key, {"t": t})
                assert len(response["records"]) == 3
        finally:
            svc.close()

    def test_crash_leave_then_anti_entropy_restores_replication(self):
        svc = build_service(4, replication=2)
        try:
            key = svc.register_user("alice", "a@lab.gov")[1]
            uids = self._fill(svc, key)
            victim = max(svc.shards, key=lambda n: svc.shards[n].count())
            svc.kill_shard(victim)
            svc.remove_shard(victim, graceful=False)
            # some uids are down to one copy until the next healing round
            assert min(_copies(svc, uid) for uid in uids) == 1
            svc.router.anti_entropy_round()
            for uid in uids:
                assert _copies(svc, uid) == 2
        finally:
            svc.close()

    def test_remove_last_shard_is_rejected(self):
        svc = build_service(1, replication=1)
        try:
            with pytest.raises(ValueError):
                svc.remove_shard("shard-0")
        finally:
            svc.close()
