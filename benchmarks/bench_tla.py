"""Fast-TLA-pool benchmark: shared source store, incremental refits,
batched weighted prediction.

The TLA pool (paper Sec. V, Table I) is the last hot layer of this
repro: an ``Ensemble(proposed)`` run re-fits every source GP four times
(the shell plus its three members), rebuilds the members' target-side
GPs/LCM from scratch on every iteration, and combines K source
surrogates with a per-model Python loop.  This benchmark pins the three
guarantees of the fast path:

* **Source-fit dedup** — with a :class:`repro.tla.SourceModelStore`,
  ensemble preparation fits each source dataset exactly once
  (``tla_source_fits == n_sources``) and the members hit the cache
  (3x ``tla_source_cache_hits``); without the store the counter shows
  the 4x redundancy.
* **Wall-clock** — ensemble prepare+tune with the store plus
  ``refit_every`` incremental refits beats the cold-path baseline by
  the pinned factor (>= 3x at the default scale; the smoke profile only
  sanity-checks a win, CI runner clocks are noisy).
* **Exactness** — the batched/frozen ``combine_weighted`` path matches
  the per-model loop to <= 1e-10 on mean and log-std (pure
  amortization, not an approximation).
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.synthetic import DemoFunction
from repro.core import perf
from repro.tla import SourceModelStore, TransferTuner, get_strategy
from repro.tla.base import combine_weighted, fit_source_gps

from harness import FULL, SMOKE, collect_source, save_results

N_SOURCES = 4
N_SRC_SAMPLES = 20 if SMOKE else 40
#: the acceptance scale: 4 sources / 200 iterations (tiny in CI smoke)
N_EVALS = 8 if SMOKE else 200
REFIT_EVERY = 5
#: best-of-N timing repeats (one pass in smoke mode)
REPEATS = 1 if SMOKE else 2
#: smoke mode only sanity-checks that the fast path wins at all
MIN_SPEEDUP = 1.1 if SMOKE else 3.0

SOURCE_TASKS = [{"t": 0.6}, {"t": 0.8}, {"t": 1.0}, {"t": 1.2}]
TARGET_TASK = {"t": 1.1}


def _sources(app):
    return [
        collect_source(app, task, N_SRC_SAMPLES, seed=i, label=f"t={task['t']}")
        for i, task in enumerate(SOURCE_TASKS)
    ]


def _run_ensemble(app, sources, fast: bool):
    """Best-of-``REPEATS`` ensemble prepare+tune wall-clock.

    A fresh strategy (and, on the fast path, a fresh store) is built per
    repeat so every pass pays the same cold-start costs.  Returns
    ``(seconds, best_output, perf counters)``; counters come from a
    single pass (they are deterministic across repeats)."""
    elapsed = np.inf
    for _ in range(REPEATS):
        kwargs = (
            dict(store=SourceModelStore(), refit_every=REFIT_EVERY) if fast else {}
        )
        strategy = get_strategy("ensemble-proposed", **kwargs)
        tuner = TransferTuner(app.make_problem(run=0), strategy, sources)
        with perf.collect() as stats:
            t0 = time.perf_counter()
            result = tuner.tune(TARGET_TASK, N_EVALS, seed=0)
            elapsed = min(elapsed, time.perf_counter() - t0)
    return elapsed, float(result.best_output), stats.snapshot()["counters"]


def test_ensemble_store_speedup():
    """Store + incremental refits: >= 3x faster ensemble prepare+tune."""
    app = DemoFunction()
    sources = _sources(app)

    t_cold, best_cold, c_cold = _run_ensemble(app, sources, fast=False)
    t_fast, best_fast, c_fast = _run_ensemble(app, sources, fast=True)
    speedup = t_cold / t_fast

    print(
        f"\nEnsemble(proposed) at {N_SOURCES} sources x {N_SRC_SAMPLES} samples, "
        f"{N_EVALS} evaluations:"
    )
    print(f"  cold path {t_cold:8.2f} s   best {best_cold:.4f}")
    print(
        f"  fast path {t_fast:8.2f} s   best {best_fast:.4f}   "
        f"(store + refit_every={REFIT_EVERY})"
    )
    print(f"  speedup   {speedup:8.2f} x")
    save_results(
        "tla_pool_speedup",
        {
            "n_sources": N_SOURCES,
            "n_source_samples": N_SRC_SAMPLES,
            "n_evals": N_EVALS,
            "refit_every": REFIT_EVERY,
            "cold_s": t_cold,
            "fast_s": t_fast,
            "speedup": speedup,
            "cold_best": best_cold,
            "fast_best": best_fast,
            "cold_counters": c_cold,
            "fast_counters": c_fast,
        },
    )

    # source-fit dedup: 4x (shell + 3 members) collapses to 1x
    assert c_cold["tla_source_fits"] == 4 * N_SOURCES
    assert c_fast["tla_source_fits"] == N_SOURCES
    assert c_fast["tla_source_cache_hits"] == 3 * N_SOURCES
    # the incremental and batched paths actually engaged
    assert c_fast.get("tla_incremental_refits", 0) > 0
    assert c_fast.get("tla_batched_predicts", 0) > 0
    assert speedup >= MIN_SPEEDUP, f"fast TLA pool only {speedup:.2f}x faster"


def test_batched_combine_matches_loop():
    """Acceptance pin: batched combine == per-model loop to <= 1e-10."""
    app = DemoFunction()
    sources = _sources(app)
    rng = np.random.default_rng(0)
    gps = fit_source_gps(sources, rng)
    models = [gp.predict for gp in gps]
    weights = np.array([1.0, 0.5, 2.0, 1.5])
    Xq = np.random.default_rng(1).random((256, gps[0].fit_state.X.shape[1]))

    mu_loop, sd_loop = combine_weighted(models, weights)(Xq)
    mu_fast, sd_fast = combine_weighted(models, weights, store=SourceModelStore())(Xq)

    err_mu = float(np.max(np.abs(mu_fast - mu_loop)))
    err_ls = float(np.max(np.abs(np.log(sd_fast) - np.log(sd_loop))))
    print(f"\nbatched combine_weighted: |d mean| {err_mu:.2e}, |d log-std| {err_ls:.2e}")
    save_results(
        "tla_batched_combine", {"max_abs_mean_err": err_mu, "max_abs_logstd_err": err_ls}
    )
    assert err_mu <= 1e-10
    assert err_ls <= 1e-10
