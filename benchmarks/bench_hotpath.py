"""Hot-path benchmark: surrogate cost per BO iteration vs history size.

Every BO iteration must refresh the surrogate with the newly observed
point.  The baseline path refits from scratch — an O(n^3) Cholesky per
iteration even when hyperparameters are frozen — while the incremental
path (``GaussianProcess.update``) appends to the cached factor in O(n^2)
and the theta-keyed factorization cache removes the duplicate
factorization after each MLE.

This benchmark records the per-iteration surrogate latency across
history sizes for both paths and checks the two hot-path guarantees:

* at history size 200 the incremental path is at least 3x faster than a
  full refactorization, and
* a tuner run with the incremental path enabled produces the *identical*
  best-so-far trajectory as one with it disabled (same seed) — the
  optimization is a pure amortization, not an approximation.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.synthetic import DemoFunction
from repro.core import RBF, GaussianProcess, Tuner, TunerOptions

from harness import FULL, SMOKE, save_results

HISTORY_SIZES = [25, 50, 100, 200]
DIM = 4
REPEATS = 15 if FULL else (3 if SMOKE else 7)

#: smoke mode only sanity-checks that incremental wins at all
MIN_SPEEDUP_AT_200 = 1.2 if SMOKE else 3.0


def _training_data(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.random((n + 1, DIM))
    y = np.sin(3 * X[:, 0]) + X[:, 1] ** 2 + 0.3 * np.cos(5 * X[:, 2]) + 0.1 * X[:, 3]
    return X, y


def _time_full_refit(X: np.ndarray, y: np.ndarray) -> float:
    """Baseline: absorb one new point via a full (non-MLE) refit, uncached."""
    best = np.inf
    for _ in range(REPEATS):
        gp = GaussianProcess(RBF(DIM), optimize=False, cache=False)
        gp.fit(X[:-1], y[:-1])
        t0 = time.perf_counter()
        gp.fit(X, y)
        best = min(best, time.perf_counter() - t0)
    return best


def _time_incremental(X: np.ndarray, y: np.ndarray) -> float:
    """Hot path: absorb one new point via a rank-1 Cholesky append."""
    best = np.inf
    for _ in range(REPEATS):
        gp = GaussianProcess(RBF(DIM), optimize=False)
        gp.fit(X[:-1], y[:-1])
        t0 = time.perf_counter()
        gp.update(X[-1:], y[-1:])
        best = min(best, time.perf_counter() - t0)
    return best


def _time_mle_refit(X: np.ndarray, y: np.ndarray, cache: bool) -> float:
    """A refit-boundary iteration: full MLE, with/without the factor cache."""
    best = np.inf
    for _ in range(3):
        gp = GaussianProcess(RBF(DIM), optimize=True, seed=0, cache=cache)
        t0 = time.perf_counter()
        gp.fit(X, y)
        best = min(best, time.perf_counter() - t0)
    return best


def test_incremental_update_speedup():
    """Per-iteration surrogate latency vs history size; >= 3x at n=200."""
    rows = []
    for n in HISTORY_SIZES:
        X, y = _training_data(n)
        t_full = _time_full_refit(X, y)
        t_inc = _time_incremental(X, y)
        rows.append(
            {
                "history_size": n,
                "full_refit_ms": 1e3 * t_full,
                "incremental_ms": 1e3 * t_inc,
                "speedup": t_full / t_inc,
            }
        )

    print("\nper-iteration surrogate time (optimize off, one appended point)")
    print(f"{'n':>5}  {'full refit':>12}  {'incremental':>12}  {'speedup':>8}")
    for r in rows:
        print(
            f"{r['history_size']:>5}  {r['full_refit_ms']:>10.3f} ms"
            f"  {r['incremental_ms']:>10.3f} ms  {r['speedup']:>7.1f}x"
        )
    save_results("hotpath_latency", {"rows": rows, "dim": DIM, "repeats": REPEATS})

    at_200 = next(r for r in rows if r["history_size"] == 200)
    assert at_200["speedup"] >= MIN_SPEEDUP_AT_200, (
        f"incremental update only {at_200['speedup']:.1f}x faster at n=200"
    )


def test_mle_factor_cache():
    """The theta-keyed cache removes the duplicate factorization after MLE."""
    X, y = _training_data(100)
    from repro.core import perf

    gp = GaussianProcess(RBF(DIM), optimize=True, seed=0)
    with perf.collect() as stats:
        gp.fit(X[:-1], y[:-1])
    snap = stats.snapshot()["counters"]
    assert snap.get("kernel_cache_hits", 0) >= 1  # fit() reused the MLE's factor

    t_cached = _time_mle_refit(X, y, cache=True)
    t_uncached = _time_mle_refit(X, y, cache=False)
    print(
        f"\nrefit-boundary fit at n=100: cached {1e3 * t_cached:.1f} ms, "
        f"uncached {1e3 * t_uncached:.1f} ms"
    )


def test_trajectories_identical_with_incremental():
    """Incremental path changes latency, not results (fixed seed)."""
    app = DemoFunction()
    task = {"t": 1.0}
    n_evals = 30 if FULL else 20
    trajs = {}
    perf_surrogate = {}
    for incremental in (False, True):
        options = TunerOptions(refit_every=5, incremental=incremental)
        result = Tuner(app.make_problem(), options).tune(task, n_evals, seed=7)
        trajs[incremental] = result.best_so_far()
        timers = (result.perf or {}).get("timers", {})
        perf_surrogate[incremental] = timers.get(
            "iteration.surrogate", {"total_s": 0.0}
        )["total_s"]
        counters = (result.perf or {}).get("counters", {})
        if incremental:
            assert counters.get("gp_incremental_updates", 0) > 0

    print(
        f"\ntuner surrogate time over {n_evals} evals: "
        f"full {1e3 * perf_surrogate[False]:.1f} ms, "
        f"incremental {1e3 * perf_surrogate[True]:.1f} ms"
    )
    save_results(
        "hotpath_trajectory",
        {
            "n_evals": n_evals,
            "best_so_far_full": trajs[False],
            "best_so_far_incremental": trajs[True],
            "surrogate_s_full": perf_surrogate[False],
            "surrogate_s_incremental": perf_surrogate[True],
        },
    )
    np.testing.assert_allclose(
        trajs[True], trajs[False], rtol=0.0, atol=0.0, equal_nan=True
    )
