"""Figure 4: transfer learning on ScaLAPACK's PDGEQRF.

Paper setup: 8 Cori Haswell nodes (256 cores); target task m=n=10000.
(a) one source task (m=n=10000) with 100 random samples,
(b) three source tasks (m=n=10000, 8000, 6000) with 100 samples each.
10 function evaluations, 3 repeats.

Paper numbers at the 10th evaluation: NoTLA 4.36 s; Ensemble(proposed)
3.65 s in (a) (1.19x) and 2.78 s in (b) (1.57x).  The shape to hold:
every TLA variant beats NoTLA, three sources beat one source for the
multitask/ensemble tuners, and Stacking is comparatively weak here
(Sec. VI-B: "the Stacking approach is not effective for this problem").
"""

from __future__ import annotations

import math

import pytest

from repro.apps import PDGEQRF
from repro.hpc import cori_haswell

from harness import (
    FULL,
    PAPER_TUNERS,
    collect_source,
    mean_trajectories,
    render_trajectories,
    run_comparison,
    save_results,
    speedup_over_notla,
    value_at,
)

N_SOURCE = 100 if FULL else 50
N_EVALS = 10
REPEATS = 3
TARGET = {"m": 10000, "n": 10000}

SOURCE_TASKS = {
    "fig4a": [{"m": 10000, "n": 10000}],
    "fig4b": [{"m": 10000, "n": 10000}, {"m": 8000, "n": 8000}, {"m": 6000, "n": 6000}],
}


def _experiment(panel: str):
    app = PDGEQRF(cori_haswell(8))
    sources = [
        collect_source(app, t, N_SOURCE, seed=100 + i, label=f"m={t['m']}")
        for i, t in enumerate(SOURCE_TASKS[panel])
    ]
    return run_comparison(
        app, TARGET, sources, tuners=PAPER_TUNERS, n_evals=N_EVALS, repeats=REPEATS
    )


@pytest.mark.parametrize("panel", sorted(SOURCE_TASKS))
def test_fig4_pdgeqrf(benchmark, panel):
    results = benchmark.pedantic(_experiment, args=(panel,), rounds=1, iterations=1)
    n_src = len(SOURCE_TASKS[panel])
    print()
    print(
        render_trajectories(
            f"Figure 4 ({panel[-1]}) — PDGEQRF, {n_src} source task(s), "
            "8 Haswell nodes",
            results,
            marks=[N_EVALS - 1],
        )
    )
    ens = speedup_over_notla(results, "ensemble-proposed", N_EVALS - 1)
    paper = {"fig4a": 1.19, "fig4b": 1.57}[panel]
    print(f"Ensemble(proposed) speedup over NoTLA @10: {ens:.2f}x (paper: {paper}x)")
    save_results(panel, {"trajectories": dict(results), "ensemble_speedup": ens})

    means = mean_trajectories(results)
    last = N_EVALS - 1
    # NoTLA may have zero successes at this budget (p > ranks draws);
    # treat that as +inf for the win checks
    notla = means["notla"][last]
    notla = notla if math.isfinite(notla) else float("inf")
    ens_val = value_at(results, "ensemble-proposed", last)
    # shape checks: the best TLA variant beats NoTLA, and the ensemble is
    # competitive with it (the paper's margins are larger because its
    # NoTLA wastes budget on infeasible configurations)
    tla_best = min(means[k][last] for k in PAPER_TUNERS if k != "notla")
    assert tla_best < notla
    assert ens_val <= notla * 1.25
