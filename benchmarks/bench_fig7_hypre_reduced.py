"""Figure 7: benefit of reduced tuning on Hypre (IJ).

Paper setup: tuning budget of 20 function evaluations on nx=ny=nz=100.
The reduced problem tunes the three most sensitive parameters
(smooth_type, smooth_num_levels, agg_num_levels) while pinning the
parameters with known defaults (strong_threshold, trunc_factor,
P_max_elmts, coarsen_type, relax_type) to those defaults and assigning
random values to Px, Py, Nproc (defaults unknown) — exactly the Fig. 7
caption.  Five repeats.

Paper finding: at the 10th evaluation the reduced tuning achieves a
1.35x better result (25.8% improvement) than the original 12-parameter
space.
"""

from __future__ import annotations

import numpy as np

from repro.apps import HypreAMG
from repro.apps.hypre import HYPRE_DEFAULTS
from repro.core import Tuner, TunerOptions
from repro.hpc import cori_haswell
from repro.sensitivity import reduce_space

from harness import FULL, save_results

N_EVALS = 20
REPEATS = 5 if FULL else 3
TASK = {"nx": 100, "ny": 100, "nz": 100}
KEEP = ["smooth_type", "smooth_num_levels", "agg_num_levels"]
KNOWN_DEFAULTS = {
    k: HYPRE_DEFAULTS[k]
    for k in ("strong_threshold", "trunc_factor", "P_max_elmts",
              "coarsen_type", "relax_type", "interp_type")
}


def _experiment():
    app = HypreAMG(cori_haswell(1))
    space = app.parameter_space()
    trajs = {"original": [], "reduced": []}
    for rep in range(REPEATS):
        problem = app.make_problem(run=rep)
        # Px/Py/Nproc get fresh random values per repeat (Fig. 7 caption)
        reduced = reduce_space(
            space, keep=KEEP, defaults=KNOWN_DEFAULTS,
            rng=np.random.default_rng(100 + rep),
        )
        res_o = Tuner(problem, TunerOptions(n_initial=2)).tune(
            TASK, N_EVALS, seed=rep
        )
        res_r = Tuner(
            problem.with_parameter_space(reduced), TunerOptions(n_initial=2)
        ).tune(TASK, N_EVALS, seed=rep)
        trajs["original"].append(res_o.best_so_far())
        trajs["reduced"].append(res_r.best_so_far())
    return {k: np.asarray(v) for k, v in trajs.items()}


def test_fig7_hypre_reduced(benchmark):
    trajs = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    mean_o = np.nanmean(trajs["original"], axis=0)
    mean_r = np.nanmean(trajs["reduced"], axis=0)
    print("\nFigure 7 — Hypre reduced vs original tuning (nx=ny=nz=100)")
    print(f"{'eval':<6}{'original':>10}{'reduced':>10}")
    for i in range(0, N_EVALS, 2):
        print(f"{i + 1:<6}{mean_o[i]:>10.4f}{mean_r[i]:>10.4f}")
    ratio10 = mean_o[9] / mean_r[9]
    ratio20 = mean_o[N_EVALS - 1] / mean_r[N_EVALS - 1]
    print(f"reduced-space advantage @10: {ratio10:.2f}x (paper: 1.35x); "
          f"@20: {ratio20:.2f}x")
    save_results(
        "fig7",
        {
            "original": trajs["original"],
            "reduced": trajs["reduced"],
            "ratio10": ratio10,
            "ratio20": ratio20,
        },
    )

    # shape: with the small budget, the reduced space is at least as
    # good at the 10th evaluation
    assert mean_r[9] <= mean_o[9] * 1.02
