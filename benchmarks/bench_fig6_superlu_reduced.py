"""Figure 6: benefit of reduced tuning on SuperLU_DIST.

Paper setup: the sensitivity analysis of Table IV (run on Si5H12) is used
to reduce the tuning problem for the matrix H2O — same PARSEC sparsity
family — on four Haswell nodes: LOOKAHEAD and NREL are deactivated at
their default values, leaving COLPERM, nprows, NSUP to tune.  Both the
original and the reduced problems get the same tuning budget; three
repeats.

Paper finding: at the 10th evaluation the reduced problem attains a
1.17x better tuned result (14.5% improvement) than the original space.
"""

from __future__ import annotations

import numpy as np

from repro.apps import SuperLUDist2D
from repro.apps.superlu import SUPERLU_DEFAULTS
from repro.core import Tuner, TunerOptions
from repro.hpc import cori_haswell
from repro.sensitivity import reduce_space

from harness import FULL, save_results

N_EVALS = 10
REPEATS = 5 if FULL else 3
TASK = {"matrix": "H2O"}
KEEP = ["COLPERM", "nprows", "NSUP"]  # Table IV's high/moderate parameters


def _experiment():
    app = SuperLUDist2D(cori_haswell(4))
    space = app.parameter_space()
    reduced = reduce_space(
        space,
        keep=KEEP,
        defaults={k: SUPERLU_DEFAULTS[k] for k in ("LOOKAHEAD", "NREL")},
    )
    trajs = {"original": [], "reduced": []}
    for rep in range(REPEATS):
        problem = app.make_problem(run=rep)
        res_o = Tuner(problem, TunerOptions(n_initial=2)).tune(
            TASK, N_EVALS, seed=rep
        )
        res_r = Tuner(
            problem.with_parameter_space(reduced), TunerOptions(n_initial=2)
        ).tune(TASK, N_EVALS, seed=rep)
        trajs["original"].append(res_o.best_so_far())
        trajs["reduced"].append(res_r.best_so_far())
    return {k: np.asarray(v) for k, v in trajs.items()}


def test_fig6_superlu_reduced(benchmark):
    trajs = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    mean_o = np.nanmean(trajs["original"], axis=0)
    mean_r = np.nanmean(trajs["reduced"], axis=0)
    print("\nFigure 6 — SuperLU_DIST reduced vs original tuning (H2O)")
    print(f"{'eval':<6}{'original':>10}{'reduced':>10}")
    for i in range(N_EVALS):
        print(f"{i + 1:<6}{mean_o[i]:>10.3f}{mean_r[i]:>10.3f}")
    ratio = mean_o[N_EVALS - 1] / mean_r[N_EVALS - 1]
    print(f"reduced-space advantage @10: {ratio:.2f}x (paper: 1.17x)")
    save_results(
        "fig6",
        {"original": trajs["original"], "reduced": trajs["reduced"], "ratio": ratio},
    )

    # shape: the reduced problem is at least as good at the 10th eval
    assert mean_r[N_EVALS - 1] <= mean_o[N_EVALS - 1] * 1.02
