"""Async-engine benchmark: wall-clock speedup and regret vs sequential.

The asynchronous engine's promise is that overlapping evaluations buys
wall-clock time without costing optimization quality.  This benchmark
runs the same tuning workload — the demo objective with a fixed
simulated per-evaluation latency — at 1/2/4/8 workers and records:

* **speedup**: sequential wall time / async wall time (the 1-worker
  async run is the sequential baseline: same code path, no overlap), and
* **regret gap**: the difference in final best-so-far against the
  sequential run, averaged over seeds; batch proposal with constant-liar
  fantasies should keep this within run-to-run noise.

Checks: >= 2x speedup at 4 workers, regret gap within noise.  In smoke
mode (``REPRO_BENCH_SMOKE=1``) budgets shrink and the speedup threshold
drops to a sanity check — shared CI runners have noisy clocks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.synthetic import DemoFunction
from repro.core import TunerOptions
from repro.core.optimizer import SearchOptions
from repro.engine import AsyncTuner, EngineOptions

from harness import FULL, SMOKE, save_results

WORKER_COUNTS = [1, 2, 4, 8]
N_EVALS = 24 if FULL else (10 if SMOKE else 16)
SEEDS = list(range(5)) if FULL else ([0] if SMOKE else [0, 1, 2])
#: simulated seconds each evaluation occupies its worker
LATENCY_S = 0.02 if SMOKE else 0.05

MIN_SPEEDUP_AT_4 = 1.2 if SMOKE else 2.0
#: demo objective spans roughly [-1, 3]; run-to-run noise between seeds
#: is larger than this, so the gap bound is "within noise" not "equal"
MAX_REGRET_GAP = 0.25


def _tuner_options() -> TunerOptions:
    # keep the serial proposal path cheap relative to the simulated
    # latency, as a real deployment would (the engine overlaps proposal
    # with running evaluations, but proposals themselves serialize)
    return TunerOptions(
        n_initial=3,
        refit_every=4,
        gp_max_fun=40,
        search=SearchOptions(n_candidates=256, local_iters=10),
    )


def _run(n_workers: int, seed: int) -> tuple[float, float, dict]:
    app = DemoFunction()
    tuner = AsyncTuner(
        app.make_problem(),
        _tuner_options(),
        EngineOptions(
            n_workers=n_workers,
            batch=min(n_workers, 4),
            base_latency_s=LATENCY_S,
        ),
    )
    t0 = time.perf_counter()
    result = tuner.tune(app.default_task(), N_EVALS, seed=seed)
    wall = time.perf_counter() - t0
    return wall, result.best_output, result.perf or {}


def test_async_speedup_and_regret():
    rows = []
    walls: dict[int, float] = {}
    bests: dict[int, float] = {}
    for w in WORKER_COUNTS:
        run_walls, run_bests, utils = [], [], []
        for seed in SEEDS:
            wall, best, perf = _run(w, seed)
            run_walls.append(wall)
            run_bests.append(best)
            util = perf.get("gauges", {}).get("engine_worker_utilization", {})
            utils.append(util.get("last", 0.0))
        walls[w] = float(np.median(run_walls))
        bests[w] = float(np.mean(run_bests))
        rows.append(
            {
                "workers": w,
                "wall_s": walls[w],
                "mean_best": bests[w],
                "mean_utilization": float(np.mean(utils)),
                "speedup": walls[WORKER_COUNTS[0]] / walls[w],
            }
        )

    print(f"\nasync engine: {N_EVALS} evals x {LATENCY_S * 1e3:.0f} ms latency, "
          f"{len(SEEDS)} seed(s)")
    print(f"{'workers':>8}  {'wall':>9}  {'speedup':>8}  {'util':>6}  {'mean best':>10}")
    for r in rows:
        print(
            f"{r['workers']:>8}  {r['wall_s']:>8.2f}s  {r['speedup']:>7.2f}x"
            f"  {r['mean_utilization']:>5.0%}  {r['mean_best']:>10.4f}"
        )
    save_results(
        "async_engine",
        {"rows": rows, "n_evals": N_EVALS, "latency_s": LATENCY_S, "seeds": SEEDS},
    )

    speedup_at_4 = walls[1] / walls[4]
    assert speedup_at_4 >= MIN_SPEEDUP_AT_4, (
        f"only {speedup_at_4:.2f}x wall-clock speedup at 4 workers "
        f"(need >= {MIN_SPEEDUP_AT_4}x)"
    )
    regret_gap = bests[4] - bests[1]
    assert regret_gap <= MAX_REGRET_GAP, (
        f"4-worker batch tuning lost {regret_gap:.3f} vs sequential "
        f"(allowed {MAX_REGRET_GAP})"
    )


def test_one_worker_is_sequential_baseline():
    """The 1-worker engine run used as the baseline really is sequential:
    same trajectory as the synchronous tuner, same seed."""
    from repro.core import Tuner

    app = DemoFunction()
    seq = Tuner(app.make_problem(), _tuner_options()).tune(
        app.default_task(), 8, seed=0
    )
    asy = AsyncTuner(
        app.make_problem(), _tuner_options(), EngineOptions(n_workers=1)
    ).tune(app.default_task(), 8, seed=0)
    np.testing.assert_allclose(asy.best_so_far(), seq.best_so_far())
