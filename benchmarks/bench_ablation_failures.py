"""Ablation: failure handling in the acquisition search (DESIGN.md §5).

The paper only says failed evaluations "are disregarded when fitting a
surrogate model"; this reproduction additionally (a) filters
known-infeasible configurations at proposal time and (b) learns a
probability-of-feasibility from observed failures.  This ablation
quantifies (b) on the failure-heavy NIMROD Fig. 5(c) scenario: the same
NoTLA tuner with feasibility learning on vs off.

Expectation: with learning off, the tuner wastes a substantial share of
its budget re-probing the out-of-memory region; with learning on, late
evaluations concentrate in the feasible region, yielding fewer failures
and an equal-or-better tuned result.
"""

from __future__ import annotations

import numpy as np

from repro.apps import NIMROD
from repro.core import Tuner, TunerOptions
from repro.hpc import cori_haswell

from harness import FULL, save_results

TASK = {"mx": 6, "my": 8, "lphi": 1}
N_EVALS = 15
REPEATS = 5 if FULL else 4


def _experiment():
    app = NIMROD(cori_haswell(64))
    out = {"on": {"failures": [], "best": []}, "off": {"failures": [], "best": []}}
    for rep in range(REPEATS):
        problem = app.make_problem(run=rep)
        for mode, learn in (("on", True), ("off", False)):
            opts = TunerOptions(n_initial=2, learn_feasibility=learn)
            res = Tuner(problem, opts).tune(TASK, N_EVALS, seed=rep)
            out[mode]["failures"].append(res.history.n_failures)
            traj = res.best_so_far()
            out[mode]["best"].append(
                traj[-1] if np.isfinite(traj[-1]) else np.nan
            )
    return out


def test_ablation_feasibility_learning(benchmark):
    out = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    fails_on = float(np.mean(out["on"]["failures"]))
    fails_off = float(np.mean(out["off"]["failures"]))
    best_on = float(np.nanmean(out["on"]["best"]))
    best_off = float(np.nanmean(out["off"]["best"]))
    print("\nAblation — learned feasibility in the search (NIMROD fig5c task)")
    print(f"  mean failures / {N_EVALS} evals:  on={fails_on:.1f}  off={fails_off:.1f}")
    print(f"  mean final best (s):       on={best_on:.1f}  off={best_off:.1f}")
    save_results(
        "ablation_failures",
        {
            "failures_on": out["on"]["failures"],
            "failures_off": out["off"]["failures"],
            "best_on": out["on"]["best"],
            "best_off": out["off"]["best"],
        },
    )
    # learning failures must not waste more budget than ignoring them
    assert fails_on <= fails_off + 0.51
    # and must not hurt the tuned result materially
    assert best_on <= best_off * 1.1
