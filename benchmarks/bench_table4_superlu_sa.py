"""Table IV: Sobol sensitivity analysis of SuperLU_DIST.

Paper setup: input matrix Si5H12, 500 random samples collected on four
Cori Haswell nodes; Sobol S1/ST indices of the five tuning parameters
computed on a surrogate fitted to those samples.

Paper finding (Sec. VI-D): COLPERM has the highest influence, nprows is
the next most important, NSUP has a moderate influence, and LOOKAHEAD and
NREL have little influence.
"""

from __future__ import annotations

from repro.apps import SuperLUDist2D
from repro.hpc import cori_haswell
from repro.sensitivity import SensitivityAnalyzer

from harness import FULL, collect_source, save_results

N_SAMPLES = 500 if FULL else 250
N_BASE = 1024 if FULL else 512
TASK = {"matrix": "Si5H12"}


def _experiment():
    app = SuperLUDist2D(cori_haswell(4))
    space = app.parameter_space()
    data = collect_source(app, TASK, N_SAMPLES, seed=3)
    analyzer = SensitivityAnalyzer(space, gp_max_fun=80, gp_restarts=1)
    return analyzer.analyze(data, n_base=N_BASE, n_bootstrap=50, seed=0)


def test_table4_superlu_sensitivity(benchmark):
    report = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print("\nTable IV — Sobol sensitivity of SuperLU_DIST (Si5H12, "
          f"{N_SAMPLES} samples, 4 Haswell nodes)")
    print(report.table())
    idx = {n: i for i, n in enumerate(report.indices.names)}
    S1, ST = report.indices.S1, report.indices.ST
    save_results("table4", {"rows": report.indices.as_rows()})

    # paper: COLPERM highest on both S1 and ST
    assert report.indices.ranking("ST")[0] == "COLPERM"
    assert report.indices.ranking("S1")[0] == "COLPERM"
    # nprows next most important
    assert ST[idx["nprows"]] >= max(
        ST[idx["LOOKAHEAD"]], ST[idx["NREL"]], ST[idx["NSUP"]]
    )
    # NSUP moderate: visible but not dominant
    assert ST[idx["NSUP"]] < ST[idx["COLPERM"]]
    # LOOKAHEAD and NREL have little influence
    assert ST[idx["LOOKAHEAD"]] < 0.1
    assert ST[idx["NREL"]] < 0.15
    # the paper's reduction keeps COLPERM, nprows, NSUP
    top3 = set(report.indices.ranking("ST")[:3])
    assert "COLPERM" in top3 and "nprows" in top3
