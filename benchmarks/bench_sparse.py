"""Large-n surrogate benchmark: fit+predict wall clock vs history size.

The dense GP's O(n^3) fit and O(n^2) predict cap histories at a few
thousand points; the sparse inducing-point GP (O(nm^2) fit, O(m^2)
predict) and the partitioned local-GP ensemble (O(n * leaf^2) fit) are
the crowd-scale replacements.  This benchmark records fit+predict wall
clock across n for all three and checks the tentpole guarantees:

* at n = 5000 the sparse surrogate's fit+predict is at least 10x faster
  than the dense GP's — conservatively: the dense side is timed at its
  cheapest (``optimize=False``, a single factorization with no MLE)
  while the sparse side pays its full cost including the subset-MLE
  hyperparameter fit,
* sparse cost scales near-linearly in n (doubling n far less than
  quadruples the time), and
* a small-history tuning run with ``surrogate="auto"`` produces the
  *identical* trajectory as the dense path (same seed) — the policy is
  pure routing, not an approximation, below ``n_dense_max``.

Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks the size grid and loosens
the ratio thresholds to sanity checks for shared CI runners.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import GaussianProcess, Tuner, TunerOptions
from repro.core.kernels import kernel_from_name
from repro.core.sparse import PartitionedGP, SparseGP

from harness import FULL, SMOKE, save_results

DIM = 4

#: wall-clock-vs-n grid; dense is timed only while affordable
SIZES = [200, 1000, 5000, 20000] if (FULL or not SMOKE) else [200, 1000, 2500]
DENSE_MAX_N = 5000 if (FULL or not SMOKE) else 2500

N_INDUCING = 100
LEAF_SIZE = 200
N_PREDICT = 512
REPEATS = 3 if FULL else (1 if SMOKE else 2)

#: smoke sanity-checks a smaller margin at its smaller top size
MIN_SPARSE_SPEEDUP = 3.0 if SMOKE else 10.0
#: near-linear scaling: t(n2)/t(n1) stays well under the quadratic ratio
MAX_SCALING_EXPONENT = 1.6


def _data(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    X = rng.random((n, DIM))
    y = (
        np.sin(3 * X[:, 0])
        + X[:, 1] ** 2
        + 0.3 * np.cos(5 * X[:, 2])
        + 0.1 * X[:, 3]
        + 0.01 * rng.standard_normal(n)
    )
    return X, y


def _best_of(f, repeats: int = REPEATS) -> float:
    best = np.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        f()
        best = min(best, time.perf_counter() - t0)
    return best


def _time_fit_predict(make_model, X, y, Xq, repeats: int = REPEATS) -> float:
    def run():
        model = make_model()
        model.fit(X, y)
        model.predict(Xq)

    return _best_of(run, repeats)


def bench_curves() -> dict:
    """Fit+predict wall clock for dense/sparse/partitioned across n."""
    Xq = np.random.default_rng(99).random((N_PREDICT, DIM))
    curves: dict[str, dict[int, float]] = {"dense": {}, "sparse": {}, "partitioned": {}}
    for n in SIZES:
        X, y = _data(n)
        if n <= DENSE_MAX_N:
            # the cheapest possible dense refresh: no MLE, one O(n^3)
            # factorization (a real refit pays many of these per L-BFGS
            # step) — so the reported speedup is a floor
            curves["dense"][n] = _time_fit_predict(
                lambda: GaussianProcess(
                    kernel_from_name("rbf", DIM), optimize=False, cache=False
                ),
                X, y, Xq,
                repeats=1 if n >= 5000 else REPEATS,
            )
        curves["sparse"][n] = _time_fit_predict(
            lambda: SparseGP("rbf", n_inducing=N_INDUCING, n_restarts=0, seed=0),
            X, y, Xq,
        )
        curves["partitioned"][n] = _time_fit_predict(
            lambda: PartitionedGP(
                "rbf", leaf_size=LEAF_SIZE, n_restarts=0, seed=0, n_jobs=1
            ),
            X, y, Xq,
        )
        row = "  ".join(
            f"{kind}={curves[kind][n] * 1e3:9.1f}ms"
            for kind in curves
            if n in curves[kind]
        )
        print(f"n={n:<6} {row}")
    return curves


def test_sparse_beats_dense_at_scale():
    curves = bench_curves()

    n_big = max(n for n in SIZES if n <= DENSE_MAX_N)
    speedup = curves["dense"][n_big] / curves["sparse"][n_big]
    print(f"sparse speedup over dense at n={n_big}: {speedup:.1f}x")

    ns = sorted(curves["sparse"])
    n1, n2 = ns[-2], ns[-1]
    exponent = float(
        np.log(curves["sparse"][n2] / curves["sparse"][n1]) / np.log(n2 / n1)
    )
    print(f"sparse scaling exponent between n={n1} and n={n2}: {exponent:.2f}")

    save_results(
        "bench_sparse",
        {
            "mode": "full" if FULL else ("smoke" if SMOKE else "default"),
            "sizes": SIZES,
            "n_inducing": N_INDUCING,
            "leaf_size": LEAF_SIZE,
            "curves_s": curves,
            "speedup_at_n_big": speedup,
            "n_big": n_big,
            "sparse_scaling_exponent": exponent,
        },
    )

    assert speedup >= MIN_SPARSE_SPEEDUP, (
        f"sparse fit+predict only {speedup:.1f}x faster than dense at "
        f"n={n_big} (need >= {MIN_SPARSE_SPEEDUP}x)"
    )
    if not SMOKE:
        assert exponent <= MAX_SCALING_EXPONENT, (
            f"sparse scaling exponent {exponent:.2f} between n={n1} and "
            f"n={n2} (need <= {MAX_SCALING_EXPONENT} for near-linear)"
        )


def test_auto_policy_identical_below_threshold():
    """Fig. 3-style check: auto == dense bit for bit at paper scale."""
    from repro.apps.synthetic import DemoFunction

    app = DemoFunction()
    problem = app.make_problem(run=0)
    task = app.default_task()
    n = 8 if SMOKE else 30
    auto = Tuner(problem, TunerOptions(surrogate="auto")).tune(task, n, seed=7)
    dense = Tuner(problem, TunerOptions(surrogate="dense")).tune(task, n, seed=7)
    assert auto.best_so_far() == dense.best_so_far()
    assert auto.history.configs() == dense.history.configs()


def test_sparse_mode_regret_within_noise():
    """Forcing the sparse surrogate onto a small run stays competitive."""
    from repro.apps.synthetic import DemoFunction

    app = DemoFunction()
    problem = app.make_problem(run=0)
    task = app.default_task()
    n = 8 if SMOKE else 25
    dense = Tuner(problem, TunerOptions(surrogate="dense")).tune(task, n, seed=3)
    sparse = Tuner(
        problem,
        TunerOptions(surrogate="auto", n_dense_max=4, n_inducing=16),
    ).tune(task, n, seed=3)
    # within-noise: the sparse run's final incumbent is no worse than the
    # dense run's by more than the demo function's observed spread
    assert sparse.best_output <= dense.best_output * 1.5 + 0.1


if __name__ == "__main__":
    test_sparse_beats_dense_at_scale()
    test_auto_policy_identical_below_threshold()
    test_sparse_mode_regret_within_noise()
    print("bench_sparse: all checks passed")
