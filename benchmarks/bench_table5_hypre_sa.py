"""Table V: Sobol sensitivity analysis of Hypre (GMRES + BoomerAMG).

Paper setup: 1,000 random samples pre-collected on one Cori Haswell node
for nx=ny=nz=100; Sobol S1/ST for the twelve tuning parameters from a
surrogate fitted on those samples.

Paper finding: smooth_type and agg_num_levels have high scores
(S1 >= 0.1, ST >= 0.5), followed by smooth_num_levels, Py, Nproc; the
remaining seven parameters are near zero (< 0.05).
"""

from __future__ import annotations

from repro.apps import HypreAMG
from repro.hpc import cori_haswell
from repro.sensitivity import SensitivityAnalyzer

from harness import FULL, collect_source, save_results

N_SAMPLES = 1000 if FULL else 400
N_BASE = 1024 if FULL else 512
TASK = {"nx": 100, "ny": 100, "nz": 100}

LOW_PARAMS = [
    "Px",
    "strong_threshold",
    "trunc_factor",
    "P_max_elmts",
    "coarsen_type",
    "relax_type",
    "interp_type",
]


def _experiment():
    app = HypreAMG(cori_haswell(1))
    space = app.parameter_space()
    data = collect_source(app, TASK, N_SAMPLES, seed=5)
    analyzer = SensitivityAnalyzer(space, gp_max_fun=70, gp_restarts=1)
    return analyzer.analyze(data, n_base=N_BASE, n_bootstrap=50, seed=0)


def test_table5_hypre_sensitivity(benchmark):
    report = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    print(f"\nTable V — Sobol sensitivity of Hypre (nx=ny=nz=100, "
          f"{N_SAMPLES} samples, 1 Haswell node)")
    print(report.table())
    idx = {n: i for i, n in enumerate(report.indices.names)}
    ST = report.indices.ST
    save_results("table5", {"rows": report.indices.as_rows()})

    # high group: smooth_type and agg_num_levels lead
    ranking = report.indices.ranking("ST")
    assert ranking[0] in ("smooth_type", "agg_num_levels")
    assert ranking[1] in ("smooth_type", "agg_num_levels", "Py")
    # the paper's three reduced-tuning parameters all rank in the top five
    top5 = set(ranking[:5])
    assert {"smooth_type", "agg_num_levels"} <= top5
    assert "smooth_num_levels" in set(ranking[:6])
    # low group: near-zero for the seven minor parameters
    for name in LOW_PARAMS:
        assert ST[idx[name]] < 0.12, name
    # Px specifically is ~0 while Py is visibly above it (paper's contrast)
    assert ST[idx["Py"]] > ST[idx["Px"]] + 0.03
