"""Figure 5: transfer learning on the NIMROD fusion-MHD code.

Paper setup: one source task {mx:5, my:7, lphi:1} with 500 random samples
collected on 32 Cori Haswell nodes.  Three transfer scenarios:

(a) different node count — target = same task on 64 Haswell nodes.
    Paper @10: Multitask(TS) best, 1.20x over NoTLA; ensemble 1.16x.
(b) different architecture + problem size — target = {mx:5, my:4,
    lphi:1} on 32 KNL nodes.  Paper @10: TLA ~ NoTLA, ensemble 1.1x.
(c) different problem size + node count — target = {mx:6, my:8, lphi:1}
    on 64 Haswell nodes, with out-of-memory failures.  Paper @10:
    ensemble 2.97x, Multitask(TS) 2.78x over NoTLA.

10 function evaluations, 3 repeats; trajectories may start late when a
run's first evaluations all fail (the paper's Fig. 5(c) note).
"""

from __future__ import annotations

import math

import pytest

from repro.apps import NIMROD
from repro.hpc import cori_haswell, cori_knl

from harness import (
    FULL,
    PAPER_TUNERS,
    collect_source,
    mean_trajectories,
    render_trajectories,
    run_comparison,
    save_results,
    speedup_over_notla,
)

N_SOURCE = 500 if FULL else 120
N_EVALS = 10
REPEATS = 3
SRC_TASK = {"mx": 5, "my": 7, "lphi": 1}

SCENARIOS = {
    "fig5a": (cori_haswell(64), {"mx": 5, "my": 7, "lphi": 1}, 1.20),
    "fig5b": (cori_knl(32), {"mx": 5, "my": 4, "lphi": 1}, 1.10),
    "fig5c": (cori_haswell(64), {"mx": 6, "my": 8, "lphi": 1}, 2.97),
}

_source_cache: dict[str, object] = {}


def _source():
    if "src" not in _source_cache:
        src_app = NIMROD(cori_haswell(32))
        _source_cache["src"] = collect_source(
            src_app, SRC_TASK, N_SOURCE, seed=7, label="32-haswell"
        )
    return _source_cache["src"]


def _experiment(scenario: str):
    machine, target, _ = SCENARIOS[scenario]
    app = NIMROD(machine)
    return run_comparison(
        app,
        target,
        [_source()],
        tuners=PAPER_TUNERS,
        n_evals=N_EVALS,
        repeats=REPEATS,
    )


@pytest.mark.parametrize("scenario", sorted(SCENARIOS))
def test_fig5_nimrod(benchmark, scenario):
    machine, target, paper_speedup = SCENARIOS[scenario]
    results = benchmark.pedantic(_experiment, args=(scenario,), rounds=1, iterations=1)
    print()
    print(
        render_trajectories(
            f"Figure 5 ({scenario[-1]}) — NIMROD on {machine.nodes} "
            f"{machine.partition} nodes, target {target}",
            results,
            marks=[N_EVALS - 1],
        )
    )
    best_key = min(
        (k for k in PAPER_TUNERS if k != "notla"),
        key=lambda k: mean_trajectories(results)[k][N_EVALS - 1],
    )
    speedup = speedup_over_notla(results, best_key, N_EVALS - 1)
    print(
        f"best TLA ({best_key}) speedup over NoTLA @10: {speedup:.2f}x "
        f"(paper's best: {paper_speedup}x)"
    )
    save_results(scenario, {"trajectories": dict(results), "best_speedup": speedup})

    means = mean_trajectories(results)
    last = N_EVALS - 1
    notla = means["notla"][last]
    notla = notla if math.isfinite(notla) else float("inf")
    tla_best = min(means[k][last] for k in PAPER_TUNERS if k != "notla")
    if scenario == "fig5b":
        # paper: on a foreign architecture TLA behaves ~ like NoTLA
        assert tla_best <= notla * 1.15
    else:
        assert tla_best <= notla * 1.02

    if scenario == "fig5c":
        # failures must actually occur for random/NoTLA exploration here
        failures = int(sum((~_finite_rows(results["notla"])).sum()
                           for _ in range(1)))
        assert failures >= 0  # informational; OOM region exercised below


def _finite_rows(mat):
    import numpy as np

    return np.isfinite(mat)


def test_fig5c_failures_hit_notla(benchmark):
    """Fig. 5(c)'s mechanism: the OOM region consumes NoTLA's budget."""
    import numpy as np

    machine, target, _ = SCENARIOS["fig5c"]
    app = NIMROD(machine)

    def experiment():
        rng = np.random.default_rng(0)
        space = app.parameter_space()
        fails = sum(
            1
            for _ in range(200)
            if app.raw_objective(target, space.sample(rng)) is None
        )
        return fails

    fails = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rate = fails / 200
    print(f"\nfig5c random-sampling OOM rate: {rate:.0%}")
    assert 0.15 <= rate <= 0.7
