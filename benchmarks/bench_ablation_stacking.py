"""Ablation: stacking order of the source surrogates (paper Sec. V-D).

"One would expect that the sequence (ordering) of the source surrogate
models can affect the quality of the combined model.  We order the
source tasks based on the number of available samples (the first task
has the largest number of samples)."

This ablation compares the paper's ordering against the reverse
(smallest source first) on a PDGEQRF three-source scenario with highly
unequal source sizes, where the choice should matter most.

Finding (recorded in EXPERIMENTS.md): in this scenario the ordering is
*not* neutral, and the reverse order can win — the residual chain's
combined mean tracks the most recently stacked source, so stacking the
largest source first leaves the smallest (least-informed) source's
residual model as the final word.  The bench asserts only what is robust:
both orderings produce working transfer tuners, and the measured
difference is reported for inspection.
"""

from __future__ import annotations

import numpy as np

from repro.apps import PDGEQRF
from repro.hpc import cori_haswell
from repro.tla import Stacking, TransferTuner

from harness import FULL, collect_source, save_results

N_EVALS = 8
REPEATS = 5 if FULL else 3
TARGET = {"m": 9000, "n": 9000}
# deliberately unequal source sizes: 60 / 20 / 8 samples
SOURCES = [
    ({"m": 10000, "n": 10000}, 60),
    ({"m": 8000, "n": 8000}, 20),
    ({"m": 6000, "n": 6000}, 8),
]


def _experiment():
    app = PDGEQRF(cori_haswell(8))
    sources = [
        collect_source(app, task, n, seed=40 + i, label=f"n={n}")
        for i, (task, n) in enumerate(SOURCES)
    ]
    out = {}
    for order in ("samples", "reverse"):
        finals = []
        for rep in range(REPEATS):
            problem = app.make_problem(run=rep)
            tuner = TransferTuner(problem, Stacking(order=order), sources)
            res = tuner.tune(TARGET, N_EVALS, seed=rep)
            traj = res.best_so_far()
            finals.append(traj[-1] if np.isfinite(traj[-1]) else np.nan)
        out[order] = finals
    return out


def test_ablation_stacking_order(benchmark):
    out = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    mean_paper = float(np.nanmean(out["samples"]))
    mean_reverse = float(np.nanmean(out["reverse"]))
    print("\nAblation — stacking order (PDGEQRF, 3 unequal sources)")
    print(f"  largest-first (paper): {mean_paper:.3f} s")
    print(f"  smallest-first:        {mean_reverse:.3f} s")
    ratio = mean_paper / mean_reverse
    print(f"  largest-first / smallest-first ratio: {ratio:.2f} "
          "(>1 means the paper's order lost here; see module docstring)")
    save_results("ablation_stacking", {**out, "ratio": ratio})
    # robust assertions only: both orderings must produce working tuners
    assert np.isfinite(mean_paper) and np.isfinite(mean_reverse)
    assert mean_paper > 0 and mean_reverse > 0
