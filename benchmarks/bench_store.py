"""Record-store benchmark: the columnar read plane vs the row path.

The crowd's read-heavy endpoints — filtered queries, leaderboards, and
registry-build record extraction — historically paid a Python-level
predicate call plus a deep copy (and often a
:class:`PerformanceRecord` construction) *per stored row per request*.
The columnar plane answers the same requests from numpy masks over
incrementally-maintained columns and returns zero-copy frozen views.

Each leg measures row-vs-column wall time on the same store and checks
the results are **bit-identical** before trusting the speedup:

* ``find`` — selective filter + timestamp sort at the collection level,
* ``query`` — repository query with accessibility enforcement (the
  seed's path materialized a ``PerformanceRecord`` per visible row),
* ``leaderboard`` — per-task best aggregation over all records,
* ``registry`` — the registry build's eligible-record extraction
  (public + successful + exact task key, timestamp-sorted),
* ``insert_many`` — N single-op journaled inserts vs one batched op
  through :meth:`WriteAheadLog.append_many`.

Checks: >= 5x on the query/leaderboard/registry read paths at the
largest size (50k rows; ``REPRO_BENCH_SMOKE=1`` shrinks sizes and
drops thresholds to sanity checks — shared CI runners are noisy).
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.core import perf
from repro.crowd.database import Collection, DocumentStore
from repro.crowd.records import Accessibility, PerformanceRecord
from repro.crowd.repository import CrowdRepository
from repro.crowd.views import leaderboard_from_docs, leaderboard_from_records
from repro.registry import ModelRegistry
from repro.service.wal import WriteAheadLog

from harness import FULL, SMOKE, save_results

SIZES = [500, 2_000] if SMOKE else [5_000, 50_000]
N_TASKS = 8
#: repeated requests per timing leg (read endpoints are hit constantly)
REPEATS = 3 if SMOKE else 5
MIN_READ_SPEEDUP = 1.0 if SMOKE else 5.0
MIN_BATCH_SPEEDUP = 1.0 if SMOKE else 2.0

_SPACE = {
    "input_space": [{"name": "t", "type": "int", "lb": 0, "ub": N_TASKS}],
    "parameter_space": [{"name": "x", "type": "real", "lb": 0.0, "ub": 1e9}],
}


def _fill(repo: CrowdRepository, key: str, n: int) -> None:
    batch = []
    for i in range(n):
        batch.append(
            PerformanceRecord(
                problem_name="bench",
                task_parameters={"t": i % N_TASKS},
                tuning_parameters={"x": float(i)},
                output=None if i % 17 == 0 else float(i % 1000),
                machine_configuration={"machine_name": "cori", "nodes": 1},
                accessibility=(
                    Accessibility(level="private")
                    if i % 23 == 0
                    else Accessibility()
                ),
            )
        )
        if len(batch) == 1000:
            repo.upload_many(batch, key)
            batch = []
    if batch:
        repo.upload_many(batch, key)


def _build(n: int):
    repo = CrowdRepository()
    repo.users.register("alice", "a@lab.gov")
    key = repo.users.issue_api_key("alice")
    _fill(repo, key, n)
    return repo, key


def _wall(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _row_mode(coll: Collection):
    """Context toggling the collection to the row-only engine."""

    class _Ctx:
        def __enter__(self):
            coll.set_columnar(False)

        def __exit__(self, *exc):
            coll.set_columnar(True)

    return _Ctx()


def test_columnar_read_paths():
    rows = []
    for n in SIZES:
        repo, key = _build(n)
        coll = repo.store["performance_records"]
        flt = {"output": {"$ne": None}, "task_parameters.t": 3}

        # -- find: selective filter + sort ------------------------------
        fast_docs = coll.find(flt, sort="timestamp", frozen=True)
        with _row_mode(coll):
            slow_docs = coll.find(flt, sort="timestamp")
        assert fast_docs == slow_docs
        t_find_col = _wall(lambda: coll.find(flt, sort="timestamp", frozen=True))
        with _row_mode(coll):
            t_find_row = _wall(lambda: coll.find(flt, sort="timestamp"))

        # -- query: repository read with visibility ---------------------
        fast_q = repo.query_docs(key, problem_name="bench")
        with _row_mode(coll):
            slow_q = repo.query_docs(key, problem_name="bench")
        assert fast_q == slow_q
        t_query_col = _wall(lambda: repo.query_docs(key, problem_name="bench"))
        # seed-equivalent baseline: a PerformanceRecord per visible row
        with _row_mode(coll):
            t_query_row = _wall(lambda: repo.query(key, problem_name="bench"))

        # -- leaderboard: per-task best aggregation ---------------------
        docs = repo.query_docs(key, problem_name="bench", require_success=False)
        fast_lb = leaderboard_from_docs(docs)
        slow_lb = leaderboard_from_records(
            [PerformanceRecord.from_doc(d) for d in docs]
        )
        assert fast_lb == slow_lb
        t_lb_col = _wall(lambda: leaderboard_from_docs(docs))
        t_lb_row = _wall(
            lambda: leaderboard_from_records(
                [PerformanceRecord.from_doc(d) for d in docs]
            )
        )

        # -- registry build: eligible-record extraction -----------------
        registry = ModelRegistry(repo)
        task = {"t": 3}
        fast_el = registry._eligible_docs("bench", _SPACE, task)
        with _row_mode(coll):
            slow_el = registry._eligible_docs("bench", _SPACE, task)
        assert fast_el == slow_el
        t_reg_col = _wall(lambda: registry._eligible_docs("bench", _SPACE, task))
        with _row_mode(coll):
            t_reg_row = _wall(
                lambda: registry._eligible_docs("bench", _SPACE, task)
            )

        for leg, t_row, t_col in (
            ("find", t_find_row, t_find_col),
            ("query", t_query_row, t_query_col),
            ("leaderboard", t_lb_row, t_lb_col),
            ("registry", t_reg_row, t_reg_col),
        ):
            rows.append(
                {
                    "leg": leg,
                    "n": n,
                    "row_ms": 1e3 * t_row,
                    "col_ms": 1e3 * t_col,
                    "speedup": t_row / t_col if t_col > 0 else float("inf"),
                    "parity": True,  # asserted bit-identical above
                }
            )

    print()
    print("columnar read plane: row vs column (best of %d)" % REPEATS)
    print(f"{'leg':<12} {'rows':>7} {'row ms':>9} {'col ms':>9} "
          f"{'speedup':>8} {'parity':>7}")
    for r in rows:
        print(
            f"{r['leg']:<12} {r['n']:>7} {r['row_ms']:>9.2f} "
            f"{r['col_ms']:>9.2f} {r['speedup']:>7.1f}x {'ok':>7}"
        )
    save_results("store_columnar", {"rows": rows, "smoke": SMOKE, "full": FULL})

    largest = SIZES[-1]
    for leg in ("query", "leaderboard", "registry"):
        (r,) = [x for x in rows if x["leg"] == leg and x["n"] == largest]
        assert r["speedup"] >= MIN_READ_SPEEDUP, (leg, r)


def test_batched_insert_and_journal():
    n = SIZES[0]
    docs = [{"problem_name": "bench", "x": float(i)} for i in range(n)]

    def one_by_one(tmp: str) -> DocumentStore:
        store = DocumentStore()
        wal = WriteAheadLog(Path(tmp) / "wal.jsonl")
        store.set_observer(lambda op: wal.append(op))
        for d in docs:
            store["c"].insert(d)
        wal.close()
        return store

    def batched(tmp: str) -> DocumentStore:
        store = DocumentStore()
        wal = WriteAheadLog(Path(tmp) / "wal.jsonl")
        ops: list = []
        store.set_observer(ops.append)
        store["c"].insert_many(docs)
        wal.append_many(ops)
        wal.close()
        return store

    stats = perf.PerfStats()
    with perf.collect(stats):
        with tempfile.TemporaryDirectory() as tmp:
            t0 = time.perf_counter()
            slow_store = one_by_one(tmp)
            t_row = time.perf_counter() - t0
        with tempfile.TemporaryDirectory() as tmp:
            t0 = time.perf_counter()
            fast_store = batched(tmp)
            t_col = time.perf_counter() - t0
    assert fast_store["c"].find({}) == slow_store["c"].find({})
    counters = stats.snapshot()["counters"]
    assert counters.get("wal_batch_appends", 0) >= 1

    speedup = t_row / t_col if t_col > 0 else float("inf")
    print()
    print(
        f"insert_many + append_many: {n} docs  "
        f"row {1e3 * t_row:.1f} ms  batched {1e3 * t_col:.1f} ms  "
        f"{speedup:.1f}x  parity ok"
    )
    print("  counters: " + ", ".join(
        f"{k}={v}" for k, v in sorted(counters.items())
        if k.startswith(("wal_", "store_"))
    ))
    save_results(
        "store_batch_journal",
        {
            "n": n,
            "row_ms": 1e3 * t_row,
            "batched_ms": 1e3 * t_col,
            "speedup": speedup,
            "counters": {k: v for k, v in counters.items()},
            "smoke": SMOKE,
        },
    )
    assert speedup >= MIN_BATCH_SPEEDUP, speedup


def test_read_counters_flow_to_perf():
    repo, key = _build(SIZES[0])
    stats = perf.PerfStats()
    with perf.collect(stats):
        repo.query_docs(key, problem_name="bench")
        repo.store["performance_records"].find({"output": None}, frozen=True)
    counters = stats.snapshot()["counters"]
    assert counters.get("store_columnar_queries", 0) >= 2
    assert counters.get("store_zero_copy_reads", 0) >= 2
    print()
    print("  read counters: " + ", ".join(
        f"{k}={v}" for k, v in sorted(counters.items())
        if k.startswith("store_")
    ))


if __name__ == "__main__":
    test_columnar_read_paths()
    test_batched_insert_and_journal()
    test_read_counters_flow_to_perf()
