"""Crowd-service benchmark: sharded read scaling and cache-hit speedup.

The service layer's two performance promises:

* **shard scaling** — task-pinned reads land on single shards, so with
  N shards behind the router an open pool of clients sustains ~N times
  the read throughput of a single node.  Each shard serializes its
  requests behind a simulated 2 ms service time (the transport models a
  single-threaded node), so the scaling measured here is real routing
  concurrency, not Python thread noise.
* **query caching** — repeated fan-out queries (the TLA
  ``query_source_data`` pattern: one problem, all tasks) are served
  from the router's TTL+LRU cache without touching any shard.

* **no silent write loss** — with K-way replication, a shard killed
  under sustained mixed read/write load and re-added later costs zero
  acknowledged writes: survivors absorb the traffic, hinted handoff
  replays the backlog on revival, and one anti-entropy round restores
  full replication for every acked uid.

Checks: >= 3x read throughput at 4 shards vs 1, >= 3x latency win for
cached repeats, and every acked write readable at full replication
after the kill-and-rejoin cycle.  Smoke mode (``REPRO_BENCH_SMOKE=1``)
shrinks budgets and drops the thresholds to sanity checks — shared CI
runners have noisy clocks.
"""

from __future__ import annotations

import sys
import threading
import time

import numpy as np

from repro.core import perf
from repro.service import RouterOptions, build_service

from harness import FULL, SMOKE, save_results

SHARD_COUNTS = [1, 2, 4, 8]
#: simulated per-request service time of one shard node — large enough
#: that shard service time, not interpreter overhead, is the bottleneck
LATENCY_S = 0.002 if SMOKE else 0.010
N_TASKS = 32
RECORDS_PER_TASK = 4 if SMOKE else 8
N_CLIENT_THREADS = 8
QUERIES_PER_THREAD = 25 if SMOKE else (80 if FULL else 40)
N_CACHE_REPEATS = 30 if SMOKE else 100

MIN_SCALING_AT_4 = 1.5 if SMOKE else 3.0
MIN_CACHE_SPEEDUP = 1.5 if SMOKE else 3.0


def _build(n_shards: int, *, cache: bool):
    options = RouterOptions(
        replication=1,
        cache_size=256 if cache else 0,
        cache_ttl_s=300.0,
    )
    svc = build_service(n_shards, latency_s=LATENCY_S, options=options)
    _, key = svc.register_user("bench", "bench@lab.gov")
    for t in range(N_TASKS):
        for i in range(RECORDS_PER_TASK):
            response = svc.client.handle(
                {
                    "route": "upload",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": t},
                    "tuning_parameters": {"x": float(i)},
                    "output": float(i),
                }
            )
            assert response["ok"], response
    return svc, key


def _pinned_read_wall(svc, key) -> float:
    """Wall time for an 8-thread pool of task-pinned readers.

    Each thread rotates over the shards (with its own phase) and picks a
    task owned by the current one — a balanced open workload, so the
    measured scaling is the service's, not an artifact of all clients
    convoying on one unlucky shard.
    """
    from repro.service import shard_key

    tasks_by_shard: dict[str, list[int]] = {}
    for t in range(N_TASKS):
        owner = svc.router.ring.primary(shard_key("bench", {"t": t}))
        tasks_by_shard.setdefault(owner, []).append(t)
    rotation = sorted(tasks_by_shard)

    def reader(tid: int):
        for q in range(QUERIES_PER_THREAD):
            owned = tasks_by_shard[rotation[(tid + q) % len(rotation)]]
            task = owned[(tid * QUERIES_PER_THREAD + q) % len(owned)]
            response = svc.client.handle(
                {
                    "route": "query",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": task},
                }
            )
            assert response["ok"], response
            assert len(response["records"]) == RECORDS_PER_TASK

    threads = [
        threading.Thread(target=reader, args=(tid,))
        for tid in range(N_CLIENT_THREADS)
    ]
    # snappy GIL handoffs: a thread waking from its simulated shard
    # latency should not wait a full default 5 ms switch interval
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(2e-4)
    t0 = time.perf_counter()
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.perf_counter() - t0
    finally:
        sys.setswitchinterval(old_interval)


def test_read_throughput_scales_with_shards():
    n_queries = N_CLIENT_THREADS * QUERIES_PER_THREAD
    rows = []
    throughput: dict[int, float] = {}
    for n_shards in SHARD_COUNTS:
        # caching off: every query must hit its owning shard
        svc, key = _build(n_shards, cache=False)
        try:
            wall = _pinned_read_wall(svc, key)
        finally:
            svc.close()
        throughput[n_shards] = n_queries / wall
        rows.append(
            {
                "shards": n_shards,
                "wall_s": wall,
                "queries_per_s": throughput[n_shards],
                "scaling": throughput[n_shards] / throughput[SHARD_COUNTS[0]],
            }
        )

    print(
        f"\ncrowd service: {n_queries} task-pinned reads, "
        f"{N_CLIENT_THREADS} client threads, {LATENCY_S * 1e3:.0f} ms/shard-op"
    )
    print(f"{'shards':>7}  {'wall':>8}  {'reads/s':>8}  {'scaling':>8}")
    for r in rows:
        print(
            f"{r['shards']:>7}  {r['wall_s']:>7.2f}s  {r['queries_per_s']:>8.0f}"
            f"  {r['scaling']:>7.2f}x"
        )
    save_results(
        "service_scaling",
        {
            "rows": rows,
            "latency_s": LATENCY_S,
            "n_threads": N_CLIENT_THREADS,
            "n_queries": n_queries,
        },
    )

    scaling_at_4 = throughput[4] / throughput[1]
    assert scaling_at_4 >= MIN_SCALING_AT_4, (
        f"only {scaling_at_4:.2f}x read throughput at 4 shards vs 1 "
        f"(need >= {MIN_SCALING_AT_4}x)"
    )


def test_cache_hit_speedup():
    svc, key = _build(4, cache=True)
    stats = perf.PerfStats()
    request = {"route": "query", "api_key": key, "problem_name": "bench"}
    try:
        with perf.collect(stats):
            # first fan-out populates the cache
            t0 = time.perf_counter()
            first = svc.client.handle(request)
            miss_s = time.perf_counter() - t0
            assert first["ok"] and len(first["records"]) == N_TASKS * RECORDS_PER_TASK

            hit_times = []
            for _ in range(N_CACHE_REPEATS):
                t0 = time.perf_counter()
                response = svc.client.handle(request)
                hit_times.append(time.perf_counter() - t0)
            assert response == first
    finally:
        svc.close()

    hit_s = float(np.median(hit_times))
    speedup = miss_s / hit_s
    counters = stats.snapshot()["counters"]
    print(
        f"\ncache: miss {miss_s * 1e3:.2f} ms, median hit {hit_s * 1e3:.3f} ms "
        f"-> {speedup:.1f}x ({counters.get('service_cache_hits', 0)} hits, "
        f"{counters.get('service_cache_misses', 0)} misses)"
    )
    save_results(
        "service_cache",
        {
            "miss_s": miss_s,
            "median_hit_s": hit_s,
            "speedup": speedup,
            "repeats": N_CACHE_REPEATS,
        },
    )

    assert counters.get("service_cache_hits", 0) == N_CACHE_REPEATS
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cached repeat only {speedup:.2f}x faster than the fan-out miss "
        f"(need >= {MIN_CACHE_SPEEDUP}x)"
    )


KR_SHARDS = 4
KR_WRITER_THREADS = 4
KR_READER_THREADS = 2
KR_WRITES_PER_THREAD = 25 if SMOKE else 60
KR_TASKS = 16


def test_kill_and_rejoin_loses_no_acked_writes():
    """Mixed read/write load; one shard dies mid-run and rejoins later.

    The controller is count-driven, not clock-driven: the victim is
    killed after a third of the writes have been acked and revived after
    two thirds, so the outage window is deterministic regardless of
    runner speed.  Afterward every acknowledged uid must be readable at
    full replication — the bug this layer exists to prevent is an acked
    write silently vanishing with the shard that briefly held it.
    """
    from repro.service import shard_key

    options = RouterOptions(replication=2, cache_size=0)
    svc = build_service(KR_SHARDS, latency_s=LATENCY_S / 2, options=options)
    _, key = svc.register_user("bench", "bench@lab.gov")

    total_writes = KR_WRITER_THREADS * KR_WRITES_PER_THREAD
    acked: list[int] = []
    outcomes = {"ok": 0, "degraded": 0, "failed": 0, "reads": 0}
    lock = threading.Lock()
    killed = threading.Event()
    revived = threading.Event()
    # the victim owns real buckets, so the outage actually bites
    victim = svc.router.ring.primary(shard_key("bench", {"t": 0}))

    def writer(tid: int):
        for i in range(KR_WRITES_PER_THREAD):
            n = tid * KR_WRITES_PER_THREAD + i
            response = svc.client.handle(
                {
                    "route": "upload",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": n % KR_TASKS},
                    "tuning_parameters": {"x": float(n)},
                    "output": float(n),
                }
            )
            with lock:
                if response.get("ok"):
                    acked.append(response["uid"])
                    outcomes[response.get("status", "ok")] += 1
                    done = len(acked)
                else:
                    outcomes["failed"] += 1
                    done = len(acked)
            if done >= total_writes // 3 and not killed.is_set():
                killed.set()
                svc.kill_shard(victim)
            elif done >= 2 * total_writes // 3 and not revived.is_set():
                revived.set()
                svc.revive_shard(victim)  # on_up replays the hint backlog

    def reader(tid: int):
        while not revived.is_set():
            response = svc.client.handle(
                {
                    "route": "query",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": tid % KR_TASKS},
                }
            )
            assert response["ok"], response
            with lock:
                outcomes["reads"] += 1

    stats = perf.PerfStats()
    threads = [
        threading.Thread(target=writer, args=(tid,))
        for tid in range(KR_WRITER_THREADS)
    ] + [
        threading.Thread(target=reader, args=(tid,))
        for tid in range(KR_READER_THREADS)
    ]
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(2e-4)
    t0 = time.perf_counter()
    try:
        with perf.collect(stats):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            revived.set()  # release readers even if writers raced past
            if svc.transports[victim].down:
                svc.revive_shard(victim)
            heal = svc.router.anti_entropy_round()
        wall = time.perf_counter() - t0
    finally:
        sys.setswitchinterval(old_interval)

    counters = stats.snapshot()["counters"]
    try:
        # every acked uid is present on both of its preference replicas
        lost = []
        for uid in acked:
            copies = sum(
                len(shard.repository.store["performance_records"].find({"uid": uid}))
                for shard in svc.shards.values()
            )
            if copies != options.replication:
                lost.append((uid, copies))
        # and readable through the public query path
        seen: set[int] = set()
        for t in range(KR_TASKS):
            response = svc.client.handle(
                {
                    "route": "query",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": t},
                }
            )
            assert response["ok"], response
            seen.update(r["uid"] for r in response["records"])
    finally:
        svc.close()

    print(
        f"\nkill-and-rejoin: {len(acked)}/{total_writes} writes acked in "
        f"{wall:.2f}s ({outcomes['degraded']} degraded, "
        f"{outcomes['failed']} rejected, {outcomes['reads']} reads), victim "
        f"{victim}: {counters.get('service_hints_replayed', 0)} hints "
        f"replayed, {heal['healed']} records healed by anti-entropy"
    )
    save_results(
        "service_kill_rejoin",
        {
            "writes_acked": len(acked),
            "writes_total": total_writes,
            "degraded": outcomes["degraded"],
            "rejected": outcomes["failed"],
            "reads": outcomes["reads"],
            "hints_replayed": counters.get("service_hints_replayed", 0),
            "antientropy_healed": heal["healed"],
            "wall_s": wall,
        },
    )

    assert killed.is_set() and revived.is_set(), "outage window never opened"
    assert outcomes["degraded"] > 0, (
        "the killed shard took no write traffic; the scenario proved nothing"
    )
    assert not lost, f"acked writes under-replicated after heal: {lost[:5]}"
    missing = set(acked) - seen
    assert not missing, f"acked writes unreadable after rejoin: {sorted(missing)[:5]}"
