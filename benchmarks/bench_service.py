"""Crowd-service benchmark: sharded read scaling and cache-hit speedup.

The service layer's two performance promises:

* **shard scaling** — task-pinned reads land on single shards, so with
  N shards behind the router an open pool of clients sustains ~N times
  the read throughput of a single node.  Each shard serializes its
  requests behind a simulated 2 ms service time (the transport models a
  single-threaded node), so the scaling measured here is real routing
  concurrency, not Python thread noise.
* **query caching** — repeated fan-out queries (the TLA
  ``query_source_data`` pattern: one problem, all tasks) are served
  from the router's TTL+LRU cache without touching any shard.

Checks: >= 3x read throughput at 4 shards vs 1, >= 3x latency win for
cached repeats.  Smoke mode (``REPRO_BENCH_SMOKE=1``) shrinks budgets
and drops the thresholds to sanity checks — shared CI runners have
noisy clocks.
"""

from __future__ import annotations

import sys
import threading
import time

import numpy as np

from repro.core import perf
from repro.service import RouterOptions, build_service

from harness import FULL, SMOKE, save_results

SHARD_COUNTS = [1, 2, 4]
#: simulated per-request service time of one shard node — large enough
#: that shard service time, not interpreter overhead, is the bottleneck
LATENCY_S = 0.002 if SMOKE else 0.010
N_TASKS = 32
RECORDS_PER_TASK = 4 if SMOKE else 8
N_CLIENT_THREADS = 8
QUERIES_PER_THREAD = 25 if SMOKE else (80 if FULL else 40)
N_CACHE_REPEATS = 30 if SMOKE else 100

MIN_SCALING_AT_4 = 1.5 if SMOKE else 3.0
MIN_CACHE_SPEEDUP = 1.5 if SMOKE else 3.0


def _build(n_shards: int, *, cache: bool):
    options = RouterOptions(
        replication=1,
        cache_size=256 if cache else 0,
        cache_ttl_s=300.0,
    )
    svc = build_service(n_shards, latency_s=LATENCY_S, options=options)
    _, key = svc.register_user("bench", "bench@lab.gov")
    for t in range(N_TASKS):
        for i in range(RECORDS_PER_TASK):
            response = svc.client.handle(
                {
                    "route": "upload",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": t},
                    "tuning_parameters": {"x": float(i)},
                    "output": float(i),
                }
            )
            assert response["ok"], response
    return svc, key


def _pinned_read_wall(svc, key) -> float:
    """Wall time for an 8-thread pool of task-pinned readers.

    Each thread rotates over the shards (with its own phase) and picks a
    task owned by the current one — a balanced open workload, so the
    measured scaling is the service's, not an artifact of all clients
    convoying on one unlucky shard.
    """
    from repro.service import shard_key

    tasks_by_shard: dict[str, list[int]] = {}
    for t in range(N_TASKS):
        owner = svc.router.ring.primary(shard_key("bench", {"t": t}))
        tasks_by_shard.setdefault(owner, []).append(t)
    rotation = sorted(tasks_by_shard)

    def reader(tid: int):
        for q in range(QUERIES_PER_THREAD):
            owned = tasks_by_shard[rotation[(tid + q) % len(rotation)]]
            task = owned[(tid * QUERIES_PER_THREAD + q) % len(owned)]
            response = svc.client.handle(
                {
                    "route": "query",
                    "api_key": key,
                    "problem_name": "bench",
                    "task_parameters": {"t": task},
                }
            )
            assert response["ok"], response
            assert len(response["records"]) == RECORDS_PER_TASK

    threads = [
        threading.Thread(target=reader, args=(tid,))
        for tid in range(N_CLIENT_THREADS)
    ]
    # snappy GIL handoffs: a thread waking from its simulated shard
    # latency should not wait a full default 5 ms switch interval
    old_interval = sys.getswitchinterval()
    sys.setswitchinterval(2e-4)
    t0 = time.perf_counter()
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        return time.perf_counter() - t0
    finally:
        sys.setswitchinterval(old_interval)


def test_read_throughput_scales_with_shards():
    n_queries = N_CLIENT_THREADS * QUERIES_PER_THREAD
    rows = []
    throughput: dict[int, float] = {}
    for n_shards in SHARD_COUNTS:
        # caching off: every query must hit its owning shard
        svc, key = _build(n_shards, cache=False)
        try:
            wall = _pinned_read_wall(svc, key)
        finally:
            svc.close()
        throughput[n_shards] = n_queries / wall
        rows.append(
            {
                "shards": n_shards,
                "wall_s": wall,
                "queries_per_s": throughput[n_shards],
                "scaling": throughput[n_shards] / throughput[SHARD_COUNTS[0]],
            }
        )

    print(
        f"\ncrowd service: {n_queries} task-pinned reads, "
        f"{N_CLIENT_THREADS} client threads, {LATENCY_S * 1e3:.0f} ms/shard-op"
    )
    print(f"{'shards':>7}  {'wall':>8}  {'reads/s':>8}  {'scaling':>8}")
    for r in rows:
        print(
            f"{r['shards']:>7}  {r['wall_s']:>7.2f}s  {r['queries_per_s']:>8.0f}"
            f"  {r['scaling']:>7.2f}x"
        )
    save_results(
        "service_scaling",
        {
            "rows": rows,
            "latency_s": LATENCY_S,
            "n_threads": N_CLIENT_THREADS,
            "n_queries": n_queries,
        },
    )

    scaling_at_4 = throughput[4] / throughput[1]
    assert scaling_at_4 >= MIN_SCALING_AT_4, (
        f"only {scaling_at_4:.2f}x read throughput at 4 shards vs 1 "
        f"(need >= {MIN_SCALING_AT_4}x)"
    )


def test_cache_hit_speedup():
    svc, key = _build(4, cache=True)
    stats = perf.PerfStats()
    request = {"route": "query", "api_key": key, "problem_name": "bench"}
    try:
        with perf.collect(stats):
            # first fan-out populates the cache
            t0 = time.perf_counter()
            first = svc.client.handle(request)
            miss_s = time.perf_counter() - t0
            assert first["ok"] and len(first["records"]) == N_TASKS * RECORDS_PER_TASK

            hit_times = []
            for _ in range(N_CACHE_REPEATS):
                t0 = time.perf_counter()
                response = svc.client.handle(request)
                hit_times.append(time.perf_counter() - t0)
            assert response == first
    finally:
        svc.close()

    hit_s = float(np.median(hit_times))
    speedup = miss_s / hit_s
    counters = stats.snapshot()["counters"]
    print(
        f"\ncache: miss {miss_s * 1e3:.2f} ms, median hit {hit_s * 1e3:.3f} ms "
        f"-> {speedup:.1f}x ({counters.get('service_cache_hits', 0)} hits, "
        f"{counters.get('service_cache_misses', 0)} misses)"
    )
    save_results(
        "service_cache",
        {
            "miss_s": miss_s,
            "median_hit_s": hit_s,
            "speedup": speedup,
            "repeats": N_CACHE_REPEATS,
        },
    )

    assert counters.get("service_cache_hits", 0) == N_CACHE_REPEATS
    assert speedup >= MIN_CACHE_SPEEDUP, (
        f"cached repeat only {speedup:.2f}x faster than the fan-out miss "
        f"(need >= {MIN_CACHE_SPEEDUP}x)"
    )
