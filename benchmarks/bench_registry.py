"""Registry benchmark: frozen-model serving vs per-query refitting.

The registry's performance promise: ``QueryPredictOutput`` against the
service costs one GP fit **total** (the first build), after which every
prediction is a cached-factorization mat-vec on the owning shard.  The
paper-faithful alternative — what :class:`~repro.crowd.api.CrowdClient`
does without a registry — re-queries the records and refits a fresh GP
on every call.

Two measurements over the same uploaded record set, one shard, router
cache off (so every request reaches the shard):

* **cold path** — ``use_registry=False`` clients calling
  ``query_predict_output`` (query + fit + predict each time),
* **registry path** — batched ``predict`` requests served from the
  frozen model; the serving loop is pinned fit-free by counter.

Checks: >= 10x prediction throughput over the refitting path and
>= 10^4 predictions/s on the single shard (batch 64).  Smoke mode
(``REPRO_BENCH_SMOKE=1``) shrinks budgets and drops the thresholds —
shared CI runners have noisy clocks.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import perf
from repro.crowd import CrowdClient, MetaDescription
from repro.registry import RegistryOptions
from repro.service import RouterOptions, build_service

from harness import SMOKE, save_results

PROBLEM = "bench"
TASK = {"t": 1}
SPACE = {
    "input_space": [
        {"name": "t", "type": "real", "lower_bound": 0, "upper_bound": 10}
    ],
    "parameter_space": [
        {"name": "x", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0},
        {"name": "y", "type": "real", "lower_bound": 0.0, "upper_bound": 1.0},
    ],
    "output_space": [{"name": "out", "type": "output"}],
}

N_RECORDS = 32 if SMOKE else 64
BATCH = 64
N_COLD = 3 if SMOKE else 10
N_BATCHES = 50 if SMOKE else 200

MIN_SPEEDUP = 2.0 if SMOKE else 10.0
MIN_QPS = 1e3 if SMOKE else 1e4


def _build_service():
    svc = build_service(
        1,
        registry=RegistryOptions(min_new_samples=10**6),
        options=RouterOptions(replication=1, cache_size=0),
    )
    _, key = svc.register_user("bench", "bench@lab.gov")
    rng = np.random.default_rng(0)
    for i in range(N_RECORDS):
        x, y = rng.random(2)
        response = svc.client.handle(
            {
                "route": "upload",
                "api_key": key,
                "problem_name": PROBLEM,
                "task_parameters": dict(TASK),
                "tuning_parameters": {"x": float(x), "y": float(y)},
                "output": float(np.sin(5 * x) + y),
            }
        )
        assert response["ok"], response
    return svc, key


def _probe_batch(rng) -> list[dict]:
    return [
        {"x": float(a), "y": float(b)} for a, b in rng.random((BATCH, 2))
    ]


def test_registry_throughput_vs_refitting():
    svc, key = _build_service()
    rng = np.random.default_rng(1)
    meta = MetaDescription.from_dict(
        {
            "api_key": key,
            "tuning_problem_name": PROBLEM,
            "problem_space": SPACE,
        }
    )
    try:
        # cold path: the paper-faithful client, refitting per call
        cold_client = CrowdClient(
            svc.repository_view(), meta, use_registry=False
        )
        probe = _probe_batch(rng)
        with perf.collect() as cold_stats:
            t0 = time.perf_counter()
            for _ in range(N_COLD):
                cold_out = cold_client.query_predict_output(probe, TASK, seed=0)
            cold_wall = time.perf_counter() - t0
        assert cold_stats.counters["gp_fits"] == N_COLD
        cold_qps = N_COLD * BATCH / cold_wall

        # registry path: register, build once, then serve fit-free
        reg = svc.client.handle(
            {
                "route": "register_problem",
                "api_key": key,
                "problem_name": PROBLEM,
                "problem_space": SPACE,
            }
        )
        assert reg["ok"], reg
        first = svc.client.handle(
            {
                "route": "predict",
                "api_key": key,
                "problem_name": PROBLEM,
                "task_parameters": dict(TASK),
                "configurations": probe,
            }
        )
        assert first["ok"], first
        # same data, same seed: the frozen model answers with the exact
        # bytes of the cold client's locally fitted GP
        assert np.array_equal(np.asarray(first["mean"]), cold_out)

        with perf.collect() as serve_stats:
            t0 = time.perf_counter()
            for _ in range(N_BATCHES):
                response = svc.client.handle(
                    {
                        "route": "predict",
                        "api_key": key,
                        "problem_name": PROBLEM,
                        "task_parameters": dict(TASK),
                        "configurations": probe,
                    }
                )
                assert response["ok"], response
            serve_wall = time.perf_counter() - t0
        assert serve_stats.counters.get("gp_fits", 0) == 0
        assert serve_stats.counters["registry_predict_batches"] == N_BATCHES
    finally:
        svc.close()

    registry_qps = N_BATCHES * BATCH / serve_wall
    speedup = registry_qps / cold_qps
    print(
        f"\nregistry: cold {cold_qps:,.0f} pred/s "
        f"({cold_wall / N_COLD * 1e3:.1f} ms/query, refit each call) vs "
        f"frozen {registry_qps:,.0f} pred/s "
        f"({serve_wall / N_BATCHES * 1e3:.2f} ms/batch of {BATCH}) "
        f"-> {speedup:.1f}x"
    )
    save_results(
        "registry_qps",
        {
            "n_records": N_RECORDS,
            "batch": BATCH,
            "cold_queries": N_COLD,
            "cold_wall_s": cold_wall,
            "cold_predictions_per_s": cold_qps,
            "registry_batches": N_BATCHES,
            "registry_wall_s": serve_wall,
            "registry_predictions_per_s": registry_qps,
            "speedup": speedup,
        },
    )

    assert speedup >= MIN_SPEEDUP, (
        f"registry serving only {speedup:.1f}x the refitting path "
        f"(need >= {MIN_SPEEDUP}x)"
    )
    assert registry_qps >= MIN_QPS, (
        f"only {registry_qps:,.0f} predictions/s on one shard "
        f"(need >= {MIN_QPS:,.0f})"
    )
