"""Fabric benchmark: multi-process scaling, kill-resilience, durability.

The fabric's promise over the threaded engine is real *process*
parallelism with crash safety: worker processes can die mid-evaluation
and the run still delivers every acknowledged result exactly once.
This benchmark measures both halves:

* **scaling** — the same tuning workload (demo objective, fixed
  simulated per-evaluation latency) at 1/2/4/8 processes; the 1-process
  fabric run is the sequential baseline (same code path, no overlap).
  Full-mode check: >= 3x wall-clock speedup at 4 processes.
* **kill-one-worker** — a 4-process run whose busiest worker is
  hard-terminated mid-run; reports utilization and re-dispatch counts
  and checks the durable queue afterwards: every job completed exactly
  once, zero acknowledged completions lost.

In smoke mode (``REPRO_BENCH_SMOKE=1``) budgets shrink and the speedup
threshold drops to a sanity check — shared CI runners have noisy clocks
and fork startup is a bigger fraction of tiny runs.
"""

from __future__ import annotations

import time

import numpy as np

from repro.apps.synthetic import DemoFunction
from repro.core import TunerOptions
from repro.core.optimizer import SearchOptions
from repro.fabric import DurableJobQueue, FabricOptions, FabricTuner

from harness import FULL, SMOKE, save_results

PROC_COUNTS = [1, 2, 4, 8]
N_EVALS = 32 if FULL else (12 if SMOKE else 20)
SEEDS = list(range(3)) if FULL else [0]
#: simulated seconds each evaluation occupies its worker process
LATENCY_S = 0.03 if SMOKE else 0.08

MIN_SPEEDUP_AT_4 = 1.2 if SMOKE else 3.0
MAX_REGRET_GAP = 0.25


def _tuner_options() -> TunerOptions:
    # keep serial proposal cheap relative to the simulated latency so
    # the measured scaling is evaluation overlap, not proposal time
    return TunerOptions(
        n_initial=3,
        refit_every=4,
        gp_max_fun=40,
        search=SearchOptions(n_candidates=256, local_iters=10),
    )


def _fabric_options(n_procs: int, **kw) -> FabricOptions:
    return FabricOptions(
        n_procs=n_procs,
        batch=min(n_procs, 4),
        base_latency_s=LATENCY_S,
        **kw,
    )


def _run(n_procs: int, seed: int, **fabric_kw):
    app = DemoFunction()
    tuner = FabricTuner(
        app.make_problem(),
        _tuner_options(),
        _fabric_options(n_procs, **fabric_kw),
    )
    t0 = time.perf_counter()
    result = tuner.tune(app.default_task(), N_EVALS, seed=seed)
    wall = time.perf_counter() - t0
    return wall, result, tuner


def test_fabric_scaling():
    rows = []
    walls: dict[int, float] = {}
    bests: dict[int, float] = {}
    for p in PROC_COUNTS:
        run_walls, run_bests, utils = [], [], []
        for seed in SEEDS:
            wall, result, _ = _run(p, seed)
            run_walls.append(wall)
            run_bests.append(result.best_output)
            util = (result.perf or {}).get("gauges", {}).get(
                "fabric_worker_utilization", {}
            )
            utils.append(util.get("last", 0.0))
        walls[p] = float(np.median(run_walls))
        bests[p] = float(np.mean(run_bests))
        rows.append(
            {
                "procs": p,
                "wall_s": walls[p],
                "mean_best": bests[p],
                "mean_utilization": float(np.mean(utils)),
                "speedup": walls[PROC_COUNTS[0]] / walls[p],
            }
        )

    print(f"\nfabric: {N_EVALS} evals x {LATENCY_S * 1e3:.0f} ms latency, "
          f"{len(SEEDS)} seed(s), fork workers")
    print(f"{'procs':>6}  {'wall':>9}  {'speedup':>8}  {'util':>6}  {'mean best':>10}")
    for r in rows:
        print(
            f"{r['procs']:>6}  {r['wall_s']:>8.2f}s  {r['speedup']:>7.2f}x"
            f"  {r['mean_utilization']:>5.0%}  {r['mean_best']:>10.4f}"
        )
    save_results(
        "fabric_scaling",
        {"rows": rows, "n_evals": N_EVALS, "latency_s": LATENCY_S, "seeds": SEEDS},
    )

    speedup_at_4 = walls[1] / walls[4]
    assert speedup_at_4 >= MIN_SPEEDUP_AT_4, (
        f"only {speedup_at_4:.2f}x wall-clock speedup at 4 processes "
        f"(need >= {MIN_SPEEDUP_AT_4}x)"
    )
    regret_gap = bests[4] - bests[1]
    assert regret_gap <= MAX_REGRET_GAP, (
        f"4-process batch tuning lost {regret_gap:.3f} vs sequential "
        f"(allowed {MAX_REGRET_GAP})"
    )


def test_fabric_survives_worker_kill(tmp_path):
    """Kill one busy worker mid-run over a durable queue: the run must
    finish on the survivors with zero acknowledged-job loss — the
    re-dispatched job completes, every job is applied exactly once, and
    the on-disk queue agrees with the delivered history."""
    kill_after = N_EVALS // 3
    killed = []

    def reaper(completed, coordinator):
        if completed == kill_after and not killed:
            busy = coordinator.busy_workers()
            if busy:
                coordinator.kill_worker(busy[0])
                killed.append(busy[0])

    app = DemoFunction()
    tuner = FabricTuner(
        app.make_problem(),
        _tuner_options(),
        _fabric_options(4, data_dir=tmp_path),
        on_progress=reaper,
    )
    t0 = time.perf_counter()
    result = tuner.tune(app.default_task(), N_EVALS, seed=0)
    wall = time.perf_counter() - t0

    gauges = (result.perf or {}).get("gauges", {})
    counters = (result.perf or {}).get("counters", {})
    utilization = gauges.get("fabric_worker_utilization", {}).get("last", 0.0)
    print(f"\nfabric kill-one-worker: {N_EVALS} evals, worker {killed} killed "
          f"after {kill_after} completions, wall {wall:.2f}s")
    print(f"  utilization {utilization:.0%}, "
          f"re-dispatches {tuner._last_redispatches}, "
          f"worker deaths {counters.get('fabric_worker_deaths', 0)}")
    save_results(
        "fabric_kill",
        {
            "n_evals": N_EVALS,
            "kill_after": kill_after,
            "wall_s": wall,
            "utilization": utilization,
            "redispatches": tuner._last_redispatches,
            "worker_deaths": counters.get("fabric_worker_deaths", 0),
        },
    )

    assert len(killed) == 1, "the kill hook never found a busy worker"
    assert result.n_evaluations == N_EVALS
    assert all(not e.failed for e in result.history)
    assert tuner._last_redispatches >= 1
    assert counters.get("fabric_worker_deaths", 0) == 1

    # zero acknowledged-job loss: recover the queue from disk and check
    # it against the delivered run — every job done, exactly once
    queue = DurableJobQueue(tmp_path)
    try:
        assert queue.n_jobs == N_EVALS
        assert queue.n_done == N_EVALS
        assert queue.n_pending == 0
        assert counters.get("fabric_jobs_completed", 0) == N_EVALS
    finally:
        queue.close()


def test_one_process_is_sequential_baseline():
    """The 1-process fabric run used as the baseline really is
    sequential: same trajectory as the synchronous tuner, same seed."""
    from repro.core import Tuner

    app = DemoFunction()
    seq = Tuner(app.make_problem(), _tuner_options()).tune(
        app.default_task(), 8, seed=0
    )
    fab = FabricTuner(
        app.make_problem(), _tuner_options(), FabricOptions(n_procs=1)
    ).tune(app.default_task(), 8, seed=0)
    np.testing.assert_allclose(fab.best_so_far(), seq.best_so_far())
