"""Table I: the TLA algorithm pool of GPTuneCrowd.

Two parts:

* the descriptive check — the pool's inventory and provenance metadata
  must match the paper's Table I exactly, and
* the pool *sweep* — repeats x strategies fanned across a process pool
  (``run_comparison(n_jobs=...)``) with deterministic per-cell seeding.
  The parallel sweep must return exactly the sequential sweep's
  matrices, and running the strategies through a shared
  :class:`repro.tla.SourceModelStore` must fit each source dataset once
  instead of once per strategy.
"""

from __future__ import annotations

import numpy as np

from repro.apps.synthetic import DemoFunction
from repro.core import perf
from repro.tla import STRATEGY_REGISTRY, SourceModelStore, get_strategy, pool_table

from harness import SMOKE, collect_source, run_comparison, save_results

#: (name, first autotuner) rows exactly as printed in the paper's Table I
PAPER_TABLE1 = {
    "Multitask (PS)": "[11]",
    "Multitask (TS)": "GPTuneCrowd",
    "WeightedSum (equal)": "[6]",
    "WeightedSum (dynamic)": "GPTuneCrowd",
    "Stacking": "[12]",
    "Ensemble (proposed)": "GPTuneCrowd",
}

SWEEP_TUNERS = ["weighted-sum-dynamic", "stacking", "multitask-ts"]
N_EVALS = 3 if SMOKE else 5
REPEATS = 2
N_SRC = 15 if SMOKE else 30


def test_table1_pool(benchmark):
    rows = benchmark.pedantic(
        lambda: [get_strategy(k) and r for k, r in zip(
            sorted(STRATEGY_REGISTRY), pool_table()
        )],
        rounds=1,
        iterations=1,
    )
    table = {r["name"]: r["first_autotuner"] for r in pool_table()}
    print("\nTable I — TLA pool")
    for name, prov in table.items():
        print(f"  {name:<24} first autotuner: {prov}")
    save_results("table1", {"pool": pool_table()})

    for name, provenance in PAPER_TABLE1.items():
        assert table.get(name) == provenance, name
    # the two naive ensemble baselines of Sec. V-E are also in the pool
    assert "Ensemble (toggling)" in table and "Ensemble (prob)" in table
    del rows


def _sweep(app, sources, n_jobs):
    return run_comparison(
        app,
        {"t": 1.1},
        sources,
        tuners=SWEEP_TUNERS,
        n_evals=N_EVALS,
        repeats=REPEATS,
        show_perf=False,
        n_jobs=n_jobs,
    )


def test_parallel_sweep_matches_sequential(benchmark):
    """Process-pool fan-out is a pure throughput knob: identical results."""
    app = DemoFunction()
    sources = [
        collect_source(app, {"t": t}, N_SRC, seed=i, label=f"t={t}")
        for i, t in enumerate((0.8, 1.0))
    ]

    seq = _sweep(app, sources, n_jobs=1)
    par = benchmark.pedantic(
        _sweep, args=(app, sources, 2), rounds=1, iterations=1
    )

    assert set(seq) == set(par)
    for key in seq:
        assert np.array_equal(seq[key], par[key], equal_nan=True), key
    save_results(
        "table1_pool_sweep",
        {"tuners": SWEEP_TUNERS, "n_evals": N_EVALS, "repeats": REPEATS,
         "parallel_equals_sequential": True},
    )


def test_shared_store_fits_each_source_once():
    """A pool sweep through one store: 1x source fits, rest are hits."""
    app = DemoFunction()
    sources = [
        collect_source(app, {"t": t}, N_SRC, seed=i, label=f"t={t}")
        for i, t in enumerate((0.8, 1.0))
    ]
    store = SourceModelStore()
    rng = np.random.default_rng(0)
    with perf.collect() as stats:
        for key in SWEEP_TUNERS:
            get_strategy(key).prepare_from_store(store, sources, rng)
    counters = stats.snapshot()["counters"]
    assert counters["tla_source_fits"] == len(sources)
    assert counters["tla_source_cache_hits"] == (len(SWEEP_TUNERS) - 1) * len(sources)
