"""Table I: the TLA algorithm pool of GPTuneCrowd.

A descriptive table — the benchmark verifies the pool's inventory and
provenance metadata match the paper, and times pool instantiation (the
cost of standing up all eight strategies)."""

from __future__ import annotations

from repro.tla import STRATEGY_REGISTRY, get_strategy, pool_table

from harness import save_results

#: (name, first autotuner) rows exactly as printed in the paper's Table I
PAPER_TABLE1 = {
    "Multitask (PS)": "[11]",
    "Multitask (TS)": "GPTuneCrowd",
    "WeightedSum (equal)": "[6]",
    "WeightedSum (dynamic)": "GPTuneCrowd",
    "Stacking": "[12]",
    "Ensemble (proposed)": "GPTuneCrowd",
}


def test_table1_pool(benchmark):
    rows = benchmark.pedantic(
        lambda: [get_strategy(k) and r for k, r in zip(
            sorted(STRATEGY_REGISTRY), pool_table()
        )],
        rounds=1,
        iterations=1,
    )
    table = {r["name"]: r["first_autotuner"] for r in pool_table()}
    print("\nTable I — TLA pool")
    for name, prov in table.items():
        print(f"  {name:<24} first autotuner: {prov}")
    save_results("table1", {"pool": pool_table()})

    for name, provenance in PAPER_TABLE1.items():
        assert table.get(name) == provenance, name
    # the two naive ensemble baselines of Sec. V-E are also in the pool
    assert "Ensemble (toggling)" in table and "Ensemble (prob)" in table
    del rows
