"""Extension: GPTuneBand-style multi-fidelity tuning (Zhu et al. [13]).

Not a paper figure — the paper's package "also contains several other
useful autotuning techniques" including GPTuneBand; this bench exercises
the reproduction's implementation on NIMROD, where fidelity = the number
of simulated time steps.

Comparison at equal cost (in full-evaluation equivalents): the bandit
screens many configurations cheaply and confirms few, versus plain BO
spending every unit on a full evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.apps import NIMROD
from repro.core import Tuner, TunerOptions
from repro.hpc import cori_haswell
from repro.tla import GPTuneBand, MultiFidelityObjective

from harness import FULL, save_results

TASK = {"mx": 5, "my": 7, "lphi": 1}
BUDGET = 8.0  # full-evaluation equivalents
REPEATS = 4 if FULL else 3


def _experiment():
    app = NIMROD(cori_haswell(32))
    out = {"bandit": [], "bo": [], "bandit_screened": []}
    for rep in range(REPEATS):
        obj = MultiFidelityObjective(
            fn=lambda t, c, f: app.fidelity_objective(t, c, f, run=rep),
            space=app.parameter_space(),
            task=TASK,
        )
        band = GPTuneBand(obj, bracket_size=9, n_rungs=3).tune(BUDGET, seed=rep)
        out["bandit"].append(
            band.best_output if band.best_config is not None else np.nan
        )
        out["bandit_screened"].append(
            len({tuple(sorted(c.items())) for c, _, _ in band.evaluations})
        )

        problem = app.make_problem(run=rep)
        res = Tuner(problem, TunerOptions(n_initial=2)).tune(
            TASK, int(BUDGET), seed=rep
        )
        traj = res.best_so_far()
        out["bo"].append(traj[-1] if np.isfinite(traj[-1]) else np.nan)
    return out


def test_extension_gptuneband(benchmark):
    out = benchmark.pedantic(_experiment, rounds=1, iterations=1)
    bandit = float(np.nanmean(out["bandit"]))
    bo = float(np.nanmean(out["bo"]))
    screened = float(np.mean(out["bandit_screened"]))
    print("\nExtension — GPTuneBand vs single-fidelity BO on NIMROD "
          f"(budget {BUDGET:.0f} full evals)")
    print(f"  GPTuneBand best: {bandit:.1f} s  (screened ~{screened:.0f} configs)")
    print(f"  plain BO best:   {bo:.1f} s  ({int(BUDGET)} configs)")
    save_results("extension_gptuneband", dict(out))

    # the bandit must be competitive at equal cost while screening far
    # more configurations
    assert screened > BUDGET
    assert bandit <= bo * 1.25
