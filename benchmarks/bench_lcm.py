"""LCM fit-path benchmark: analytic gradients, cached assembly,
incremental refits.

The LCM refit dominates Multitask(TS) iterations: with
``n_params = Q (d + 2 T) + T`` hyperparameters, every finite-difference
L-BFGS-B gradient costs ``n_params + 1`` full covariance assemblies and
Cholesky factorizations, while the analytic-gradient path
(:meth:`repro.core.lcm.LCM._nll_grad`) pays for exactly one plus an
O(n^3) solve.  This benchmark pins the two guarantees of the fast path:

* at (T=4, n=200, d=8, Q=2) the analytic-gradient MLE is at least 4x
  faster than the finite-difference baseline and reaches an NLL at
  least as good on the same data, and
* absorbing appended target observations through :meth:`LCM.update` is
  much faster than a full non-optimizing refit and yields identical
  predictions (pure amortization, not an approximation).

The MLE protocol gives both modes the *same objective-evaluation
budget*: scipy counts every finite-difference probe against ``maxfun``,
so equal ``maxfun`` means equal work allowance.  The budget is sized so
the analytic path converges well inside it (L-BFGS-B terminates on its
own), while the FD baseline — whose ``n_params + 1``-evaluations-per-
step gradients are also too noisy to ever satisfy the gradient
tolerance — spends the whole allowance and still lands at a slightly
worse optimum.  That is the production trade-off this benchmark pins,
not an artifact of cutting the baseline short: at the seed's default
budget (``max_fun=60``) the FD fit used to complete under two optimizer
steps.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core import LCM, perf

from harness import FULL, SMOKE, save_results

T_TASKS = 4
DIM = 8
Q_LATENT = 2
N_PER_TASK = 50  # n_total = 200
#: shared objective-evaluation budget for both gradient modes (see
#: module docstring); the analytic path converges in ~200 evaluations
EVAL_BUDGET = 2000 if SMOKE else 8000
ITERS = 3 if SMOKE else 20  # warm-up budget for the update benchmark
REPEATS = 1 if SMOKE else (3 if FULL else 2)

#: smoke mode only sanity-checks that analytic gradients win at all
MIN_MLE_SPEEDUP = 1.5 if SMOKE else 4.0
MIN_UPDATE_SPEEDUP = 1.2 if SMOKE else 3.0


def _datasets(seed: int = 0) -> list[tuple[np.ndarray, np.ndarray]]:
    """Four correlated tasks sharing a landscape, shifted and rescaled."""
    rng = np.random.default_rng(seed)
    w = rng.standard_normal(DIM)
    sets = []
    for i in range(T_TASKS):
        X = rng.random((N_PER_TASK, DIM))
        y = (
            np.sin(3.0 * X @ w / DIM + 0.3 * i)
            + 0.5 * (X[:, 0] - 0.5) ** 2
            + 0.2 * i
            + 0.02 * rng.standard_normal(N_PER_TASK)
        )
        sets.append((X, y))
    return sets


def _fit_once(mode: str, sets) -> tuple[float, float, dict]:
    """One MLE fit; returns (mle_seconds, final_nll, counters)."""
    model = LCM(
        T_TASKS, DIM, n_latent=Q_LATENT, gradient=mode, max_fun=EVAL_BUDGET, seed=0
    )
    with perf.collect() as stats:
        model.fit(sets)
    snap = stats.snapshot()
    return (
        snap["timers"]["lcm_mle"]["total_s"],
        float(model.last_nll_),
        snap["counters"],
    )


def test_lcm_mle_speedup():
    """Analytic-gradient MLE >= 4x faster than FD at equal eval budget."""
    sets = _datasets()
    rows = {}
    for mode in ("fd", "analytic"):
        best_t, nll, counters = np.inf, np.nan, {}
        for _ in range(REPEATS):
            t, nll, counters = _fit_once(mode, sets)
            best_t = min(best_t, t)
        rows[mode] = {"mle_s": best_t, "nll": nll, "counters": counters}

    speedup = rows["fd"]["mle_s"] / rows["analytic"]["mle_s"]
    print(
        f"\nLCM MLE at T={T_TASKS}, n={T_TASKS * N_PER_TASK}, d={DIM}, "
        f"Q={Q_LATENT} (budget: {EVAL_BUDGET} objective evaluations):"
    )
    for mode in ("fd", "analytic"):
        r = rows[mode]
        print(f"  {mode:<9} {1e3 * r['mle_s']:9.1f} ms   nll {r['nll']:.3f}")
    print(f"  speedup  {speedup:.1f}x")
    save_results(
        "lcm_mle",
        {
            "n_tasks": T_TASKS,
            "dim": DIM,
            "n_latent": Q_LATENT,
            "n_total": T_TASKS * N_PER_TASK,
            "eval_budget": EVAL_BUDGET,
            "fd_mle_s": rows["fd"]["mle_s"],
            "analytic_mle_s": rows["analytic"]["mle_s"],
            "fd_nll": rows["fd"]["nll"],
            "analytic_nll": rows["analytic"]["nll"],
            "speedup": speedup,
            "lcm_grad_evals": rows["analytic"]["counters"].get("lcm_grad_evals", 0),
        },
    )
    assert rows["analytic"]["counters"].get("lcm_grad_evals", 0) > 0
    assert speedup >= MIN_MLE_SPEEDUP, (
        f"analytic-gradient MLE only {speedup:.1f}x faster"
    )
    tol = 1e-6 * max(1.0, abs(rows["fd"]["nll"]))
    assert rows["analytic"]["nll"] <= rows["fd"]["nll"] + tol, (
        f"analytic NLL {rows['analytic']['nll']:.4f} worse than "
        f"FD baseline {rows['fd']['nll']:.4f}"
    )


def test_lcm_incremental_update_speedup():
    """Appending target rows via update() beats the full refit, exactly."""
    sets = _datasets()
    base = LCM(T_TASKS, DIM, n_latent=Q_LATENT, max_fun=ITERS, seed=0).fit(sets)
    rng = np.random.default_rng(7)
    X_app = rng.random((1, DIM))
    y_app = np.asarray([float(np.mean(sets[-1][1]))])
    grown = [
        (X, y) if i < T_TASKS - 1 else (np.vstack([X, X_app]), np.concatenate([y, y_app]))
        for i, (X, y) in enumerate(sets)
    ]

    def time_update():
        best = np.inf
        for _ in range(max(REPEATS, 3)):
            m = LCM(T_TASKS, DIM, n_latent=Q_LATENT, optimize=False)
            m.warm_start_from(base)
            m.fit(sets)
            t0 = time.perf_counter()
            m.update(T_TASKS - 1, X_app, y_app)
            best = min(best, time.perf_counter() - t0)
        return m, best

    def time_refit():
        best = np.inf
        for _ in range(max(REPEATS, 3)):
            m = LCM(T_TASKS, DIM, n_latent=Q_LATENT, optimize=False)
            m.warm_start_from(base)
            t0 = time.perf_counter()
            m.fit(grown)
            best = min(best, time.perf_counter() - t0)
        return m, best

    inc, t_inc = time_update()
    ref, t_ref = time_refit()
    speedup = t_ref / t_inc
    print(
        f"\nLCM append-one-row at n={T_TASKS * N_PER_TASK}: "
        f"full refit {1e3 * t_ref:.2f} ms, update {1e3 * t_inc:.2f} ms "
        f"({speedup:.1f}x)"
    )
    save_results(
        "lcm_incremental",
        {"full_refit_ms": 1e3 * t_ref, "update_ms": 1e3 * t_inc, "speedup": speedup},
    )

    Xq = np.random.default_rng(11).random((16, DIM))
    for task in range(T_TASKS):
        m1, s1 = inc.predict(task, Xq)
        m2, s2 = ref.predict(task, Xq)
        np.testing.assert_allclose(m1, m2, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose(s1, s2, rtol=1e-9, atol=1e-9)
    assert speedup >= MIN_UPDATE_SPEEDUP
