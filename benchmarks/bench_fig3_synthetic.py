"""Figure 3: TLA-algorithm comparison on the synthetic functions.

Paper setup: 9 tuners (NoTLA, the 5 TLA algorithms, 3 ensembles) on the
demo function — source t=0.8, targets t=1.0 (a) and t=1.2 (b) — and the
generalized Branin function with randomly drawn source/target tasks, one
source (c, d) or three sources (e, f).  200 random samples per source
task, 20 function evaluations, 5 repeated runs.

Paper conclusions to reproduce in shape (Sec. VI-A):
(1) TLA algorithms beat NoTLA by a significant margin,
(2) Multitask(TS) > Multitask(PS) and WeightedSum(dynamic) >
    WeightedSum(equal) overall,
(3) no single TLA algorithm wins everywhere,
(4) Ensemble(proposed) is consistently near the best.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.synthetic import BraninFunction, DemoFunction

from harness import (
    FIG3_TUNERS,
    FULL,
    collect_source,
    mean_trajectories,
    render_trajectories,
    run_comparison,
    save_results,
    value_at,
)

N_SOURCE = 200 if FULL else 100
N_EVALS = 20 if FULL else 12
REPEATS = 5 if FULL else 3
MT_KW = {}  # strategy kwargs shared by all scenarios

DEMO_SCENARIOS = {
    "fig3a": ({"t": 0.8}, {"t": 1.0}),
    "fig3b": ({"t": 0.8}, {"t": 1.2}),
}


def _demo_experiment(scenario: str):
    src_task, tgt_task = DEMO_SCENARIOS[scenario]
    app = DemoFunction()
    src = collect_source(app, src_task, N_SOURCE, seed=0, label=f"t={src_task['t']}")
    return run_comparison(
        app,
        tgt_task,
        [src],
        tuners=FIG3_TUNERS,
        n_evals=N_EVALS,
        repeats=REPEATS,
        strategy_kwargs=MT_KW,
    )


def _branin_experiment(n_sources: int, seed: int):
    app = BraninFunction()
    rng = np.random.default_rng(seed)
    tasks = [app.input_space().sample(rng) for _ in range(n_sources + 1)]
    sources = [
        collect_source(app, t, N_SOURCE, seed=10 + i, label=f"S{i + 1}")
        for i, t in enumerate(tasks[:-1])
    ]
    target = tasks[-1]
    return run_comparison(
        app,
        target,
        sources,
        tuners=FIG3_TUNERS,
        n_evals=N_EVALS,
        repeats=REPEATS,
        strategy_kwargs=MT_KW,
    )


@pytest.mark.parametrize("scenario", sorted(DEMO_SCENARIOS))
def test_fig3_demo(benchmark, scenario):
    results = benchmark.pedantic(
        _demo_experiment, args=(scenario,), rounds=1, iterations=1
    )
    print()
    print(render_trajectories(f"Figure 3 ({scenario[-1]}) — demo function",
                              results, marks=[min(9, N_EVALS - 1), N_EVALS - 1]))
    save_results(scenario, {k: v for k, v in results.items()})

    means = mean_trajectories(results)
    last = N_EVALS - 1
    # conclusion (1): the best TLA algorithm clearly beats NoTLA
    tla_best = min(means[k][last] for k in FIG3_TUNERS if k != "notla")
    assert tla_best <= means["notla"][last] + 1e-9
    # conclusion (4): the proposed ensemble lands near the best.  The
    # paper calls scenario (b) the ensemble's worst case, where the claim
    # weakens to "still beats NoTLA and the weighted-sum/stacking family".
    ens = means["ensemble-proposed"][last]
    spread = max(m[last] for m in means.values()) - min(
        m[last] for m in means.values()
    )
    if scenario == "fig3b":
        assert ens <= means["notla"][last] + 1e-9
        assert ens <= max(
            means["weighted-sum-equal"][last], means["stacking"][last]
        ) + 0.25 * max(spread, 1e-9)
    else:
        assert ens <= tla_best + 0.5 * max(spread, 1e-9)


@pytest.mark.parametrize(
    "panel,n_sources,seed",
    [("fig3c", 1, 1), ("fig3d", 1, 2), ("fig3e", 3, 3), ("fig3f", 3, 4)],
)
def test_fig3_branin(benchmark, panel, n_sources, seed):
    results = benchmark.pedantic(
        _branin_experiment, args=(n_sources, seed), rounds=1, iterations=1
    )
    print()
    print(
        render_trajectories(
            f"Figure 3 ({panel[-1]}) — Branin, {n_sources} source(s)",
            results,
            marks=[min(9, N_EVALS - 1), N_EVALS - 1],
        )
    )
    save_results(panel, {k: v for k, v in results.items()})

    means = mean_trajectories(results)
    last = N_EVALS - 1
    tla_best = min(means[k][last] for k in FIG3_TUNERS if k != "notla")
    assert tla_best <= means["notla"][last] + 1e-9


def test_fig3_paper_conclusions(benchmark):
    """Aggregate check of conclusions (2)-(4) across demo scenarios."""

    def experiment():
        agg = {}
        for scenario in sorted(DEMO_SCENARIOS):
            agg[scenario] = _demo_experiment(scenario)
        return agg

    agg = benchmark.pedantic(experiment, rounds=1, iterations=1)
    last = N_EVALS - 1
    ts_wins = ps_wins = dyn_wins = eq_wins = 0
    for results in agg.values():
        if value_at(results, "multitask-ts", last) <= value_at(
            results, "multitask-ps", last
        ):
            ts_wins += 1
        else:
            ps_wins += 1
        if value_at(results, "weighted-sum-dynamic", last) <= value_at(
            results, "weighted-sum-equal", last
        ):
            dyn_wins += 1
        else:
            eq_wins += 1
    print(
        f"\nconclusion (2): Multitask(TS) wins {ts_wins}/{ts_wins + ps_wins}; "
        f"WeightedSum(dynamic) wins {dyn_wins}/{dyn_wins + eq_wins}"
    )
    # the improved algorithms should win at least half the scenarios
    assert ts_wins >= ps_wins or dyn_wins >= eq_wins
