"""Shared experiment harness for the paper-reproduction benchmarks.

Every benchmark module regenerates one table or figure of the paper.
This harness provides the common machinery:

* source-dataset collection (random configurations, successes only — the
  paper's protocol, Sec. VI-B),
* the multi-algorithm tuning comparison (NoTLA + the TLA pool) with
  repeated runs and best-so-far aggregation,
* paper-style text rendering of trajectory tables and sensitivity tables,
* JSON result dumps under ``benchmarks/results/`` (consumed when updating
  EXPERIMENTS.md).

Scale control: benchmarks default to a laptop-fast configuration
(reduced source sizes / repeats).  Set ``REPRO_BENCH_FULL=1`` to run at
the paper's full scale (e.g. 500 NIMROD source samples, 5 repeats).
"""

from __future__ import annotations

import json
import math
import os
from pathlib import Path
from typing import Any, Mapping, Sequence

import numpy as np

from repro.apps.base import HPCApplication
from repro.core import TaskData, Tuner, TunerOptions
from repro.core import perf as _perf_module
from repro.core.tuner import TuningResult
from repro.tla import TransferTuner, get_strategy

FULL = os.environ.get("REPRO_BENCH_FULL", "0") == "1"

#: CI smoke mode: tiny budgets, perf assertions loosened to sanity checks
#: (shared runners have noisy clocks; the full thresholds run locally)
SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "0") == "1" and not FULL

RESULTS_DIR = Path(__file__).parent / "results"

#: the tuner lineup of the paper's TLA figures
PAPER_TUNERS = [
    "notla",
    "multitask-ps",
    "multitask-ts",
    "weighted-sum-equal",
    "weighted-sum-dynamic",
    "stacking",
    "ensemble-proposed",
]

#: the full Fig. 3 lineup adds the two naive ensembles
FIG3_TUNERS = PAPER_TUNERS + ["ensemble-toggling", "ensemble-prob"]

DISPLAY_NAMES = {
    "notla": "NoTLA",
    "multitask-ps": "Multitask(PS)",
    "multitask-ts": "Multitask(TS)",
    "weighted-sum-equal": "WeightedSum(equal)",
    "weighted-sum-dynamic": "WeightedSum(dynamic)",
    "stacking": "Stacking",
    "ensemble-proposed": "Ensemble(proposed)",
    "ensemble-toggling": "Ensemble(toggling)",
    "ensemble-prob": "Ensemble(prob)",
}


def collect_source(
    app: HPCApplication,
    task: Mapping[str, Any],
    n: int,
    *,
    seed: int = 0,
    run: int = 10_000,
    label: str = "",
) -> TaskData:
    """Random-configuration source dataset (successful evaluations only)."""
    rng = np.random.default_rng(seed)
    space = app.parameter_space()
    configs, ys, failed = [], [], []
    attempts = 0
    while len(ys) < n:
        attempts += 1
        if attempts > 60 * n:
            raise RuntimeError(
                f"could not collect {n} successes for {dict(task)} "
                f"({len(ys)} after {attempts} attempts)"
            )
        cfg = space.sample(rng)
        y = app.objective(task, cfg, run=run)
        if y is not None:
            configs.append(cfg)
            ys.append(y)
        else:
            failed.append(cfg)
    return TaskData(
        dict(task),
        space.to_unit_array(configs),
        np.asarray(ys),
        label=label,
        X_failed=space.to_unit_array(failed),
    )


def make_tuner(
    key: str, problem, sources: Sequence[TaskData], **strategy_kwargs
) -> Tuner:
    """Instantiate one lineup entry (``notla`` or a TLA registry key)."""
    if key == "notla":
        return Tuner(problem, TunerOptions(n_initial=2))
    strategy = get_strategy(key, **strategy_kwargs)
    return TransferTuner(problem, strategy, list(sources))


def _run_cell(
    app: HPCApplication,
    task: Mapping[str, Any],
    sources: Sequence[TaskData],
    key: str,
    n_evals: int,
    rep: int,
    strategy_kwargs: Mapping[str, Any],
) -> tuple[str, int, list[float], Any]:
    """One (tuner, repeat) cell; module-level so process pools can ship it.

    Seeding is a pure function of the cell coordinates (``seed=rep``), so
    the sweep's results are independent of worker scheduling: a parallel
    run returns exactly what the sequential loop returns.
    """
    problem = app.make_problem(run=rep)
    tuner = make_tuner(key, problem, sources, **strategy_kwargs)
    result: TuningResult = tuner.tune(task, n_evals, seed=rep)
    return key, rep, list(result.best_so_far()), result.perf


def run_comparison(
    app: HPCApplication,
    task: Mapping[str, Any],
    sources: Sequence[TaskData],
    *,
    tuners: Sequence[str],
    n_evals: int,
    repeats: int,
    strategy_kwargs: Mapping[str, Any] | None = None,
    show_perf: bool = True,
    n_jobs: int = 1,
) -> dict[str, np.ndarray]:
    """Run every tuner ``repeats`` times; returns best-so-far matrices.

    Result arrays have shape ``(repeats, n_evals)`` with NaN before the
    first success of a run (the paper's "do not draw points" convention
    for runs with failures, Fig. 5(c)).  With ``show_perf`` each tuner's
    aggregated :mod:`repro.core.perf` counters/timers are printed, so
    every benchmark doubles as a hot-path profile.

    ``n_jobs > 1`` fans the repeats x strategies cells across a process
    pool.  Each cell is seeded by its coordinates alone, so parallel and
    sequential runs produce identical matrices (pinned by the Table-I
    pool benchmark).  A ``SourceModelStore`` in ``strategy_kwargs`` is
    pickled per worker: sharing amortizes fits *within* each cell (e.g.
    across an ensemble's members), not across processes.
    """
    kwargs = dict(strategy_kwargs or {})
    cells = [(key, rep) for key in tuners for rep in range(repeats)]
    rows: dict[str, list] = {key: [None] * repeats for key in tuners}
    perfs: dict[str, list] = {key: [] for key in tuners}

    if n_jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=n_jobs) as pool:
            futures = [
                pool.submit(_run_cell, app, task, sources, key, n_evals, rep, kwargs)
                for key, rep in cells
            ]
            results = [f.result() for f in futures]
    else:
        results = [
            _run_cell(app, task, sources, key, n_evals, rep, kwargs)
            for key, rep in cells
        ]

    for key, rep, best, perf in results:
        rows[key][rep] = best
        if perf is not None:
            perfs[key].append(perf)
            if n_jobs > 1:
                # subprocess cells record into *their* collector stacks;
                # fold the returned snapshots into ours so process-pool
                # sweeps lose no counters (perf.merge, the same path the
                # fabric coordinator uses for worker processes)
                _perf_module.merge(perf)

    out: dict[str, np.ndarray] = {}
    for key in tuners:
        out[key] = np.asarray(rows[key], dtype=float)
        if show_perf and perfs[key]:
            print(f"[perf] {DISPLAY_NAMES.get(key, key)} ({repeats} runs)")
            print(format_perf(aggregate_perf(perfs[key])))
    return out


def aggregate_perf(perfs: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Sum :meth:`PerfStats.snapshot` dicts across repeated runs."""
    counters: dict[str, int] = {}
    timers: dict[str, dict[str, float]] = {}
    for p in perfs:
        for name, v in p.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + int(v)
        for name, t in p.get("timers", {}).items():
            slot = timers.setdefault(name, {"total_s": 0.0, "count": 0})
            slot["total_s"] += float(t["total_s"])
            slot["count"] += int(t["count"])
    for t in timers.values():
        t["mean_ms"] = 1e3 * t["total_s"] / t["count"] if t["count"] else 0.0
    return {"counters": counters, "timers": timers}


def format_perf(perf: Mapping[str, Any], indent: str = "  ") -> str:
    """Compact rendering of an aggregated perf snapshot."""
    lines = []
    for name in sorted(perf.get("timers", {})):
        t = perf["timers"][name]
        lines.append(
            f"{indent}{name:<28} {t['total_s'] * 1e3:9.1f} ms"
            f"  ({t['count']} calls, {t['mean_ms']:.3f} ms avg)"
        )
    for name in sorted(perf.get("counters", {})):
        lines.append(f"{indent}{name:<28} {perf['counters'][name]:9d}")
    return "\n".join(lines)


def mean_trajectories(results: Mapping[str, np.ndarray]) -> dict[str, np.ndarray]:
    """Mean best-so-far per evaluation, ignoring not-yet-successful runs."""
    import warnings

    means = {}
    for key, mat in results.items():
        with warnings.catch_warnings():
            # all-NaN columns (no run has succeeded yet) mean "no point
            # drawn", exactly the paper's convention — not an error
            warnings.simplefilter("ignore", category=RuntimeWarning)
            means[key] = np.nanmean(mat, axis=0)
    return means


def value_at(results: Mapping[str, np.ndarray], key: str, eval_index: int) -> float:
    """Mean best-so-far of a tuner after ``eval_index + 1`` evaluations."""
    return float(mean_trajectories(results)[key][eval_index])


def speedup_over_notla(
    results: Mapping[str, np.ndarray], key: str, eval_index: int
) -> float:
    """The paper's headline metric: NoTLA runtime / tuner runtime at the
    given evaluation count (``> 1`` means the tuner wins)."""
    base = value_at(results, "notla", eval_index)
    val = value_at(results, key, eval_index)
    if not math.isfinite(val) or val <= 0:
        return float("nan")
    return base / val


def render_trajectories(
    title: str, results: Mapping[str, np.ndarray], *, marks: Sequence[int] = ()
) -> str:
    """Paper-style series table: one row per tuner, one column per eval."""
    means = mean_trajectories(results)
    n_evals = len(next(iter(means.values())))
    cols = list(range(0, n_evals, max(n_evals // 10, 1)))
    if n_evals - 1 not in cols:
        cols.append(n_evals - 1)
    lines = [title, "=" * len(title)]
    header = f"{'tuner':<22}" + "".join(f"  @{c + 1:<6}" for c in cols)
    lines.append(header)
    lines.append("-" * len(header))
    for key, mean in means.items():
        cells = "".join(
            f"  {mean[c]:<7.4g}" if math.isfinite(mean[c]) else "  --     "
            for c in cols
        )
        lines.append(f"{DISPLAY_NAMES.get(key, key):<22}{cells}")
    for m in marks:
        best = min(
            (k for k in means if math.isfinite(means[k][m])),
            key=lambda k: means[k][m],
            default=None,
        )
        if best is not None and "notla" in means:
            lines.append(
                f"@ {m + 1} evaluations: best = {DISPLAY_NAMES.get(best, best)} "
                f"({means[best][m]:.4g}); NoTLA = {means['notla'][m]:.4g}; "
                f"speedup {speedup_over_notla(results, best, m):.2f}x"
            )
    return "\n".join(lines)


def save_results(name: str, payload: Mapping[str, Any]) -> Path:
    """Dump a JSON result file for EXPERIMENTS.md bookkeeping."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(_jsonable(payload), indent=1, sort_keys=True))
    return path


def _jsonable(obj: Any) -> Any:
    if isinstance(obj, Mapping):
        return {str(k): _jsonable(v) for k, v in obj.items()}
    if isinstance(obj, np.ndarray):
        return [_jsonable(v) for v in obj.tolist()]
    if isinstance(obj, (list, tuple)):
        return [_jsonable(v) for v in obj]
    if isinstance(obj, (np.floating, float)):
        v = float(obj)
        return None if not math.isfinite(v) else v
    if isinstance(obj, np.integer):
        return int(obj)
    return obj
