"""Sobol' low-discrepancy sequence generator (system S16).

A from-scratch digital-sequence implementation replacing SALib's sampler.
Direction numbers follow the classic construction: dimension 1 uses the
van der Corput sequence in base 2; higher dimensions use primitive
polynomials over GF(2) with initial direction integers in the style of
Joe & Kuo.  The generator supports up to :data:`MAX_DIM` dimensions and
uses the Antonov–Saleev Gray-code ordering, so generating ``n`` points
costs ``O(n * dim)``.

Correctness does not hinge on matching any particular published table:
any odd initial integers ``m_i < 2^i`` paired with a primitive polynomial
yield a valid (t, s)-sequence in base 2.  The property tests in
``tests/sensitivity/test_sobol_sequence.py`` verify the defining digital
net properties (dyadic stratification, balance) and compare discrepancy
against plain Monte Carlo.
"""

from __future__ import annotations

import numpy as np

__all__ = ["SobolSequence", "sobol_sample", "MAX_DIM", "N_BITS"]

#: number of output bits per coordinate (points are multiples of 2**-N_BITS)
N_BITS = 30

# (degree s, primitive-polynomial coefficient bits a, initial m values).
# ``a`` encodes the middle coefficients of a degree-s primitive polynomial
# over GF(2): x^s + a_1 x^{s-1} + ... + a_{s-1} x + 1.  The m values are
# odd and m_i < 2^i as the construction requires.
_DIRECTION_TABLE: list[tuple[int, int, list[int]]] = [
    (1, 0, [1]),
    (2, 1, [1, 3]),
    (3, 1, [1, 3, 1]),
    (3, 2, [1, 1, 1]),
    (4, 1, [1, 1, 3, 3]),
    (4, 4, [1, 3, 5, 13]),
    (5, 2, [1, 1, 5, 5, 17]),
    (5, 4, [1, 1, 5, 5, 5]),
    (5, 7, [1, 1, 7, 11, 19]),
    (5, 11, [1, 1, 5, 1, 1]),
    (5, 13, [1, 1, 1, 3, 11]),
    (5, 14, [1, 3, 5, 5, 31]),
    (6, 1, [1, 3, 3, 9, 7, 49]),
    (6, 13, [1, 1, 1, 15, 21, 21]),
    (6, 16, [1, 3, 1, 13, 27, 49]),
    (6, 19, [1, 1, 1, 15, 7, 5]),
    (6, 22, [1, 3, 1, 15, 13, 25]),
    (6, 25, [1, 1, 5, 5, 19, 61]),
    (7, 1, [1, 3, 7, 11, 23, 15, 103]),
    (7, 4, [1, 3, 7, 13, 13, 15, 69]),
    (7, 7, [1, 1, 3, 13, 7, 35, 63]),
    (7, 8, [1, 3, 5, 9, 1, 25, 53]),
    (7, 14, [1, 3, 1, 13, 9, 35, 107]),
    (7, 19, [1, 1, 1, 9, 23, 13, 103]),
    (7, 21, [1, 3, 3, 11, 27, 31, 35]),
    (7, 28, [1, 1, 7, 7, 17, 1, 19]),
    (7, 31, [1, 3, 7, 9, 31, 15, 57]),
    (7, 32, [1, 1, 3, 5, 11, 3, 117]),
    (7, 37, [1, 3, 1, 1, 21, 19, 83]),
    (7, 41, [1, 1, 5, 15, 11, 49, 29]),
    (7, 42, [1, 3, 5, 15, 17, 19, 97]),
    (7, 50, [1, 1, 7, 5, 9, 51, 105]),
    (7, 55, [1, 3, 7, 1, 21, 9, 7]),
    (7, 56, [1, 1, 1, 11, 19, 45, 113]),
    (7, 59, [1, 3, 3, 5, 23, 53, 29]),
    (7, 62, [1, 1, 7, 15, 5, 27, 91]),
]

#: maximum supported dimensionality (first dim is van der Corput)
MAX_DIM = len(_DIRECTION_TABLE) + 1


class SobolSequence:
    """Stateful Sobol' sequence over ``[0, 1)^dim``.

    Parameters
    ----------
    dim:
        Number of dimensions, ``1 <= dim <= MAX_DIM``.
    skip:
        Number of leading points to discard.  Skipping the initial point
        (the origin) is conventional for quasi-Monte Carlo integration;
        the default keeps it so the digital-net property tests see the
        full net.
    scramble:
        Apply a random digital shift (XOR with a fixed random integer per
        dimension).  A digital shift preserves the net structure while
        decorrelating repeated analyses; used by the bootstrap confidence
        intervals in :mod:`repro.sensitivity.sobol`.
    seed:
        RNG seed for the digital shift (ignored unless ``scramble``).
    """

    def __init__(
        self,
        dim: int,
        *,
        skip: int = 0,
        scramble: bool = False,
        seed: int | None = None,
    ) -> None:
        if not 1 <= dim <= MAX_DIM:
            raise ValueError(f"dim must be in [1, {MAX_DIM}], got {dim}")
        self.dim = dim
        self._v = _direction_vectors(dim)  # (dim, N_BITS) uint64
        self._x = np.zeros(dim, dtype=np.uint64)  # current Gray-code state
        self._count = 0
        if scramble:
            rng = np.random.default_rng(seed)
            self._shift = rng.integers(0, 1 << N_BITS, size=dim, dtype=np.uint64)
        else:
            self._shift = np.zeros(dim, dtype=np.uint64)
        if skip:
            self.generate(skip)

    def generate(self, n: int) -> np.ndarray:
        """The next ``n`` points as an ``(n, dim)`` float array."""
        if n < 0:
            raise ValueError("n must be non-negative")
        out = np.empty((n, self.dim), dtype=np.uint64)
        x = self._x
        for i in range(n):
            if self._count == 0:
                # the first point of the sequence is the all-zeros point
                out[i] = x
            else:
                c = _lowest_zero_bit(self._count - 1)
                x = x ^ self._v[:, c]
                out[i] = x
            self._count += 1
        self._x = x
        shifted = out ^ self._shift
        return shifted.astype(np.float64) / float(1 << N_BITS)

    def reset(self) -> None:
        """Rewind to the start of the sequence (keeps the digital shift)."""
        self._x = np.zeros(self.dim, dtype=np.uint64)
        self._count = 0


def sobol_sample(
    n: int, dim: int, *, skip: int = 0, scramble: bool = False, seed: int | None = None
) -> np.ndarray:
    """Convenience wrapper: the first ``n`` Sobol' points in ``dim`` dims."""
    return SobolSequence(dim, skip=skip, scramble=scramble, seed=seed).generate(n)


def _lowest_zero_bit(k: int) -> int:
    """Index of the lowest zero bit of ``k`` (Antonov–Saleev Gray-code step)."""
    c = 0
    while k & 1:
        k >>= 1
        c += 1
    return c


def _direction_vectors(dim: int) -> np.ndarray:
    """Direction integers ``V[j, c] = v_{c+1}`` scaled to N_BITS bits."""
    V = np.zeros((dim, N_BITS), dtype=np.uint64)
    # dimension 1: van der Corput, v_k = 2^(N_BITS - k)
    for c in range(N_BITS):
        V[0, c] = np.uint64(1) << np.uint64(N_BITS - 1 - c)
    for j in range(1, dim):
        s, a, m = _DIRECTION_TABLE[j - 1]
        v = np.zeros(N_BITS, dtype=np.uint64)
        for c in range(min(s, N_BITS)):
            v[c] = np.uint64(m[c]) << np.uint64(N_BITS - 1 - c)
        for c in range(s, N_BITS):
            acc = v[c - s] ^ (v[c - s] >> np.uint64(s))
            for k in range(1, s):
                if (a >> (s - 1 - k)) & 1:
                    acc ^= v[c - k]
            v[c] = acc
        V[j] = v
    return V
