"""Sobol' sensitivity analysis (systems S16-S19; SALib substitute).

From-scratch implementations of the Sobol' sequence, Saltelli sampling,
first-order/total-effect index estimation with bootstrap confidence
intervals, and the surrogate-based analyzer + search-space reduction that
power the paper's Tables IV-V and Figures 6-7.
"""

from .analyzer import SensitivityAnalyzer, SensitivityReport, reduce_space
from .saltelli import SaltelliDesign, saltelli_sample
from .sobol import SobolIndices, sobol_analyze_function, sobol_indices
from .sobol_sequence import MAX_DIM, N_BITS, SobolSequence, sobol_sample

__all__ = [
    "MAX_DIM",
    "N_BITS",
    "SaltelliDesign",
    "SensitivityAnalyzer",
    "SensitivityReport",
    "SobolIndices",
    "SobolSequence",
    "reduce_space",
    "saltelli_sample",
    "sobol_analyze_function",
    "sobol_indices",
    "sobol_sample",
]
