"""Variance-based Sobol' sensitivity indices (system S18; SALib substitute).

Implements the estimators GPTuneCrowd's ``QuerySensitivityAnalysis``
reports (paper Sec. IV-B, Tables IV and V):

* first-order index ``S1_i`` — the fraction of output variance explained
  by varying parameter ``X_i`` alone (Saltelli 2010 estimator),
* total-effect index ``ST_i`` — ``X_i``'s total contribution including
  all interactions (Jansen 1999 estimator),

plus bootstrap confidence intervals (the ``S1_conf`` / ``ST_conf``
columns of Table V), computed by resampling base-sample rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .saltelli import SaltelliDesign, saltelli_sample

__all__ = ["SobolIndices", "sobol_indices", "sobol_analyze_function"]

_Z95 = 1.959963984540054  # two-sided 95% normal quantile


@dataclass
class SobolIndices:
    """Sensitivity-analysis result for ``dim`` parameters.

    ``S1``/``ST`` are the index estimates; ``S1_conf``/``ST_conf`` are
    95% confidence half-widths from bootstrap resampling.  ``names`` align
    with the analyzed space's parameter order.
    """

    names: list[str]
    S1: np.ndarray
    ST: np.ndarray
    S1_conf: np.ndarray
    ST_conf: np.ndarray
    variance: float = 0.0
    n_base: int = 0

    def ranking(self, by: str = "ST") -> list[str]:
        """Parameter names sorted most-sensitive first."""
        vals = {"S1": self.S1, "ST": self.ST}[by]
        order = np.argsort(vals)[::-1]
        return [self.names[i] for i in order]

    def as_rows(self) -> list[dict[str, float | str]]:
        """Table rows matching the paper's Table IV/V layout."""
        return [
            {
                "parameter": n,
                "S1": round(float(s1), 4),
                "S1_conf": round(float(s1c), 4),
                "ST": round(float(st), 4),
                "ST_conf": round(float(stc), 4),
            }
            for n, s1, s1c, st, stc in zip(
                self.names, self.S1, self.S1_conf, self.ST, self.ST_conf
            )
        ]

    def select(
        self, s1_threshold: float = 0.05, st_threshold: float = 0.2
    ) -> list[str]:
        """Parameters deemed sensitive: high S1 *or* high ST.

        Mirrors the paper's reduction rule-of-thumb: Table V keeps
        parameters with S1 >= 0.05 or ST well above noise, dropping those
        with both indices near zero.
        """
        keep = (self.S1 >= s1_threshold) | (self.ST >= st_threshold)
        return [n for n, k in zip(self.names, keep) if k]


def sobol_indices(
    design: SaltelliDesign,
    values: np.ndarray,
    *,
    names: Sequence[str] | None = None,
    n_bootstrap: int = 100,
    seed: int | None = None,
) -> SobolIndices:
    """Estimate Sobol' indices from model outputs on a Saltelli design.

    ``values`` must be the outputs for :meth:`SaltelliDesign.stacked`
    rows, in order.
    """
    f_A, f_B, f_AB = design.split(values)
    names = list(names) if names is not None else [f"x{i}" for i in range(design.dim)]
    if len(names) != design.dim:
        raise ValueError(f"need {design.dim} names, got {len(names)}")

    S1, ST, var = _estimate(f_A, f_B, f_AB)

    rng = np.random.default_rng(seed)
    n = design.n_base
    if n_bootstrap > 0 and n >= 4:
        # one (n_bootstrap, n) index matrix + one batched estimate instead
        # of n_bootstrap Python-level iterations; the C-order fill of
        # Generator.integers draws the same stream as that many sequential
        # size-n calls, so the resampled rows are identical to the loop
        idx = rng.integers(0, n, size=(n_bootstrap, n))
        s1_bs, st_bs = _estimate_batch(f_A[idx], f_B[idx], f_AB[:, idx])
        S1_conf = _Z95 * np.std(s1_bs, axis=0, ddof=1)
        ST_conf = _Z95 * np.std(st_bs, axis=0, ddof=1)
    else:
        S1_conf = np.zeros(design.dim)
        ST_conf = np.zeros(design.dim)

    return SobolIndices(
        names=names,
        S1=S1,
        ST=ST,
        S1_conf=S1_conf,
        ST_conf=ST_conf,
        variance=float(var),
        n_base=n,
    )


def _estimate_batch(f_A, f_B, f_AB):
    """Batched bootstrap replicates of :func:`_estimate`.

    ``f_A``/``f_B`` are ``(B, n)`` resampled outputs, ``f_AB`` is
    ``(dim, B, n)``.  Returns ``(S1, ST)`` of shape ``(B, dim)``; rows
    whose resampled variance is (near-)zero get zero indices, matching
    the scalar estimator's guard.
    """
    all_f = np.concatenate([f_A, f_B], axis=1)  # (B, 2n)
    var = np.var(all_f, axis=1)  # (B,)
    S1 = np.mean(f_B[None, :, :] * (f_AB - f_A[None, :, :]), axis=2)  # (dim, B)
    ST = 0.5 * np.mean((f_A[None, :, :] - f_AB) ** 2, axis=2)
    degenerate = var < 1e-300
    safe = np.where(degenerate, 1.0, var)
    S1 = np.where(degenerate[None, :], 0.0, S1 / safe[None, :])
    ST = np.where(degenerate[None, :], 0.0, ST / safe[None, :])
    return S1.T, ST.T


def _estimate(f_A, f_B, f_AB):
    """Core estimators (Saltelli 2010 for S1, Jansen 1999 for ST)."""
    all_f = np.concatenate([f_A, f_B])
    mean = np.mean(all_f)
    var = np.var(all_f)
    if var < 1e-300:
        d = f_AB.shape[0]
        return np.zeros(d), np.zeros(d), 0.0
    # S1_i = mean(f_B * (f_AB_i - f_A)) / var
    S1 = np.mean(f_B[None, :] * (f_AB - f_A[None, :]), axis=1) / var
    # ST_i = 0.5 * mean((f_A - f_AB_i)^2) / var
    ST = 0.5 * np.mean((f_A[None, :] - f_AB) ** 2, axis=1) / var
    del mean
    return S1, ST, var


def sobol_analyze_function(
    func: Callable[[np.ndarray], np.ndarray],
    dim: int,
    n_base: int = 1024,
    *,
    names: Sequence[str] | None = None,
    n_bootstrap: int = 100,
    seed: int | None = None,
    scramble: bool = False,
) -> SobolIndices:
    """One-call analysis of a vectorized function on the unit cube.

    ``func`` maps an ``(m, dim)`` array of unit-cube rows to ``m``
    outputs.  This is the entry point the surrogate-model analyzer uses:
    the "function" is the trained surrogate's posterior mean, per the
    paper's description of the Sobol workflow (sample from the model,
    evaluate, variance analysis).
    """
    design = saltelli_sample(n_base, dim, scramble=scramble, seed=seed)
    values = np.asarray(func(design.stacked()), dtype=float)
    return sobol_indices(
        design, values, names=names, n_bootstrap=n_bootstrap, seed=seed
    )
