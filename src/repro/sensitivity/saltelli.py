"""Saltelli sampling scheme for Sobol' sensitivity analysis (system S17).

Generates the cross-sampled design required by the variance-based
estimators in :mod:`repro.sensitivity.sobol`: two independent base
matrices ``A`` and ``B`` (drawn as the first and second halves of a
``2d``-dimensional Sobol' sequence, the standard construction), plus the
``d`` hybrid matrices ``AB_i`` where column ``i`` of ``A`` is replaced by
column ``i`` of ``B``.

The total design is ``N * (d + 2)`` model evaluations for first-order and
total-effect indices, matching SALib's ``calc_second_order=False`` mode
(the mode the paper's tables require).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .sobol_sequence import MAX_DIM, SobolSequence

__all__ = ["SaltelliDesign", "saltelli_sample"]


@dataclass(frozen=True)
class SaltelliDesign:
    """The blocks of a Saltelli design over the unit hypercube.

    Attributes
    ----------
    A, B:
        Independent ``(n, d)`` base sample matrices.
    AB:
        ``(d, n, d)`` stack; ``AB[i]`` equals ``A`` with column ``i``
        taken from ``B``.
    """

    A: np.ndarray
    B: np.ndarray
    AB: np.ndarray

    @property
    def n_base(self) -> int:
        return int(self.A.shape[0])

    @property
    def dim(self) -> int:
        return int(self.A.shape[1])

    def stacked(self) -> np.ndarray:
        """All rows as one ``(n*(d+2), d)`` matrix in A, B, AB_0.. order."""
        return np.vstack([self.A, self.B] + [self.AB[i] for i in range(self.dim)])

    def split(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Partition model outputs evaluated on :meth:`stacked` rows back
        into ``(f_A, f_B, f_AB)`` with ``f_AB`` of shape ``(d, n)``."""
        values = np.asarray(values, dtype=float).ravel()
        n, d = self.n_base, self.dim
        if values.shape != (n * (d + 2),):
            raise ValueError(
                f"expected {n * (d + 2)} outputs for n={n}, d={d}; got {values.shape}"
            )
        f_A = values[:n]
        f_B = values[n : 2 * n]
        f_AB = values[2 * n :].reshape(d, n)
        return f_A, f_B, f_AB


def saltelli_sample(
    n_base: int,
    dim: int,
    *,
    skip: int = 1,
    scramble: bool = False,
    seed: int | None = None,
) -> SaltelliDesign:
    """Build a Saltelli design with ``n_base`` base points in ``dim`` dims.

    ``n_base`` should be a power of two for the best Sobol'-sequence
    balance (not enforced; a warning-free soft recommendation).  The
    ``2*dim``-dimensional sequence provides A (first ``dim`` columns) and
    B (last ``dim`` columns), guaranteeing A and B are jointly
    low-discrepancy.
    """
    if n_base < 2:
        raise ValueError("n_base must be >= 2")
    if dim < 1:
        raise ValueError("dim must be >= 1")
    if 2 * dim <= MAX_DIM:
        pts = SobolSequence(2 * dim, skip=skip, scramble=scramble, seed=seed).generate(
            n_base
        )
        A, B = pts[:, :dim], pts[:, dim:]
    else:
        # dimension too high for the joint sequence: fall back to two
        # independently scrambled sequences
        A = SobolSequence(
            dim, skip=skip, scramble=True, seed=seed if seed is None else seed + 1
        ).generate(n_base)
        B = SobolSequence(
            dim, skip=skip, scramble=True, seed=seed if seed is None else seed + 2
        ).generate(n_base)
    AB = np.repeat(A[None, :, :], dim, axis=0)
    for i in range(dim):
        AB[i, :, i] = B[:, i]
    return SaltelliDesign(A=A, B=B, AB=AB)
