"""Surrogate-based sensitivity analysis and search-space reduction (S19).

This is GPTuneCrowd's ``QuerySensitivityAnalysis`` workflow (paper
Sec. IV-B) as a reusable component:

1. fit a surrogate model to collected performance samples,
2. draw a Saltelli design over the tuning space's unit cube,
3. evaluate the *surrogate* on the design (cheap — no application runs),
4. compute Sobol' S1/ST indices with confidence intervals,
5. optionally *reduce* the tuning space: keep the most sensitive
   parameters and pin the rest to defaults (paper Sec. VI-D/E, Figures
   6-7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from ..core.gp import GaussianProcess
from ..core.history import TaskData
from ..core.kernels import kernel_from_name
from ..core.space import FixedSpace, Space
from .sobol import SobolIndices, sobol_analyze_function

__all__ = ["SensitivityAnalyzer", "SensitivityReport", "reduce_space"]


@dataclass
class SensitivityReport:
    """Analysis output: indices + the surrogate that produced them."""

    indices: SobolIndices
    space: Space
    surrogate: GaussianProcess
    n_samples: int

    def table(self) -> str:
        """A printable table in the layout of the paper's Table IV/V."""
        rows = self.indices.as_rows()
        header = f"{'Parameter':<20} {'S1':>7} {'S1.conf':>8} {'ST':>7} {'ST.conf':>8}"
        lines = [header, "-" * len(header)]
        for r in rows:
            lines.append(
                f"{r['parameter']:<20} {r['S1']:>7.2f} {r['S1_conf']:>8.2f} "
                f"{r['ST']:>7.2f} {r['ST_conf']:>8.2f}"
            )
        return "\n".join(lines)

    def sensitive_parameters(
        self, s1_threshold: float = 0.05, st_threshold: float = 0.2
    ) -> list[str]:
        return self.indices.select(s1_threshold, st_threshold)

    def top_k(self, k: int, by: str = "ST") -> list[str]:
        """The ``k`` most sensitive parameter names."""
        return self.indices.ranking(by)[:k]


class SensitivityAnalyzer:
    """Fits a surrogate on performance data and runs Sobol' analysis.

    Parameters
    ----------
    space:
        The tuning-parameter space the data was collected over.
    kernel:
        Surrogate kernel name (default RBF with ARD — the lengthscales
        themselves are an informal sensitivity signal; the Sobol indices
        are the principled one).
    """

    def __init__(
        self,
        space: Space,
        *,
        kernel: str = "rbf",
        gp_max_fun: int = 120,
        gp_restarts: int = 2,
    ) -> None:
        self.space = space
        self.kernel = kernel
        self.gp_max_fun = gp_max_fun
        self.gp_restarts = gp_restarts

    def fit_surrogate(self, data: TaskData, seed: int | None = None) -> GaussianProcess:
        gp = GaussianProcess(
            kernel_from_name(self.kernel, self.space.dim),
            max_fun=self.gp_max_fun,
            n_restarts=self.gp_restarts,
            seed=seed,
        )
        gp.fit(data.X, data.y)
        return gp

    def analyze(
        self,
        data: TaskData,
        *,
        n_base: int = 1024,
        n_bootstrap: int = 100,
        seed: int | None = None,
    ) -> SensitivityReport:
        """Full pipeline: surrogate fit + Sobol analysis of its mean."""
        if data.dim != self.space.dim:
            raise ValueError(
                f"data dimension {data.dim} != space dimension {self.space.dim}"
            )
        gp = self.fit_surrogate(data, seed=seed)
        indices = sobol_analyze_function(
            gp.predict_mean,
            self.space.dim,
            n_base=n_base,
            names=self.space.names,
            n_bootstrap=n_bootstrap,
            seed=seed,
        )
        return SensitivityReport(
            indices=indices, space=self.space, surrogate=gp, n_samples=data.n
        )


def reduce_space(
    space: Space,
    keep: Sequence[str],
    defaults: Mapping[str, Any],
    *,
    rng: np.random.Generator | None = None,
) -> FixedSpace:
    """Build the reduced tuning space of the paper's Figures 6-7.

    ``keep`` lists the sensitive parameters to continue tuning.  Every
    other parameter is pinned: to its entry in ``defaults`` when known
    ("we use the default parameter values for LOOKAHEAD and NREL"), or to
    a random legal value when not ("random values for Px, Py, and Nproc
    (we do not know the default values)", Fig. 7 caption).
    """
    keep_set = set(keep)
    unknown = keep_set - set(space.names)
    if unknown:
        raise ValueError(f"cannot keep unknown parameters {sorted(unknown)}")
    pins: dict[str, Any] = {}
    for p in space.parameters:
        if p.name in keep_set:
            continue
        if p.name in defaults:
            pins[p.name] = defaults[p.name]
        else:
            if rng is None:
                rng = np.random.default_rng(0)
            pins[p.name] = p.sample(rng)
    return space.fix(pins)
