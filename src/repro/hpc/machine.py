"""Simulated HPC machines (system S20): Cori Haswell and Cori KNL.

A :class:`Machine` describes an allocation — node count, cores and memory
per node, sustained per-core compute rates, memory bandwidth, and the
interconnect — exactly the quantities the application performance models
in :mod:`repro.apps` need.  Presets reproduce the two NERSC Cori
partitions the paper evaluates on:

* **Haswell**: two 16-core Intel Xeon E5-2698v3 per node, 128 GB DDR4
  (paper Sec. VI-B).
* **KNL**: one Intel Xeon Phi 7250 (68 cores, of which 64 are commonly
  used for applications), 96 GB DDR4 + 16 GB MCDRAM (Sec. VI-C).

The KNL preset has many slower cores with higher effective memory latency
for irregular access — which is what makes transfer across architectures
(paper Fig. 5(b)) a genuinely harder problem for TLA, a behaviour the
models inherit from these parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .network import CORI_ARIES, SHARED_MEMORY, NetworkModel

__all__ = ["Machine", "cori_haswell", "cori_knl", "MACHINE_PRESETS", "get_machine"]

_GiB = 1024.0**3


@dataclass(frozen=True)
class Machine:
    """An allocation on a simulated machine."""

    name: str
    partition: str
    nodes: int
    cores_per_node: int
    #: sustained DGEMM-like rate per core (flop/s)
    flops_per_core: float
    #: sustained rate for irregular/sparse kernels per core (flop/s)
    sparse_flops_per_core: float
    #: memory per node in bytes
    mem_per_node: float
    #: sustained memory bandwidth per node (bytes/s)
    mem_bw_per_node: float
    network: NetworkModel = field(default=CORI_ARIES)
    intranode: NetworkModel = field(default=SHARED_MEMORY)

    def __post_init__(self) -> None:
        if self.nodes < 1 or self.cores_per_node < 1:
            raise ValueError("machine needs >= 1 node and >= 1 core per node")
        if min(self.flops_per_core, self.sparse_flops_per_core) <= 0:
            raise ValueError("compute rates must be positive")
        if min(self.mem_per_node, self.mem_bw_per_node) <= 0:
            raise ValueError("memory size and bandwidth must be positive")

    # -- derived quantities ------------------------------------------------
    @property
    def total_cores(self) -> int:
        return self.nodes * self.cores_per_node

    @property
    def total_flops(self) -> float:
        return self.total_cores * self.flops_per_core

    @property
    def total_memory(self) -> float:
        return self.nodes * self.mem_per_node

    def with_nodes(self, nodes: int) -> "Machine":
        """The same machine with a different allocation size."""
        return replace(self, nodes=nodes)

    def dense_rate(self, cores_used: int, threads_per_rank: int = 1) -> float:
        """Aggregate dense-kernel rate with a mild parallel-efficiency
        roll-off as more cores of a node are engaged (bandwidth sharing)."""
        cores_used = max(1, min(cores_used, self.total_cores))
        frac = cores_used / self.total_cores
        efficiency = 1.0 / (1.0 + 0.25 * frac)
        del threads_per_rank
        return cores_used * self.flops_per_core * efficiency

    def describe(self) -> dict:
        """Machine-configuration block for crowd records (Sec. IV-A)."""
        return {
            self.name: {
                self.partition: {
                    "nodes": self.nodes,
                    "cores": self.cores_per_node,
                }
            }
        }


def cori_haswell(nodes: int = 1) -> Machine:
    """NERSC Cori Haswell partition (2x16-core E5-2698v3, 128 GB)."""
    return Machine(
        name="Cori",
        partition="haswell",
        nodes=nodes,
        cores_per_node=32,
        flops_per_core=3.2e10,  # ~AVX2 DGEMM sustained
        sparse_flops_per_core=2.4e9,
        mem_per_node=128.0 * _GiB,
        mem_bw_per_node=1.2e11,
    )


def cori_knl(nodes: int = 1) -> Machine:
    """NERSC Cori KNL partition (Xeon Phi 7250, 68 cores, 96+16 GB)."""
    return Machine(
        name="Cori",
        partition="knl",
        nodes=nodes,
        cores_per_node=68,
        flops_per_core=1.4e10,  # wide vectors but low clock
        sparse_flops_per_core=6.0e8,  # irregular access hurts on KNL
        mem_per_node=(96.0 + 16.0) * _GiB,
        mem_bw_per_node=4.0e11,  # MCDRAM stream
    )


MACHINE_PRESETS = {"cori-haswell": cori_haswell, "cori-knl": cori_knl}


def get_machine(key: str, nodes: int = 1) -> Machine:
    """Instantiate a preset machine (``cori-haswell``, ``cori-knl``)."""
    try:
        return MACHINE_PRESETS[key](nodes)
    except KeyError:
        raise ValueError(
            f"unknown machine {key!r}; choose from {sorted(MACHINE_PRESETS)}"
        )
