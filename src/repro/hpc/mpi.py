"""Simulated MPI cost accounting (system S21).

Two levels of fidelity are provided:

* :class:`CostComm` — a *cost accumulator*: application performance
  models call ``bcast``, ``allreduce`` etc. with message sizes and the
  communicator tallies modeled communication seconds, splitting traffic
  between the inter-node network and the intra-node transport according
  to the rank->node placement.  This is what the PDGEQRF / SuperLU /
  Hypre models use.

* :class:`repro.hpc.simulator` — a functional SPMD simulator for
  virtual-time execution of real rank programs (used by examples and
  tests to validate collective cost formulas against a message-level
  simulation).

``CostComm`` mirrors the mpi4py surface (lower-case object-ish methods)
so code written against it reads like the mpi4py tutorial idioms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .machine import Machine
from .network import NetworkModel

__all__ = ["CostComm", "CommStats"]


@dataclass
class CommStats:
    """Tallied communication behaviour of a modeled run."""

    seconds: float = 0.0
    messages: int = 0
    bytes_moved: float = 0.0
    by_op: dict[str, float] = field(default_factory=dict)

    def add(self, op: str, seconds: float, nbytes: float, messages: int = 1) -> None:
        self.seconds += seconds
        self.bytes_moved += nbytes
        self.messages += messages
        self.by_op[op] = self.by_op.get(op, 0.0) + seconds


class CostComm:
    """A communicator over ``size`` ranks placed round-robin on a machine.

    Parameters
    ----------
    machine:
        Supplies the inter-/intra-node network models and node geometry.
    size:
        Number of ranks; must fit on the machine allocation.
    ranks_per_node:
        Placement density; defaults to packing ``cores_per_node`` ranks
        per node.  PDGEQRF's ``lg2npernode`` tuning parameter controls
        exactly this.
    """

    def __init__(
        self, machine: Machine, size: int, *, ranks_per_node: int | None = None
    ) -> None:
        if size < 1:
            raise ValueError("communicator needs >= 1 rank")
        rpn = ranks_per_node if ranks_per_node is not None else machine.cores_per_node
        if rpn < 1:
            raise ValueError("ranks_per_node must be >= 1")
        if rpn > machine.cores_per_node:
            raise ValueError(
                f"{rpn} ranks/node exceeds {machine.cores_per_node} cores/node"
            )
        nodes_needed = -(-size // rpn)
        if nodes_needed > machine.nodes:
            raise ValueError(
                f"{size} ranks at {rpn}/node need {nodes_needed} nodes, "
                f"allocation has {machine.nodes}"
            )
        self.machine = machine
        self.size = size
        self.ranks_per_node = rpn
        self.stats = CommStats()

    # -- placement-aware effective network -----------------------------------
    def _mixed(self) -> NetworkModel:
        """Effective alpha/beta blending inter- and intra-node paths.

        With ``r`` ranks per node, a fraction ``(r-1)/(size-1)`` of a
        rank's peers are on-node; costs interpolate accordingly.
        """
        if self.size == 1:
            return self.machine.intranode
        on_node = min(self.ranks_per_node, self.size) - 1
        frac_local = on_node / (self.size - 1)
        inter, intra = self.machine.network, self.machine.intranode
        return NetworkModel(
            "mixed",
            alpha=frac_local * intra.alpha + (1 - frac_local) * inter.alpha,
            beta=frac_local * intra.beta + (1 - frac_local) * inter.beta,
        )

    # -- mpi-like cost operations ----------------------------------------------
    def send(self, nbytes: float) -> float:
        t = self._mixed().p2p(nbytes)
        self.stats.add("send", t, nbytes)
        return t

    def bcast(self, nbytes: float, group_size: int | None = None) -> float:
        p = group_size if group_size is not None else self.size
        t = self._mixed().bcast(nbytes, p)
        self.stats.add("bcast", t, nbytes * max(p - 1, 0))
        return t

    def reduce(self, nbytes: float, group_size: int | None = None) -> float:
        p = group_size if group_size is not None else self.size
        t = self._mixed().reduce(nbytes, p)
        self.stats.add("reduce", t, nbytes * max(p - 1, 0))
        return t

    def allreduce(self, nbytes: float, group_size: int | None = None) -> float:
        p = group_size if group_size is not None else self.size
        t = self._mixed().allreduce(nbytes, p)
        self.stats.add("allreduce", t, 2 * nbytes * max(p - 1, 0))
        return t

    def allgather(self, nbytes_per_rank: float, group_size: int | None = None) -> float:
        p = group_size if group_size is not None else self.size
        t = self._mixed().allgather(nbytes_per_rank, p)
        self.stats.add("allgather", t, nbytes_per_rank * max(p - 1, 0) * p)
        return t

    def alltoall(self, nbytes_per_pair: float, group_size: int | None = None) -> float:
        p = group_size if group_size is not None else self.size
        t = self._mixed().alltoall(nbytes_per_pair, p)
        self.stats.add("alltoall", t, nbytes_per_pair * p * max(p - 1, 0))
        return t
