"""Simulated HPC substrate (systems S20-S22).

Machines (Cori Haswell/KNL presets), alpha-beta network models, MPI cost
accounting, a virtual-time SPMD simulator, process grids and a Slurm-like
scheduler — the platform the application performance models in
:mod:`repro.apps` execute on.
"""

from .machine import MACHINE_PRESETS, Machine, cori_haswell, cori_knl, get_machine
from .mpi import CommStats, CostComm
from .network import CORI_ARIES, SHARED_MEMORY, NetworkModel
from .procgrid import (
    Grid2D,
    Grid3D,
    block_cyclic_rows,
    factor_pairs,
    grid_for_rows,
    load_imbalance,
    squarest_grid,
)
from .scheduler import AllocationError, SlurmJob, SlurmSim
from .simulator import DeadlockError, SpmdSimulator

__all__ = [
    "AllocationError",
    "CORI_ARIES",
    "CommStats",
    "CostComm",
    "DeadlockError",
    "Grid2D",
    "Grid3D",
    "MACHINE_PRESETS",
    "Machine",
    "NetworkModel",
    "SHARED_MEMORY",
    "SlurmJob",
    "SlurmSim",
    "SpmdSimulator",
    "block_cyclic_rows",
    "cori_haswell",
    "cori_knl",
    "factor_pairs",
    "get_machine",
    "grid_for_rows",
    "load_imbalance",
    "squarest_grid",
]
