"""Interconnect cost model (system S21): alpha-beta with collectives.

The classic LogP-style alpha-beta model: a message of ``n`` bytes between
two ranks costs ``alpha + n * beta`` seconds, where ``alpha`` is latency
and ``beta`` inverse bandwidth.  Collective costs use the standard
tree/ring algorithm bounds that MPI implementations achieve:

* broadcast / reduce:  ``ceil(log2 p) * (alpha + n beta)``  (binomial tree)
* allreduce:           ``2 (p-1)/p n beta + 2 ceil(log2 p) alpha``
                       (Rabenseifner ring for large n)
* allgather / all-to-all: ring bounds.

Intra-node messages use a separate (much faster) alpha/beta pair; the
caller states how many of the communicating ranks share a node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["NetworkModel", "CORI_ARIES", "SHARED_MEMORY"]


@dataclass(frozen=True)
class NetworkModel:
    """alpha-beta interconnect parameters (seconds, seconds/byte)."""

    name: str
    alpha: float  # point-to-point latency
    beta: float  # inverse bandwidth (s per byte)

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.beta < 0:
            raise ValueError("alpha and beta must be non-negative")

    # -- point-to-point -----------------------------------------------------
    def p2p(self, nbytes: float) -> float:
        """One message of ``nbytes``."""
        return self.alpha + max(nbytes, 0.0) * self.beta

    # -- collectives --------------------------------------------------------
    def bcast(self, nbytes: float, p: int) -> float:
        """Binomial-tree broadcast among ``p`` ranks."""
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * self.p2p(nbytes)

    def reduce(self, nbytes: float, p: int) -> float:
        """Binomial-tree reduction (same asymptotics as bcast)."""
        return self.bcast(nbytes, p)

    def allreduce(self, nbytes: float, p: int) -> float:
        """Rabenseifner-style allreduce."""
        if p <= 1:
            return 0.0
        steps = math.ceil(math.log2(p))
        return 2.0 * steps * self.alpha + 2.0 * (p - 1) / p * nbytes * self.beta

    def allgather(self, nbytes_per_rank: float, p: int) -> float:
        """Ring allgather; each rank contributes ``nbytes_per_rank``."""
        if p <= 1:
            return 0.0
        return (p - 1) * self.p2p(nbytes_per_rank)

    def alltoall(self, nbytes_per_pair: float, p: int) -> float:
        """Pairwise-exchange all-to-all."""
        if p <= 1:
            return 0.0
        return (p - 1) * self.p2p(nbytes_per_pair)

    def scatter(self, nbytes_per_rank: float, p: int) -> float:
        if p <= 1:
            return 0.0
        return math.ceil(math.log2(p)) * self.alpha + (
            (p - 1) / p
        ) * p * nbytes_per_rank * self.beta / max(p, 1)


#: Cray Aries (Cori's interconnect): ~1.2 us latency, ~10 GB/s per-rank BW
CORI_ARIES = NetworkModel("cray-aries", alpha=1.2e-6, beta=1.0e-10)

#: intra-node shared-memory transport
SHARED_MEMORY = NetworkModel("shm", alpha=4.0e-7, beta=1.5e-11)
