"""Virtual-time SPMD simulator (system S21's message-level companion).

Executes real per-rank Python programs under simulated time: each rank is
a generator that *yields* communication actions (send / recv / compute /
barrier-style collectives), and the simulator advances per-rank virtual
clocks, matches messages by (source, destination, tag), and charges
alpha-beta transfer costs.

This is deliberately a cooperative single-threaded discrete-event engine
— no real parallelism, no nondeterminism — so tests can assert exact
virtual times.  It serves two purposes:

* validating the closed-form collective costs used by :class:`CostComm`
  against an actual message schedule (tests/hpc/test_simulator.py), and
* the ``examples/spmd_simulation.py`` walkthrough of how the machine
  substrate executes rank programs.

Rank programs yield action tuples:

    ("compute", seconds)           advance local clock
    ("send", dest, nbytes, tag)    non-blocking-ish eager send
    ("recv", src, nbytes, tag)     blocks until matching send
    ("barrier",)                   synchronize all ranks

``run`` returns per-rank finish times (the makespan is their max).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

from .network import NetworkModel

__all__ = ["SpmdSimulator", "DeadlockError", "RankProgram"]

RankProgram = Callable[[int, int], Generator[tuple, Any, None]]


class DeadlockError(RuntimeError):
    """All unfinished ranks are blocked on receives that can never match."""


@dataclass
class _PendingSend:
    time_sent: float
    nbytes: float


class SpmdSimulator:
    """Discrete-event executor for ``size`` rank generators."""

    def __init__(self, size: int, network: NetworkModel) -> None:
        if size < 1:
            raise ValueError("need >= 1 rank")
        self.size = size
        self.network = network

    def run(self, program: RankProgram) -> list[float]:
        """Execute ``program(rank, size)`` on every rank; returns clocks."""
        gens = [program(r, self.size) for r in range(self.size)]
        clocks = [0.0] * self.size
        finished = [False] * self.size
        # mailbox[(src, dst, tag)] -> queue of pending sends
        mailbox: dict[tuple[int, int, Any], deque[_PendingSend]] = defaultdict(deque)
        # blocked[r] = ("recv", src, nbytes, tag) or ("barrier",)
        blocked: dict[int, tuple] = {}
        barrier_wait: set[int] = set()

        def step(r: int, send_value: Any = None) -> None:
            """Advance rank ``r`` until it blocks or finishes."""
            gen = gens[r]
            value = send_value
            while True:
                try:
                    action = gen.send(value) if value is not None else next(gen)
                except StopIteration:
                    finished[r] = True
                    return
                value = None
                kind = action[0]
                if kind == "compute":
                    clocks[r] += float(action[1])
                elif kind == "send":
                    _, dest, nbytes, *rest = action
                    tag = rest[0] if rest else 0
                    if not 0 <= dest < self.size:
                        raise ValueError(f"rank {r}: send to invalid rank {dest}")
                    mailbox[(r, dest, tag)].append(_PendingSend(clocks[r], nbytes))
                    # eager send: local cost is the latency only
                    clocks[r] += self.network.alpha
                elif kind == "recv":
                    blocked[r] = action
                    return
                elif kind == "barrier":
                    blocked[r] = action
                    barrier_wait.add(r)
                    return
                else:
                    raise ValueError(f"rank {r}: unknown action {action!r}")

        for r in range(self.size):
            step(r)

        while blocked:
            progressed = False
            # complete any satisfiable receives
            for r, action in list(blocked.items()):
                if action[0] != "recv":
                    continue
                _, src, nbytes, *rest = action
                tag = rest[0] if rest else 0
                queue = mailbox.get((src, r, tag))
                if queue:
                    send = queue.popleft()
                    arrival = send.time_sent + self.network.p2p(send.nbytes)
                    clocks[r] = max(clocks[r], arrival)
                    del blocked[r]
                    progressed = True
                    step(r, send_value=nbytes)
            # release a completed barrier
            if barrier_wait and len(barrier_wait) == sum(
                1 for f in finished if not f
            ) + 0 and all(
                blocked.get(r, ("",))[0] == "barrier" for r in barrier_wait
            ):
                active = [r for r in range(self.size) if not finished[r]]
                if set(active) == barrier_wait:
                    t = max(clocks[r] for r in barrier_wait)
                    t += self.network.allreduce(8, len(barrier_wait))
                    for r in sorted(barrier_wait):
                        clocks[r] = t
                        del blocked[r]
                    barrier_wait.clear()
                    progressed = True
                    for r in active:
                        step(r)
            if not progressed:
                stuck = {r: blocked[r] for r in blocked}
                raise DeadlockError(f"no rank can progress; blocked: {stuck}")
        if not all(finished):
            # ranks that never blocked are already finished; sanity check
            unfinished = [r for r, f in enumerate(finished) if not f]
            raise DeadlockError(f"ranks {unfinished} neither blocked nor finished")
        return clocks

    # -- reference collectives (built from the primitive actions) ----------------
    @staticmethod
    def bcast_program(
        root: int, nbytes: float, work: Iterable[float] | None = None
    ) -> RankProgram:
        """A binomial-tree broadcast as a rank program (for validation)."""

        def program(rank: int, size: int):
            w = list(work) if work is not None else [0.0] * size
            yield ("compute", w[rank])
            rel = (rank - root) % size
            mask = 1
            while mask < size:
                if rel < mask:
                    partner = rel | mask
                    if partner < size:
                        yield ("send", (partner + root) % size, nbytes, mask)
                elif rel < 2 * mask:
                    partner = rel ^ mask
                    yield ("recv", (partner + root) % size, nbytes, mask)
                mask <<= 1

        return program
