"""Slurm-like allocation simulator (system S22).

The crowd database records "the node allocation and the machine
information automatically" when jobs run under Slurm (paper Sec. IV-A).
Since no real Slurm exists in this environment, :class:`SlurmSim`
produces faithful allocation records and the environment-variable set a
Slurm job would see; :mod:`repro.crowd.environment` parses those
variables back — exercising the same code path a real deployment would.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from .machine import Machine

__all__ = ["SlurmSim", "SlurmJob", "AllocationError"]


class AllocationError(RuntimeError):
    """Requested resources exceed what the simulated cluster has free."""


@dataclass
class SlurmJob:
    """A granted allocation."""

    job_id: int
    partition: str
    nodes: int
    ntasks: int
    cpus_per_task: int
    nodelist: list[str] = field(default_factory=list)

    def environment(self) -> dict[str, str]:
        """The Slurm environment variables the job's processes see."""
        return {
            "SLURM_JOB_ID": str(self.job_id),
            "SLURM_JOB_PARTITION": self.partition,
            "SLURM_JOB_NUM_NODES": str(self.nodes),
            "SLURM_NNODES": str(self.nodes),
            "SLURM_NTASKS": str(self.ntasks),
            "SLURM_CPUS_PER_TASK": str(self.cpus_per_task),
            "SLURM_JOB_NODELIST": _compress_nodelist(self.nodelist),
        }


class SlurmSim:
    """A single-cluster scheduler handing out node allocations."""

    def __init__(self, machine: Machine, *, node_prefix: str = "nid") -> None:
        self.machine = machine
        self.node_prefix = node_prefix
        self._free = set(range(machine.nodes))
        self._jobs: dict[int, SlurmJob] = {}
        self._ids = itertools.count(1000)

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    def salloc(
        self, nodes: int, *, ntasks_per_node: int | None = None, cpus_per_task: int = 1
    ) -> SlurmJob:
        """Allocate ``nodes`` whole nodes (FIFO, no backfill — the crowd
        records only need correct *shapes*, not queueing dynamics)."""
        if nodes < 1:
            raise ValueError("must request >= 1 node")
        if nodes > len(self._free):
            raise AllocationError(
                f"requested {nodes} nodes, only {len(self._free)} free"
            )
        tpn = ntasks_per_node if ntasks_per_node is not None else (
            self.machine.cores_per_node // cpus_per_task
        )
        if tpn * cpus_per_task > self.machine.cores_per_node:
            raise AllocationError(
                f"{tpn} tasks x {cpus_per_task} cpus exceeds "
                f"{self.machine.cores_per_node} cores per node"
            )
        picked = sorted(self._free)[:nodes]
        self._free -= set(picked)
        job = SlurmJob(
            job_id=next(self._ids),
            partition=self.machine.partition,
            nodes=nodes,
            ntasks=nodes * tpn,
            cpus_per_task=cpus_per_task,
            nodelist=[f"{self.node_prefix}{5000 + i:05d}" for i in picked],
        )
        self._jobs[job.job_id] = job
        return job

    def release(self, job: SlurmJob) -> None:
        """Return the job's nodes to the free pool.

        Raises :class:`AllocationError` for a job this scheduler never
        granted (or granted and already released) — double-releasing
        would silently corrupt the free pool under the engine's
        concurrent workers.
        """
        if self._jobs.get(job.job_id) is not job:
            raise AllocationError(
                f"unknown or already released job {job.job_id}"
            )
        del self._jobs[job.job_id]
        for name in job.nodelist:
            self._free.add(int(name[len(self.node_prefix):]) - 5000)


def _compress_nodelist(names: list[str]) -> str:
    """Compress into Slurm's bracket syntax, e.g. ``nid0[5000-5003]``."""
    if not names:
        return ""
    prefix = names[0].rstrip("0123456789")
    nums = sorted(int(n[len(prefix):]) for n in names)
    width = len(names[0]) - len(prefix)
    ranges: list[str] = []
    start = prev = nums[0]
    for x in nums[1:] + [None]:  # type: ignore[list-item]
        if x is not None and x == prev + 1:
            prev = x
            continue
        ranges.append(
            f"{start:0{width}d}" if start == prev else f"{start:0{width}d}-{prev:0{width}d}"
        )
        if x is not None:
            start = prev = x
    if len(ranges) == 1 and "-" not in ranges[0]:
        return f"{prefix}{ranges[0]}"
    return f"{prefix}[{','.join(ranges)}]"
