"""Process-grid utilities (system S22).

ScaLAPACK and SuperLU_DIST map MPI ranks onto 2D (``p x q``) — and, for
the 3D communication-avoiding LU, 3D (``p x q x z``) — logical grids.
The grid aspect ratio is itself a tuning parameter in the paper
(PDGEQRF's ``p``, SuperLU's ``nprows``, NIMROD's ``npz``), so these
helpers are the shared substrate for all the application models.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = [
    "Grid2D",
    "Grid3D",
    "factor_pairs",
    "squarest_grid",
    "grid_for_rows",
    "block_cyclic_rows",
    "load_imbalance",
]


@dataclass(frozen=True)
class Grid2D:
    """A ``p x q`` logical process grid (rows x columns)."""

    p: int
    q: int

    def __post_init__(self) -> None:
        if self.p < 1 or self.q < 1:
            raise ValueError(f"grid dims must be >= 1, got {self.p}x{self.q}")

    @property
    def size(self) -> int:
        return self.p * self.q

    @property
    def aspect(self) -> float:
        """Aspect ratio >= 1 (1 means square)."""
        return max(self.p, self.q) / min(self.p, self.q)


@dataclass(frozen=True)
class Grid3D:
    """A ``p x q x z`` grid; ``z`` is the replication dimension of the 3D
    sparse LU algorithm (Sao, Li, Vuduc [23])."""

    p: int
    q: int
    z: int

    def __post_init__(self) -> None:
        if min(self.p, self.q, self.z) < 1:
            raise ValueError(f"grid dims must be >= 1, got {self.p}x{self.q}x{self.z}")

    @property
    def size(self) -> int:
        return self.p * self.q * self.z

    @property
    def plane(self) -> Grid2D:
        """The 2D grid each of the ``z`` replicas works on."""
        return Grid2D(self.p, self.q)


def factor_pairs(n: int) -> list[tuple[int, int]]:
    """All ordered factorizations ``n = p * q`` with ``p <= sqrt(n)`` first."""
    if n < 1:
        raise ValueError("n must be >= 1")
    pairs = []
    for p in range(1, int(math.isqrt(n)) + 1):
        if n % p == 0:
            pairs.append((p, n // p))
    return pairs


def squarest_grid(n: int) -> Grid2D:
    """The most square ``p x q`` grid with ``p * q == n`` (p <= q)."""
    p, q = factor_pairs(n)[-1]
    return Grid2D(p, q)


def grid_for_rows(n_procs: int, p: int) -> Grid2D | None:
    """The ``p x q`` grid using as many of ``n_procs`` ranks as possible
    given ``p`` rows; ``None`` if ``p`` exceeds the rank count.

    ScaLAPACK-style: ``q = floor(n_procs / p)``, leaving ``n_procs - p*q``
    ranks idle — the paper's PDGEQRF setup does exactly this (Table II's
    ``p`` ranges over ``[1, nodes*cores)`` and implies idle ranks).
    """
    if p < 1:
        raise ValueError("p must be >= 1")
    if p > n_procs:
        return None
    return Grid2D(p, n_procs // p)


def block_cyclic_rows(m: int, mb: int, p: int, row: int) -> int:
    """Rows of an ``m``-row matrix owned by grid row ``row`` under a
    block-cyclic distribution with block size ``mb`` (ScaLAPACK NUMROC)."""
    if m < 0 or mb < 1 or p < 1 or not 0 <= row < p:
        raise ValueError("invalid block-cyclic parameters")
    nblocks = m // mb
    rows = (nblocks // p) * mb
    extra = nblocks % p
    if row < extra:
        rows += mb
    elif row == extra:
        rows += m % mb
    return rows


def load_imbalance(m: int, mb: int, p: int) -> float:
    """Max-over-mean row imbalance of a block-cyclic distribution.

    1.0 means perfectly balanced; large blocks on small matrices yield
    ratios well above 1 — the effect that makes ScaLAPACK block sizes a
    real tuning parameter.
    """
    counts = [block_cyclic_rows(m, mb, p, r) for r in range(p)]
    mean = m / p
    if mean <= 0:
        return 1.0
    return max(counts) / mean
