"""Registry document schema: entries, collection names, fingerprints.

One :class:`RegistryEntry` is the frozen surrogate of a single
``(problem_name, task)`` pair at one data version.  Entries are *content
determined*: ``data_version`` is the number of eligible records the fit
consumed, ``timestamp`` is the newest eligible record's timestamp, and
the GP fit itself is seeded deterministically — so two replicas holding
the same record set build byte-identical entries, and the service's
digest-based anti-entropy sees them as already consistent.

Only **public, successful** records are eligible (:func:`record_counts`):
a registry model is served to every authenticated user, so a fit that
ingested private or group-restricted samples would leak them through the
posterior.  Users whose queries depend on restricted data keep the
fit-locally path.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "REGISTRY_MODELS",
    "REGISTRY_PROBLEMS",
    "RegistryEntry",
    "record_counts",
    "space_fingerprint",
]

#: store collection holding one frozen-model entry per (problem, task)
REGISTRY_MODELS = "registry_models"
#: store collection holding one problem-space document per problem
REGISTRY_PROBLEMS = "registry_problems"


def space_fingerprint(problem_space: Mapping[str, Any] | None) -> str:
    """Stable hash of a meta description's ``problem_space`` block.

    Predict responses echo the fingerprint of the registered space the
    model was built against; a client whose own meta disagrees falls
    back to fitting locally instead of silently mixing query semantics.
    """
    blob = json.dumps(dict(problem_space or {}), sort_keys=True, default=str)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


def record_counts(doc: Mapping[str, Any]) -> bool:
    """Whether a stored performance record feeds the registry fit."""
    if doc.get("output") is None:
        return False
    acc = doc.get("accessibility") or {}
    return acc.get("level", "public") == "public"


@dataclass
class RegistryEntry:
    """One frozen surrogate snapshot as stored in ``registry_models``."""

    problem_name: str
    task_parameters: dict[str, Any]
    task_key: str
    data_version: int
    n_samples: int
    kernel: str
    seed: int
    model: dict[str, Any]
    timestamp: float
    space_fingerprint: str = ""

    def to_doc(self) -> dict[str, Any]:
        return {
            "problem_name": self.problem_name,
            "task_parameters": dict(self.task_parameters),
            "task_key": self.task_key,
            "data_version": int(self.data_version),
            "n_samples": int(self.n_samples),
            "kernel": self.kernel,
            "seed": int(self.seed),
            "model": dict(self.model),
            "timestamp": float(self.timestamp),
            "space_fingerprint": self.space_fingerprint,
        }

    @staticmethod
    def from_doc(doc: Mapping[str, Any]) -> "RegistryEntry":
        return RegistryEntry(
            problem_name=doc["problem_name"],
            task_parameters=dict(doc.get("task_parameters", {})),
            task_key=doc["task_key"],
            data_version=int(doc.get("data_version", 0)),
            n_samples=int(doc.get("n_samples", 0)),
            kernel=doc.get("kernel", "rbf"),
            seed=int(doc.get("seed", 0)),
            model=dict(doc["model"]),
            timestamp=float(doc.get("timestamp", 0.0)),
            space_fingerprint=doc.get("space_fingerprint", ""),
        )

    def meta(self) -> dict[str, Any]:
        """The metadata payload of a ``model_meta`` response."""
        return {
            "problem_name": self.problem_name,
            "task_parameters": dict(self.task_parameters),
            "data_version": int(self.data_version),
            "n_samples": int(self.n_samples),
            "kernel": self.kernel,
            "timestamp": float(self.timestamp),
            "space_fingerprint": self.space_fingerprint,
        }
