"""The frozen surrogate-model registry (fit once, serve many).

:class:`ModelRegistry` turns the crowd's prediction utilities from a
compute workload into a read workload.  The paper's Sec. IV-B calls —
``QuerySurrogateModel`` / ``QueryPredictOutput`` /
``QuerySensitivityAnalysis`` — each fit a fresh GP per invocation;
the registry fits each surrogate **once** per
``(problem_name, task, data_version)`` and answers every subsequent
prediction from the frozen factorization:

* **write side** — every eligible record upload bumps the key's data
  version (:class:`~repro.registry.versions.DataVersionTracker`) and
  notifies the :class:`~repro.registry.builder.RegistryBuilder`, which
  refits when the debounce policy says so.  Built entries are plain
  store documents in the ``registry_models`` collection, so the owning
  shard's WAL + snapshot machinery persists, recovers and anti-entropy
  heals them exactly like performance records.
* **read side** — ``predict`` / ``model_meta`` / ``sensitivity``
  deserialize the entry once into a resident
  :class:`~repro.tla.store.FrozenGP` (bounded LRU, gauge
  ``registry_models_resident``) and serve batched vectorized
  predictions.  Zero GP fits after the first build.

Entries are *content determined* (see :mod:`repro.registry.entry`):
the fit consumes the timestamp-sorted public successful records under
the registered problem space with a fixed seed, so replicas holding the
same record set build byte-identical entries and the digest-based
anti-entropy protocol treats them as already converged.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from ..core import perf
from ..core.gp import GaussianProcess
from ..core.kernels import kernel_from_name
from ..core.sparse import make_surrogate, resolve_surrogate_kind, surrogate_from_dict
from ..core.problem import task_key
from ..core.space import Space
from ..crowd.query import build_filter
from ..crowd.records import PerformanceRecord
from ..crowd.repository import CrowdRepository
from .builder import RegistryBuilder
from .entry import (
    REGISTRY_MODELS,
    REGISTRY_PROBLEMS,
    RegistryEntry,
    record_counts,
    space_fingerprint,
)
from .versions import DataVersionTracker

__all__ = ["ModelRegistry", "RegistryOptions"]

_RECORDS = "performance_records"


@dataclass(frozen=True)
class RegistryOptions:
    """Registry policy knobs.

    The defaults favour freshness and determinism: rebuild after every
    eligible upload (``min_new_samples=1``), synchronously, with a fixed
    fit seed so replicas converge on identical entries.
    """

    kernel: str = "rbf"
    seed: int = 0
    min_samples: int = 2
    min_new_samples: int = 1
    max_staleness_s: float | None = None
    background: bool = False
    max_resident: int = 64
    #: surrogate policy for builds: ``"auto"`` fits the exact dense GP up
    #: to ``n_dense_max`` eligible records (entries byte-identical to the
    #: historical format) and the O(nm^2) sparse inducing-point GP past
    #: it, so a crowd-sized history builds in bounded time
    surrogate: str = "auto"
    n_dense_max: int = 2048
    n_inducing: int = 128
    leaf_size: int = 256


class ModelRegistry:
    """Frozen-model registry bound to one shard's repository."""

    def __init__(
        self,
        repository: CrowdRepository,
        options: RegistryOptions | None = None,
    ) -> None:
        self.repository = repository
        self.options = options if options is not None else RegistryOptions()
        models = repository.store.collection(REGISTRY_MODELS)
        models.create_index("problem_name")
        models.create_index("task_key")
        problems = repository.store.collection(REGISTRY_PROBLEMS)
        problems.create_index("problem_name")
        self.versions = DataVersionTracker()
        self._init_versions()
        self.builder = RegistryBuilder(
            self.build,
            min_new_samples=self.options.min_new_samples,
            max_staleness_s=self.options.max_staleness_s,
            background=self.options.background,
        )
        # (problem, task_key) -> (data_version, timestamp, predictor, entry)
        self._resident: OrderedDict[
            tuple[str, str], tuple[int, float, Any, RegistryEntry]
        ] = OrderedDict()
        # problem -> (doc timestamp, Space, fingerprint, problem_space dict)
        self._space_cache: dict[str, tuple[float, Space, str, dict[str, Any]]] = {}
        self._lock = threading.Lock()
        self._build_lock = threading.Lock()

    def _init_versions(self) -> None:
        """Rebuild the version counters from the store (WAL recovery)."""
        for doc in self.repository.store[_RECORDS].find({}, frozen=True):
            if record_counts(doc):
                self.versions.bump(
                    doc.get("problem_name", ""),
                    repr(task_key(doc.get("task_parameters", {}))),
                )

    # -- problem registration ------------------------------------------------
    def register_problem(
        self,
        problem_name: str,
        problem_space: Mapping[str, Any],
        *,
        uid: str = "",
        timestamp: float | None = None,
    ) -> bool:
        """Install (or refresh, newest-wins) one problem's space document.

        The registered ``problem_space`` defines both the eligible-record
        filter the build applies and the :class:`Space` used to vectorize
        configurations — it must match the client's meta description
        (clients verify via :func:`space_fingerprint`).  Raises
        ``ValueError`` for a space without a usable ``parameter_space``.
        """
        if not problem_name:
            raise ValueError("register_problem needs a problem_name")
        entries = (problem_space or {}).get("parameter_space") or []
        if not entries:
            raise ValueError("problem_space has no parameter_space block")
        Space.from_list(entries)  # raises on malformed entries
        if timestamp is None:
            timestamp = self.repository._now()
        doc = {
            "problem_name": problem_name,
            "problem_space": dict(problem_space),
            "uid": uid,
            "timestamp": float(timestamp),
        }
        return self.apply_problem(doc)

    def apply_problem(self, doc: Mapping[str, Any]) -> bool:
        """Newest-wins upsert of a problem document (registration or
        replication/healing); returns whether the store changed."""
        name = doc["problem_name"]
        coll = self.repository.store[REGISTRY_PROBLEMS]
        existing = coll.find_one({"problem_name": name})
        ts = float(doc.get("timestamp", 0.0))
        if existing is not None and float(existing.get("timestamp", 0.0)) >= ts:
            return False
        clean = {k: v for k, v in doc.items() if k != "_id"}
        coll.delete({"problem_name": name})
        coll.insert(clean)
        with self._lock:
            self._space_cache.pop(name, None)
        return True

    def problem_doc(self, problem_name: str) -> dict[str, Any] | None:
        return self.repository.store[REGISTRY_PROBLEMS].find_one(
            {"problem_name": problem_name}
        )

    def _space_for(
        self, problem_name: str
    ) -> tuple[Space, str, dict[str, Any]] | None:
        """(Space, fingerprint, problem_space) for a registered problem."""
        doc = self.problem_doc(problem_name)
        if doc is None:
            return None
        ts = float(doc.get("timestamp", 0.0))
        with self._lock:
            cached = self._space_cache.get(problem_name)
            if cached is not None and cached[0] == ts:
                return cached[1], cached[2], cached[3]
        ps = dict(doc.get("problem_space", {}))
        space = Space.from_list(ps.get("parameter_space") or [])
        fp = space_fingerprint(ps)
        with self._lock:
            self._space_cache[problem_name] = (ts, space, fp, ps)
        return space, fp, ps

    def problem_space(self, problem_name: str) -> Space | None:
        resolved = self._space_for(problem_name)
        return resolved[0] if resolved is not None else None

    # -- write-side notifications --------------------------------------------
    def notify_record(self, record: PerformanceRecord) -> None:
        """One record was uploaded to this shard's repository."""
        if record.output is None or record.accessibility.level != "public":
            return
        tk = repr(task_key(record.task_parameters))
        self.versions.bump(record.problem_name, tk)
        self.builder.notify(record.problem_name, dict(record.task_parameters), tk)

    def notify_docs(self, docs: list[Mapping[str, Any]]) -> None:
        """Records arrived below the upload path (replication / healing)."""
        for doc in docs:
            if not record_counts(doc):
                continue
            task = dict(doc.get("task_parameters", {}))
            tk = repr(task_key(task))
            self.versions.bump(doc.get("problem_name", ""), tk)
            self.builder.notify(doc.get("problem_name", ""), task, tk)

    # -- building ------------------------------------------------------------
    def _eligible_docs(
        self,
        problem_name: str,
        problem_space: Mapping[str, Any],
        task_parameters: Mapping[str, Any],
    ) -> list[dict[str, Any]]:
        """The build's record set, selected exactly like the client's
        fit-locally path: problem-space filter, timestamp sort, then task
        grouping by :func:`task_key` — restricted to public records."""
        flt = build_filter(problem_name, problem_space, None, require_success=True)
        coll = self.repository.store[_RECORDS]
        target = repr(task_key(task_parameters))
        with coll.columnar_snapshot() as view:
            if view is not None:
                docs = self._eligible_columnar(view, flt, target)
                if docs is not None:
                    perf.incr("store_columnar_queries")
                    perf.incr("store_zero_copy_reads")
                    return docs
                perf.incr("store_row_fallbacks")
        docs = coll.find(flt, sort="timestamp", frozen=True)
        return [
            d
            for d in docs
            if record_counts(d)
            and repr(task_key(d.get("task_parameters", {}))) == target
        ]

    def _eligible_columnar(self, view, flt, target):
        """One fused mask: filter AND :func:`record_counts` AND exact
        task-key match, then a stable timestamp sort — zero copies."""
        mask = view.filter_mask(flt)
        if mask is None:
            return None
        try:
            public = view.path_value_mask(
                "accessibility",
                lambda v: (v or {}).get("level", "public") == "public",
            )
            task = view.path_value_mask(
                "task_parameters",
                lambda v: repr(task_key(v if v is not None else {})) == target,
            )
        except (TypeError, AttributeError, ValueError):
            # a malformed stored block: the row path decides whether the
            # offending record is even reached
            return None
        failed = view.path_eq_mask("output", None)
        if public is None or task is None or failed is None:
            return None
        return view.select(mask & public & ~failed & task, sort="timestamp", frozen=True)

    def build(
        self, problem_name: str, task_parameters: Mapping[str, Any]
    ) -> RegistryEntry | None:
        """Fit + freeze + persist one ``(problem, task)`` entry.

        Returns ``None`` (without touching the store) when the problem is
        unregistered or has too few eligible samples.  Deterministic:
        fixed kernel/seed over timestamp-sorted records, so the entry's
        bytes are a function of the record set alone.
        """
        resolved = self._space_for(problem_name)
        if resolved is None:
            return None
        space, fp, ps = resolved
        tk = repr(task_key(task_parameters))
        with self._build_lock:
            docs = self._eligible_docs(problem_name, ps, task_parameters)
            if len(docs) < max(2, self.options.min_samples):
                return None
            X = space.to_unit_array([d["tuning_parameters"] for d in docs])
            y = np.array([d["output"] for d in docs], dtype=float)
            kind = resolve_surrogate_kind(
                self.options.surrogate, len(docs), self.options.n_dense_max
            )
            if kind == "dense":
                gp = GaussianProcess(
                    kernel_from_name(self.options.kernel, space.dim),
                    n_restarts=1,
                    seed=self.options.seed,
                )
            else:
                gp = make_surrogate(
                    kind,
                    self.options.kernel,
                    seed=self.options.seed,
                    n_restarts=1,
                    n_inducing=self.options.n_inducing,
                    leaf_size=self.options.leaf_size,
                )
            with perf.timer("registry_build"):
                gp.fit(X, y)
            entry = RegistryEntry(
                problem_name=problem_name,
                task_parameters=dict(task_parameters),
                task_key=tk,
                data_version=len(docs),
                n_samples=len(docs),
                kernel=self.options.kernel,
                seed=self.options.seed,
                model=gp.to_dict(),
                timestamp=float(docs[-1].get("timestamp", 0.0)),
                space_fingerprint=fp,
            )
            coll = self.repository.store[REGISTRY_MODELS]
            coll.delete({"problem_name": problem_name, "task_key": tk})
            coll.insert(entry.to_doc())
            self._install_resident(entry, gp)
            self.builder.note_built(problem_name, tk)
            perf.incr("registry_builds")
        return entry

    def apply_entry(self, doc: Mapping[str, Any]) -> bool:
        """Upsert a replicated/healed entry document, newest-wins by
        ``(data_version, timestamp)``; returns whether the store changed."""
        name, tk = doc["problem_name"], doc["task_key"]
        coll = self.repository.store[REGISTRY_MODELS]
        existing = coll.find_one({"problem_name": name, "task_key": tk})
        incoming = (int(doc.get("data_version", 0)), float(doc.get("timestamp", 0.0)))
        if existing is not None:
            held = (
                int(existing.get("data_version", 0)),
                float(existing.get("timestamp", 0.0)),
            )
            if held >= incoming:
                return False
        clean = {k: v for k, v in doc.items() if k != "_id"}
        coll.delete({"problem_name": name, "task_key": tk})
        coll.insert(clean)
        with self._lock:
            self._resident.pop((name, tk), None)
            perf.gauge("registry_models_resident", len(self._resident))
        return True

    # -- serving -------------------------------------------------------------
    def entry_for(
        self, problem_name: str, task_parameters: Mapping[str, Any]
    ) -> RegistryEntry | None:
        doc = self.repository.store[REGISTRY_MODELS].find_one(
            {
                "problem_name": problem_name,
                "task_key": repr(task_key(task_parameters)),
            }
        )
        return RegistryEntry.from_doc(doc) if doc is not None else None

    def _install_resident(self, entry: RegistryEntry, gp: Any) -> Any:
        from ..core.frozen import frozen_view

        predictor = frozen_view(gp) or gp
        key = (entry.problem_name, entry.task_key)
        with self._lock:
            self._resident[key] = (
                entry.data_version,
                entry.timestamp,
                predictor,
                entry,
            )
            self._resident.move_to_end(key)
            while len(self._resident) > max(1, self.options.max_resident):
                self._resident.popitem(last=False)
            perf.gauge("registry_models_resident", len(self._resident))
        return predictor

    def _predictor_for(self, entry: RegistryEntry) -> Any:
        """The resident frozen predictor of one entry (LRU, doc-validated:
        a healed/rebuilt entry evicts the stale resident automatically)."""
        key = (entry.problem_name, entry.task_key)
        with self._lock:
            cached = self._resident.get(key)
            if cached is not None and cached[:2] == (
                entry.data_version,
                entry.timestamp,
            ):
                self._resident.move_to_end(key)
                return cached[2]
        gp = surrogate_from_dict(entry.model)
        return self._install_resident(entry, gp)

    def _serve(
        self, problem_name: str, task_parameters: Mapping[str, Any]
    ) -> tuple[RegistryEntry, Any, bool]:
        """(entry, predictor, stale) for a read; builds on first demand.

        Raises ``LookupError`` when no entry exists and none can be built
        (unregistered problem / not enough samples yet).
        """
        entry = self.entry_for(problem_name, task_parameters)
        if entry is None:
            entry = self.build(problem_name, task_parameters)
            if entry is None:
                raise LookupError(
                    f"no registry model for problem {problem_name!r}, "
                    f"task {dict(task_parameters)!r}"
                )
        else:
            perf.incr("registry_hits")
        predictor = self._predictor_for(entry)
        current = self.versions.get(problem_name, entry.task_key)
        stale = entry.data_version < current
        if stale:
            perf.incr("registry_stale_served")
        return entry, predictor, stale

    def _response_base(self, entry: RegistryEntry, stale: bool) -> dict[str, Any]:
        return {
            "data_version": int(entry.data_version),
            "n_samples": int(entry.n_samples),
            "stale": bool(stale),
            "space_fingerprint": entry.space_fingerprint,
        }

    def predict(
        self,
        problem_name: str,
        task_parameters: Mapping[str, Any],
        configurations: list[Mapping[str, Any]],
    ) -> dict[str, Any]:
        """Batched posterior mean/std at the given configurations."""
        entry, predictor, stale = self._serve(problem_name, task_parameters)
        space = self.problem_space(problem_name)
        if space is None:  # entry healed in, problem doc not (yet)
            raise LookupError(f"problem {problem_name!r} is not registered")
        X = space.to_unit_array(configurations)
        mean, std = predictor.predict(X)
        perf.incr("registry_predict_batches")
        out = self._response_base(entry, stale)
        out["mean"] = [float(v) for v in np.asarray(mean).ravel()]
        out["std"] = [float(v) for v in np.asarray(std).ravel()]
        return out

    def model_meta(
        self,
        problem_name: str,
        task_parameters: Mapping[str, Any],
        *,
        include_model: bool = False,
    ) -> dict[str, Any]:
        """Entry metadata; with ``include_model`` the portable snapshot
        too, so a client can reconstruct the exact served GP locally."""
        entry, _, stale = self._serve(problem_name, task_parameters)
        out = self._response_base(entry, stale)
        out.update(entry.meta())
        if include_model:
            out["model"] = dict(entry.model)
        return out

    def sensitivity(
        self,
        problem_name: str,
        task_parameters: Mapping[str, Any],
        *,
        n_base: int = 1024,
        n_bootstrap: int = 100,
        seed: int | None = None,
        include_model: bool = False,
    ) -> dict[str, Any]:
        """Sobol' indices of the frozen surrogate's posterior mean.

        Reuses the registry model instead of refitting a fresh GP the
        way :class:`~repro.sensitivity.analyzer.SensitivityAnalyzer`
        does — the analysis itself (Saltelli design + bootstrap) runs
        server-side on the frozen predictor.
        """
        from ..sensitivity.sobol import sobol_analyze_function

        entry, predictor, stale = self._serve(problem_name, task_parameters)
        space = self.problem_space(problem_name)
        if space is None:
            raise LookupError(f"problem {problem_name!r} is not registered")
        indices = sobol_analyze_function(
            lambda X: np.asarray(predictor.predict(X)[0]),
            space.dim,
            n_base=n_base,
            names=space.names,
            n_bootstrap=n_bootstrap,
            seed=seed,
        )
        out = self._response_base(entry, stale)
        out.update(
            {
                "names": list(indices.names),
                "S1": indices.S1.tolist(),
                "ST": indices.ST.tolist(),
                "S1_conf": indices.S1_conf.tolist(),
                "ST_conf": indices.ST_conf.tolist(),
                "variance": float(indices.variance),
                "n_base": int(indices.n_base),
            }
        )
        if include_model:
            out["model"] = dict(entry.model)
        return out

    # -- lifecycle -----------------------------------------------------------
    def resident_count(self) -> int:
        with self._lock:
            return len(self._resident)

    def flush(self, timeout_s: float = 30.0) -> bool:
        """Wait for queued background builds (no-op in sync mode)."""
        return self.builder.flush(timeout_s)

    def close(self) -> None:
        self.builder.close()
