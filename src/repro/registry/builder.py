"""Write-side build scheduling: debounce + optional background thread.

The builder never fits anything itself — it decides *when* the
registry's build function runs.  Record uploads call :meth:`notify`;
a key becomes due when ``min_new_samples`` notifications accumulated
since its last build, or (with ``max_staleness_s``) when the last build
is old enough.  In synchronous mode (the default, and what the tests
pin) the build runs inline on the notifying thread — the upload request
pays for the refit, reads stay pure.  In background mode due keys are
queued and a daemon worker drains them, so uploads return immediately
and reads may briefly serve the previous (stale-counted) entry.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Callable, Mapping

from ..core import perf

__all__ = ["RegistryBuilder"]


class RegistryBuilder:
    """Debounced build trigger around a ``build(problem, task)`` callable."""

    def __init__(
        self,
        build: Callable[[str, Mapping[str, Any]], Any],
        *,
        min_new_samples: int = 1,
        max_staleness_s: float | None = None,
        background: bool = False,
        clock: Callable[[], float] | None = None,
    ) -> None:
        if min_new_samples < 1:
            raise ValueError("min_new_samples must be >= 1")
        if max_staleness_s is not None and max_staleness_s <= 0:
            raise ValueError("max_staleness_s must be positive")
        import time

        self._build = build
        self.min_new_samples = int(min_new_samples)
        self.max_staleness_s = max_staleness_s
        self.background = bool(background)
        self._clock = clock if clock is not None else time.monotonic
        self._lock = threading.Lock()
        #: (problem, task_key) -> notifications since the last build
        self._pending: dict[tuple[str, str], int] = {}
        self._last_built: dict[tuple[str, str], float] = {}
        #: queued background builds, deduplicated by key (FIFO)
        self._queue: OrderedDict[tuple[str, str], tuple[str, dict[str, Any]]] = (
            OrderedDict()
        )
        self._cv = threading.Condition(self._lock)
        self._building = 0
        self._stop = False
        self._thread: threading.Thread | None = None
        if self.background:
            self._thread = threading.Thread(
                target=self._worker, name="registry-builder", daemon=True
            )
            self._thread.start()

    # -- write-side trigger --------------------------------------------------
    def notify(
        self, problem_name: str, task_parameters: Mapping[str, Any], task_key: str
    ) -> bool:
        """Record one new eligible sample; returns whether a build was due."""
        key = (problem_name, task_key)
        with self._lock:
            pending = self._pending.get(key, 0) + 1
            self._pending[key] = pending
            last = self._last_built.get(key)
        due = pending >= self.min_new_samples
        if (
            not due
            and self.max_staleness_s is not None
            and last is not None
            and self._clock() - last >= self.max_staleness_s
        ):
            due = True
        if not due:
            return False
        if self.background:
            with self._cv:
                self._queue[key] = (problem_name, dict(task_parameters))
                self._queue.move_to_end(key)
                self._cv.notify()
        else:
            self._build(problem_name, dict(task_parameters))
        return True

    def note_built(self, problem_name: str, task_key: str) -> None:
        """Reset the debounce state of one key (a build just succeeded)."""
        key = (problem_name, task_key)
        with self._lock:
            self._pending[key] = 0
            self._last_built[key] = self._clock()

    def pending(self, problem_name: str, task_key: str) -> int:
        with self._lock:
            return self._pending.get((problem_name, task_key), 0)

    # -- background worker ---------------------------------------------------
    def _worker(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stop:
                    self._cv.wait()
                if self._stop and not self._queue:
                    return
                _, (problem, task) = self._queue.popitem(last=False)
                self._building += 1
            try:
                self._build(problem, task)
            except Exception:  # one bad build must not kill the worker
                perf.incr("registry_build_errors")
            finally:
                with self._cv:
                    self._building -= 1
                    self._cv.notify_all()

    def flush(self, timeout_s: float = 30.0) -> bool:
        """Block until queued background builds finished (tests/shutdown)."""
        if not self.background:
            return True
        deadline = self._clock() + timeout_s
        with self._cv:
            while self._queue or self._building:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    return False
                self._cv.wait(timeout=min(remaining, 0.1))
        return True

    def close(self) -> None:
        if self._thread is None:
            return
        with self._cv:
            self._stop = True
            self._cv.notify_all()
        self._thread.join()
        self._thread = None
