"""Frozen surrogate-model registry serving the crowd read path.

The registry removes the per-query GP refits from the crowd prediction
utilities: each ``(problem_name, task)`` surrogate is fitted once per
data version on the write side (debounced by
:class:`~repro.registry.builder.RegistryBuilder`), frozen, persisted
through the owning shard's WAL, and served as batched vectorized
predictions from a resident :class:`~repro.tla.store.FrozenGP`.

Entry points:

* :class:`ModelRegistry` / :class:`RegistryOptions` — the subsystem,
  attached per shard (``CrowdShard(..., registry=RegistryOptions())``
  or ``build_service(..., registry=...)``).
* :class:`RegistryEntry` — the stored document schema.
* :class:`DataVersionTracker` — per-key eligible-record counters.
* :func:`space_fingerprint` — the registered-space hash clients use to
  confirm a served model answers *their* query semantics.
"""

from .builder import RegistryBuilder
from .entry import (
    REGISTRY_MODELS,
    REGISTRY_PROBLEMS,
    RegistryEntry,
    record_counts,
    space_fingerprint,
)
from .registry import ModelRegistry, RegistryOptions
from .versions import DataVersionTracker

__all__ = [
    "REGISTRY_MODELS",
    "REGISTRY_PROBLEMS",
    "DataVersionTracker",
    "ModelRegistry",
    "RegistryBuilder",
    "RegistryEntry",
    "RegistryOptions",
    "record_counts",
    "space_fingerprint",
]
