"""Per-``(problem, task)`` data-version counters.

The registry's staleness story hangs off one number per key: how many
eligible records the shard currently holds.  Uploads (and replicated /
healed records) bump it; a built entry remembers the version it was fit
at; serving compares the two.  The tracker is rebuilt from a store scan
at construction, which makes it automatically correct after WAL/snapshot
crash recovery — the counter *is* the record count, not a separate piece
of durable state that could diverge from it.
"""

from __future__ import annotations

import threading

__all__ = ["DataVersionTracker"]


class DataVersionTracker:
    """Thread-safe eligible-record counters keyed by (problem, task_key)."""

    def __init__(self) -> None:
        self._versions: dict[tuple[str, str], int] = {}
        self._lock = threading.Lock()

    def bump(self, problem_name: str, task_key: str, n: int = 1) -> int:
        """Advance one key's version by ``n``; returns the new version."""
        key = (problem_name, task_key)
        with self._lock:
            version = self._versions.get(key, 0) + int(n)
            self._versions[key] = version
            return version

    def get(self, problem_name: str, task_key: str) -> int:
        with self._lock:
            return self._versions.get((problem_name, task_key), 0)

    def keys(self, problem_name: str | None = None) -> list[tuple[str, str]]:
        """Tracked keys (optionally one problem's), deterministic order."""
        with self._lock:
            keys = list(self._versions)
        if problem_name is not None:
            keys = [k for k in keys if k[0] == problem_name]
        return sorted(keys)

    def __len__(self) -> int:
        with self._lock:
            return len(self._versions)
