"""ScaLAPACK PDGEQRF performance model (system S24, paper Sec. VI-B).

PDGEQRF is ScaLAPACK's distributed-memory Householder QR factorization of
an ``m x n`` matrix over a ``p x q`` block-cyclic process grid.  The model
walks the algorithm's panel loop and charges, per panel:

* panel factorization — a latency-bound column-by-column phase on the
  ``p`` ranks of the panel column (flops at sub-GEMM rate + one
  column-norm allreduce per column),
* panel broadcast along process rows (binomial tree over ``q`` ranks),
* the T-matrix / W-matrix broadcasts along columns,
* the trailing-matrix update — the GEMM-rich bulk, derated by a
  block-size-dependent kernel efficiency and the block-cyclic load
  imbalance of the *remaining* trailing matrix.

Tuning parameters follow the paper's Table II exactly:

=============  =====================================================
``mb``         row block size is ``8 * mb``, integer in [1, 16)
``nb``         column block size is ``8 * nb``, integer in [1, 16)
``lg2npernode`` MPI ranks per node is ``2**lg2npernode``
``p``          process-grid rows, integer in [1, nodes*cores)
=============  =====================================================

``q`` is derived as ``floor(P / p)`` where ``P = nodes * 2**lg2npernode``
— configurations with ``p > P`` are infeasible, and grids that use only a
fraction of the allocated ranks leave the rest idle, both behaviours the
paper's setup implies.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core.space import IntegerParameter, Space
from ..hpc.machine import Machine, cori_haswell
from ..hpc.mpi import CostComm
from ..hpc.procgrid import grid_for_rows, load_imbalance
from .base import HPCApplication

__all__ = ["PDGEQRF"]


class PDGEQRF(HPCApplication):
    """Distributed QR factorization runtime model on a given machine."""

    name = "PDGEQRF"
    noise_sigma = 0.04

    #: fraction of peak the panel factorization achieves (BLAS-2 bound)
    PANEL_EFFICIENCY = 0.08
    #: global calibration to the paper's measured Cori scale (Fig. 4 reports
    #: tuned runtimes of 2.8-4.4 s for m=n=10000 on 8 Haswell nodes)
    CALIBRATION = 4.2
    #: GEMM efficiency saturation half-point (in columns of block size)
    GEMM_HALF_BLOCK = 40.0

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine if machine is not None else cori_haswell(8)

    # -- spaces ------------------------------------------------------------
    def input_space(self) -> Space:
        return Space(
            [
                IntegerParameter("m", 1000, 50001),
                IntegerParameter("n", 1000, 50001),
            ]
        )

    def parameter_space(self) -> Space:
        cores = self.machine.cores_per_node
        max_lg2 = max(int(math.log2(cores)), 1)
        return Space(
            [
                IntegerParameter("mb", 1, 16),
                IntegerParameter("nb", 1, 16),
                IntegerParameter("lg2npernode", 0, max_lg2 + 1),
                IntegerParameter("p", 1, self.machine.nodes * cores),
            ]
        )

    def default_task(self) -> dict[str, Any]:
        return {"m": 10000, "n": 10000}

    # -- feasibility -----------------------------------------------------------
    def constraint(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> bool:
        npernode = 2 ** int(config["lg2npernode"])
        total = self.machine.nodes * npernode
        return int(config["p"]) <= total

    # -- model --------------------------------------------------------------
    def raw_objective(
        self, task: Mapping[str, Any], config: Mapping[str, Any]
    ) -> float | None:
        m, n = int(task["m"]), int(task["n"])
        br = 8 * int(config["mb"])  # row block
        bc = 8 * int(config["nb"])  # column block
        npernode = 2 ** int(config["lg2npernode"])
        total_ranks = self.machine.nodes * npernode
        grid = grid_for_rows(total_ranks, int(config["p"]))
        if grid is None:
            return None
        p, q = grid.p, grid.q

        # per-rank memory: local matrix panel + workspace
        mem_per_rank = 8.0 * m * n / grid.size * 1.15
        if mem_per_rank * min(npernode, grid.size) > self.machine.mem_per_node:
            return None

        comm = CostComm(self.machine, grid.size, ranks_per_node=npernode)
        # single-rank dense rate, derated when many ranks share a node's BW
        contention = 1.0 + 0.3 * (npernode / self.machine.cores_per_node)
        core_rate = self.machine.flops_per_core / contention
        gemm_eff = bc / (bc + self.GEMM_HALF_BLOCK)

        k = min(m, n)
        n_panels = math.ceil(k / bc)
        t_total = 0.0
        for j in range(n_panels):
            cols = min(bc, k - j * bc)
            m_j = m - j * bc
            n_j = n - (j + 1) * bc
            rows_local = m_j / p
            # panel factorization: BLAS-2 on the p ranks owning the panel,
            # one norm-allreduce per column
            t_panel = (2.0 * rows_local * cols * cols) / (
                core_rate * self.PANEL_EFFICIENCY
            )
            t_panel += cols * comm.allreduce(8.0 * cols, group_size=p)
            # panel broadcast along the process row (Householder vectors)
            t_bcast = comm.bcast(8.0 * rows_local * cols, group_size=q)
            # W/T broadcast along the process column
            if n_j > 0:
                t_bcast += comm.bcast(8.0 * (n_j / q) * cols, group_size=p)
            # trailing update: 4 * m_j * n_j * cols flops over the grid
            t_update = 0.0
            if n_j > 0:
                imbalance = load_imbalance(m_j, br, p) * load_imbalance(n_j, bc, q)
                flops_per_rank = 4.0 * m_j * n_j * cols / grid.size * imbalance
                t_update = flops_per_rank / (core_rate * gemm_eff)
            t_total += t_panel + t_bcast + t_update
        return t_total * self.CALIBRATION
