"""Synthetic objective functions from the paper's Sec. VI-A (system S23).

Two functions used by prior autotuning literature [8], [22] and by the
paper's Figure 3 TLA comparison:

* :class:`DemoFunction` — GPTune's explicit demo objective with one task
  parameter ``t`` and one tuning parameter ``x``:

      y(t, x) = 1 + exp(-(x+1)^(t+1)) * cos(2 pi x)
                    * sum_{i=1..3} sin(2 pi x (t+2)^i)

* :class:`BraninFunction` — the generalized Branin family with six task
  parameters ``(a, b, c, r, s, t)`` and two tuning parameters
  ``(x1, x2)``:

      y = a (x2 - b x1^2 + c x1 - r)^2 + s (1 - t) cos(x1) + s

  Task ranges bracket the classic Branin constants
  (a=1, b=5.1/(4 pi^2), c=5/pi, r=6, s=10, t=1/(8 pi)), so randomly drawn
  source/target tasks (the paper's S1-S3 / T1-T2) are correlated but not
  identical — exactly the transfer-learning regime.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core.space import RealParameter, Space
from .base import HPCApplication

__all__ = ["DemoFunction", "BraninFunction", "BRANIN_CLASSIC_TASK"]

_PI = math.pi

#: the classic Branin constants, center of the task ranges below
BRANIN_CLASSIC_TASK: dict[str, float] = {
    "a": 1.0,
    "b": 5.1 / (4.0 * _PI**2),
    "c": 5.0 / _PI,
    "r": 6.0,
    "s": 10.0,
    "t": 1.0 / (8.0 * _PI),
}


class DemoFunction(HPCApplication):
    """GPTune's 1-D demo objective (paper Fig. 3 (a)-(b))."""

    name = "demo"
    output_name = "y"
    noise_sigma = 0.0  # the paper's synthetic study is noiseless

    def input_space(self) -> Space:
        return Space([RealParameter("t", 0.0, 10.0)])

    def parameter_space(self) -> Space:
        return Space([RealParameter("x", 0.0, 1.0)])

    def raw_objective(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> float:
        t = float(task["t"])
        x = float(config["x"])
        envelope = math.exp(-((x + 1.0) ** (t + 1.0)))
        waves = sum(math.sin(2.0 * _PI * x * (t + 2.0) ** i) for i in (1, 2, 3))
        return 1.0 + envelope * math.cos(2.0 * _PI * x) * waves

    def default_task(self) -> dict[str, Any]:
        return {"t": 1.0}

    def fidelity_bias(self, task, config, fraction: float) -> float:
        """A vanishing high-frequency perturbation: low-fidelity
        evaluations see a slightly different landscape, so rankings are
        correlated-but-imperfect across fidelities (the multi-fidelity
        benchmark convention)."""
        x = float(config["x"])
        return 0.12 * (1.0 - fraction) * math.sin(7.0 * _PI * x)


class BraninFunction(HPCApplication):
    """Generalized Branin family (paper Fig. 3 (c)-(f))."""

    name = "branin"
    output_name = "y"
    noise_sigma = 0.0

    def input_space(self) -> Space:
        classic = BRANIN_CLASSIC_TASK
        return Space(
            [
                RealParameter("a", 0.5 * classic["a"], 1.5 * classic["a"]),
                RealParameter("b", 0.5 * classic["b"], 1.5 * classic["b"]),
                RealParameter("c", 0.5 * classic["c"], 1.5 * classic["c"]),
                RealParameter("r", 0.5 * classic["r"], 1.5 * classic["r"]),
                RealParameter("s", 0.5 * classic["s"], 1.5 * classic["s"]),
                RealParameter("t", 0.5 * classic["t"], 1.5 * classic["t"]),
            ]
        )

    def parameter_space(self) -> Space:
        return Space(
            [
                RealParameter("x1", -5.0, 10.0),
                RealParameter("x2", 0.0, 15.0),
            ]
        )

    def raw_objective(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> float:
        a, b, c = float(task["a"]), float(task["b"]), float(task["c"])
        r, s, t = float(task["r"]), float(task["s"]), float(task["t"])
        x1, x2 = float(config["x1"]), float(config["x2"])
        return a * (x2 - b * x1**2 + c * x1 - r) ** 2 + s * (1.0 - t) * math.cos(x1) + s

    def default_task(self) -> dict[str, Any]:
        return dict(BRANIN_CLASSIC_TASK)
