"""SuperLU_DIST 3D communication-avoiding LU model (system S27).

The 3D algorithm (Sao, Li, Vuduc [23]) replicates the 2D process grid
``Pz = 2^npz`` times along a third axis: subtrees of the elimination
forest are factored redundantly per layer, trading memory for greatly
reduced inter-process communication (volume shrinks roughly with
``sqrt(Pz)``, latency with ``Pz``), at the cost of per-layer memory
duplication and an ancestor-reduction step.

NIMROD (system S29) uses this model for every block-Jacobi
preconditioner block; it is also usable standalone.  All costs are
derived for a sparse system of ``n`` unknowns with ``nnz_f`` factor
nonzeros on a :class:`~repro.hpc.procgrid.Grid3D`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..hpc.machine import Machine
from ..hpc.mpi import CostComm
from ..hpc.procgrid import Grid3D
from .sparse import supernode_gemm_efficiency

__all__ = ["SuperLU3DModel", "Factor3DCost"]


@dataclass(frozen=True)
class Factor3DCost:
    """Breakdown of one 3D factorization + its per-solve cost."""

    factor_seconds: float
    solve_seconds: float  # one triangular solve (fw + bw)
    mem_per_rank: float  # bytes

    @property
    def total_for(self) -> float:  # pragma: no cover - convenience
        return self.factor_seconds


class SuperLU3DModel:
    """Cost model of one 3D sparse LU on a machine allocation."""

    #: triangular solves run at a small fraction of peak (latency bound)
    SOLVE_EFFICIENCY = 0.08

    def __init__(self, machine: Machine) -> None:
        self.machine = machine

    def factorization(
        self,
        n: int,
        grid: Grid3D,
        *,
        nsup: int,
        nrel: int,
        fill_factor: float = 30.0,
        ranks_per_node: int | None = None,
    ) -> Factor3DCost:
        """Factor an ``n``-unknown 2D-mesh-like system on ``grid``.

        ``fill_factor`` approximates nnz(L+U)/n; 2D-plane problems
        factored with nested dissection have ``O(n log n)`` fill and
        ``O(n^1.5)`` flops, which the defaults encode.
        """
        if n < 1:
            raise ValueError("n must be >= 1")
        nnz_f = fill_factor * n * max(math.log2(max(n, 2)) / 10.0, 1.0)
        flops = 6.0 * n**1.5 * max(fill_factor / 10.0, 1.0)

        plane = grid.plane
        pz = grid.z
        comm = CostComm(self.machine, grid.size, ranks_per_node=ranks_per_node)

        gemm_eff = supernode_gemm_efficiency(nsup, nrel, n=min(n, 8192), half_point=96.0)
        # problem-size-dependent supernode sweet spot: small supernodes
        # starve BLAS-3 on large fronts, oversized ones wreck the 2D
        # block load balance.  The optimum shifts with the problem size —
        # exactly the knowledge TLA transfers across tasks in Fig. 5.
        nsup_opt = min(max(40.0 * math.log2(max(n, 1) / 1e6) + 130.0, 50.0), 280.0)
        gemm_eff *= 0.30 + 0.70 * math.exp(-0.5 * ((nsup - nsup_opt) / 45.0) ** 2)
        rate = self.machine.sparse_flops_per_core * plane.size
        # compute: common subtrees are replicated (no speedup from Pz),
        # ancestors split across layers; net effect ~ 1/(0.5 + 0.5/pz)
        layer_speedup = 1.0 / (0.55 + 0.45 / pz)
        t_compute = flops / (rate * gemm_eff / 0.45) / layer_speedup

        # communication: per-supernode panel broadcasts on the 2D plane,
        # reduced by the 3D replication; plus the ancestor reduction
        n_steps = max(n // max(min(nsup, 128), 8), 1)
        bytes_per_step = 8.0 * nnz_f / n_steps
        t_comm_2d = n_steps * (
            comm.bcast(bytes_per_step / plane.q, group_size=plane.q)
            + comm.bcast(bytes_per_step / plane.p, group_size=plane.p)
        )
        # 2D strong-scaling bottleneck: per-step synchronization across the
        # whole plane (the latency wall the 3D algorithm exists to avoid)
        t_comm_2d += 1.1 * n_steps * (plane.p + plane.q) * comm.machine.network.alpha
        t_comm_2d /= math.sqrt(pz)
        t_reduce = comm.reduce(8.0 * nnz_f / plane.size, group_size=pz) if pz > 1 else 0.0

        # memory: each z-layer's plane.size ranks hold a full copy of the
        # common elimination subtrees (~half the factor) plus their share
        # of the ancestors, so per-rank memory *grows* with replication
        mem = 8.0 * nnz_f * (0.5 + 0.5 * pz) / plane.size * 2.2

        # one triangular solve (forward+backward) per GMRES iteration
        t_solve = (
            4.0 * nnz_f / (rate * self.SOLVE_EFFICIENCY / 0.45)
            + 2.0 * n_steps * comm.stats.seconds / max(n_steps, 1) * 0.02
        )
        return Factor3DCost(
            factor_seconds=t_compute + t_comm_2d + t_reduce,
            solve_seconds=t_solve,
            mem_per_rank=mem,
        )
