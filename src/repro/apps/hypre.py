"""Hypre GMRES + BoomerAMG performance model (system S28, paper Sec. VI-E).

Models GMRES preconditioned with BoomerAMG solving the Poisson equation on
a structured ``nx x ny x nz`` grid, with the paper's twelve tuning
parameters (Table V).  Runtime decomposes the standard way:

    runtime = setup(coarsening, interpolation, aggressive levels)
            + iterations(convergence of the smoother/coarsening combo)
              * cycle_cost(operator complexity, smoother, communication)

The model's structure produces the paper's measured sensitivity profile:

* ``smooth_type`` and ``smooth_num_levels`` interact multiplicatively —
  a complex smoother only acts on the levels it is enabled for — giving
  the large total-effect, small first-order signature of Table V.
* ``agg_num_levels`` trades operator complexity (cheaper cycles) against
  convergence (more iterations): high S1 and ST.
* ``Py`` and ``Nproc`` shape communication surface and parallel speedup
  jointly; ``Px`` cuts the memory-contiguous direction, which costs
  almost nothing (Table V: Px ~ 0).
* The remaining BoomerAMG knobs (``strong_threshold``, ``trunc_factor``,
  ``P_max_elmts``, ``coarsen_type``, ``relax_type``, ``interp_type``)
  perturb setup/convergence by a few percent — measurable but minor,
  matching their near-zero indices.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.space import CategoricalParameter, IntegerParameter, RealParameter, Space
from ..hpc.machine import Machine, cori_haswell
from .base import HPCApplication

__all__ = ["HypreAMG", "HYPRE_DEFAULTS"]

#: smoother catalogue: (cycle-cost multiplier, convergence-rate factor)
_SMOOTHERS: dict[str, tuple[float, float]] = {
    "parasails": (1.5, 0.40),
    "none": (1.0, 1.00),
    "schwarz": (3.4, 0.34),
    "euclid": (3.0, 0.62),
    "pilut": (2.6, 0.95),
}

_COARSEN_TYPES = ["falgout", "pmis", "hmis", "ruge-stueben", "cgc", "cgc-e", "cljp", "mp"]
_RELAX_TYPES = ["jacobi", "gs-forward", "gs-backward", "hybrid-gs", "l1-gs", "chebyshev"]
_INTERP_TYPES = ["classical", "direct", "multipass", "extended+i", "standard", "ff", "ff1"]

#: BoomerAMG documented defaults — the values the paper's reduced tuning
#: pins the known-default parameters to (Fig. 7 caption)
HYPRE_DEFAULTS: dict[str, Any] = {
    "strong_threshold": 0.25,
    "trunc_factor": 0.0,
    "P_max_elmts": 4,
    "coarsen_type": "falgout",
    "relax_type": "hybrid-gs",
    "smooth_type": "schwarz",
    "smooth_num_levels": 0,
    "interp_type": "classical",
    "agg_num_levels": 0,
}


class HypreAMG(HPCApplication):
    """Runtime model of Hypre's IJ interface GMRES+BoomerAMG solve."""

    name = "Hypre"
    noise_sigma = 0.05

    #: GMRES target reduction (iterations = log(tol)/log(rho))
    TOL_LOG = -18.0  # ln(1e-8) ~= -18.4
    #: flops per grid point per V-cycle at unit operator complexity
    CYCLE_FLOPS = 90.0

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine if machine is not None else cori_haswell(1)

    # -- spaces --------------------------------------------------------------
    def input_space(self) -> Space:
        return Space(
            [
                IntegerParameter("nx", 10, 201),
                IntegerParameter("ny", 10, 201),
                IntegerParameter("nz", 10, 201),
            ]
        )

    def parameter_space(self) -> Space:
        return Space(
            [
                IntegerParameter("Px", 1, 32),
                IntegerParameter("Py", 1, 32),
                IntegerParameter("Nproc", 1, 32),
                RealParameter("strong_threshold", 0.0, 1.0),
                RealParameter("trunc_factor", 0.0, 1.0),
                IntegerParameter("P_max_elmts", 1, 12),
                CategoricalParameter("coarsen_type", list(_COARSEN_TYPES)),
                CategoricalParameter("relax_type", list(_RELAX_TYPES)),
                # ordered by net effect so the ordinal embedding is smooth
                CategoricalParameter(
                    "smooth_type", ["parasails", "none", "schwarz", "euclid", "pilut"]
                ),
                IntegerParameter("smooth_num_levels", 0, 5),
                CategoricalParameter("interp_type", list(_INTERP_TYPES)),
                IntegerParameter("agg_num_levels", 0, 5),
            ]
        )

    def default_task(self) -> dict[str, Any]:
        return {"nx": 100, "ny": 100, "nz": 100}

    # -- model ------------------------------------------------------------------
    def raw_objective(
        self, task: Mapping[str, Any], config: Mapping[str, Any]
    ) -> float | None:
        nx, ny, nz = int(task["nx"]), int(task["ny"]), int(task["nz"])
        n = nx * ny * nz
        px, py = int(config["Px"]), int(config["Py"])
        nproc = int(config["Nproc"])
        agg = int(config["agg_num_levels"])
        sm_levels = int(config["smooth_num_levels"])
        cost_mult, conv_factor = _SMOOTHERS[str(config["smooth_type"])]

        # --- process layout: ranks beyond the Px*Py*Pz box idle
        pz = max(nproc // max(px * py, 1), 1)
        p_used = min(px * py * pz, nproc)

        # --- operator complexity: aggressive coarsening thins the hierarchy
        agg_eff = min(agg, 3)
        c_op = 2.1 - 0.17 * agg_eff
        # small perturbations from the minor setup knobs
        st = float(config["strong_threshold"])
        c_op *= 1.0 + 0.02 * abs(st - 0.25)
        c_op *= 1.0 - 0.01 * (min(int(config["P_max_elmts"]), 8) / 8.0)

        # --- convergence: smoother strength applies on the smoothed levels
        rho = 0.55  # plain hybrid-GS V-cycle contraction for Poisson
        if sm_levels > 0:
            strength = min(sm_levels, 4) / 4.0
            rho = rho * (conv_factor**strength)
        # aggressive coarsening degrades convergence past 2 levels
        rho = min(rho * (1.0 + 0.04 * max(agg - 2, 0)), 0.93)
        rho *= 1.0 + 0.03 * (float(config["trunc_factor"]))
        rho *= {"jacobi": 1.04, "chebyshev": 0.99}.get(str(config["relax_type"]), 1.0)
        rho *= {"direct": 1.02, "multipass": 1.01}.get(str(config["interp_type"]), 1.0)
        iters = max(self.TOL_LOG / min(-0.03, float(__import__("math").log(rho))), 2.0)

        # --- per-iteration cost: AMG is memory-bandwidth bound on a node;
        # total bandwidth is shared, so Nproc mostly controls how well the
        # node's bandwidth is saturated (low sensitivity, as measured)
        bw_eff = (p_used + 3.0) / (p_used + 5.0)
        rate = self.machine.mem_bw_per_node / 8.0 * bw_eff  # values/s streamed
        smoother_work = 1.0
        if sm_levels > 0:
            # complex smoothers touch the operator on every smoothed level,
            # so their cost scales with the hierarchy's operator complexity
            smoother_work += (cost_mult - 1.0) * min(sm_levels, 4) / 4.0 * (
                c_op / 2.0
            )
        t_cycle = (self.CYCLE_FLOPS / 6.0) * n * c_op * smoother_work / rate

        # --- communication: y/z cuts exchange strided halo planes; the
        # x direction is memory-contiguous and nearly free
        net = self.machine.intranode  # single-node problem: shm transport
        halo_bytes = 8.0 * (nx * ny / max(pz, 1) + nx * nz / max(py, 1))
        levels = 6 - agg_eff
        t_halo = levels * (py + pz) * (net.alpha * 40 + halo_bytes * net.beta)
        t_cycle += t_halo

        # --- setup: hierarchy construction ~ 8 cycles' work, coarsening-
        # dependent
        setup_mult = {"pmis": 0.92, "hmis": 0.90, "cljp": 1.08, "mp": 1.05}.get(
            str(config["coarsen_type"]), 1.0
        )
        t_setup = 8.0 * self.CYCLE_FLOPS * n * c_op / rate * setup_mult

        return t_setup + iters * t_cycle
