"""Application-model interface (systems S23-S29).

Every evaluation target in the paper — synthetic functions, PDGEQRF,
SuperLU_DIST, Hypre, NIMROD — is an :class:`HPCApplication` here: a
deterministic performance model plus optional reproducible run-to-run
noise.

Determinism contract: ``raw_objective(task, config)`` is a pure function,
and the noisy objective draws its multiplicative log-normal factor from a
seed derived by hashing ``(app, task, config, machine, run)``.  The same
experiment with the same seed therefore reproduces bit-for-bit, while
different tuning repetitions (the paper runs each experiment 3-5 times
with different random seeds) see different noise.
"""

from __future__ import annotations

import hashlib
import json
import math
from abc import ABC, abstractmethod
from collections.abc import Mapping
from typing import Any

import numpy as np

from ..core.problem import TuningProblem
from ..core.space import OutputParameter, Space

__all__ = ["HPCApplication", "deterministic_seed"]


def deterministic_seed(*parts: Any) -> int:
    """A stable 64-bit seed from arbitrary JSON-serializable parts."""
    blob = json.dumps([_canon(p) for p in parts], sort_keys=True)
    digest = hashlib.sha256(blob.encode()).digest()
    return int.from_bytes(digest[:8], "little")


def _canon(obj: Any) -> Any:
    if isinstance(obj, Mapping):
        return {str(k): _canon(v) for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))}
    if isinstance(obj, (list, tuple)):
        return [_canon(v) for v in obj]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating, float)):
        return round(float(obj), 12)
    return obj


class HPCApplication(ABC):
    """A tunable application: spaces + deterministic performance model.

    Subclasses implement :meth:`input_space`, :meth:`parameter_space` and
    :meth:`raw_objective`; :meth:`make_problem` assembles the
    :class:`~repro.core.problem.TuningProblem` the tuners consume.

    ``noise_sigma`` is the standard deviation of the log-normal
    multiplicative measurement noise (0 disables noise entirely).
    """

    #: application name used in problem/crowd-record identifiers
    name: str = "application"
    #: objective output name (paper: measured runtime)
    output_name: str = "runtime"
    #: log-normal noise scale for measured outputs
    noise_sigma: float = 0.03

    # -- spaces ------------------------------------------------------------
    @abstractmethod
    def input_space(self) -> Space:
        """Task parameters (problem sizes etc.)."""

    @abstractmethod
    def parameter_space(self) -> Space:
        """Tuning parameters."""

    def output_space(self) -> Space:
        return Space([OutputParameter(self.output_name)])

    # -- model -------------------------------------------------------------
    @abstractmethod
    def raw_objective(
        self, task: Mapping[str, Any], config: Mapping[str, Any]
    ) -> float | None:
        """Noiseless model output; ``None`` marks an infeasible/failed run."""

    def constraint(self, task: Mapping[str, Any], config: Mapping[str, Any]) -> bool:
        """Fast feasibility predicate (cheaper than a failed evaluation)."""
        return True

    def default_task(self) -> dict[str, Any]:
        """A representative task, used by examples and quick tests."""
        rng = np.random.default_rng(0)
        return self.input_space().sample(rng)

    # -- problem assembly ------------------------------------------------------
    def objective(
        self, task: Mapping[str, Any], config: Mapping[str, Any], *, run: int = 0
    ) -> float | None:
        """Model output with reproducible measurement noise."""
        y = self.raw_objective(task, config)
        if y is None or not math.isfinite(y):
            return None
        if self.noise_sigma <= 0:
            return float(y)
        seed = deterministic_seed(self.name, dict(task), dict(config), run)
        factor = float(
            np.exp(np.random.default_rng(seed).normal(0.0, self.noise_sigma))
        )
        return float(y) * factor

    # -- multi-fidelity support (GPTuneBand extension) ---------------------
    def fidelity_bias(
        self, task: Mapping[str, Any], config: Mapping[str, Any], fraction: float
    ) -> float:
        """Systematic low-fidelity bias (0 for fidelity-exact models).

        Subclasses model what a cheap evaluation distorts: NIMROD's short
        runs over-weight startup transients; synthetic functions add a
        vanishing perturbation.  Must tend to 0 as ``fraction -> 1``.
        """
        del task, config, fraction
        return 0.0

    def fidelity_objective(
        self,
        task: Mapping[str, Any],
        config: Mapping[str, Any],
        fraction: float,
        *,
        run: int = 0,
    ) -> float | None:
        """Objective measured at reduced fidelity (cost ``fraction``).

        The estimate of the full-fidelity objective carries the
        subclass's systematic bias plus measurement noise amplified by
        ``1/sqrt(fraction)`` (averaging over fewer steps/samples).
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fidelity fraction must be in (0, 1], got {fraction}")
        y = self.raw_objective(task, config)
        if y is None or not math.isfinite(y):
            return None
        y = float(y) + self.fidelity_bias(task, config, fraction)
        sigma = self.noise_sigma / math.sqrt(fraction)
        if sigma <= 0:
            return y
        seed = deterministic_seed(
            self.name, dict(task), dict(config), run, round(float(fraction), 9)
        )
        factor = float(np.exp(np.random.default_rng(seed).normal(0.0, sigma)))
        return y * factor

    def make_problem(self, *, run: int = 0, noisy: bool = True) -> TuningProblem:
        """Bundle this application into a tuning problem.

        ``run`` differentiates measurement noise across repeated tuning
        experiments; ``noisy=False`` exposes the raw model (used by tests
        asserting model shape and by sensitivity ground-truth checks).
        """

        if noisy:
            objective = lambda task, config: self.objective(task, config, run=run)
        else:
            objective = self.raw_objective
        return TuningProblem(
            name=self.name,
            input_space=self.input_space(),
            parameter_space=self.parameter_space(),
            output_space=self.output_space(),
            objective=objective,
            constraint=self.constraint,
        )
