"""Application performance models (systems S23-S29).

The evaluation targets of the paper: two synthetic functions and the four
real HPC applications (ScaLAPACK PDGEQRF, SuperLU_DIST, Hypre, NIMROD),
each modeled as an :class:`~repro.apps.base.HPCApplication` over the
simulated machines of :mod:`repro.hpc`.
"""

from .base import HPCApplication, deterministic_seed
from .hypre import HYPRE_DEFAULTS, HypreAMG
from .nimrod import NIMROD
from .scalapack import PDGEQRF
from .sparse import (
    COLPERM_CHOICES,
    MATRIX_REGISTRY,
    SymbolicStats,
    get_matrix,
    laplacian_3d,
    parsec_like,
    symbolic_stats,
)
from .superlu import SUPERLU_DEFAULTS, SuperLUDist2D
from .superlu3d import Factor3DCost, SuperLU3DModel
from .synthetic import BRANIN_CLASSIC_TASK, BraninFunction, DemoFunction

__all__ = [
    "BRANIN_CLASSIC_TASK",
    "BraninFunction",
    "COLPERM_CHOICES",
    "DemoFunction",
    "Factor3DCost",
    "HPCApplication",
    "HYPRE_DEFAULTS",
    "HypreAMG",
    "MATRIX_REGISTRY",
    "NIMROD",
    "PDGEQRF",
    "SUPERLU_DEFAULTS",
    "SuperLU3DModel",
    "SuperLUDist2D",
    "SymbolicStats",
    "deterministic_seed",
    "get_matrix",
    "laplacian_3d",
    "parsec_like",
    "symbolic_stats",
]
