"""Synthetic sparse matrices + symbolic factorization stats (system S25).

The paper's SuperLU_DIST case study uses the PARSEC matrices Si5H12 and
H2O from the SuiteSparse collection — real-space pseudopotential DFT
Hamiltonians: structurally symmetric, dominated by a high-order 3D
stencil plus longer-range couplings.  SuiteSparse is not available
offline, so :func:`get_matrix` builds *PARSEC-like* analogues: a 3D
grid Laplacian-type stencil with seeded long-range bonds, scaled down to
keep factorizations laptop-fast.  The two analogues share the sparsity
class (as Si5H12 and H2O do — the paper exploits exactly this for
transfer of the sensitivity analysis), differing in size and bond
density.

Fill-in and factorization cost per column ordering come from an *actual*
SuperLU factorization: ``scipy.sparse.linalg.splu`` is serial SuperLU and
accepts the very ``permc_spec`` values that SuperLU_DIST's COLPERM tuning
parameter selects (NATURAL, MMD_ATA, MMD_AT_PLUS_A, COLAMD).  The
modeled COLPERM sensitivity is therefore driven by genuine ordering
behaviour, not a hand-shaped curve.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.sparse import linalg as spla

__all__ = [
    "COLPERM_CHOICES",
    "SymbolicStats",
    "MatrixSpec",
    "MATRIX_REGISTRY",
    "get_matrix",
    "laplacian_3d",
    "parsec_like",
    "symbolic_stats",
    "clear_symbolic_cache",
]

#: SuperLU_DIST's COLPERM options (and scipy splu permc_spec values)
COLPERM_CHOICES = ["NATURAL", "MMD_ATA", "MMD_AT_PLUS_A", "COLAMD"]


def laplacian_3d(nx: int, ny: int, nz: int, *, shift: float = 0.5) -> sparse.csc_matrix:
    """7-point 3D Laplacian with a diagonal shift (keeps LU nonsingular)."""
    if min(nx, ny, nz) < 1:
        raise ValueError("grid dimensions must be >= 1")

    def lap1d(n: int) -> sparse.csr_matrix:
        return sparse.diags(
            [-1.0, 2.0, -1.0], [-1, 0, 1], shape=(n, n), format="csr"
        )

    Ix, Iy, Iz = (sparse.identity(k, format="csr") for k in (nx, ny, nz))
    A = (
        sparse.kron(sparse.kron(lap1d(nx), Iy), Iz)
        + sparse.kron(sparse.kron(Ix, lap1d(ny)), Iz)
        + sparse.kron(sparse.kron(Ix, Iy), lap1d(nz))
    )
    A = A + shift * sparse.identity(nx * ny * nz)
    return A.tocsc()


def parsec_like(
    n_grid: int, *, bond_fraction: float = 0.02, seed: int = 0
) -> sparse.csc_matrix:
    """A PARSEC-style Hamiltonian analogue on an ``n_grid^3`` grid.

    Starts from the 3D stencil and adds ``bond_fraction * n`` seeded
    random symmetric long-range couplings, which is what distinguishes
    the DFT matrices from plain Laplacians (and what makes the ordering
    choice matter more).
    """
    A = laplacian_3d(n_grid, n_grid, n_grid).tolil()
    n = A.shape[0]
    rng = np.random.default_rng(seed)
    n_bonds = int(bond_fraction * n)
    rows = rng.integers(0, n, size=n_bonds)
    cols = rng.integers(0, n, size=n_bonds)
    for i, j in zip(rows, cols):
        if i != j:
            v = float(rng.uniform(-0.5, -0.1))
            A[i, j] = v
            A[j, i] = v
    return A.tocsc()


@dataclass(frozen=True)
class MatrixSpec:
    """Registry entry for a named test matrix."""

    name: str
    n_grid: int
    bond_fraction: float
    seed: int
    #: the real matrix this analogue stands in for
    stands_for: str


#: scaled-down analogues of the paper's PARSEC matrices
MATRIX_REGISTRY: dict[str, MatrixSpec] = {
    "Si5H12": MatrixSpec("Si5H12", 13, 0.020, 7, "SuiteSparse PARSEC/Si5H12"),
    "H2O": MatrixSpec("H2O", 16, 0.025, 11, "SuiteSparse PARSEC/H2O"),
}

_matrix_cache: dict[str, sparse.csc_matrix] = {}
_symbolic_cache: dict[tuple[str, str], "SymbolicStats"] = {}


def get_matrix(name: str) -> sparse.csc_matrix:
    """Fetch (and cache) a registered matrix by name."""
    if name not in MATRIX_REGISTRY:
        raise KeyError(f"unknown matrix {name!r}; registry has {sorted(MATRIX_REGISTRY)}")
    if name not in _matrix_cache:
        spec = MATRIX_REGISTRY[name]
        _matrix_cache[name] = parsec_like(
            spec.n_grid, bond_fraction=spec.bond_fraction, seed=spec.seed
        )
    return _matrix_cache[name]


@dataclass(frozen=True)
class SymbolicStats:
    """Factorization statistics for one (matrix, ordering) pair."""

    matrix: str
    colperm: str
    n: int
    nnz_A: int
    nnz_LU: int
    flops: float

    @property
    def fill_ratio(self) -> float:
        return self.nnz_LU / max(self.nnz_A, 1)


def symbolic_stats(matrix_name: str, colperm: str) -> SymbolicStats:
    """Fill-in and flop estimate from a real SuperLU factorization.

    Results are cached: the paper's tuning loops re-evaluate the same
    (matrix, COLPERM) pair hundreds of times and the symbolic step is the
    expensive part.

    The flop estimate interpolates the dense formula through the observed
    fill: a dense LU has ``nnz = n^2`` and ``2/3 n^3 = (2/3) nnz^2 / n``
    flops, so ``flops ~= (2/3) * nnz_LU^2 / n`` preserves both the dense
    limit and the empty limit.
    """
    if colperm not in COLPERM_CHOICES:
        raise ValueError(f"unknown COLPERM {colperm!r}; choose from {COLPERM_CHOICES}")
    key = (matrix_name, colperm)
    if key not in _symbolic_cache:
        A = get_matrix(matrix_name)
        lu = spla.splu(
            A,
            permc_spec=colperm,
            options={"SymmetricMode": False, "Equil": False},
        )
        nnz_lu = int(lu.L.nnz + lu.U.nnz)
        n = A.shape[0]
        flops = (2.0 / 3.0) * nnz_lu**2 / n
        _symbolic_cache[key] = SymbolicStats(
            matrix=matrix_name,
            colperm=colperm,
            n=n,
            nnz_A=int(A.nnz),
            nnz_LU=nnz_lu,
            flops=flops,
        )
    return _symbolic_cache[key]


def clear_symbolic_cache() -> None:
    """Drop cached matrices/factorizations (tests use this for isolation)."""
    _matrix_cache.clear()
    _symbolic_cache.clear()


def supernode_sizes(n: int, nsup: int, nrel: int, *, seed: int = 0) -> np.ndarray:
    """A plausible supernode partition of ``n`` columns.

    SuperLU caps supernodes at ``NSUP`` columns and relaxes (amalgamates)
    small subtrees up to ``NREL`` columns.  Without the true elimination
    tree we model the resulting size distribution: natural supernode
    sizes are geometric-ish and then clipped to ``[1, nsup]`` with small
    ones merged toward ``nrel``.
    """
    if n < 1 or nsup < 1 or nrel < 1:
        raise ValueError("n, nsup, nrel must be >= 1")
    rng = np.random.default_rng(seed)
    sizes = []
    remaining = n
    while remaining > 0:
        # natural (pre-clipping) sizes of dense trailing blocks in DFT-like
        # matrices are large; NSUP's cap in [30, 300) genuinely binds
        nat = int(rng.geometric(1.0 / 60.0))
        s = min(max(nat, 1), nsup, remaining)
        if s < nrel:  # relaxation merges small supernodes
            s = min(nrel, remaining, nsup)
        sizes.append(s)
        remaining -= s
    return np.asarray(sizes, dtype=int)


def supernode_gemm_efficiency(
    nsup: int, nrel: int, *, n: int = 4096, half_point: float = 48.0, seed: int = 0
) -> float:
    """Fraction of GEMM peak a supernodal kernel achieves.

    Bigger supernodes mean bigger dense blocks and better BLAS-3 rates
    (saturating in ``half_point``); over-relaxation (large ``NREL``)
    pads supernodes with explicit zeros, charged as wasted flops.
    """
    sizes = supernode_sizes(n, nsup, nrel, seed=seed)
    mean_size = float(np.mean(sizes))
    eff = mean_size / (mean_size + half_point)
    # padding waste grows once relaxation exceeds the natural size scale
    waste = 1.0 + 0.002 * max(nrel - 12, 0)
    return eff / waste


def dense_block_lu_flops(nb: int) -> float:
    """Flops of a dense ``nb x nb`` LU (NIMROD's Jacobi blocks)."""
    return (2.0 / 3.0) * float(nb) ** 3


def bandwidth(A: sparse.spmatrix) -> int:
    """Matrix bandwidth (used by tests to sanity-check generators)."""
    coo = A.tocoo()
    if coo.nnz == 0:
        return 0
    return int(np.max(np.abs(coo.row - coo.col)))


def estimate_separator_flops(n: int, dim: int = 3) -> float:
    """Nested-dissection flop lower bound for reference (George 1973):
    ``O(n^2)`` for 3D grids, ``O(n^{3/2})`` for 2D."""
    if dim == 3:
        return float(n) ** 2
    return float(n) ** 1.5 * math.log(max(n, 2))
