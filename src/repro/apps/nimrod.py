"""NIMROD extended-MHD performance model (system S29, paper Sec. VI-C).

NIMROD [4] simulates fusion-plasma MHD with high-order finite elements on
the poloidal plane and a pseudo-spectral toroidal direction.  Each of the
30 time steps solves several nonsymmetric sparse systems (one per Fourier
mode) by GMRES with a block-Jacobi preconditioner whose blocks are
factorized by SuperLU_DIST's 3D algorithm — modeled by
:class:`repro.apps.superlu3d.SuperLU3DModel`.

Task parameters (paper): ``mx``, ``my`` — ``2^mx * 2^my`` poloidal mesh
DoF per direction — and ``lphi`` with ``floor(2^lphi / 3) + 1`` toroidal
Fourier modes.  Tuning parameters follow Table III:

=========  =====================================================
``NSUP``   max supernode size in SuperLU, [30, 300)
``NREL``   supernode relaxation bound, [10, 40)
``nbx``    assembly blocking ``2^nbx`` in x, [1, 3)
``nby``    assembly blocking ``2^nby`` in y, [1, 3)
``npz``    ``2^npz`` processes in SuperLU's 3D z dimension, [0, 5)
=========  =====================================================

Failure behaviour matches the paper's Fig. 5(c) discussion: configurations
whose per-rank factor memory exceeds the node's share return ``None``
(out-of-memory), consuming budget without informing the surrogate.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core.space import IntegerParameter, Space
from ..hpc.machine import Machine, cori_haswell
from ..hpc.mpi import CostComm
from ..hpc.procgrid import Grid3D, squarest_grid
from .base import HPCApplication
from .superlu3d import SuperLU3DModel

__all__ = ["NIMROD"]


class NIMROD(HPCApplication):
    """Runtime of NIMROD's main time-marching loop (30 steps)."""

    name = "NIMROD"
    noise_sigma = 0.04

    N_TIMESTEPS = 30
    #: finite-element DoF per mesh cell: bi-quartic elements (25 nodes)
    #: x 8 MHD fields x complex arithmetic
    DOF_PER_CELL = 400.0
    #: factor fill ratio nnz(L+U)/n of the high-order FEM plane systems
    FILL_FACTOR = 200.0
    #: workspace/buffer multiplier on raw factor memory (SuperLU stacks,
    #: MPI buffers, NIMROD's own copies)
    MEM_WORKSPACE = 13.6
    #: GMRES iterations per solve at the reference preconditioner quality
    GMRES_BASE_ITERS = 14.0
    #: global calibration to leadership-machine scale
    CALIBRATION = 4.0

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine if machine is not None else cori_haswell(32)
        self._slu3d = SuperLU3DModel(self.machine)

    # -- spaces -------------------------------------------------------------
    def input_space(self) -> Space:
        return Space(
            [
                IntegerParameter("mx", 3, 8),
                IntegerParameter("my", 3, 10),
                IntegerParameter("lphi", 0, 4),
            ]
        )

    def parameter_space(self) -> Space:
        return Space(
            [
                IntegerParameter("NSUP", 30, 300),
                IntegerParameter("NREL", 10, 40),
                IntegerParameter("nbx", 1, 3),
                IntegerParameter("nby", 1, 3),
                IntegerParameter("npz", 0, 5),
            ]
        )

    def default_task(self) -> dict[str, Any]:
        return {"mx": 5, "my": 7, "lphi": 1}

    def fidelity_bias(self, task, config, fraction: float) -> float:
        """Short NIMROD runs over-weight the startup transient: the first
        time steps assemble operators from scratch and converge GMRES
        from a cold initial guess, inflating the per-step average."""
        y = self.raw_objective(task, config)
        if y is None:
            return 0.0
        return 0.18 * (1.0 - fraction) * float(y)

    # -- derived sizes ----------------------------------------------------------
    @staticmethod
    def n_fourier(lphi: int) -> int:
        return (2**lphi) // 3 + 1

    def plane_unknowns(self, mx: int, my: int) -> int:
        return int(2**mx * 2**my * self.DOF_PER_CELL)

    # -- model ---------------------------------------------------------------
    def raw_objective(
        self, task: Mapping[str, Any], config: Mapping[str, Any]
    ) -> float | None:
        mx, my, lphi = int(task["mx"]), int(task["my"]), int(task["lphi"])
        nsup, nrel = int(config["NSUP"]), int(config["NREL"])
        bx, by = 2 ** int(config["nbx"]), 2 ** int(config["nby"])
        pz = 2 ** int(config["npz"])

        n_modes = self.n_fourier(lphi)
        n_plane = self.plane_unknowns(mx, my)
        total_ranks = self.machine.total_cores
        ranks_per_solve = max(total_ranks // n_modes, 1)
        if pz > ranks_per_solve:
            return None  # cannot form the requested 3D grid
        plane_grid = squarest_grid(max(ranks_per_solve // pz, 1))
        grid = Grid3D(plane_grid.p, plane_grid.q, pz)

        cost = self._slu3d.factorization(
            n_plane, grid, nsup=nsup, nrel=nrel, fill_factor=self.FILL_FACTOR
        )
        # out-of-memory: factors + workspace per rank vs the node share
        # (this is the failure mode the paper reports in Fig. 5(c))
        mem_budget = self.machine.mem_per_node / self.machine.cores_per_node
        mem_needed = (
            cost.mem_per_rank * self.MEM_WORKSPACE
            + 8.0 * n_plane / grid.size * 40.0
        )
        if mem_needed > mem_budget:
            return None

        # GMRES iteration count: block-Jacobi quality degrades slightly
        # for very relaxed supernodes (more dropped coupling) and grows
        # with problem size
        iters = self.GMRES_BASE_ITERS * (1.0 + 0.08 * max(my - 7, 0)) * (
            1.0 + 0.002 * max(nrel - 20, 0)
        )
        comm = CostComm(self.machine, total_ranks)
        nnz_plane = 12.0 * n_plane
        t_matvec = (
            2.0 * nnz_plane / (self.machine.sparse_flops_per_core * grid.size * 0.3)
            + comm.allreduce(16.0, group_size=grid.size)
        )
        t_gmres = iters * (cost.solve_seconds + t_matvec)

        # matrix assembly: cache-blocked element loops; element matrices
        # are block-sparse so work is ~DOF * 40 per element, with a cache
        # sweet spot at 2^2 blocking (larger blocks spill L2)
        elems = 2**mx * 2**my
        cache_eff = (0.55 + 0.45 * min(bx / 4.0, 1.0)) * (
            0.55 + 0.45 * min(by / 4.0, 1.0)
        )
        penalty = 1.0 + 0.06 * (bx == 8) + 0.06 * (by == 8)
        t_assembly = (
            elems
            * self.DOF_PER_CELL
            * 40.0
            * 260.0
            / (self.machine.sparse_flops_per_core * grid.size)
            / cache_eff
            * penalty
        )

        per_step = cost.factor_seconds + t_gmres * n_modes + t_assembly
        overhead = 1.0 + 0.05 * math.log2(max(pz, 1) + 1)
        return self.CALIBRATION * self.N_TIMESTEPS * per_step * overhead
