"""SuperLU_DIST 2D performance model (system S26, paper Sec. VI-D).

Models the distributed supernodal LU factorization of the 2D (non-3D)
SuperLU_DIST over a ``nprows x npcols`` block-cyclic grid, with the
paper's five tuning parameters:

=============  ========================================================
``COLPERM``    column ordering — drives fill-in; evaluated with a *real*
               SuperLU factorization via :mod:`repro.apps.sparse`
``LOOKAHEAD``  pipeline depth overlapping panel comm with updates
``nprows``     process-grid rows (``npcols = P // nprows``)
``NSUP``       maximum supernode size (BLAS-3 block size)
``NREL``       supernode relaxation (amalgamation bound)
=============  ========================================================

Cost structure: factorization flops (from the measured fill of the
chosen ordering, scaled to full-size PARSEC matrices) at a rate set by
the supernodal GEMM efficiency (NSUP/NREL), plus per-step panel
broadcasts whose exposure shrinks with LOOKAHEAD and whose volume grows
with grid-aspect imbalance (nprows) — the structure published for
SuperLU_DIST's 2D algorithm [2].

The resulting Sobol profile matches the paper's Table IV: COLPERM
dominant, nprows second, NSUP moderate, LOOKAHEAD/NREL minor.
"""

from __future__ import annotations

import math
from typing import Any, Mapping

from ..core.space import CategoricalParameter, IntegerParameter, Space
from ..hpc.machine import Machine, cori_haswell
from ..hpc.mpi import CostComm
from ..hpc.procgrid import grid_for_rows
from .base import HPCApplication
from .sparse import (
    COLPERM_CHOICES,
    MATRIX_REGISTRY,
    supernode_gemm_efficiency,
    symbolic_stats,
)

__all__ = ["SuperLUDist2D", "SUPERLU_DEFAULTS"]

#: SuperLU_DIST compiled-in defaults — the values the paper's reduced
#: tuning pins LOOKAHEAD and NREL to ("we use the default parameter
#: values", Fig. 6 caption)
SUPERLU_DEFAULTS: dict[str, Any] = {
    "COLPERM": "MMD_AT_PLUS_A",
    "LOOKAHEAD": 10,
    "NSUP": 128,
    "NREL": 20,
}


class SuperLUDist2D(HPCApplication):
    """Runtime model of 2D SuperLU_DIST on a machine allocation."""

    name = "SuperLU_DIST"
    noise_sigma = 0.05

    #: flop multiplier mapping the scaled-down analogue matrices to the
    #: full-size PARSEC matrices' work (documented substitution: the
    #: analogues keep ordering behaviour; this restores the paper's scale)
    SCALE_FLOPS = 3000.0
    #: fraction of a core's sparse rate the triangular-solve/scatter
    #: phases achieve (latency bound)
    SCATTER_EFFICIENCY = 0.35

    def __init__(self, machine: Machine | None = None) -> None:
        self.machine = machine if machine is not None else cori_haswell(4)

    # -- spaces -------------------------------------------------------------
    def input_space(self) -> Space:
        return Space([CategoricalParameter("matrix", sorted(MATRIX_REGISTRY))])

    def parameter_space(self) -> Space:
        total = self.machine.total_cores
        return Space(
            [
                CategoricalParameter("COLPERM", list(COLPERM_CHOICES)),
                IntegerParameter("LOOKAHEAD", 5, 20),
                IntegerParameter("nprows", 1, total + 1),
                IntegerParameter("NSUP", 30, 300),
                IntegerParameter("NREL", 10, 40),
            ]
        )

    def default_task(self) -> dict[str, Any]:
        return {"matrix": "Si5H12"}

    # -- model ---------------------------------------------------------------
    def raw_objective(
        self, task: Mapping[str, Any], config: Mapping[str, Any]
    ) -> float | None:
        total = self.machine.total_cores
        grid = grid_for_rows(total, int(config["nprows"]))
        if grid is None:
            return None
        stats = symbolic_stats(str(task["matrix"]), str(config["COLPERM"]))
        nsup, nrel = int(config["NSUP"]), int(config["NREL"])
        lookahead = int(config["LOOKAHEAD"])

        # ordering effect, mildly compressed: at scale, partial pivoting
        # and off-critical-path elimination damp the serial flop spread
        best = symbolic_stats(str(task["matrix"]), "MMD_AT_PLUS_A")
        flops = best.flops * (stats.flops / best.flops) ** 0.6 * self.SCALE_FLOPS
        gemm_eff = supernode_gemm_efficiency(nsup, nrel, n=stats.n, half_point=96.0)
        # matrix-size-dependent supernode sweet spot (same physics as the
        # 3D model's): the optimum NSUP shifts with the front sizes
        nsup_opt = 120.0 + 50.0 * math.log2(stats.n / 2048.0)
        gemm_eff *= 0.55 + 0.45 * math.exp(-0.5 * ((nsup - nsup_opt) / 80.0) ** 2)
        # numeric factorization: GEMM-rich updates + latency-bound scatter
        rate = self.machine.sparse_flops_per_core * grid.size
        t_gemm = 0.8 * flops / (rate * gemm_eff / 0.5)
        t_scatter = 0.2 * flops / (rate * self.SCATTER_EFFICIENCY / 0.5)

        # panel broadcasts: ~n/mean_supernode steps; message volume is the
        # panel's share of fill, split along grid rows/columns
        comm = CostComm(self.machine, grid.size)
        mean_sn = max(min(nsup, 12.0 + 0.15 * nsup), 1.0)
        n_steps = max(int(stats.n / mean_sn), 1)
        bytes_total = 8.0 * stats.nnz_LU * math.sqrt(self.SCALE_FLOPS)
        per_step = bytes_total / n_steps
        t_comm = 0.0
        for _ in range(2):  # row-wise L panels and column-wise U panels
            t_comm += n_steps * comm.bcast(per_step / grid.q, group_size=grid.q)
            t_comm += n_steps * comm.bcast(per_step / grid.p, group_size=grid.p)
        # grid aspect imbalance concentrates panel traffic
        t_comm *= 0.5 * (grid.aspect**1.1 + 1.0)
        # lookahead pipelining hides part of the exposed communication,
        # with a small scheduling overhead at large depths
        overlap = 0.35 + 0.65 / (1.0 + 0.35 * lookahead)
        t_comm = t_comm * overlap * (1.0 + 0.004 * lookahead)

        return t_gemm + t_scatter + t_comm
