"""Performance-data-sample schema (system S10, paper Sec. III).

Every sample in the shared database carries *task parameters*, *tuning
parameters* and the *evaluation result*, plus the reproducibility block
(machine/software configuration), ownership, and an accessibility level
(public / private / shared-with-groups) — the structure of the paper's
Fig. 2.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Mapping

from .columnar import thaw

__all__ = ["PerformanceRecord", "Accessibility", "ACCESS_LEVELS"]

#: recognized accessibility levels
ACCESS_LEVELS = ("public", "private", "group")

_uid_counter = itertools.count(1)


class Accessibility:
    """Visibility policy of one record."""

    def __init__(self, level: str = "public", groups: list[str] | None = None) -> None:
        if level not in ACCESS_LEVELS:
            raise ValueError(f"accessibility level must be one of {ACCESS_LEVELS}")
        if level == "group" and not groups:
            raise ValueError("group accessibility needs at least one group name")
        self.level = level
        self.groups = list(groups or [])

    def visible_to(self, username: str, owner: str, user_groups: list[str]) -> bool:
        """Whether ``username`` (member of ``user_groups``) may read."""
        if username == owner or self.level == "public":
            return True
        if self.level == "private":
            return False
        return bool(set(self.groups) & set(user_groups))

    def to_dict(self) -> dict[str, Any]:
        return {"level": self.level, "groups": list(self.groups)}

    @staticmethod
    def from_dict(doc: Mapping[str, Any] | None) -> "Accessibility":
        if doc is None:
            return Accessibility()
        return Accessibility(doc.get("level", "public"), doc.get("groups"))


@dataclass
class PerformanceRecord:
    """One function evaluation as stored in the shared database."""

    problem_name: str
    task_parameters: dict[str, Any]
    tuning_parameters: dict[str, Any]
    output: float | None
    owner: str = ""
    machine_configuration: dict[str, Any] = field(default_factory=dict)
    software_configuration: dict[str, Any] = field(default_factory=dict)
    accessibility: Accessibility = field(default_factory=Accessibility)
    timestamp: float = 0.0
    uid: int = 0

    def __post_init__(self) -> None:
        if not self.problem_name:
            raise ValueError("record needs a problem name")
        if self.uid == 0:
            self.uid = next(_uid_counter)

    @property
    def failed(self) -> bool:
        return self.output is None

    # -- serialization -----------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        """The database document (the paper's JSON sample format)."""
        return {
            "uid": self.uid,
            "problem_name": self.problem_name,
            "task_parameters": dict(self.task_parameters),
            "tuning_parameters": dict(self.tuning_parameters),
            "output": self.output,
            "owner": self.owner,
            "machine_configuration": dict(self.machine_configuration),
            "software_configuration": dict(self.software_configuration),
            "accessibility": self.accessibility.to_dict(),
            "timestamp": self.timestamp,
        }

    @staticmethod
    def from_doc(doc: Mapping[str, Any]) -> "PerformanceRecord":
        # thaw: documents may arrive as the store's frozen zero-copy
        # views — records hand out fully mutable nested blocks
        return PerformanceRecord(
            problem_name=doc["problem_name"],
            task_parameters=thaw(dict(doc.get("task_parameters", {}))),
            tuning_parameters=thaw(dict(doc.get("tuning_parameters", {}))),
            output=doc.get("output"),
            owner=doc.get("owner", ""),
            machine_configuration=thaw(dict(doc.get("machine_configuration", {}))),
            software_configuration=thaw(dict(doc.get("software_configuration", {}))),
            accessibility=Accessibility.from_dict(doc.get("accessibility")),
            timestamp=float(doc.get("timestamp", 0.0)),
            uid=int(doc.get("uid", 0)),
        )
