"""Crowd-tuning API (system S15, paper Sec. IV).

:class:`MetaDescription` validates the user-facing meta description (the
paper's code snippet: API key, problem name, ``problem_space``,
``configuration_space``, machine/software blocks, ``sync_crowd_repo``).

:class:`CrowdClient` is the programmable interface bound to one user's
API key, exposing the paper's utility functions:

* :meth:`query_function_evaluations` — raw records,
* :meth:`query_surrogate_model` — a portable trained surrogate,
* :meth:`query_predict_output` — point predictions from that surrogate,
* :meth:`query_sensitivity_analysis` — the Sobol' pipeline of Tables IV/V,
* :meth:`query_source_data` — records grouped per task as
  :class:`~repro.core.history.TaskData` (the TLA layer's input),
* :meth:`tune` — end-to-end: evaluate with any tuner and stream records
  back to the repository when ``sync_crowd_repo`` is on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from ..core.gp import GaussianProcess
from ..core.sparse import surrogate_from_dict
from ..core.history import TaskData
from ..core.problem import Evaluation, TuningProblem, task_key
from ..core.space import Space
from ..core.taskmodel import TaskAwareSurrogate
from ..core.tuner import Tuner, TunerOptions, TuningResult
from ..sensitivity.analyzer import SensitivityAnalyzer, SensitivityReport
from ..tla.base import TLAStrategy
from ..tla.tuner import TransferTuner
from .environment import parse_slurm_environment, parse_spack_spec
from .records import Accessibility, PerformanceRecord
from .repository import CrowdRepository

__all__ = ["MetaDescription", "CrowdClient"]


@dataclass
class MetaDescription:
    """Validated form of the paper's meta description."""

    api_key: str
    tuning_problem_name: str
    problem_space: dict[str, Any] = field(default_factory=dict)
    configuration_space: dict[str, Any] = field(default_factory=dict)
    machine_configuration: dict[str, Any] = field(default_factory=dict)
    software_configuration: dict[str, Any] = field(default_factory=dict)
    sync_crowd_repo: bool = False
    accessibility: Accessibility = field(default_factory=Accessibility)

    @staticmethod
    def from_dict(doc: Mapping[str, Any]) -> "MetaDescription":
        missing = [k for k in ("api_key", "tuning_problem_name") if not doc.get(k)]
        if missing:
            raise ValueError(f"meta description missing {missing}")
        sync = doc.get("sync_crowd_repo", "no")
        if isinstance(sync, str):
            sync = sync.strip().lower() in ("yes", "true", "1", "on")
        md = MetaDescription(
            api_key=doc["api_key"],
            tuning_problem_name=doc["tuning_problem_name"],
            problem_space=dict(doc.get("problem_space", {})),
            configuration_space=dict(doc.get("configuration_space", {})),
            machine_configuration=dict(doc.get("machine_configuration", {})),
            software_configuration=dict(doc.get("software_configuration", {})),
            sync_crowd_repo=bool(sync),
            accessibility=Accessibility.from_dict(doc.get("accessibility")),
        )
        md.validate()
        return md

    def validate(self) -> None:
        for block in ("input_space", "parameter_space", "output_space"):
            entries = self.problem_space.get(block, [])
            if entries:
                Space.from_list(entries)  # raises on malformed entries
        self._validate_configuration_space()

    def _validate_configuration_space(self) -> None:
        """Reject malformed restriction blocks at construction time.

        Without this, a machine entry that is not a mapping (say, a bare
        machine-name string) survives until query time and explodes deep
        inside filter construction with an ``AttributeError`` — which the
        service layer's error net does not even translate to a
        ``bad_request``.
        """
        config = self.configuration_space
        if not isinstance(config, Mapping):
            raise ValueError("configuration_space must be a mapping")
        for block in ("machine_configurations", "software_configurations"):
            entries = config.get(block, [])
            if isinstance(entries, (str, Mapping)) or not isinstance(
                entries, (list, tuple)
            ):
                raise ValueError(f"{block} must be a list of mappings")
            for entry in entries:
                if not isinstance(entry, Mapping):
                    raise ValueError(f"{block} entry is not a mapping: {entry!r}")
        for sw in config.get("software_configurations", []):
            for package, constraint in sw.items():
                if not isinstance(constraint, Mapping):
                    continue  # presence-only constraint
                for bound in ("version_from", "version_to"):
                    if bound in constraint and not isinstance(
                        constraint[bound], (list, tuple)
                    ):
                        raise ValueError(
                            f"software constraint {package!r}.{bound} must be "
                            f"a version list, got {constraint[bound]!r}"
                        )
        users = config.get("user_configurations", [])
        if isinstance(users, str) or not isinstance(users, (list, tuple)):
            raise ValueError("user_configurations must be a list of usernames")

    def parameter_space(self) -> Space:
        entries = self.problem_space.get("parameter_space", [])
        if not entries:
            raise ValueError("meta description has no parameter_space block")
        return Space.from_list(entries)

    def resolve_environment(self) -> tuple[dict[str, Any], dict[str, Any]]:
        """Expand the machine/software blocks via the automatic parsers.

        ``machine_configuration`` may carry ``slurm: yes`` plus a
        ``slurm_environment`` dict; ``software_configuration`` may carry
        ``spack`` spec strings — the paper's automatic environment
        parsing hooks.
        """
        machine = {
            k: v
            for k, v in self.machine_configuration.items()
            if k not in ("slurm", "slurm_environment")
        }
        slurm_flag = str(self.machine_configuration.get("slurm", "no")).lower()
        if slurm_flag in ("yes", "true", "1"):
            env = self.machine_configuration.get("slurm_environment", {})
            if env:
                machine.update(parse_slurm_environment(env))
        software: dict[str, Any] = {}
        spack = self.software_configuration.get("spack")
        if spack:
            specs = spack if isinstance(spack, list) else [spack]
            for spec in specs:
                parsed = parse_spack_spec(str(spec))
                software[parsed.pop("name")] = parsed
        for key, value in self.software_configuration.items():
            if key != "spack":
                software[key] = value
        return machine, software


class CrowdClient:
    """A user's handle on the crowd repository (Sec. IV-B utilities)."""

    def __init__(
        self,
        repository: CrowdRepository,
        meta: MetaDescription,
        *,
        use_registry: bool = True,
    ) -> None:
        self.repository = repository
        self.meta = meta
        # authenticate eagerly so a bad key fails at construction
        self.user = repository.users.authenticate(meta.api_key)
        self._machine_config, self._software_config = meta.resolve_environment()
        # registry consultation is an optimization: it needs a repository
        # that speaks the registry routes (the service's RemoteRepository;
        # the in-process CrowdRepository does not) and degrades to the
        # fit-locally path on any miss or mismatch
        self._use_registry = bool(use_registry) and hasattr(repository, "predict")
        self._registry_ready = False

    # -- registry consultation ------------------------------------------------
    def _registry_usable(self, task: Mapping[str, Any] | None) -> bool:
        """Whether a registry answer would match this client's query.

        Registry models are fit per exact task on the *public* record
        set under the registered problem space alone — so a client
        restricting by ``configuration_space`` (or asking across tasks)
        needs the local path.  Clients holding private/group data fall
        back too, via the fingerprint/staleness checks failing to beat
        an explicit opt-out: the served predictions simply reflect the
        public view, which :meth:`query_surrogate_model` documents.
        """
        return self._use_registry and task is not None and not self.meta.configuration_space

    def _ensure_registered(self) -> bool:
        """Register this problem's space with the service once."""
        if self._registry_ready:
            return True
        try:
            response = self.repository.register_problem(
                self.meta.api_key,
                self.meta.tuning_problem_name,
                self.meta.problem_space,
            )
        except Exception:
            response = {"ok": False}
        if not response.get("ok"):
            # no registry attached (or the space was rejected): stop
            # paying a round-trip per query, this client fits locally
            self._use_registry = False
            return False
        self._registry_ready = True
        return True

    def _meta_fingerprint(self) -> str:
        from ..registry.entry import space_fingerprint

        return space_fingerprint(self.meta.problem_space)

    # -- QueryFunctionEvaluations -------------------------------------------
    def query_function_evaluations(
        self, *, require_success: bool = True, limit: int | None = None
    ) -> list[PerformanceRecord]:
        """Queried records for this problem under the meta restrictions."""
        return self.repository.query(
            self.meta.api_key,
            problem_name=self.meta.tuning_problem_name,
            problem_space=self.meta.problem_space,
            configuration_space=self.meta.configuration_space,
            require_success=require_success,
            limit=limit,
        )

    # -- grouping into TLA source datasets --------------------------------------
    def query_source_data(
        self, space: Space | None = None, *, min_samples: int = 2
    ) -> list[TaskData]:
        """Group queried records per task — the TLA algorithms' input."""
        space = space if space is not None else self.meta.parameter_space()
        groups: dict[tuple, list[PerformanceRecord]] = {}
        for rec in self.query_function_evaluations():
            groups.setdefault(task_key(rec.task_parameters), []).append(rec)
        out: list[TaskData] = []
        for records in groups.values():
            if len(records) < min_samples:
                continue
            X = space.to_unit_array([r.tuning_parameters for r in records])
            y = np.array([r.output for r in records], dtype=float)
            task = dict(records[0].task_parameters)
            out.append(TaskData(task, X, y, label=str(sorted(task.items()))))
        out.sort(key=lambda d: d.n, reverse=True)
        return out

    # -- QuerySurrogateModel -------------------------------------------------------
    def query_surrogate_model(
        self,
        task: Mapping[str, Any] | None = None,
        *,
        kernel: str = "rbf",
        seed: int | None = None,
    ) -> GaussianProcess:
        """A surrogate of the queried data (optionally one task's).

        With a registry-backed repository and a task-pinned query, the
        service's frozen model is fetched and reconstructed instead of
        refitting — bit-identical to the served predictor.  Registry
        models are fit on the *public* record set; clients whose queries
        depend on private/group data, on ``configuration_space``
        restrictions, or on a different kernel fit locally.  ``seed``
        pins the local fit's MLE restart draw (the registry's own fits
        are seeded by its options).
        """
        space = self.meta.parameter_space()
        if self._registry_usable(task) and self._ensure_registered():
            response = self.repository.model_meta(
                self.meta.api_key,
                self.meta.tuning_problem_name,
                task,
                include_model=True,
            )
            if (
                response.get("ok")
                and response.get("kernel") == kernel
                and response.get("space_fingerprint") == self._meta_fingerprint()
            ):
                return surrogate_from_dict(dict(response["model"]))
        records = self.query_function_evaluations()
        if task is not None:
            records = [r for r in records if task_key(r.task_parameters) == task_key(task)]
        if len(records) < 2:
            raise ValueError(
                f"need >= 2 queried samples to build a surrogate, got {len(records)}"
            )
        X = space.to_unit_array([r.tuning_parameters for r in records])
        y = np.array([r.output for r in records], dtype=float)
        from ..core.kernels import kernel_from_name

        gp = GaussianProcess(kernel_from_name(kernel, space.dim), n_restarts=1, seed=seed)
        gp.fit(X, y)
        return gp

    # -- QueryPredictOutput -----------------------------------------------------------
    def query_predict_output(
        self,
        configurations: list[Mapping[str, Any]],
        task: Mapping[str, Any] | None = None,
        *,
        seed: int | None = None,
    ) -> np.ndarray:
        """Predicted outputs for given configurations.

        Registry-backed: a task-pinned call sends the configurations to
        the service and gets batched frozen-model predictions back — no
        model shipping, no GP fit anywhere on the hot path.  Falls back
        to fitting locally (see :meth:`query_surrogate_model`) when the
        registry cannot answer for this client.
        """
        space = self.meta.parameter_space()
        if self._registry_usable(task) and self._ensure_registered():
            response = self.repository.predict(
                self.meta.api_key,
                self.meta.tuning_problem_name,
                task,
                configurations,
            )
            if (
                response.get("ok")
                and response.get("space_fingerprint") == self._meta_fingerprint()
            ):
                return np.asarray(response["mean"], dtype=float)
        gp = self.query_surrogate_model(task, seed=seed)
        return gp.predict_mean(space.to_unit_array(configurations))

    # -- cross-task performance prediction ------------------------------------------
    def query_task_model(
        self,
        input_space: Space,
        *,
        log_output: bool = True,
        seed: int | None = None,
    ) -> TaskAwareSurrogate:
        """Fit a joint (task, configuration) surrogate on all queried data.

        Unlike :meth:`query_surrogate_model` this pools samples across
        *all* tasks and can predict for tasks nobody measured (GPTune's
        performance-prediction use case).
        """
        records = self.query_function_evaluations()
        if len(records) < 4:
            raise ValueError(
                f"cross-task model needs >= 4 queried samples, got {len(records)}"
            )
        model = TaskAwareSurrogate(
            input_space, self.meta.parameter_space(), log_output=log_output, seed=seed
        )
        model.fit(
            [r.task_parameters for r in records],
            [r.tuning_parameters for r in records],
            [r.output for r in records],
        )
        return model

    # -- QuerySensitivityAnalysis ---------------------------------------------------------
    def query_sensitivity_analysis(
        self,
        task: Mapping[str, Any] | None = None,
        *,
        n_base: int = 1024,
        seed: int | None = None,
        max_samples: int | None = None,
    ) -> SensitivityReport:
        """The paper's Sobol' pipeline over queried data (Tables IV-V).

        Registry-backed (task-pinned, no ``max_samples`` subsetting): the
        service runs the Sobol' analysis against its frozen surrogate and
        ships the indices plus the model snapshot back, so the client
        builds the same :class:`SensitivityReport` without fitting a GP.
        """
        space = self.meta.parameter_space()
        if (
            max_samples is None
            and self._registry_usable(task)
            and self._ensure_registered()
        ):
            response = self.repository.sensitivity(
                self.meta.api_key,
                self.meta.tuning_problem_name,
                task,
                n_base=n_base,
                seed=seed,
                include_model=True,
            )
            if (
                response.get("ok")
                and response.get("space_fingerprint") == self._meta_fingerprint()
            ):
                from ..sensitivity.sobol import SobolIndices

                indices = SobolIndices(
                    names=list(response["names"]),
                    S1=np.asarray(response["S1"], dtype=float),
                    ST=np.asarray(response["ST"], dtype=float),
                    S1_conf=np.asarray(response["S1_conf"], dtype=float),
                    ST_conf=np.asarray(response["ST_conf"], dtype=float),
                    variance=float(response["variance"]),
                    n_base=int(response["n_base"]),
                )
                surrogate = surrogate_from_dict(dict(response["model"]))
                return SensitivityReport(
                    indices, space, surrogate, int(response["n_samples"])
                )
        records = self.query_function_evaluations()
        if task is not None:
            records = [r for r in records if task_key(r.task_parameters) == task_key(task)]
        if len(records) < space.dim + 2:
            raise ValueError(
                f"sensitivity analysis needs more data: {len(records)} samples "
                f"for {space.dim} parameters"
            )
        if max_samples is not None and len(records) > max_samples:
            rng = np.random.default_rng(seed)
            idx = rng.choice(len(records), size=max_samples, replace=False)
            records = [records[i] for i in idx]
        X = space.to_unit_array([r.tuning_parameters for r in records])
        y = np.array([r.output for r in records], dtype=float)
        data = TaskData(dict(task or {}), X, y)
        return SensitivityAnalyzer(space).analyze(data, n_base=n_base, seed=seed)

    # -- uploading ----------------------------------------------------------------------
    def record_evaluation(self, evaluation: Evaluation) -> int | None:
        """Upload one evaluation (no-op unless ``sync_crowd_repo``)."""
        if not self.meta.sync_crowd_repo:
            return None
        record = PerformanceRecord(
            problem_name=self.meta.tuning_problem_name,
            task_parameters=dict(evaluation.task),
            tuning_parameters=dict(evaluation.config),
            output=None if evaluation.failed else float(evaluation.output),
            machine_configuration=dict(self._machine_config),
            software_configuration=dict(self._software_config),
            accessibility=self.meta.accessibility,
        )
        return self.repository.upload(record, self.meta.api_key)

    # -- end-to-end tuning -----------------------------------------------------------------
    def tune(
        self,
        problem: TuningProblem,
        task: Mapping[str, Any],
        n_samples: int,
        *,
        strategy: TLAStrategy | None = None,
        options: TunerOptions | None = None,
        seed: int | None = None,
        min_source_samples: int = 5,
    ) -> TuningResult:
        """Tune ``task``: transfer-tune when the crowd has relevant data.

        When ``strategy`` is given and the repository yields at least one
        source task with ``min_source_samples`` successful samples (after
        excluding the target task itself), a
        :class:`~repro.tla.tuner.TransferTuner` drives the loop;
        otherwise plain single-task BO.  All evaluations stream back to
        the repository when the meta description enables syncing.
        """
        callbacks: list[Callable[[Evaluation], None]] = [self.record_evaluation]
        sources: list[TaskData] = []
        if strategy is not None:
            sources = [
                s
                for s in self.query_source_data(
                    problem.parameter_space, min_samples=min_source_samples
                )
                if task_key(s.task) != task_key(task)
            ]
        if strategy is not None and sources:
            tuner: Tuner = TransferTuner(
                problem, strategy, sources, options=options, callbacks=callbacks
            )
        else:
            tuner = Tuner(problem, options=options, callbacks=callbacks)
        return tuner.tune(task, n_samples, seed=seed)
