"""Machine/software tag-name matching (system S14, paper Sec. III).

"Different users might use different names to describe the same machine
and software configuration.  The shared database therefore internally
parses the user provided information to match the tag names with the
well-defined machine/software information existing in the database."

:class:`TagMatcher` implements that normalization: a canonical-entry
database with alias lists, plus a fuzzy fallback (normalized-string
similarity) for near-miss spellings.  Ships with the machines and
software packages the paper's experiments involve; deployments extend it
through :meth:`add_machine` / :meth:`add_software`.
"""

from __future__ import annotations

import difflib
import re
from dataclasses import dataclass, field

__all__ = ["TagMatcher", "CanonicalEntry", "default_matcher"]


def _normalize(name: str) -> str:
    """Lowercase and strip separators: ``Cori-Haswell`` -> ``corihaswell``."""
    return re.sub(r"[\s_\-./]+", "", name.strip().lower())


@dataclass
class CanonicalEntry:
    """A well-known machine or software package."""

    canonical: str
    aliases: set[str] = field(default_factory=set)
    info: dict = field(default_factory=dict)

    def all_names(self) -> set[str]:
        return {_normalize(self.canonical)} | {_normalize(a) for a in self.aliases}


class TagMatcher:
    """Alias + fuzzy matching of free-form names to canonical tags."""

    def __init__(self, *, fuzzy_cutoff: float = 0.82) -> None:
        self._machines: dict[str, CanonicalEntry] = {}
        self._software: dict[str, CanonicalEntry] = {}
        self.fuzzy_cutoff = fuzzy_cutoff

    # -- registration ----------------------------------------------------
    def add_machine(
        self, canonical: str, aliases: list[str] | None = None, **info
    ) -> None:
        self._machines[canonical] = CanonicalEntry(
            canonical, set(aliases or []), dict(info)
        )

    def add_software(
        self, canonical: str, aliases: list[str] | None = None, **info
    ) -> None:
        self._software[canonical] = CanonicalEntry(
            canonical, set(aliases or []), dict(info)
        )

    def machines(self) -> list[str]:
        return sorted(self._machines)

    def software(self) -> list[str]:
        return sorted(self._software)

    # -- matching -----------------------------------------------------------
    def match_machine(self, name: str) -> str | None:
        return self._match(name, self._machines)

    def match_software(self, name: str) -> str | None:
        return self._match(name, self._software)

    def machine_info(self, canonical: str) -> dict:
        return dict(self._machines[canonical].info)

    def _match(self, name: str, table: dict[str, CanonicalEntry]) -> str | None:
        if not name:
            return None
        norm = _normalize(name)
        # exact / alias hit
        for entry in table.values():
            if norm in entry.all_names():
                return entry.canonical
        # fuzzy fallback over all known names
        universe: dict[str, str] = {}
        for entry in table.values():
            for n in entry.all_names():
                universe[n] = entry.canonical
        close = difflib.get_close_matches(norm, universe, n=1, cutoff=self.fuzzy_cutoff)
        return universe[close[0]] if close else None

    def normalize_machine_configuration(self, config: dict) -> dict:
        """Rewrite a machine-configuration block onto canonical tag names.

        Unrecognized names pass through unchanged (the database keeps
        them verbatim rather than guessing wrong — mismatched tags would
        silently pollute cross-user queries).
        """
        out = {}
        for name, payload in config.items():
            canonical = self.match_machine(name)
            out[canonical if canonical else name] = payload
        return out


def default_matcher() -> TagMatcher:
    """The matcher preloaded with this paper's machines and software."""
    m = TagMatcher()
    m.add_machine(
        "Cori",
        aliases=["cori-haswell", "cori_knl", "cori-knl", "NERSC Cori", "corihsw"],
        site="NERSC",
        partitions={"haswell": {"cores": 32}, "knl": {"cores": 68}},
    )
    m.add_machine("Perlmutter", aliases=["perlmutter-cpu", "NERSC Perlmutter"])
    m.add_machine("Summit", aliases=["ornl-summit"])
    m.add_software("scalapack", aliases=["ScaLAPACK", "sca-lapack", "libscalapack"])
    m.add_software(
        "superlu-dist", aliases=["SuperLU_DIST", "superlu_dist", "superludist"]
    )
    m.add_software("hypre", aliases=["Hypre", "libhypre", "hypre-ij"])
    m.add_software("nimrod", aliases=["NIMROD", "nimrod-mhd"])
    m.add_software("gcc", aliases=["gnu", "gnu-gcc", "g++"])
    m.add_software("cray-mpich", aliases=["craympich", "cray_mpich", "mpich-cray"])
    return m
