"""Surrogate-model storage in the crowd repository (paper Sec. IV-B).

GPTune's history database stores not only function evaluations but also
*trained surrogate models*; ``QuerySurrogateModel`` can then hand a user
"a surrogate performance model based on the queried performance data
samples" without refitting — and Multitask(PS) (Sec. V-A1) is defined in
terms of exactly such pre-trained source models.

:class:`ModelStore` adds that capability on top of the document store:
portable (JSON, pickle-free) GP snapshots keyed by problem + task +
owner, with the same accessibility rules as performance records.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..core.gp import GaussianProcess
from ..core.problem import task_key
from .records import Accessibility
from .repository import CrowdRepository

__all__ = ["ModelStore", "StoredModel"]

_MODELS = "surrogate_models"


class StoredModel:
    """A queried surrogate-model entry."""

    def __init__(self, doc: Mapping[str, Any]) -> None:
        self.problem_name: str = doc["problem_name"]
        self.task_parameters: dict[str, Any] = dict(doc["task_parameters"])
        self.owner: str = doc.get("owner", "")
        self.n_samples: int = int(doc.get("n_samples", 0))
        self.timestamp: float = float(doc.get("timestamp", 0.0))
        self._payload = dict(doc["model"])

    def load(self) -> GaussianProcess:
        """Reconstruct the trained GP (no refitting)."""
        return GaussianProcess.from_dict(self._payload)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<StoredModel {self.problem_name} task={self.task_parameters} "
            f"n={self.n_samples} by {self.owner}>"
        )


class ModelStore:
    """Upload/query surrogate models through a :class:`CrowdRepository`.

    Composition rather than inheritance: a ``ModelStore`` wraps an
    existing repository and reuses its authentication, user registry,
    accessibility rules and persistence.
    """

    def __init__(self, repository: CrowdRepository) -> None:
        self.repository = repository
        coll = repository.store.collection(_MODELS)
        coll.create_index("problem_name")

    # -- upload ------------------------------------------------------------
    def upload_model(
        self,
        api_key: str,
        problem_name: str,
        task: Mapping[str, Any],
        gp: GaussianProcess,
        *,
        accessibility: Accessibility | None = None,
    ) -> int:
        """Store a trained surrogate for (problem, task)."""
        user = self.repository.users.authenticate(api_key)
        if not problem_name:
            raise ValueError("problem_name must be non-empty")
        doc = {
            "problem_name": problem_name,
            "task_parameters": dict(task),
            "task_key": repr(task_key(task)),
            "owner": user.username,
            "n_samples": gp.n_train,
            "model": gp.to_dict(),
            "accessibility": (accessibility or Accessibility()).to_dict(),
            "timestamp": self.repository._now(),
        }
        return self.repository.store[_MODELS].insert(doc)

    # -- query ----------------------------------------------------------------
    def query_models(
        self,
        api_key: str,
        problem_name: str,
        *,
        task: Mapping[str, Any] | None = None,
        latest_only: bool = True,
    ) -> list[StoredModel]:
        """Visible stored models for a problem (optionally one task).

        ``latest_only`` keeps only the newest model per (task, owner) —
        users typically re-upload improved models as data accumulates.
        """
        user = self.repository.users.authenticate(api_key)
        flt: dict[str, Any] = {"problem_name": problem_name}
        if task is not None:
            flt["task_key"] = repr(task_key(task))
        docs = self.repository.store[_MODELS].find(flt, sort="timestamp")
        visible = []
        for doc in docs:
            acc = Accessibility.from_dict(doc.get("accessibility"))
            if acc.visible_to(user.username, doc.get("owner", ""), sorted(user.groups)):
                visible.append(doc)
        if latest_only:
            newest: dict[tuple, dict] = {}
            for doc in visible:
                key = (doc["task_key"], doc.get("owner", ""))
                newest[key] = doc  # sorted by timestamp: later wins
            visible = sorted(newest.values(), key=lambda d: d["timestamp"])
        return [StoredModel(d) for d in visible]

    def load_latest(
        self, api_key: str, problem_name: str, task: Mapping[str, Any]
    ) -> StoredModel | None:
        """The newest visible model for a task, across all owners.

        Duplicate uploads resolve newest-wins by timestamp (ties by
        insertion order, the collection's stable sort) — the counterpart
        of :meth:`query_best_model`'s most-samples-wins policy.
        """
        models = self.query_models(
            api_key, problem_name, task=task, latest_only=False
        )
        return models[-1] if models else None

    def query_best_model(
        self, api_key: str, problem_name: str, task: Mapping[str, Any]
    ) -> StoredModel | None:
        """The visible model with the most training samples for a task."""
        models = self.query_models(api_key, problem_name, task=task)
        if not models:
            return None
        return max(models, key=lambda m: (m.n_samples, m.timestamp))

    def delete_own(self, api_key: str, problem_name: str) -> int:
        user = self.repository.users.authenticate(api_key)
        return self.repository.store[_MODELS].delete(
            {"problem_name": problem_name, "owner": user.username}
        )

    def count(self) -> int:
        return len(self.repository.store[_MODELS])
