"""Request/response API service over the crowd repository.

The production GPTuneCrowd repository is reached over HTTPS
(gptune.lbl.gov).  No network exists in this environment, so this module
implements the service *protocol* layer with the transport factored out:
:class:`CrowdServer` maps JSON-shaped request dicts to JSON-shaped
response dicts, one route per operation of the web API.  A real
deployment would wrap :meth:`handle` in a dozen lines of any HTTP
framework; the tests exercise the full protocol surface directly.

Protocol conventions (mirroring typical REST-over-JSON services):

* every request: ``{"route": <name>, "api_key": <key>, ...params}``
  (``register`` alone requires no key),
* success: ``{"ok": true, ...payload}``,
* failure: ``{"ok": false, "error": <kind>, "message": <detail>}`` with
  ``error`` in {"auth", "bad_request", "not_found"} — internal details
  never leak into responses.
"""

from __future__ import annotations

import json
from collections.abc import Mapping
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry import ModelRegistry

from .models import ModelStore
from .records import Accessibility, PerformanceRecord
from .repository import CrowdRepository
from .users import AuthError
from .views import contributor_stats, leaderboard, render_html

__all__ = ["CrowdServer"]


class CrowdServer:
    """Transport-free request dispatcher for the crowd service."""

    def __init__(
        self,
        repository: CrowdRepository | None = None,
        *,
        registry: "ModelRegistry | None" = None,
    ) -> None:
        self.repository = repository if repository is not None else CrowdRepository()
        self.models = ModelStore(self.repository)
        #: optional frozen-model registry (repro.registry); the four
        #: registry routes answer not_found when none is attached
        self.registry = registry
        self._routes: dict[str, Callable[[Mapping[str, Any]], dict[str, Any]]] = {
            "register": self._route_register,
            "issue_key": self._route_issue_key,
            "whoami": self._route_whoami,
            "upload": self._route_upload,
            "query": self._route_query,
            "query_sql": self._route_query_sql,
            "problems": self._route_problems,
            "upload_model": self._route_upload_model,
            "query_models": self._route_query_models,
            "leaderboard": self._route_leaderboard,
            "contributors": self._route_contributors,
            "browse_html": self._route_browse_html,
            "register_problem": self._route_register_problem,
            "predict": self._route_predict,
            "model_meta": self._route_model_meta,
            "sensitivity": self._route_sensitivity,
        }

    # -- dispatch ----------------------------------------------------------
    def handle(self, request: Mapping[str, Any]) -> dict[str, Any]:
        """Process one request dict; never raises."""
        if not isinstance(request, Mapping):
            return _bad_request("request must be an object")
        route = request.get("route")
        handler = self._routes.get(route)
        if handler is None:
            return {
                "ok": False,
                "error": "not_found",
                "message": f"unknown route {route!r}",
            }
        try:
            return handler(request)
        except AuthError as exc:
            return {"ok": False, "error": "auth", "message": str(exc)}
        except (KeyError, TypeError, ValueError) as exc:
            return _bad_request(str(exc))
        # KeyError (missing request field -> bad_request) is a LookupError
        # subclass, so this clause must stay below the tuple above; what
        # reaches it is the registry's "no such model" signal
        except LookupError as exc:
            return {"ok": False, "error": "not_found", "message": str(exc)}

    def handle_json(self, payload: str) -> str:
        """Wire-format entry point: JSON string in, JSON string out."""
        try:
            request = json.loads(payload)
        except json.JSONDecodeError as exc:
            return json.dumps(_bad_request(f"invalid JSON: {exc.msg}"))
        return json.dumps(self.handle(request), default=str)

    def routes(self) -> list[str]:
        return sorted(self._routes)

    # -- account routes -------------------------------------------------------
    def _route_register(self, req: Mapping[str, Any]) -> dict[str, Any]:
        user = self.repository.users.register(req["username"], req["email"])
        key = self.repository.users.issue_api_key(user.username)
        return {"ok": True, "username": user.username, "api_key": key}

    def _route_issue_key(self, req: Mapping[str, Any]) -> dict[str, Any]:
        user = self.repository.users.authenticate(req["api_key"])
        new_key = self.repository.users.issue_api_key(user.username)
        return {"ok": True, "api_key": new_key}

    def _route_whoami(self, req: Mapping[str, Any]) -> dict[str, Any]:
        user = self.repository.users.authenticate(req["api_key"])
        return {
            "ok": True,
            "username": user.username,
            "email": user.email,
            "groups": sorted(user.groups),
        }

    # -- record routes -----------------------------------------------------------
    def _route_upload(self, req: Mapping[str, Any]) -> dict[str, Any]:
        # "uid"/"timestamp" are trusted-front-end fields: the sharded
        # router stamps every replica of one logical write identically so
        # cross-shard reads deduplicate.  End users talk to the router,
        # which never forwards client-supplied values for them.
        uid = int(req.get("uid", 0))
        if uid:
            # idempotent replay: the router re-sends a stamped write when
            # a client retries after a lost ack (same idempotency token
            # -> same uid) and when replaying hinted handoff; a record
            # already stored under this uid must not be duplicated
            self.repository.users.authenticate(req["api_key"])
            if self.repository.store["performance_records"].find_one({"uid": uid}):
                return {"ok": True, "uid": uid, "duplicate": True}
        record = PerformanceRecord(
            problem_name=req["problem_name"],
            task_parameters=dict(req["task_parameters"]),
            tuning_parameters=dict(req["tuning_parameters"]),
            output=req.get("output"),
            machine_configuration=dict(req.get("machine_configuration", {})),
            software_configuration=dict(req.get("software_configuration", {})),
            accessibility=Accessibility.from_dict(req.get("accessibility")),
            uid=int(req.get("uid", 0)),
        )
        ts = req.get("timestamp")
        self.repository.upload(
            record, req["api_key"], timestamp=None if ts is None else float(ts)
        )
        if self.registry is not None:
            self.registry.notify_record(record)
        return {"ok": True, "uid": record.uid}

    def _route_query(self, req: Mapping[str, Any]) -> dict[str, Any]:
        records = self.repository.query(
            req["api_key"],
            problem_name=req.get("problem_name"),
            problem_space=req.get("problem_space"),
            configuration_space=req.get("configuration_space"),
            task_parameters=req.get("task_parameters"),
            require_success=bool(req.get("require_success", True)),
            limit=req.get("limit"),
        )
        return {"ok": True, "records": [r.to_doc() for r in records]}

    def _route_query_sql(self, req: Mapping[str, Any]) -> dict[str, Any]:
        records = self.repository.query_sql(req["api_key"], req["sql"])
        return {"ok": True, "records": [r.to_doc() for r in records]}

    def _route_problems(self, req: Mapping[str, Any]) -> dict[str, Any]:
        return {"ok": True, "problems": self.repository.problems(req["api_key"])}

    # -- model routes ---------------------------------------------------------------
    def _route_upload_model(self, req: Mapping[str, Any]) -> dict[str, Any]:
        from ..core.gp import GaussianProcess

        gp = GaussianProcess.from_dict(dict(req["model"]))
        uid = self.models.upload_model(
            req["api_key"],
            req["problem_name"],
            dict(req["task_parameters"]),
            gp,
            accessibility=Accessibility.from_dict(req.get("accessibility")),
        )
        return {"ok": True, "uid": uid}

    def _route_query_models(self, req: Mapping[str, Any]) -> dict[str, Any]:
        models = self.models.query_models(
            req["api_key"], req["problem_name"], task=req.get("task_parameters")
        )
        return {
            "ok": True,
            "models": [
                {
                    "problem_name": m.problem_name,
                    "task_parameters": m.task_parameters,
                    "owner": m.owner,
                    "n_samples": m.n_samples,
                    "model": m._payload,
                }
                for m in models
            ],
        }

    # -- registry routes ---------------------------------------------------------------
    def _registry(self) -> "ModelRegistry":
        if self.registry is None:
            raise LookupError("no model registry attached to this server")
        return self.registry

    def _route_register_problem(self, req: Mapping[str, Any]) -> dict[str, Any]:
        registry = self._registry()
        self.repository.users.authenticate(req["api_key"])
        ts = req.get("timestamp")
        changed = registry.register_problem(
            req["problem_name"],
            dict(req["problem_space"]),
            uid=str(req.get("uid", "")),
            timestamp=None if ts is None else float(ts),
        )
        from ..registry import space_fingerprint

        return {
            "ok": True,
            "changed": changed,
            "space_fingerprint": space_fingerprint(req["problem_space"]),
        }

    def _route_predict(self, req: Mapping[str, Any]) -> dict[str, Any]:
        registry = self._registry()
        self.repository.users.authenticate(req["api_key"])
        out = registry.predict(
            req["problem_name"],
            dict(req["task_parameters"]),
            list(req["configurations"]),
        )
        out["ok"] = True
        return out

    def _route_model_meta(self, req: Mapping[str, Any]) -> dict[str, Any]:
        registry = self._registry()
        self.repository.users.authenticate(req["api_key"])
        out = registry.model_meta(
            req["problem_name"],
            dict(req["task_parameters"]),
            include_model=bool(req.get("include_model", False)),
        )
        out["ok"] = True
        return out

    def _route_sensitivity(self, req: Mapping[str, Any]) -> dict[str, Any]:
        registry = self._registry()
        self.repository.users.authenticate(req["api_key"])
        seed = req.get("seed")
        out = registry.sensitivity(
            req["problem_name"],
            dict(req["task_parameters"]),
            n_base=int(req.get("n_base", 1024)),
            n_bootstrap=int(req.get("n_bootstrap", 100)),
            seed=None if seed is None else int(seed),
            include_model=bool(req.get("include_model", False)),
        )
        out["ok"] = True
        return out

    # -- browse routes ------------------------------------------------------------------
    def _route_leaderboard(self, req: Mapping[str, Any]) -> dict[str, Any]:
        rows = leaderboard(self.repository, req["api_key"], req["problem_name"])
        return {
            "ok": True,
            "rows": [
                {
                    "task_parameters": r.task_parameters,
                    "best_output": r.best_output,
                    "best_configuration": r.best_configuration,
                    "best_owner": r.best_owner,
                    "n_samples": r.n_samples,
                    "n_failures": r.n_failures,
                }
                for r in rows
            ],
        }

    def _route_contributors(self, req: Mapping[str, Any]) -> dict[str, Any]:
        stats = contributor_stats(
            self.repository, req["api_key"], req["problem_name"]
        )
        return {"ok": True, "contributors": stats}

    def _route_browse_html(self, req: Mapping[str, Any]) -> dict[str, Any]:
        html = render_html(self.repository, req["api_key"], req["problem_name"])
        return {"ok": True, "html": html}


def _bad_request(message: str) -> dict[str, Any]:
    return {"ok": False, "error": "bad_request", "message": message}
