"""User registry, API keys and groups (system S11, paper Sec. III/IV-A).

The repository "allows only registered users to upload" and
authenticates every API call with an *API key*.  Two key flavors match
the paper:

* **random keys** — "a random string of 20 characters/digits",
* **keypairs** — "public and private key pairs ... we record only the
  public key in our user database".  Without a crypto library the
  keypair is realized as a hash commitment: the private key is a random
  secret, the stored public key is ``sha256(private)``; presenting the
  private key proves ownership without the registry ever storing it.
  (This preserves the property the paper relies on: a database leak does
  not reveal usable credentials.)

Both flavors authenticate through :meth:`UserRegistry.authenticate`.
Users may own several keys, may revoke them, and may belong to groups
(used by group-level record accessibility).
"""

from __future__ import annotations

import hashlib
import secrets
import string
import threading
from dataclasses import dataclass, field

__all__ = ["User", "UserRegistry", "AuthError", "KeyPair"]

_KEY_ALPHABET = string.ascii_letters + string.digits
_KEY_LENGTH = 20


class AuthError(PermissionError):
    """Authentication or authorization failure."""


@dataclass(frozen=True)
class KeyPair:
    """A generated keypair; only ``public`` ever reaches the registry."""

    private: str
    public: str


@dataclass
class User:
    """A registered crowd-tuning user."""

    username: str
    email: str
    groups: set[str] = field(default_factory=set)
    #: random API keys (stored hashed, never in the clear)
    key_hashes: set[str] = field(default_factory=set)
    #: public halves of keypair credentials
    public_keys: set[str] = field(default_factory=set)


def _hash(value: str) -> str:
    return hashlib.sha256(value.encode()).hexdigest()


class UserRegistry:
    """In-memory user database with API-key authentication.

    Thread-safe: in the sharded service one registry is shared by every
    shard (accounts are not sharded), so registrations race with
    authentications from router worker threads.
    """

    def __init__(self) -> None:
        self._users: dict[str, User] = {}
        self._emails: dict[str, str] = {}
        self._lock = threading.RLock()

    # -- registration --------------------------------------------------------
    def register(self, username: str, email: str) -> User:
        if not username or not email or "@" not in email:
            raise ValueError("registration needs a username and a valid email")
        with self._lock:
            if username in self._users:
                raise ValueError(f"username {username!r} already registered")
            if email in self._emails:
                raise ValueError(f"email {email!r} already registered")
            user = User(username=username, email=email)
            self._users[username] = user
            self._emails[email] = username
            return user

    def get(self, username: str) -> User:
        try:
            with self._lock:
                return self._users[username]
        except KeyError:
            raise KeyError(f"unknown user {username!r}")

    def lookup_email(self, email: str) -> User:
        try:
            with self._lock:
                return self._users[self._emails[email]]
        except KeyError:
            raise KeyError(f"no user with email {email!r}")

    def usernames(self) -> list[str]:
        with self._lock:
            return sorted(self._users)

    # -- groups -----------------------------------------------------------------
    def add_to_group(self, username: str, group: str) -> None:
        if not group:
            raise ValueError("group name must be non-empty")
        self.get(username).groups.add(group)

    def remove_from_group(self, username: str, group: str) -> None:
        self.get(username).groups.discard(group)

    # -- API keys ------------------------------------------------------------------
    def issue_api_key(self, username: str) -> str:
        """Generate a random 20-character API key for ``username``.

        The key itself is returned once and only its hash is stored —
        the user must keep it "securely, because API keys are user login
        credentials".
        """
        user = self.get(username)
        key = "".join(secrets.choice(_KEY_ALPHABET) for _ in range(_KEY_LENGTH))
        with self._lock:
            user.key_hashes.add(_hash(key))
        return key

    def issue_keypair(self, username: str) -> KeyPair:
        """Generate a keypair; the registry records only the public half."""
        user = self.get(username)
        private = secrets.token_hex(32)
        public = _hash(private)
        user.public_keys.add(public)
        return KeyPair(private=private, public=public)

    def revoke_key(self, username: str, key_or_private: str) -> bool:
        """Revoke a random key or keypair by presenting the secret."""
        user = self.get(username)
        h = _hash(key_or_private)
        if h in user.key_hashes:
            user.key_hashes.discard(h)
            return True
        if h in user.public_keys:
            user.public_keys.discard(h)
            return True
        return False

    # -- authentication ----------------------------------------------------------------
    def authenticate(self, api_key: str) -> User:
        """Resolve an API key (random or keypair-private) to its user."""
        if not api_key:
            raise AuthError("empty API key")
        h = _hash(api_key)
        with self._lock:
            for user in self._users.values():
                if h in user.key_hashes or h in user.public_keys:
                    return user
        raise AuthError("invalid API key")
