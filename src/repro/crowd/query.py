"""Query construction: meta descriptions and SQL-like strings (system S9).

Two front-ends produce the same Mongo-style filter documents consumed by
:class:`repro.crowd.database.DocumentStore`:

* :func:`build_filter` — translates the paper's meta-description blocks
  (``problem_space`` ranges, ``configuration_space`` machine/software/
  user restrictions) into one filter document, e.g. the paper's example
  — Cori Haswell, 1 node, gcc between 8.0.0 and 9.0.0, specific users —
  becomes range conditions over the record's nested configuration
  blocks.  Version ranges compare ``version_split`` lists
  lexicographically, which is exactly semantic-version ordering.

* :class:`SqlQuery` — the "programmable interface that enables users to
  write an SQL-like query" (Sec. II-B): a tokenizer + recursive-descent
  parser for ``SELECT * WHERE <boolean expr> [ORDER BY f [DESC]]
  [LIMIT n]``, with ``AND``/``OR``/``NOT``, comparisons, ``IN`` lists
  and dotted field paths.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from collections.abc import Mapping
from typing import Any

__all__ = ["build_filter", "SqlQuery", "SqlSyntaxError"]


# ---------------------------------------------------------------------------
# meta-description -> filter
# ---------------------------------------------------------------------------

def build_filter(
    problem_name: str | None = None,
    problem_space: Mapping[str, Any] | None = None,
    configuration_space: Mapping[str, Any] | None = None,
    *,
    task_parameters: Mapping[str, Any] | None = None,
    require_success: bool = True,
) -> dict[str, Any]:
    """Build the store filter for a crowd query.

    Parameters mirror the meta description (paper Sec. IV-A).  When a
    block is absent, "a query will download all data available to the
    user" — i.e. no condition is emitted for it.  ``task_parameters``
    pins every named task parameter to an exact value (the sharded
    router's single-shard read path).
    """
    clauses: list[dict[str, Any]] = []
    if problem_name:
        clauses.append({"problem_name": problem_name})
    if require_success:
        clauses.append({"output": {"$ne": None}})
    for name, value in (task_parameters or {}).items():
        clauses.append({f"task_parameters.{name}": value})

    for block_key, doc_prefix in (
        ("input_space", "task_parameters"),
        ("parameter_space", "tuning_parameters"),
    ):
        for entry in (problem_space or {}).get(block_key, []):
            clauses.extend(_space_entry_clauses(entry, doc_prefix))

    config = configuration_space or {}
    machines = config.get("machine_configurations", [])
    if machines:
        clauses.append({"$or": [_machine_clause(m) for m in machines]})
    for sw in config.get("software_configurations", []):
        clauses.extend(_software_clauses(sw))
    users = config.get("user_configurations", [])
    if users:
        clauses.append({"owner": {"$in": list(users)}})

    if not clauses:
        return {}
    # fold single-key clauses with distinct paths into one flat document:
    # flat filters match in one pass and expose their equality conditions
    # to the store's hash indexes
    merged: dict[str, Any] = {}
    rest: list[dict[str, Any]] = []
    for clause in clauses:
        if len(clause) == 1:
            ((key, value),) = clause.items()
            if not key.startswith("$") and key not in merged:
                merged[key] = value
                continue
        rest.append(clause)
    if not rest:
        return merged
    if merged:
        rest.append(merged)
    if len(rest) == 1:
        return rest[0]
    return {"$and": rest}


def _space_entry_clauses(entry: Mapping[str, Any], prefix: str) -> list[dict]:
    name = entry.get("name")
    if not name:
        raise ValueError(f"space entry missing 'name': {entry!r}")
    path = f"{prefix}.{name}"
    out: list[dict] = []
    cond: dict[str, Any] = {}
    if "lower_bound" in entry:
        cond["$gte"] = entry["lower_bound"]
    if "upper_bound" in entry:
        cond["$lt"] = entry["upper_bound"]
    if cond:
        out.append({path: cond})
    if "categories" in entry:
        out.append({path: {"$in": list(entry["categories"])}})
    return out


def _machine_clause(machine: Mapping[str, Any]) -> dict[str, Any]:
    """One machine_configurations entry, e.g.
    ``{"Cori": {"haswell": {"nodes": 1, "cores": 32}}}``.

    An entry naming several partitions (or several machines) means "any
    of these", so each (machine, partition) pair becomes its own clause
    and the result is their ``$or`` — a single flat dict would silently
    keep only the last partition's keys.
    """
    subclauses: list[dict[str, Any]] = []
    for machine_name, partitions in machine.items():
        base = {"machine_configuration.machine_name": machine_name}
        if isinstance(partitions, Mapping) and partitions:
            for partition, details in partitions.items():
                clause = dict(base)
                clause["machine_configuration.partition"] = partition
                if isinstance(details, Mapping):
                    for key, value in details.items():
                        clause[f"machine_configuration.{key}"] = value
                subclauses.append(clause)
        else:
            subclauses.append(base)
    if not subclauses:
        return {}
    if len(subclauses) == 1:
        return subclauses[0]
    return {"$or": subclauses}


def _software_clauses(sw: Mapping[str, Any]) -> list[dict]:
    """One software_configurations entry, e.g.
    ``{"gcc": {"version_from": [8,0,0], "version_to": [9,0,0]}}``."""
    out: list[dict] = []
    for package, constraint in sw.items():
        path = f"software_configuration.{package}.version_split"
        cond: dict[str, Any] = {}
        if isinstance(constraint, Mapping):
            if "version_from" in constraint:
                cond["$gte"] = list(constraint["version_from"])
            if "version_to" in constraint:
                cond["$lt"] = list(constraint["version_to"])
        if cond:
            out.append({path: cond})
        else:  # presence-only constraint
            out.append({f"software_configuration.{package}": {"$exists": True}})
    return out


# ---------------------------------------------------------------------------
# SQL-like query strings
# ---------------------------------------------------------------------------

class SqlSyntaxError(ValueError):
    """Raised for malformed SQL-like query strings."""


_TOKEN_RE = re.compile(
    r"""\s*(?:
        (?P<string>'(?:[^'\\]|\\.)*')
      | (?P<number>-?\d+(?:\.\d+)?)
      | (?P<op><=|>=|!=|<>|=|<|>)
      | (?P<punct>[(),*])
      | (?P<word>[A-Za-z_][\w.]*)
    )""",
    re.VERBOSE,
)

_KEYWORDS = {"select", "where", "and", "or", "not", "in", "order", "by", "limit",
             "asc", "desc", "true", "false", "null"}


@dataclass(frozen=True)
class _Token:
    kind: str
    value: Any


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip() == "":
                break
            raise SqlSyntaxError(f"cannot tokenize at ...{text[pos:pos+20]!r}")
        pos = m.end()
        if m.group("string") is not None:
            raw = m.group("string")[1:-1]
            tokens.append(_Token("value", raw.replace("\\'", "'")))
        elif m.group("number") is not None:
            num = m.group("number")
            tokens.append(_Token("value", float(num) if "." in num else int(num)))
        elif m.group("op") is not None:
            tokens.append(_Token("op", m.group("op")))
        elif m.group("punct") is not None:
            tokens.append(_Token("punct", m.group("punct")))
        else:
            word = m.group("word")
            if word.lower() in _KEYWORDS:
                tokens.append(_Token("kw", word.lower()))
            else:
                tokens.append(_Token("ident", word))
    return tokens


@dataclass
class SqlQuery:
    """A parsed SQL-like query: filter + optional sort/limit."""

    filter: dict[str, Any]
    order_by: str | None = None
    descending: bool = False
    limit: int | None = None

    @staticmethod
    def parse(text: str) -> "SqlQuery":
        return _Parser(_tokenize(text)).parse()


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, tokens: list[_Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- stream helpers ------------------------------------------------------
    def _peek(self) -> _Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def _next(self) -> _Token:
        tok = self._peek()
        if tok is None:
            raise SqlSyntaxError("unexpected end of query")
        self.pos += 1
        return tok

    def _expect_kw(self, word: str) -> None:
        tok = self._next()
        if tok.kind != "kw" or tok.value != word:
            raise SqlSyntaxError(f"expected {word.upper()}, got {tok.value!r}")

    def _accept_kw(self, word: str) -> bool:
        tok = self._peek()
        if tok is not None and tok.kind == "kw" and tok.value == word:
            self.pos += 1
            return True
        return False

    def _expect_punct(self, ch: str) -> None:
        tok = self._next()
        if tok.kind != "punct" or tok.value != ch:
            raise SqlSyntaxError(f"expected {ch!r}, got {tok.value!r}")

    # -- grammar ------------------------------------------------------------
    def parse(self) -> SqlQuery:
        self._expect_kw("select")
        self._expect_punct("*")
        flt: dict[str, Any] = {}
        if self._accept_kw("where"):
            flt = self._expr()
        order_by, descending, limit = None, False, None
        if self._accept_kw("order"):
            self._expect_kw("by")
            tok = self._next()
            if tok.kind != "ident":
                raise SqlSyntaxError(f"ORDER BY needs a field, got {tok.value!r}")
            order_by = tok.value
            if self._accept_kw("desc"):
                descending = True
            else:
                self._accept_kw("asc")
        if self._accept_kw("limit"):
            tok = self._next()
            if tok.kind != "value" or not isinstance(tok.value, int):
                raise SqlSyntaxError(f"LIMIT needs an integer, got {tok.value!r}")
            limit = tok.value
        if self._peek() is not None:
            raise SqlSyntaxError(f"trailing tokens starting at {self._peek().value!r}")
        return SqlQuery(filter=flt, order_by=order_by, descending=descending, limit=limit)

    def _expr(self) -> dict[str, Any]:
        terms = [self._term()]
        while self._accept_kw("or"):
            terms.append(self._term())
        return terms[0] if len(terms) == 1 else {"$or": terms}

    def _term(self) -> dict[str, Any]:
        factors = [self._factor()]
        while self._accept_kw("and"):
            factors.append(self._factor())
        return factors[0] if len(factors) == 1 else {"$and": factors}

    def _factor(self) -> dict[str, Any]:
        if self._accept_kw("not"):
            return {"$not": self._factor()}
        tok = self._peek()
        if tok is not None and tok.kind == "punct" and tok.value == "(":
            self._next()
            inner = self._expr()
            self._expect_punct(")")
            return inner
        return self._comparison()

    def _comparison(self) -> dict[str, Any]:
        tok = self._next()
        if tok.kind != "ident":
            raise SqlSyntaxError(f"expected a field name, got {tok.value!r}")
        field = tok.value
        if self._accept_kw("in"):
            self._expect_punct("(")
            values = [self._value()]
            while True:
                nxt = self._peek()
                if nxt is not None and nxt.kind == "punct" and nxt.value == ",":
                    self._next()
                    values.append(self._value())
                else:
                    break
            self._expect_punct(")")
            return {field: {"$in": values}}
        op_tok = self._next()
        if op_tok.kind != "op":
            raise SqlSyntaxError(f"expected an operator after {field!r}")
        value = self._value()
        op_map = {"=": "$eq", "!=": "$ne", "<>": "$ne",
                  "<": "$lt", "<=": "$lte", ">": "$gt", ">=": "$gte"}
        return {field: {op_map[op_tok.value]: value}}

    def _value(self) -> Any:
        tok = self._next()
        if tok.kind == "value":
            return tok.value
        if tok.kind == "kw" and tok.value in ("true", "false", "null"):
            return {"true": True, "false": False, "null": None}[tok.value]
        raise SqlSyntaxError(f"expected a literal value, got {tok.value!r}")
