"""Browse views over the shared repository (paper Sec. III).

The paper's database "provides useful web-based tools that help users
browse collected data".  With no web server in this environment, the
views are pure functions from repository state to text and HTML
renderings — the exact content a web frontend would serve:

* :func:`leaderboard` — best configurations per task of a problem,
* :func:`contributor_stats` — who uploaded what (the crowd's pulse),
* :func:`machine_breakdown` — samples per machine/partition,
* :func:`render_text` / :func:`render_html` — terminal and web output.

All views run through an authenticated query, so they show exactly the
records the requesting user may see.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from html import escape
from typing import Any

from ..core.problem import task_key
from .columnar import thaw
from .records import PerformanceRecord
from .repository import CrowdRepository

__all__ = [
    "LeaderboardRow",
    "leaderboard",
    "leaderboard_from_docs",
    "leaderboard_from_records",
    "contributor_stats",
    "contributor_stats_from_docs",
    "contributor_stats_from_records",
    "machine_breakdown",
    "machine_breakdown_from_docs",
    "render_text",
    "render_html",
]


@dataclass
class LeaderboardRow:
    """Best known result for one task of a problem."""

    task_parameters: dict[str, Any]
    best_output: float
    best_configuration: dict[str, Any]
    best_owner: str
    n_samples: int
    n_failures: int
    contributors: list[str] = field(default_factory=list)


def _query_docs(repo: CrowdRepository, api_key: str, problem: str):
    """All visible raw documents for one problem — the store's frozen
    zero-copy views, read straight off the columnar plane.  Views
    aggregate documents directly; no per-row record construction."""
    return repo.query_docs(
        api_key, problem_name=problem, require_success=False, frozen=True
    )


def leaderboard(
    repo: CrowdRepository, api_key: str, problem: str
) -> list[LeaderboardRow]:
    """Per-task best results, most-sampled tasks first."""
    return leaderboard_from_docs(_query_docs(repo, api_key, problem))


def leaderboard_from_docs(docs: list[Any]) -> list[LeaderboardRow]:
    """The leaderboard computed from raw (possibly frozen) documents.

    This is the aggregation core: :func:`leaderboard_from_records` — the
    sharded router's cross-shard merge, which must aggregate over the
    *deduplicated* record set because replicated records appear on
    several shards — lowers records to the same document shape.
    """
    groups: dict[tuple, list[Any]] = {}
    for d in docs:
        groups.setdefault(task_key(d.get("task_parameters") or {}), []).append(d)
    rows = []
    for group in groups.values():
        ok = [d for d in group if d.get("output") is not None]
        if not ok:
            continue
        best = min(ok, key=lambda d: d["output"])
        rows.append(
            LeaderboardRow(
                task_parameters=thaw(dict(best.get("task_parameters") or {})),
                best_output=float(best["output"]),
                best_configuration=thaw(dict(best.get("tuning_parameters") or {})),
                best_owner=best.get("owner", ""),
                n_samples=len(group),
                n_failures=sum(1 for d in group if d.get("output") is None),
                contributors=sorted({d.get("owner", "") for d in group}),
            )
        )
    rows.sort(key=lambda r: r.n_samples, reverse=True)
    return rows


def leaderboard_from_records(
    records: list[PerformanceRecord],
) -> list[LeaderboardRow]:
    """The leaderboard computed from an already-queried record list."""
    return leaderboard_from_docs([r.to_doc() for r in records])


def contributor_stats(
    repo: CrowdRepository, api_key: str, problem: str
) -> list[dict[str, Any]]:
    """Upload counts and best results per contributing user."""
    return contributor_stats_from_docs(_query_docs(repo, api_key, problem))


def contributor_stats_from_docs(docs: list[Any]) -> list[dict[str, Any]]:
    """Contributor stats from raw (possibly frozen) documents."""
    per_user: dict[str, dict[str, Any]] = {}
    for d in docs:
        owner = d.get("owner", "")
        entry = per_user.setdefault(
            owner, {"user": owner, "samples": 0, "failures": 0, "best": None}
        )
        entry["samples"] += 1
        output = d.get("output")
        if output is None:
            entry["failures"] += 1
        elif entry["best"] is None or output < entry["best"]:
            entry["best"] = float(output)
    return sorted(per_user.values(), key=lambda e: e["samples"], reverse=True)


def contributor_stats_from_records(
    records: list[PerformanceRecord],
) -> list[dict[str, Any]]:
    """Contributor stats from an already-deduplicated record list."""
    return contributor_stats_from_docs([r.to_doc() for r in records])


def machine_breakdown(
    repo: CrowdRepository, api_key: str, problem: str
) -> dict[str, int]:
    """Samples per ``machine/partition`` tag."""
    return machine_breakdown_from_docs(_query_docs(repo, api_key, problem))


def machine_breakdown_from_docs(docs: list[Any]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for d in docs:
        mc = d.get("machine_configuration") or {}
        name = mc.get("machine_name", "unknown")
        partition = mc.get("partition", "")
        tag = f"{name}/{partition}" if partition else str(name)
        counts[tag] = counts.get(tag, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: -kv[1]))


def render_text(
    repo: CrowdRepository, api_key: str, problem: str, *, max_rows: int = 10
) -> str:
    """Terminal rendering of the problem's browse page."""
    rows = leaderboard(repo, api_key, problem)
    stats = contributor_stats(repo, api_key, problem)
    machines = machine_breakdown(repo, api_key, problem)
    lines = [f"=== {problem} ==="]
    lines.append(f"tasks: {len(rows)}   contributors: {len(stats)}")
    if machines:
        lines.append(
            "machines: " + ", ".join(f"{k} ({v})" for k, v in machines.items())
        )
    lines.append("")
    header = f"{'task':<34} {'best':>10} {'samples':>8} {'fails':>6}  by"
    lines += [header, "-" * len(header)]
    for row in rows[:max_rows]:
        task = str(row.task_parameters)
        if len(task) > 32:
            task = task[:29] + "..."
        lines.append(
            f"{task:<34} {row.best_output:>10.4g} {row.n_samples:>8} "
            f"{row.n_failures:>6}  {row.best_owner}"
        )
    return "\n".join(lines)


def render_html(
    repo: CrowdRepository, api_key: str, problem: str, *, max_rows: int = 50
) -> str:
    """A self-contained HTML browse page (what the web tools would serve).

    All user-provided strings are escaped — the crowd is untrusted input.
    """
    rows = leaderboard(repo, api_key, problem)
    stats = contributor_stats(repo, api_key, problem)
    parts = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{escape(problem)} — GPTuneCrowd</title></head><body>",
        f"<h1>{escape(problem)}</h1>",
        f"<p>{len(rows)} task(s), {len(stats)} contributor(s)</p>",
        "<h2>Leaderboard</h2>",
        "<table border='1'><tr><th>task</th><th>best output</th>"
        "<th>best configuration</th><th>samples</th><th>by</th></tr>",
    ]
    for row in rows[:max_rows]:
        parts.append(
            "<tr>"
            f"<td>{escape(str(row.task_parameters))}</td>"
            f"<td>{row.best_output:.6g}</td>"
            f"<td>{escape(str(row.best_configuration))}</td>"
            f"<td>{row.n_samples}</td>"
            f"<td>{escape(row.best_owner)}</td>"
            "</tr>"
        )
    parts.append("</table><h2>Contributors</h2><ul>")
    for entry in stats:
        best = f"{entry['best']:.6g}" if entry["best"] is not None else "—"
        parts.append(
            f"<li>{escape(entry['user'])}: {entry['samples']} samples "
            f"({entry['failures']} failed), best {best}</li>"
        )
    parts.append("</ul></body></html>")
    return "".join(parts)
