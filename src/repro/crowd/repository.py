"""The shared crowd repository (system S12, paper Fig. 2).

:class:`CrowdRepository` glues the document store, user registry and tag
matcher into the service the paper hosts at gptune.lbl.gov: authenticated
upload and download of performance records, with

* tag normalization of machine/software configurations on upload,
* per-record accessibility enforcement on download (public / private /
  group, Sec. III),
* meta-description and SQL-like query front-ends,
* JSON persistence of the whole repository state.

The HTTP transport of the real service is replaced by direct method
calls (documented substitution: no network in this environment); all
server-side semantics live here and are exercised by the test suite.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Any, Mapping

from ..core import perf
from .columnar import thaw
from .configmatch import TagMatcher, default_matcher
from .database import DocumentStore
from .query import SqlQuery, build_filter
from .records import Accessibility, PerformanceRecord
from .users import AuthError, User, UserRegistry

__all__ = ["CrowdRepository"]

_RECORDS = "performance_records"

#: sentinel owner that matches no username, so the vectorized
#: accessibility mask evaluates pure level/group visibility and the
#: owner==viewer grant is a separate equality mask
_NOT_OWNER = object()


class CrowdRepository:
    """Authenticated store of crowd performance data."""

    def __init__(
        self,
        store: DocumentStore | None = None,
        users: UserRegistry | None = None,
        matcher: TagMatcher | None = None,
    ) -> None:
        self.store = store if store is not None else DocumentStore()
        self.users = users if users is not None else UserRegistry()
        self.matcher = matcher if matcher is not None else default_matcher()
        coll = self.store.collection(_RECORDS)
        coll.create_index("problem_name")
        coll.create_index("owner")
        # router-stamped uids: the service's idempotent-upload dedup and
        # anti-entropy replication both look records up by uid
        coll.create_index("uid")
        # the hot read path (queries, leaderboards, registry builds)
        # evaluates filters + visibility as vectorized column masks
        coll.enable_columnar()
        self._clock = 0.0
        self._clock_lock = threading.Lock()

    # -- time (deterministic, monotonic) ------------------------------------
    def _now(self) -> float:
        with self._clock_lock:
            self._clock += 1.0
            return self._clock

    def advance_clock(self, to: float) -> None:
        """Fast-forward the logical clock (never backwards).

        Recovery calls this after replaying journaled records so
        post-recovery uploads keep strictly increasing timestamps.
        """
        with self._clock_lock:
            self._clock = max(self._clock, float(to))

    # -- upload ---------------------------------------------------------------
    def upload(
        self,
        record: PerformanceRecord,
        api_key: str,
        *,
        timestamp: float | None = None,
    ) -> int:
        """Store one record on behalf of the authenticated user.

        The record's owner is forced to the authenticated user (uploads
        cannot impersonate), and machine names are normalized against the
        well-known tag database.  ``timestamp`` lets a trusted front-end
        (the sharded router) stamp replicas of one logical write with the
        same global time; end users never reach this parameter.
        """
        user = self.users.authenticate(api_key)
        self._prepare(record, user, timestamp)
        return self.store[_RECORDS].insert(record.to_doc())

    def _prepare(
        self, record: PerformanceRecord, user: User, timestamp: float | None
    ) -> None:
        """Stamp ownership/time and normalize tags, in place."""
        record.owner = user.username
        if timestamp is not None:
            record.timestamp = float(timestamp)
            self.advance_clock(timestamp)
        else:
            record.timestamp = self._now()
        if record.machine_configuration.get("machine_name"):
            canonical = self.matcher.match_machine(
                record.machine_configuration["machine_name"]
            )
            if canonical:
                record.machine_configuration["machine_name"] = canonical
        normalized_sw = {}
        for package, payload in record.software_configuration.items():
            canonical = self.matcher.match_software(package)
            normalized_sw[canonical if canonical else package] = payload
        record.software_configuration = normalized_sw

    def upload_many(self, records: list[PerformanceRecord], api_key: str) -> list[int]:
        """Store a batch: one authentication, one lock acquisition, one
        batched journal op (one WAL line / fsync downstream)."""
        user = self.users.authenticate(api_key)
        docs = []
        for record in records:
            self._prepare(record, user, None)
            docs.append(record.to_doc())
        return self.store[_RECORDS].insert_many(docs)

    # -- download ----------------------------------------------------------------
    def _visible(self, doc: Mapping[str, Any], user: User) -> bool:
        record = PerformanceRecord.from_doc(doc)
        return record.accessibility.visible_to(
            user.username, record.owner, sorted(user.groups)
        )

    def _doc_visible(
        self, doc: Mapping[str, Any], username: str, groups: list[str]
    ) -> bool:
        """Row-fallback visibility without a full record round-trip."""
        if doc.get("owner", "") == username:
            return True
        return Accessibility.from_dict(doc.get("accessibility")).visible_to(
            username, _NOT_OWNER, groups
        )

    def _visibility_mask(self, view, username: str, groups: list[str]):
        """Vectorized per-record visibility: owner grant OR'd with the
        per-distinct-accessibility level/group policy.  ``None`` when the
        view can't build the columns (caller falls back to rows)."""
        owner = view.path_eq_mask("owner", username)
        if owner is None:
            return None
        policy = view.path_value_mask(
            "accessibility",
            lambda v: Accessibility.from_dict(v).visible_to(
                username, _NOT_OWNER, groups
            ),
        )
        if policy is None:
            return None
        return owner | policy

    def query_docs(
        self,
        api_key: str,
        *,
        problem_name: str | None = None,
        problem_space: Mapping[str, Any] | None = None,
        configuration_space: Mapping[str, Any] | None = None,
        task_parameters: Mapping[str, Any] | None = None,
        require_success: bool = True,
        limit: int | None = None,
        frozen: bool = True,
    ) -> list[dict[str, Any]]:
        """The visible raw documents a :meth:`query` would return,
        timestamp-sorted — the shared zero-copy read core for queries,
        leaderboard/contributor views and the model registry.

        Default ``frozen=True`` returns the store's immutable views
        (zero copies — treat them as read-only); ``frozen=False`` thaws
        each into a plain mutable dict.
        """
        user = self.users.authenticate(api_key)
        flt = build_filter(
            problem_name,
            problem_space,
            configuration_space,
            task_parameters=task_parameters,
            require_success=require_success,
        )
        return self._visible_docs(
            flt, user, sort="timestamp", limit=limit, frozen=frozen
        )

    def _visible_docs(
        self,
        flt: Mapping[str, Any],
        user: User,
        *,
        sort: str | None,
        descending: bool = False,
        limit: int | None = None,
        frozen: bool = True,
    ) -> list[dict[str, Any]]:
        """Filter + visibility + sort + limit in one pass.

        Columnar fast path: one boolean-mask evaluation (filter AND
        visibility) and one stable argsort.  Parity with the legacy
        sort-then-filter row order holds because both sorts are stable:
        filtering a stably-sorted sequence equals stably sorting the
        filtered one.
        """
        coll = self.store[_RECORDS]
        groups = sorted(user.groups)
        with coll.columnar_snapshot() as view:
            if view is not None:
                mask = view.filter_mask(flt)
                if mask is not None:
                    try:
                        vis = self._visibility_mask(view, user.username, groups)
                    except ValueError:
                        # a stored accessibility block failed validation:
                        # only the row path knows whether the offending
                        # record even matches the filter
                        vis = None
                    if vis is not None:
                        out = view.select(
                            mask & vis,
                            sort=sort,
                            descending=descending,
                            limit=limit,
                            frozen=frozen,
                        )
                        if out is not None:
                            perf.incr("store_columnar_queries")
                            if frozen:
                                perf.incr("store_zero_copy_reads")
                            return out
                perf.incr("store_row_fallbacks")
        docs = coll.find(flt, sort=sort, descending=descending, frozen=True)
        visible = [
            d for d in docs if self._doc_visible(d, user.username, groups)
        ]
        if limit is not None:
            visible = visible[: max(limit, 0)]
        return visible if frozen else [thaw(d) for d in visible]

    def query(
        self,
        api_key: str,
        *,
        problem_name: str | None = None,
        problem_space: Mapping[str, Any] | None = None,
        configuration_space: Mapping[str, Any] | None = None,
        task_parameters: Mapping[str, Any] | None = None,
        require_success: bool = True,
        limit: int | None = None,
    ) -> list[PerformanceRecord]:
        """Meta-description query (the crowd-tuning API's workhorse).

        ``task_parameters`` pins the query to one exact task — the
        sharded router uses this to serve the query from the single
        shard that owns the ``(problem_name, task)`` key.
        """
        docs = self.query_docs(
            api_key,
            problem_name=problem_name,
            problem_space=problem_space,
            configuration_space=configuration_space,
            task_parameters=task_parameters,
            require_success=require_success,
            limit=limit,
            frozen=True,
        )
        return [PerformanceRecord.from_doc(d) for d in docs]

    def query_sql(self, api_key: str, sql: str) -> list[PerformanceRecord]:
        """SQL-like query front-end (paper Sec. II-B)."""
        user = self.users.authenticate(api_key)
        q = SqlQuery.parse(sql)
        visible = self._visible_docs(
            q.filter,
            user,
            sort=q.order_by,
            descending=q.descending,
            limit=q.limit,
            frozen=True,
        )
        return [PerformanceRecord.from_doc(d) for d in visible]

    def delete_own(self, api_key: str, problem_name: str) -> int:
        """Users may delete their own records for a problem."""
        user = self.users.authenticate(api_key)
        return self.store[_RECORDS].delete(
            {"problem_name": problem_name, "owner": user.username}
        )

    # -- introspection ---------------------------------------------------------------
    def problems(self, api_key: str) -> list[str]:
        """Distinct problem names visible to the user."""
        user = self.users.authenticate(api_key)
        docs = self._visible_docs({}, user, sort=None, frozen=True)
        return sorted({d["problem_name"] for d in docs})

    def count(self) -> int:
        return len(self.store[_RECORDS])

    # -- persistence -------------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        """Persist records (user credentials are never written to disk)."""
        self.store.save(path)

    def load_records(self, path: str | Path) -> int:
        """Merge performance records from a saved store into this one."""
        other = DocumentStore.load(path)
        if _RECORDS not in other:
            raise ValueError(f"{path}: no {_RECORDS!r} collection")
        docs = other[_RECORDS].find({})
        for doc in docs:
            doc.pop("_id", None)
            self.store[_RECORDS].insert(doc)
        return len(docs)

    def merge_from(self, path: str | Path) -> dict[str, int]:
        """Merge *every* collection of a saved store (records, stored
        surrogate models, anything future) into this repository.

        Returns per-collection merged-document counts.  This is the
        import path for federating repositories — e.g. combining dumps
        from two sites.
        """
        other = DocumentStore.load(path)
        merged: dict[str, int] = {}
        for name in other.collection_names():
            docs = other[name].find({})
            target = self.store.collection(name)
            for doc in docs:
                doc.pop("_id", None)
                target.insert(doc)
            merged[name] = len(docs)
        return merged

    # -- convenience for tests/examples ----------------------------------------------
    def register_user(self, username: str, email: str) -> tuple[User, str]:
        """Register a user and hand back their first API key."""
        user = self.users.register(username, email)
        try:
            key = self.users.issue_api_key(username)
        except Exception:
            raise AuthError(f"could not issue key for {username}")
        return user, key
