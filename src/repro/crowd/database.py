"""JSON document store (system S8; MongoDB substitute).

The paper's shared database "manages collected performance samples in a
JSON form using MongoDB".  No database server exists in this environment,
so :class:`DocumentStore` implements the subset of MongoDB semantics the
crowd-tuning workflows need, over plain Python dicts with JSON-file
persistence:

* collections with auto-assigned ``_id``,
* ``find`` with filter documents supporting ``$eq``, ``$ne``, ``$gt``,
  ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$nin``, ``$exists``,
  ``$regex``, logical ``$and`` / ``$or`` / ``$not``, and dotted paths
  into nested documents,
* sorting, limiting, update/delete with the same filters,
* hash indexes on equality-queried fields (a genuine index: equality
  queries on an indexed field skip the collection scan).

Documents are deep-copied on the way in and out, so callers can never
mutate stored state by aliasing — important because the repository layer
enforces access control on these documents.
"""

from __future__ import annotations

import copy
import json
import re
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping

__all__ = ["DocumentStore", "Collection", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """Raised for malformed filter documents."""


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, arg: v == arg,
    "$ne": lambda v, arg: v != arg,
    "$gt": lambda v, arg: v is not None and v > arg,
    "$gte": lambda v, arg: v is not None and v >= arg,
    "$lt": lambda v, arg: v is not None and v < arg,
    "$lte": lambda v, arg: v is not None and v <= arg,
    "$in": lambda v, arg: v in arg,
    "$nin": lambda v, arg: v not in arg,
    "$exists": lambda v, arg: (v is not None) == bool(arg),
    "$regex": lambda v, arg: isinstance(v, str) and re.search(arg, v) is not None,
}


def _get_path(doc: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path; missing segments yield ``None``."""
    cur: Any = doc
    for part in path.split("."):
        if isinstance(cur, Mapping) and part in cur:
            cur = cur[part]
        else:
            return None
    return cur


def _matches(doc: Mapping[str, Any], flt: Mapping[str, Any]) -> bool:
    """Evaluate a Mongo-style filter document against ``doc``."""
    for key, cond in flt.items():
        if key == "$and":
            if not all(_matches(doc, sub) for sub in _as_list(cond, "$and")):
                return False
        elif key == "$or":
            if not any(_matches(doc, sub) for sub in _as_list(cond, "$or")):
                return False
        elif key == "$not":
            if not isinstance(cond, Mapping):
                raise QuerySyntaxError("$not takes a filter document")
            if _matches(doc, cond):
                return False
        elif key.startswith("$"):
            raise QuerySyntaxError(f"unknown top-level operator {key!r}")
        else:
            value = _get_path(doc, key)
            if isinstance(cond, Mapping) and any(k.startswith("$") for k in cond):
                for op, arg in cond.items():
                    fn = _COMPARATORS.get(op)
                    if fn is None:
                        raise QuerySyntaxError(f"unknown operator {op!r}")
                    try:
                        ok = fn(value, arg)
                    except TypeError:
                        ok = False
                    if not ok:
                        return False
            else:
                if value != cond:
                    return False
    return True


def _as_list(cond: Any, op: str) -> list:
    if not isinstance(cond, (list, tuple)) or not cond:
        raise QuerySyntaxError(f"{op} takes a non-empty list of filters")
    return list(cond)


class Collection:
    """One named collection of JSON documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: dict[int, dict[str, Any]] = {}
        self._next_id = 1
        self._indexes: dict[str, dict[Any, set[int]]] = {}

    def __len__(self) -> int:
        return len(self._docs)

    # -- indexing ------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Build (or rebuild) a hash index on ``field`` (dotted ok)."""
        idx: dict[Any, set[int]] = {}
        for _id, doc in self._docs.items():
            key = _hashable(_get_path(doc, field))
            idx.setdefault(key, set()).add(_id)
        self._indexes[field] = idx

    def _index_candidates(self, flt: Mapping[str, Any]) -> Iterable[int] | None:
        """Doc ids from the narrowest usable index, or ``None`` for a scan."""
        best: set[int] | None = None
        for field, idx in self._indexes.items():
            cond = flt.get(field)
            if cond is None or (isinstance(cond, Mapping) and any(
                k.startswith("$") for k in cond
            )):
                continue
            ids = idx.get(_hashable(cond), set())
            if best is None or len(ids) < len(best):
                best = ids
        return best

    # -- CRUD ------------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> int:
        """Insert a document; returns its assigned ``_id``."""
        if not isinstance(doc, Mapping):
            raise TypeError("documents must be mappings")
        stored = copy.deepcopy(dict(doc))
        _id = self._next_id
        self._next_id += 1
        stored["_id"] = _id
        self._docs[_id] = stored
        for field, idx in self._indexes.items():
            idx.setdefault(_hashable(_get_path(stored, field)), set()).add(_id)
        return _id

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> list[int]:
        return [self.insert(d) for d in docs]

    def find(
        self,
        flt: Mapping[str, Any] | None = None,
        *,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """All matching documents (deep copies)."""
        flt = flt or {}
        candidates = self._index_candidates(flt)
        pool = (
            (self._docs[i] for i in candidates)
            if candidates is not None
            else self._docs.values()
        )
        out = [copy.deepcopy(d) for d in pool if _matches(d, flt)]
        if sort is not None:
            out.sort(key=lambda d: _sort_key(_get_path(d, sort)), reverse=descending)
        if limit is not None:
            out = out[: max(limit, 0)]
        return out

    def find_one(self, flt: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        found = self.find(flt, limit=1)
        return found[0] if found else None

    def count(self, flt: Mapping[str, Any] | None = None) -> int:
        flt = flt or {}
        return sum(1 for d in self._docs.values() if _matches(d, flt))

    def update(self, flt: Mapping[str, Any], changes: Mapping[str, Any]) -> int:
        """Shallow-merge ``changes`` into matching docs; returns count."""
        n = 0
        for _id, doc in self._docs.items():
            if _matches(doc, flt):
                self._unindex(_id, doc)
                doc.update(copy.deepcopy(dict(changes)))
                doc["_id"] = _id  # _id is immutable
                self._reindex(_id, doc)
                n += 1
        return n

    def delete(self, flt: Mapping[str, Any]) -> int:
        """Delete matching docs; returns count."""
        doomed = [i for i, d in self._docs.items() if _matches(d, flt)]
        for _id in doomed:
            self._unindex(_id, self._docs[_id])
            del self._docs[_id]
        return len(doomed)

    def _unindex(self, _id: int, doc: Mapping[str, Any]) -> None:
        for field, idx in self._indexes.items():
            idx.get(_hashable(_get_path(doc, field)), set()).discard(_id)

    def _reindex(self, _id: int, doc: Mapping[str, Any]) -> None:
        for field, idx in self._indexes.items():
            idx.setdefault(_hashable(_get_path(doc, field)), set()).add(_id)

    # -- persistence ------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "next_id": self._next_id,
            "docs": list(self._docs.values()),
            "indexes": sorted(self._indexes),
        }

    @staticmethod
    def from_jsonable(blob: Mapping[str, Any]) -> "Collection":
        coll = Collection(blob["name"])
        coll._next_id = int(blob["next_id"])
        for doc in blob["docs"]:
            coll._docs[int(doc["_id"])] = copy.deepcopy(dict(doc))
        for field in blob.get("indexes", []):
            coll.create_index(field)
        return coll


class DocumentStore:
    """A set of named collections, persistable to one JSON file."""

    def __init__(self) -> None:
        self._collections: dict[str, Collection] = {}

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if not name or "." in name:
            raise ValueError(f"invalid collection name {name!r}")
        if name not in self._collections:
            self._collections[name] = Collection(name)
        return self._collections[name]

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: object) -> bool:
        return name in self._collections

    def collection_names(self) -> list[str]:
        return sorted(self._collections)

    def drop(self, name: str) -> None:
        self._collections.pop(name, None)

    # -- persistence -------------------------------------------------------------
    def save(self, path: str | Path) -> None:
        blob = {
            "format": "gptunecrowd-store-v1",
            "collections": [c.to_jsonable() for c in self._collections.values()],
        }
        Path(path).write_text(json.dumps(blob, indent=1, sort_keys=True))

    @staticmethod
    def load(path: str | Path) -> "DocumentStore":
        blob = json.loads(Path(path).read_text())
        if blob.get("format") != "gptunecrowd-store-v1":
            raise ValueError(f"{path}: not a GPTuneCrowd store file")
        store = DocumentStore()
        for cblob in blob["collections"]:
            store._collections[cblob["name"]] = Collection.from_jsonable(cblob)
        return store


def _hashable(value: Any) -> Any:
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, default=str)
    return value


def _sort_key(value: Any) -> tuple:
    """Total order across mixed types (None < numbers < strings < other)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))
