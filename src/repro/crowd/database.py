"""JSON document store (system S8; MongoDB substitute).

The paper's shared database "manages collected performance samples in a
JSON form using MongoDB".  No database server exists in this environment,
so :class:`DocumentStore` implements the subset of MongoDB semantics the
crowd-tuning workflows need, over plain Python dicts with JSON-file
persistence:

* collections with auto-assigned ``_id``,
* ``find`` with filter documents supporting ``$eq``, ``$ne``, ``$gt``,
  ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$nin``, ``$exists``,
  ``$regex``, logical ``$and`` / ``$or`` / ``$not``, and dotted paths
  into nested documents,
* sorting, limiting, update/delete with the same filters,
* hash indexes on equality-queried fields (a genuine index: equality
  queries on an indexed field skip the collection scan).

Documents are deep-copied on the way in and out, so callers can never
mutate stored state by aliasing — important because the repository layer
enforces access control on these documents.

Thread-safety: every :class:`Collection` guards its mutation/read
boundary with an :class:`~threading.RLock` — the asynchronous engine's
:class:`~repro.engine.stream.CrowdStreamer` uploads from multiple worker
threads while queries run concurrently, and the sharded service
(:mod:`repro.service`) serves each shard from router worker threads.

Durability hook: a store-level *mutation observer* receives one
JSON-serializable op dict per mutation (insert / update / delete /
create_index / drop), in application order.  The service layer's
write-ahead log (:mod:`repro.service.wal`) attaches here; replay goes
through :meth:`Collection.restore` / :meth:`DocumentStore.apply_op`.
"""

from __future__ import annotations

import copy
import json
import re
import threading
from pathlib import Path
from collections.abc import Iterable, Mapping
from typing import Any, Callable

__all__ = ["DocumentStore", "Collection", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """Raised for malformed filter documents."""


_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, arg: v == arg,
    "$ne": lambda v, arg: v != arg,
    "$gt": lambda v, arg: v is not None and v > arg,
    "$gte": lambda v, arg: v is not None and v >= arg,
    "$lt": lambda v, arg: v is not None and v < arg,
    "$lte": lambda v, arg: v is not None and v <= arg,
    "$in": lambda v, arg: v in arg,
    "$nin": lambda v, arg: v not in arg,
    "$exists": lambda v, arg: (v is not None) == bool(arg),
    "$regex": lambda v, arg: isinstance(v, str) and re.search(arg, v) is not None,
}


def _get_path(doc: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path; missing segments yield ``None``."""
    cur: Any = doc
    for part in path.split("."):
        if isinstance(cur, Mapping) and part in cur:
            cur = cur[part]
        else:
            return None
    return cur


def _matches(doc: Mapping[str, Any], flt: Mapping[str, Any]) -> bool:
    """Evaluate a Mongo-style filter document against ``doc``."""
    for key, cond in flt.items():
        if key == "$and":
            if not all(_matches(doc, sub) for sub in _as_list(cond, "$and")):
                return False
        elif key == "$or":
            if not any(_matches(doc, sub) for sub in _as_list(cond, "$or")):
                return False
        elif key == "$not":
            if not isinstance(cond, Mapping):
                raise QuerySyntaxError("$not takes a filter document")
            if _matches(doc, cond):
                return False
        elif key.startswith("$"):
            raise QuerySyntaxError(f"unknown top-level operator {key!r}")
        else:
            value = _get_path(doc, key)
            if isinstance(cond, Mapping) and any(k.startswith("$") for k in cond):
                for op, arg in cond.items():
                    fn = _COMPARATORS.get(op)
                    if fn is None:
                        raise QuerySyntaxError(f"unknown operator {op!r}")
                    try:
                        ok = fn(value, arg)
                    except TypeError:
                        ok = False
                    if not ok:
                        return False
            else:
                if value != cond:
                    return False
    return True


def _equality_conditions(flt: Mapping[str, Any]) -> Iterable[tuple[str, Any]]:
    """Yield ``(field, value)`` exact-equality conditions a conjunctive
    filter imposes: top-level entries plus those nested under ``$and``."""
    for field, cond in flt.items():
        if field == "$and" and isinstance(cond, (list, tuple)):
            for sub in cond:
                if isinstance(sub, Mapping):
                    yield from _equality_conditions(sub)
        elif (
            not field.startswith("$")
            and cond is not None
            and not (
                isinstance(cond, Mapping)
                and any(k.startswith("$") for k in cond)
            )
        ):
            yield field, cond


def _as_list(cond: Any, op: str) -> list:
    if not isinstance(cond, (list, tuple)) or not cond:
        raise QuerySyntaxError(f"{op} takes a non-empty list of filters")
    return list(cond)


class Collection:
    """One named collection of JSON documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: dict[int, dict[str, Any]] = {}
        self._next_id = 1
        self._indexes: dict[str, dict[Any, set[int]]] = {}
        #: guards every mutation and read (reentrant: observers and the
        #: persistence path run under the same lock)
        self._lock = threading.RLock()
        #: mutation observer installed by :meth:`DocumentStore.set_observer`
        self._observer: Callable[[dict[str, Any]], None] | None = None

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def _notify(self, op: dict[str, Any]) -> None:
        if self._observer is not None:
            self._observer(op)

    # -- indexing ------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Build (or rebuild) a hash index on ``field`` (dotted ok)."""
        with self._lock:
            idx: dict[Any, set[int]] = {}
            for _id, doc in self._docs.items():
                key = _hashable(_get_path(doc, field))
                idx.setdefault(key, set()).add(_id)
            self._indexes[field] = idx
            self._notify({"op": "create_index", "c": self.name, "field": field})

    def _index_candidates(self, flt: Mapping[str, Any]) -> Iterable[int] | None:
        """Doc ids from the narrowest usable index, or ``None`` for a scan.

        Usable conditions are exact-value equalities on an indexed
        field, at the top level or nested anywhere under ``$and`` —
        every match must satisfy them, so one index bucket is a sound
        candidate pool for the full filter.
        """
        best: set[int] | None = None
        for field, cond in _equality_conditions(flt):
            idx = self._indexes.get(field)
            if idx is None:
                continue
            ids = idx.get(_hashable(cond), set())
            if best is None or len(ids) < len(best):
                best = ids
        return best

    # -- CRUD ------------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> int:
        """Insert a document; returns its assigned ``_id``."""
        if not isinstance(doc, Mapping):
            raise TypeError("documents must be mappings")
        stored = copy.deepcopy(dict(doc))
        with self._lock:
            _id = self._next_id
            self._next_id += 1
            stored["_id"] = _id
            self._docs[_id] = stored
            self._reindex(_id, stored)
            self._notify({"op": "insert", "c": self.name, "doc": stored})
        return _id

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> list[int]:
        return [self.insert(d) for d in docs]

    def restore(self, doc: Mapping[str, Any]) -> int:
        """Re-insert a document preserving its ``_id`` (WAL replay/import).

        Idempotent for identical replays: re-restoring an ``_id`` simply
        overwrites it with the same content.  The observer is *not*
        notified — replay must never re-journal itself.
        """
        stored = copy.deepcopy(dict(doc))
        _id = int(stored["_id"])
        with self._lock:
            old = self._docs.get(_id)
            if old is not None:
                self._unindex(_id, old)
            self._docs[_id] = stored
            self._next_id = max(self._next_id, _id + 1)
            self._reindex(_id, stored)
        return _id

    def find(
        self,
        flt: Mapping[str, Any] | None = None,
        *,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
    ) -> list[dict[str, Any]]:
        """All matching documents (deep copies)."""
        flt = flt or {}
        with self._lock:
            candidates = self._index_candidates(flt)
            pool = (
                (self._docs[i] for i in candidates)
                if candidates is not None
                else self._docs.values()
            )
            if sort is None and limit is not None:
                # unsorted + limited: stop matching (and deep-copying)
                # as soon as the limit is reached
                n = max(limit, 0)
                out: list[dict[str, Any]] = []
                for d in pool:
                    if len(out) >= n:
                        break
                    if _matches(d, flt):
                        out.append(copy.deepcopy(d))
                return out
            out = [copy.deepcopy(d) for d in pool if _matches(d, flt)]
        if sort is not None:
            out.sort(key=lambda d: _sort_key(_get_path(d, sort)), reverse=descending)
        if limit is not None:
            out = out[: max(limit, 0)]
        return out

    def find_one(self, flt: Mapping[str, Any] | None = None) -> dict[str, Any] | None:
        found = self.find(flt, limit=1)
        return found[0] if found else None

    def count(self, flt: Mapping[str, Any] | None = None) -> int:
        flt = flt or {}
        with self._lock:
            candidates = self._index_candidates(flt)
            pool = (
                (self._docs[i] for i in candidates)
                if candidates is not None
                else self._docs.values()
            )
            return sum(1 for d in pool if _matches(d, flt))

    def update(self, flt: Mapping[str, Any], changes: Mapping[str, Any]) -> int:
        """Shallow-merge ``changes`` into matching docs; returns count."""
        n = 0
        with self._lock:
            for _id, doc in self._docs.items():
                if _matches(doc, flt):
                    self._unindex(_id, doc)
                    doc.update(copy.deepcopy(dict(changes)))
                    doc["_id"] = _id  # _id is immutable
                    self._reindex(_id, doc)
                    n += 1
            if n:
                self._notify(
                    {
                        "op": "update",
                        "c": self.name,
                        "flt": copy.deepcopy(dict(flt)),
                        "changes": copy.deepcopy(dict(changes)),
                    }
                )
        return n

    def delete(self, flt: Mapping[str, Any]) -> int:
        """Delete matching docs; returns count."""
        with self._lock:
            doomed = [i for i, d in self._docs.items() if _matches(d, flt)]
            for _id in doomed:
                self._unindex(_id, self._docs[_id])
                del self._docs[_id]
            if doomed:
                self._notify(
                    {"op": "delete", "c": self.name, "flt": copy.deepcopy(dict(flt))}
                )
        return len(doomed)

    def _unindex(self, _id: int, doc: Mapping[str, Any]) -> None:
        for field, idx in self._indexes.items():
            key = _hashable(_get_path(doc, field))
            bucket = idx.get(key)
            if bucket is not None:
                bucket.discard(_id)
                if not bucket:
                    # prune — empty buckets would otherwise accumulate
                    # for every distinct value ever deleted
                    del idx[key]

    def _reindex(self, _id: int, doc: Mapping[str, Any]) -> None:
        for field, idx in self._indexes.items():
            idx.setdefault(_hashable(_get_path(doc, field)), set()).add(_id)

    # -- persistence ------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "next_id": self._next_id,
                "docs": copy.deepcopy(list(self._docs.values())),
                "indexes": sorted(self._indexes),
            }

    @staticmethod
    def from_jsonable(blob: Mapping[str, Any]) -> "Collection":
        coll = Collection(blob["name"])
        coll._next_id = int(blob["next_id"])
        for doc in blob["docs"]:
            coll._docs[int(doc["_id"])] = copy.deepcopy(dict(doc))
        for field in blob.get("indexes", []):
            coll.create_index(field)
        return coll


class DocumentStore:
    """A set of named collections, persistable to one JSON file."""

    def __init__(self) -> None:
        self._collections: dict[str, Collection] = {}
        self._lock = threading.RLock()
        self._observer: Callable[[dict[str, Any]], None] | None = None

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if not name or "." in name:
            raise ValueError(f"invalid collection name {name!r}")
        with self._lock:
            if name not in self._collections:
                coll = Collection(name)
                coll._observer = self._observer
                self._collections[name] = coll
            return self._collections[name]

    # -- mutation journal hook ---------------------------------------------------
    def set_observer(self, fn: Callable[[dict[str, Any]], None] | None) -> None:
        """Install (or clear) the store-wide mutation observer.

        The observer receives one JSON-serializable op dict per mutation,
        in application order, *while the owning collection's lock is
        held* — it must be fast and must not call back into the store.
        """
        with self._lock:
            self._observer = fn
            for coll in self._collections.values():
                coll._observer = fn

    def apply_op(self, op: Mapping[str, Any]) -> None:
        """Re-apply one observed op (WAL replay / journal shipping)."""
        kind = op.get("op")
        if kind == "drop":
            self.drop(op["c"])
            return
        coll = self.collection(op["c"])
        if kind == "insert":
            coll.restore(op["doc"])
        elif kind == "update":
            coll.update(op["flt"], op["changes"])
        elif kind == "delete":
            coll.delete(op["flt"])
        elif kind == "create_index":
            coll.create_index(op["field"])
        else:
            raise ValueError(f"unknown journal op {kind!r}")

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._collections

    def collection_names(self) -> list[str]:
        with self._lock:
            return sorted(self._collections)

    def drop(self, name: str) -> None:
        with self._lock:
            dropped = self._collections.pop(name, None)
            if dropped is not None and self._observer is not None:
                self._observer({"op": "drop", "c": name})

    # -- persistence -------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        with self._lock:
            collections = list(self._collections.values())
        return {
            "format": "gptunecrowd-store-v1",
            "collections": [c.to_jsonable() for c in collections],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_jsonable(), indent=1, sort_keys=True))

    @staticmethod
    def from_jsonable(blob: Mapping[str, Any]) -> "DocumentStore":
        if blob.get("format") != "gptunecrowd-store-v1":
            raise ValueError("not a GPTuneCrowd store blob")
        store = DocumentStore()
        for cblob in blob["collections"]:
            store._collections[cblob["name"]] = Collection.from_jsonable(cblob)
        return store

    @staticmethod
    def load(path: str | Path) -> "DocumentStore":
        blob = json.loads(Path(path).read_text())
        if blob.get("format") != "gptunecrowd-store-v1":
            raise ValueError(f"{path}: not a GPTuneCrowd store file")
        return DocumentStore.from_jsonable(blob)


def _hashable(value: Any) -> Any:
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, default=str)
    return value


def _sort_key(value: Any) -> tuple:
    """Total order across mixed types (None < numbers < strings < other)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))
