"""JSON document store (system S8; MongoDB substitute).

The paper's shared database "manages collected performance samples in a
JSON form using MongoDB".  No database server exists in this environment,
so :class:`DocumentStore` implements the subset of MongoDB semantics the
crowd-tuning workflows need, over plain Python dicts with JSON-file
persistence:

* collections with auto-assigned ``_id``,
* ``find`` with filter documents supporting ``$eq``, ``$ne``, ``$gt``,
  ``$gte``, ``$lt``, ``$lte``, ``$in``, ``$nin``, ``$exists``,
  ``$regex``, logical ``$and`` / ``$or`` / ``$not``, and dotted paths
  into nested documents,
* sorting, limiting, update/delete with the same filters,
* hash indexes on equality-queried fields (a genuine index: equality
  queries on an indexed field skip the collection scan).

Documents are stored deep-frozen (:mod:`repro.crowd.columnar`) and
copied on the way in and out, so callers can never mutate stored state
by aliasing — important because the repository layer enforces access
control on these documents.  ``find(..., frozen=True)`` hands read-only
callers the stored immutable views directly (zero copies, mutation
raises); the default remains a mutable deep copy.

Collections with :meth:`Collection.enable_columnar` additionally keep a
numpy-backed :class:`~repro.crowd.columnar.ColumnarView`: supported
filters evaluate as vectorized boolean masks with argsort-based
sort/limit (perf counter ``store_columnar_queries``), anything else
falls back to the row scan below (``store_row_fallbacks``) with
bit-identical results.  The canonical unsorted result order of both
paths is ascending ``_id``.

Thread-safety: every :class:`Collection` guards its mutation/read
boundary with an :class:`~threading.RLock` — the asynchronous engine's
:class:`~repro.engine.stream.CrowdStreamer` uploads from multiple worker
threads while queries run concurrently, and the sharded service
(:mod:`repro.service`) serves each shard from router worker threads.

Durability hook: a store-level *mutation observer* receives one
JSON-serializable op dict per mutation (insert / insert_many / update /
delete / create_index / drop), in application order.  The service
layer's write-ahead log (:mod:`repro.service.wal`) attaches here; replay
goes through :meth:`Collection.restore` / :meth:`DocumentStore.apply_op`
(which accepts both the batched ``insert_many`` op and the historical
one-``insert``-per-document form).
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from pathlib import Path
from collections.abc import Iterable, Iterator, Mapping
from typing import Any, Callable

from ..core import perf
from .columnar import (
    COMPARATORS as _COMPARATORS,
    ColumnarView,
    freeze,
    get_path as _get_path,
    hashable_key as _hashable,
    sort_key as _sort_key,
    thaw,
)

__all__ = ["DocumentStore", "Collection", "QuerySyntaxError"]


class QuerySyntaxError(ValueError):
    """Raised for malformed filter documents."""


def _matches(doc: Mapping[str, Any], flt: Mapping[str, Any]) -> bool:
    """Evaluate a Mongo-style filter document against ``doc``."""
    for key, cond in flt.items():
        if key == "$and":
            if not all(_matches(doc, sub) for sub in _as_list(cond, "$and")):
                return False
        elif key == "$or":
            if not any(_matches(doc, sub) for sub in _as_list(cond, "$or")):
                return False
        elif key == "$not":
            if not isinstance(cond, Mapping):
                raise QuerySyntaxError("$not takes a filter document")
            if _matches(doc, cond):
                return False
        elif key.startswith("$"):
            raise QuerySyntaxError(f"unknown top-level operator {key!r}")
        else:
            value = _get_path(doc, key)
            if isinstance(cond, Mapping) and any(k.startswith("$") for k in cond):
                for op, arg in cond.items():
                    fn = _COMPARATORS.get(op)
                    if fn is None:
                        raise QuerySyntaxError(f"unknown operator {op!r}")
                    try:
                        ok = fn(value, arg)
                    except TypeError:
                        ok = False
                    if not ok:
                        return False
            else:
                if value != cond:
                    return False
    return True


def _equality_conditions(flt: Mapping[str, Any]) -> Iterable[tuple[str, Any]]:
    """Yield ``(field, value)`` exact-equality conditions a conjunctive
    filter imposes: top-level entries plus those nested under ``$and``."""
    for field, cond in flt.items():
        if field == "$and" and isinstance(cond, (list, tuple)):
            for sub in cond:
                if isinstance(sub, Mapping):
                    yield from _equality_conditions(sub)
        elif (
            not field.startswith("$")
            and cond is not None
            and not (
                isinstance(cond, Mapping)
                and any(k.startswith("$") for k in cond)
            )
        ):
            yield field, cond


def _as_list(cond: Any, op: str) -> list:
    if not isinstance(cond, (list, tuple)) or not cond:
        raise QuerySyntaxError(f"{op} takes a non-empty list of filters")
    return list(cond)


class Collection:
    """One named collection of JSON documents."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._docs: dict[int, dict[str, Any]] = {}
        self._next_id = 1
        self._indexes: dict[str, dict[Any, set[int]]] = {}
        #: guards every mutation and read (reentrant: observers and the
        #: persistence path run under the same lock)
        self._lock = threading.RLock()
        #: mutation observer installed by :meth:`DocumentStore.set_observer`
        self._observer: Callable[[dict[str, Any]], None] | None = None
        #: optional vectorized query plane (see :meth:`enable_columnar`)
        self._columnar: ColumnarView | None = None
        #: whether ``self._docs`` iteration order is ascending ``_id``
        #: (true unless ``restore`` inserted an id out of order)
        self._id_ordered = True

    def __len__(self) -> int:
        with self._lock:
            return len(self._docs)

    def _notify(self, op: dict[str, Any]) -> None:
        if self._observer is not None:
            self._observer(op)

    # -- columnar plane ------------------------------------------------------
    def enable_columnar(self) -> None:
        """Attach (idempotently) the vectorized query plane."""
        with self._lock:
            if self._columnar is None:
                self._columnar = ColumnarView(self._docs)

    def set_columnar(self, enabled: bool) -> None:
        """Enable or drop the columnar plane (benchmarks compare paths)."""
        with self._lock:
            if enabled:
                self.enable_columnar()
            else:
                self._columnar = None

    @contextmanager
    def columnar_snapshot(self) -> Iterator[ColumnarView | None]:
        """The columnar view, consistent under the collection lock.

        Yields ``None`` when the plane is disabled.  Callers compose
        extra vectorized predicates (e.g. the repository's per-record
        visibility mask) with :meth:`ColumnarView.filter_mask` and
        materialize with :meth:`ColumnarView.select` — all inside the
        lock, so the snapshot can never be stale or torn.
        """
        with self._lock:
            view = self._columnar
            if view is not None:
                view.ensure_clean()
            yield view

    # -- indexing ------------------------------------------------------------
    def create_index(self, field: str) -> None:
        """Build (or rebuild) a hash index on ``field`` (dotted ok)."""
        with self._lock:
            idx: dict[Any, set[int]] = {}
            for _id, doc in self._docs.items():
                key = _hashable(_get_path(doc, field))
                idx.setdefault(key, set()).add(_id)
            self._indexes[field] = idx
            self._notify({"op": "create_index", "c": self.name, "field": field})

    def _index_candidates(self, flt: Mapping[str, Any]) -> set[int] | None:
        """Doc ids from the narrowest usable index, or ``None`` for a scan.

        Usable conditions are exact-value equalities on an indexed
        field, at the top level or nested anywhere under ``$and`` —
        every match must satisfy them, so one index bucket is a sound
        candidate pool for the full filter.
        """
        best: set[int] | None = None
        for field, cond in _equality_conditions(flt):
            idx = self._indexes.get(field)
            if idx is None:
                continue
            ids = idx.get(_hashable(cond), set())
            if best is None or len(ids) < len(best):
                best = ids
        return best

    # -- CRUD ------------------------------------------------------------------
    def insert(self, doc: Mapping[str, Any]) -> int:
        """Insert a document; returns its assigned ``_id``."""
        stored = self._freeze_doc(doc)
        with self._lock:
            _id = self._store_new(stored)
            self._notify({"op": "insert", "c": self.name, "doc": self._docs[_id]})
        return _id

    def insert_many(self, docs: Iterable[Mapping[str, Any]]) -> list[int]:
        """Insert a batch under one lock acquisition, journaled as one
        batched ``insert_many`` op (one WAL line / fsync for the lot)."""
        frozen = [self._freeze_doc(d) for d in docs]
        if not frozen:
            return []
        with self._lock:
            ids = [self._store_new(stored) for stored in frozen]
            self._notify(
                {
                    "op": "insert_many",
                    "c": self.name,
                    "docs": [self._docs[i] for i in ids],
                }
            )
        return ids

    def _freeze_doc(self, doc: Mapping[str, Any]) -> dict[str, Any]:
        if not isinstance(doc, Mapping):
            raise TypeError("documents must be mappings")
        return {k: freeze(v) for k, v in doc.items()}

    def _store_new(self, stored: dict[str, Any]) -> int:
        """Assign an id, freeze, index, and column-append (lock held)."""
        _id = self._next_id
        self._next_id += 1
        stored["_id"] = _id
        frozen = freeze(stored)
        self._docs[_id] = frozen
        self._reindex(_id, frozen)
        if self._columnar is not None:
            self._columnar.on_insert(_id, frozen)
        return _id

    def restore(self, doc: Mapping[str, Any]) -> int:
        """Re-insert a document preserving its ``_id`` (WAL replay/import).

        Idempotent for identical replays: re-restoring an ``_id`` simply
        overwrites it with the same content.  The observer is *not*
        notified — replay must never re-journal itself.
        """
        stored = freeze(self._freeze_doc(doc))
        _id = int(stored["_id"])
        with self._lock:
            old = self._docs.get(_id)
            if old is not None:
                self._unindex(_id, old)
            else:
                last = next(reversed(self._docs)) if self._docs else 0
                if _id < last:
                    self._id_ordered = False
            self._docs[_id] = stored
            self._next_id = max(self._next_id, _id + 1)
            self._reindex(_id, stored)
            if self._columnar is not None:
                if old is None:
                    self._columnar.on_insert(_id, stored)
                else:
                    self._columnar.mark_dirty()
        return _id

    def _pool(self, flt: Mapping[str, Any]) -> Iterable[dict[str, Any]]:
        """Candidate documents in canonical (ascending ``_id``) order."""
        candidates = self._index_candidates(flt)
        if candidates is not None:
            return (self._docs[i] for i in sorted(candidates))
        if self._id_ordered:
            return self._docs.values()
        return (self._docs[i] for i in sorted(self._docs))

    def find(
        self,
        flt: Mapping[str, Any] | None = None,
        *,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        frozen: bool = False,
    ) -> list[dict[str, Any]]:
        """All matching documents, ascending ``_id`` unless sorted.

        Default: mutable deep copies.  ``frozen=True``: the stored
        immutable views, zero copies (counter ``store_zero_copy_reads``)
        — strictly read-only callers only.
        """
        flt = flt or {}
        with self._lock:
            view = self._columnar
            if view is not None:
                view.ensure_clean()
                mask = view.filter_mask(flt)
                if mask is not None:
                    out = view.select(
                        mask,
                        sort=sort,
                        descending=descending,
                        limit=limit,
                        frozen=frozen,
                    )
                    if out is not None:
                        perf.incr("store_columnar_queries")
                        if frozen:
                            perf.incr("store_zero_copy_reads")
                        return out
                perf.incr("store_row_fallbacks")
            copy_out = (lambda d: d) if frozen else thaw
            if sort is None and limit is not None:
                # unsorted + limited: stop matching (and copying) as
                # soon as the limit is reached
                n = max(limit, 0)
                out = []
                for d in self._pool(flt):
                    if len(out) >= n:
                        break
                    if _matches(d, flt):
                        out.append(copy_out(d))
                if frozen:
                    perf.incr("store_zero_copy_reads")
                return out
            out = [copy_out(d) for d in self._pool(flt) if _matches(d, flt)]
        if frozen:
            perf.incr("store_zero_copy_reads")
        if sort is not None:
            out.sort(key=lambda d: _sort_key(_get_path(d, sort)), reverse=descending)
        if limit is not None:
            out = out[: max(limit, 0)]
        return out

    def find_one(
        self, flt: Mapping[str, Any] | None = None, *, frozen: bool = False
    ) -> dict[str, Any] | None:
        found = self.find(flt, limit=1, frozen=frozen)
        return found[0] if found else None

    def count(self, flt: Mapping[str, Any] | None = None) -> int:
        """Matching-document count — same matcher as :meth:`find`, so the
        columnar fast path accelerates counting for free."""
        flt = flt or {}
        with self._lock:
            view = self._columnar
            if view is not None:
                view.ensure_clean()
                n = view.count(flt)
                if n is not None:
                    perf.incr("store_columnar_queries")
                    return n
                perf.incr("store_row_fallbacks")
            return sum(1 for d in self._pool(flt) if _matches(d, flt))

    def update(self, flt: Mapping[str, Any], changes: Mapping[str, Any]) -> int:
        """Shallow-merge ``changes`` into matching docs; returns count."""
        n = 0
        with self._lock:
            for _id, doc in list(self._docs.items()):
                if _matches(doc, flt):
                    self._unindex(_id, doc)
                    merged = dict(doc)
                    merged.update({k: freeze(v) for k, v in changes.items()})
                    merged["_id"] = _id  # _id is immutable
                    stored = freeze(merged)
                    self._docs[_id] = stored
                    self._reindex(_id, stored)
                    n += 1
            if n:
                if self._columnar is not None:
                    self._columnar.mark_dirty()
                self._notify(
                    {
                        "op": "update",
                        "c": self.name,
                        "flt": thaw(dict(flt)),
                        "changes": thaw(dict(changes)),
                    }
                )
        return n

    def delete(self, flt: Mapping[str, Any]) -> int:
        """Delete matching docs; returns count."""
        with self._lock:
            doomed = [i for i, d in self._docs.items() if _matches(d, flt)]
            for _id in doomed:
                self._unindex(_id, self._docs[_id])
                del self._docs[_id]
            if doomed:
                if self._columnar is not None:
                    self._columnar.mark_dirty()
                self._notify(
                    {"op": "delete", "c": self.name, "flt": thaw(dict(flt))}
                )
        return len(doomed)

    def _unindex(self, _id: int, doc: Mapping[str, Any]) -> None:
        for field, idx in self._indexes.items():
            key = _hashable(_get_path(doc, field))
            bucket = idx.get(key)
            if bucket is not None:
                bucket.discard(_id)
                if not bucket:
                    # prune — empty buckets would otherwise accumulate
                    # for every distinct value ever deleted
                    del idx[key]

    def _reindex(self, _id: int, doc: Mapping[str, Any]) -> None:
        for field, idx in self._indexes.items():
            idx.setdefault(_hashable(_get_path(doc, field)), set()).add(_id)

    # -- persistence ------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        with self._lock:
            return {
                "name": self.name,
                "next_id": self._next_id,
                "docs": [thaw(d) for d in self._docs.values()],
                "indexes": sorted(self._indexes),
            }

    @staticmethod
    def from_jsonable(blob: Mapping[str, Any]) -> "Collection":
        coll = Collection(blob["name"])
        coll._next_id = int(blob["next_id"])
        for doc in blob["docs"]:
            coll._docs[int(doc["_id"])] = freeze(dict(doc))
        ids = list(coll._docs)
        coll._id_ordered = all(a < b for a, b in zip(ids, ids[1:]))
        for field in blob.get("indexes", []):
            coll.create_index(field)
        return coll


class DocumentStore:
    """A set of named collections, persistable to one JSON file."""

    def __init__(self) -> None:
        self._collections: dict[str, Collection] = {}
        self._lock = threading.RLock()
        self._observer: Callable[[dict[str, Any]], None] | None = None

    def collection(self, name: str) -> Collection:
        """Get or create a collection."""
        if not name or "." in name:
            raise ValueError(f"invalid collection name {name!r}")
        with self._lock:
            if name not in self._collections:
                coll = Collection(name)
                coll._observer = self._observer
                self._collections[name] = coll
            return self._collections[name]

    # -- mutation journal hook ---------------------------------------------------
    def set_observer(self, fn: Callable[[dict[str, Any]], None] | None) -> None:
        """Install (or clear) the store-wide mutation observer.

        The observer receives one JSON-serializable op dict per mutation,
        in application order, *while the owning collection's lock is
        held* — it must be fast and must not call back into the store.
        """
        with self._lock:
            self._observer = fn
            for coll in self._collections.values():
                coll._observer = fn

    def apply_op(self, op: Mapping[str, Any]) -> None:
        """Re-apply one observed op (WAL replay / journal shipping).

        Accepts both the historical one-document ``insert`` form and
        the batched ``insert_many`` form, so journals written by either
        store version replay on this one.
        """
        kind = op.get("op")
        if kind == "drop":
            self.drop(op["c"])
            return
        coll = self.collection(op["c"])
        if kind == "insert":
            coll.restore(op["doc"])
        elif kind == "insert_many":
            for doc in op["docs"]:
                coll.restore(doc)
        elif kind == "update":
            coll.update(op["flt"], op["changes"])
        elif kind == "delete":
            coll.delete(op["flt"])
        elif kind == "create_index":
            coll.create_index(op["field"])
        else:
            raise ValueError(f"unknown journal op {kind!r}")

    def __getitem__(self, name: str) -> Collection:
        return self.collection(name)

    def __contains__(self, name: object) -> bool:
        with self._lock:
            return name in self._collections

    def collection_names(self) -> list[str]:
        with self._lock:
            return sorted(self._collections)

    def drop(self, name: str) -> None:
        with self._lock:
            dropped = self._collections.pop(name, None)
            if dropped is not None and self._observer is not None:
                self._observer({"op": "drop", "c": name})

    # -- persistence -------------------------------------------------------------
    def to_jsonable(self) -> dict[str, Any]:
        with self._lock:
            collections = list(self._collections.values())
        return {
            "format": "gptunecrowd-store-v1",
            "collections": [c.to_jsonable() for c in collections],
        }

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_jsonable(), indent=1, sort_keys=True))

    @staticmethod
    def from_jsonable(blob: Mapping[str, Any]) -> "DocumentStore":
        if blob.get("format") != "gptunecrowd-store-v1":
            raise ValueError("not a GPTuneCrowd store blob")
        store = DocumentStore()
        for cblob in blob["collections"]:
            store._collections[cblob["name"]] = Collection.from_jsonable(cblob)
        return store

    @staticmethod
    def load(path: str | Path) -> "DocumentStore":
        blob = json.loads(Path(path).read_text())
        if blob.get("format") != "gptunecrowd-store-v1":
            raise ValueError(f"{path}: not a GPTuneCrowd store file")
        return DocumentStore.from_jsonable(blob)
