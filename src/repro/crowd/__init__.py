"""Crowd-tuning infrastructure (systems S8-S15).

The shared-database stack of the paper's Fig. 1/Fig. 2: a JSON document
store, the performance-record schema, users/API keys/access control,
automatic environment parsing, tag-name matching, the repository service,
and the user-facing crowd-tuning API with its utility functions.
"""

from .api import CrowdClient, MetaDescription
from .configmatch import CanonicalEntry, TagMatcher, default_matcher
from .database import Collection, DocumentStore, QuerySyntaxError
from .analytics import (
    RepeatGroup,
    VariabilityReport,
    detect_outliers,
    group_repeats,
    variability_report,
)
from .models import ModelStore, StoredModel
from .environment import (
    EnvironmentParseError,
    parse_ck_meta,
    parse_slurm_environment,
    parse_spack_spec,
    parse_version,
)
from .query import SqlQuery, SqlSyntaxError, build_filter
from .records import ACCESS_LEVELS, Accessibility, PerformanceRecord
from .repository import CrowdRepository
from .server import CrowdServer
from .users import AuthError, KeyPair, User, UserRegistry
from .views import (
    LeaderboardRow,
    contributor_stats,
    leaderboard,
    machine_breakdown,
    render_html,
    render_text,
)

__all__ = [
    "ACCESS_LEVELS",
    "Accessibility",
    "AuthError",
    "CanonicalEntry",
    "Collection",
    "CrowdClient",
    "CrowdRepository",
    "CrowdServer",
    "DocumentStore",
    "EnvironmentParseError",
    "KeyPair",
    "LeaderboardRow",
    "MetaDescription",
    "ModelStore",
    "StoredModel",
    "PerformanceRecord",
    "QuerySyntaxError",
    "RepeatGroup",
    "VariabilityReport",
    "SqlQuery",
    "SqlSyntaxError",
    "TagMatcher",
    "User",
    "UserRegistry",
    "build_filter",
    "default_matcher",
    "detect_outliers",
    "group_repeats",
    "leaderboard",
    "contributor_stats",
    "machine_breakdown",
    "render_html",
    "render_text",
    "parse_ck_meta",
    "parse_slurm_environment",
    "parse_spack_spec",
    "parse_version",
    "variability_report",
]
