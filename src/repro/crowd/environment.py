"""Automatic environment parsing (system S13, paper Sec. III/IV-A).

GPTuneCrowd records the runtime environment of every sample "without
manual input".  Three parsers cover the paper's supported sources:

* :func:`parse_spack_spec` — Spack install specs like
  ``superlu-dist@7.2.0%gcc@9.3.0+openmp arch=cray-cnl7-haswell``,
* :func:`parse_slurm_environment` — the ``SLURM_*`` variables of a job
  (produced in this repository by :class:`repro.hpc.scheduler.SlurmSim`),
* :func:`parse_ck_meta` — CK-style ``meta.json`` dictionaries.

Each parser emits the normalized machine/software configuration blocks
of the meta description; :mod:`repro.crowd.configmatch` then matches the
free-form names against the database's well-known tags.
"""

from __future__ import annotations

import re
from collections.abc import Mapping
from typing import Any

__all__ = [
    "parse_spack_spec",
    "parse_slurm_environment",
    "parse_ck_meta",
    "parse_version",
    "EnvironmentParseError",
]


class EnvironmentParseError(ValueError):
    """Raised when an environment description cannot be parsed."""


_SPEC_RE = re.compile(
    r"""^\s*
    (?P<name>[a-zA-Z0-9][\w.-]*)            # package name
    (?:@(?P<version>[\w.]+))?               # @version
    (?:%(?P<compiler>[a-zA-Z][\w-]*)        # %compiler
       (?:@(?P<cversion>[\w.]+))?)?         # compiler @version
    (?P<variants>(?:[+~][\w-]+)*)           # +variant ~variant
    (?P<rest>.*)$""",
    re.VERBOSE,
)


def parse_version(text: str) -> list[int]:
    """``"7.2.0"`` -> ``[7, 2, 0]`` (non-numeric fragments dropped)."""
    parts = []
    for frag in str(text).split("."):
        m = re.match(r"\d+", frag)
        if m:
            parts.append(int(m.group()))
    if not parts:
        raise EnvironmentParseError(f"no numeric version in {text!r}")
    return parts


def parse_spack_spec(spec: str) -> dict[str, Any]:
    """Parse a Spack spec string into a software-configuration block."""
    m = _SPEC_RE.match(spec)
    if m is None or not m.group("name"):
        raise EnvironmentParseError(f"cannot parse spack spec {spec!r}")
    out: dict[str, Any] = {"name": m.group("name"), "source": "spack"}
    if m.group("version"):
        out["version_split"] = parse_version(m.group("version"))
    if m.group("compiler"):
        compiler: dict[str, Any] = {"name": m.group("compiler")}
        if m.group("cversion"):
            compiler["version_split"] = parse_version(m.group("cversion"))
        out["compiler"] = compiler
    variants = m.group("variants") or ""
    enabled = re.findall(r"\+([\w-]+)", variants)
    disabled = re.findall(r"~([\w-]+)", variants)
    if enabled or disabled:
        out["variants"] = {v: True for v in enabled} | {v: False for v in disabled}
    arch = re.search(r"arch=([\w.-]+)", m.group("rest") or "")
    if arch:
        out["arch"] = arch.group(1)
    return out


def parse_slurm_environment(env: Mapping[str, str]) -> dict[str, Any]:
    """Extract the machine-configuration block from ``SLURM_*`` variables."""
    if not any(k.startswith("SLURM_") for k in env):
        raise EnvironmentParseError("no SLURM_* variables present")
    out: dict[str, Any] = {"source": "slurm"}
    nodes = env.get("SLURM_JOB_NUM_NODES") or env.get("SLURM_NNODES")
    if nodes is not None:
        out["nodes"] = int(nodes)
    if "SLURM_NTASKS" in env:
        out["ntasks"] = int(env["SLURM_NTASKS"])
    if "SLURM_CPUS_PER_TASK" in env:
        out["cpus_per_task"] = int(env["SLURM_CPUS_PER_TASK"])
    if "SLURM_JOB_PARTITION" in env:
        out["partition"] = env["SLURM_JOB_PARTITION"]
    if "SLURM_JOB_NODELIST" in env:
        out["nodelist"] = env["SLURM_JOB_NODELIST"]
    if "SLURM_JOB_ID" in env:
        out["job_id"] = int(env["SLURM_JOB_ID"])
    return out


def parse_ck_meta(meta: Mapping[str, Any]) -> dict[str, Any]:
    """Parse a Collective-Knowledge-style ``meta.json`` dictionary."""
    if not isinstance(meta, Mapping):
        raise EnvironmentParseError("CK meta must be a mapping")
    name = meta.get("data_name") or meta.get("soft_name") or meta.get("package_name")
    if not name:
        raise EnvironmentParseError("CK meta has no recognizable package name")
    out: dict[str, Any] = {"name": str(name), "source": "ck"}
    version = meta.get("version") or meta.get("customize", {}).get("version")
    if version:
        out["version_split"] = parse_version(str(version))
    tags = meta.get("tags")
    if tags:
        out["tags"] = [str(t) for t in tags]
    return out
