"""Performance-variability analytics over crowd data.

The paper's conclusion lists "detecting/diagnosing performance
variability of performance samples (caused by system noise)" as future
work; this module implements it over the shared repository's records:

* :func:`group_repeats` — find configurations measured more than once
  (the crowd naturally produces repeats: different users, re-runs),
* :func:`variability_report` — per-configuration dispersion statistics
  (relative std, spread) plus a pooled noise estimate for the problem,
* :func:`detect_outliers` — samples inconsistent with their repeat group
  under a robust modified-z-score test (these are the "system noise"
  events — e.g. a run that shared its node with a noisy neighbor),
* :class:`VariabilityReport.suggest_noise_model` — the log-normal sigma
  a tuner should assume for this problem, closing the loop back into the
  GP's noise hyperparameter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

import numpy as np

from ..core.problem import task_key
from .records import PerformanceRecord

__all__ = [
    "RepeatGroup",
    "VariabilityReport",
    "group_repeats",
    "variability_report",
    "detect_outliers",
]

#: consistency constant making MAD comparable to a standard deviation
_MAD_TO_SIGMA = 1.4826


def _config_key(record: PerformanceRecord) -> tuple:
    return (
        task_key(record.task_parameters),
        task_key(record.tuning_parameters),
    )


@dataclass
class RepeatGroup:
    """All successful measurements of one (task, configuration) pair."""

    task_parameters: dict[str, Any]
    tuning_parameters: dict[str, Any]
    outputs: list[float] = field(default_factory=list)
    uids: list[int] = field(default_factory=list)

    @property
    def n(self) -> int:
        return len(self.outputs)

    @property
    def mean(self) -> float:
        return float(np.mean(self.outputs))

    @property
    def median(self) -> float:
        return float(np.median(self.outputs))

    @property
    def std(self) -> float:
        return float(np.std(self.outputs, ddof=1)) if self.n > 1 else 0.0

    @property
    def relative_std(self) -> float:
        """Coefficient of variation (the usual HPC-noise metric)."""
        m = self.mean
        return self.std / m if m > 0 else 0.0

    @property
    def spread(self) -> float:
        """max/min ratio; > ~1.2 usually indicates a system-noise event."""
        lo = min(self.outputs)
        return max(self.outputs) / lo if lo > 0 else math.inf

    def modified_z_scores(self) -> np.ndarray:
        """Robust per-sample z-scores (median/MAD based)."""
        y = np.asarray(self.outputs, dtype=float)
        med = np.median(y)
        mad = np.median(np.abs(y - med))
        if mad <= 0:
            return np.zeros(self.n)
        return (y - med) / (_MAD_TO_SIGMA * mad)


def group_repeats(
    records: Iterable[PerformanceRecord], *, min_repeats: int = 2
) -> list[RepeatGroup]:
    """Group successful records by (task, configuration)."""
    groups: dict[tuple, RepeatGroup] = {}
    for rec in records:
        if rec.failed:
            continue
        key = _config_key(rec)
        if key not in groups:
            groups[key] = RepeatGroup(
                dict(rec.task_parameters), dict(rec.tuning_parameters)
            )
        groups[key].outputs.append(float(rec.output))
        groups[key].uids.append(rec.uid)
    return sorted(
        (g for g in groups.values() if g.n >= min_repeats),
        key=lambda g: g.n,
        reverse=True,
    )


@dataclass
class VariabilityReport:
    """Problem-level variability diagnosis."""

    problem_name: str
    n_records: int
    n_repeat_groups: int
    groups: list[RepeatGroup]
    pooled_relative_std: float
    noisy_groups: list[RepeatGroup]

    def suggest_noise_model(self) -> float:
        """Log-normal sigma for tuners: pooled CV of repeated configs.

        Runtimes with multiplicative noise satisfy
        ``std(log y) ~= CV`` for small CV, so the pooled relative std is
        directly usable as the simulator/GP noise scale.
        """
        return self.pooled_relative_std

    def summary(self) -> dict[str, Any]:
        return {
            "problem": self.problem_name,
            "records": self.n_records,
            "repeat_groups": self.n_repeat_groups,
            "pooled_relative_std": round(self.pooled_relative_std, 5),
            "noisy_groups": len(self.noisy_groups),
        }

    def table(self, max_rows: int = 10) -> str:
        header = f"{'config':<48} {'n':>3} {'median':>10} {'rel.std':>8} {'spread':>7}"
        lines = [header, "-" * len(header)]
        for g in self.groups[:max_rows]:
            cfg = str(g.tuning_parameters)
            if len(cfg) > 46:
                cfg = cfg[:43] + "..."
            lines.append(
                f"{cfg:<48} {g.n:>3} {g.median:>10.4g} "
                f"{g.relative_std:>8.3f} {g.spread:>7.3f}"
            )
        return "\n".join(lines)


def variability_report(
    records: Iterable[PerformanceRecord],
    *,
    problem_name: str = "",
    noisy_threshold: float = 0.15,
) -> VariabilityReport:
    """Diagnose run-to-run variability across a problem's crowd records.

    ``noisy_threshold`` flags repeat groups whose relative std exceeds it
    (15% is far above healthy dedicated-node jitter).
    """
    records = list(records)
    groups = group_repeats(records)
    if groups:
        # pooled CV: weight each group's variance contribution by df
        num = sum((g.n - 1) * g.relative_std**2 for g in groups)
        den = sum(g.n - 1 for g in groups)
        pooled = math.sqrt(num / den) if den > 0 else 0.0
    else:
        pooled = 0.0
    noisy = [g for g in groups if g.relative_std > noisy_threshold]
    return VariabilityReport(
        problem_name=problem_name,
        n_records=len(records),
        n_repeat_groups=len(groups),
        groups=groups,
        pooled_relative_std=pooled,
        noisy_groups=noisy,
    )


def detect_outliers(
    records: Iterable[PerformanceRecord], *, z_threshold: float = 3.5
) -> list[tuple[PerformanceRecord, float]]:
    """Samples inconsistent with their repeat group.

    Returns ``(record, modified_z)`` pairs with ``|z| > z_threshold``
    (3.5 is the standard Iglewicz-Hoaglin cutoff).  Only groups with at
    least 3 measurements can convict an outlier.
    """
    records = list(records)
    by_uid: Mapping[int, PerformanceRecord] = {r.uid: r for r in records}
    out: list[tuple[PerformanceRecord, float]] = []
    for group in group_repeats(records, min_repeats=3):
        z = group.modified_z_scores()
        for uid, zi in zip(group.uids, z):
            if abs(zi) > z_threshold:
                out.append((by_uid[uid], float(zi)))
    out.sort(key=lambda pair: -abs(pair[1]))
    return out
