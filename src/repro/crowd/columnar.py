"""Columnar record plane: vectorized filters + zero-copy frozen reads.

The document store's row path evaluates Mongo-style filters one Python
dict at a time and ``deepcopy``-s every match — O(rows x interpreter
overhead), the last scalar bottleneck of the crowd read stack.  This
module supplies the two pieces that remove it while keeping the
``Collection`` API and its semantics bit-identical:

**Frozen documents** (:class:`FrozenDict` / :class:`FrozenList`).
Collections store every document deep-frozen.  Read-only callers can
then receive the *stored* objects directly (``find(..., frozen=True)``)
— zero copies, and any attempted mutation raises ``TypeError`` instead
of silently corrupting shared state.  Legacy callers keep getting
mutable deep copies: :func:`thaw` rebuilds plain dicts/lists (much
faster than ``copy.deepcopy``), and both frozen classes define
``__reduce__`` so ``copy.deepcopy``/``pickle`` of a frozen view also
yields plain mutable objects.  The store holds JSON-shaped documents;
non-JSON leaf objects (arrays, sets) pass through both :func:`freeze`
and :func:`thaw` by reference, exactly as callers that insert them must
already expect.

**ColumnarView**: a numpy-backed dictionary-encoded column per queried
dotted path, maintained incrementally from the collection's mutation
flow (inserts append in ``_id`` order; updates/deletes/out-of-order
restores mark the view dirty and the next read rebuilds).  Each column
interns distinct values — the interning key matches the store's hash
indexes (:func:`hashable_key`), so ``1``/``1.0``/``True`` share a code
exactly like they compare ``==`` on the row path — and keeps a parallel
``float64`` array for range comparisons.

The filter compiler lowers what :func:`repro.crowd.query.build_filter`
produces:

* equality / ``$eq`` / ``$ne`` on scalars — one code lookup + one
  vector compare,
* ``$gt``/``$gte``/``$lt``/``$lte`` with numeric arguments — float
  column compare when every stored value is float64-exact (``NaN``
  slots compare ``False``, matching the row path's ``TypeError`` /
  ``None`` handling),
* ``$in``/``$nin`` over scalar lists — unioned code compares,
* ``$exists`` — a compare against the interned ``None`` code (missing
  paths intern as ``None``, same as :func:`get_path`),
* ``$and`` / ``$or`` / ``$not`` — recursive mask combination,
* everything else (``$regex``, container arguments, mixed-type range
  comparisons) — a per-distinct-code evaluation of the *actual* row
  comparator broadcast through the code array, sound because ``==``
  -equal JSON values give identical comparator results; bounded by
  ``PERCODE_LIMIT`` distinct values.

Any shape the compiler does not fully cover returns ``None`` and the
caller falls back to the row path (perf counter
``store_row_fallbacks``), so unsupported filters — including malformed
ones, which must keep raising ``QuerySyntaxError`` with the row path's
exact reach-a-document semantics — behave exactly as before.

Sorting uses a stable argsort: all-numeric columns through one
``np.lexsort`` (``None`` ranks first, as :func:`sort_key` orders), any
other column through per-distinct-value ranks computed with the row
path's :func:`sort_key` — equal sort keys share a rank so stability
ties break by row order, identical to ``list.sort``.

Caveat (documented contract): the float fast path requires every stored
value and the filter argument to be exactly representable in float64;
columns containing integers beyond 2**53 (or ``NaN``) automatically
drop to per-code / row evaluation, so parity is preserved there too.

Concurrency: every query runs under the owning collection's lock (the
same boundary the row path uses), so incremental column maintenance can
never yield stale or torn reads — pinned by the writers-vs-readers
stress test.
"""

from __future__ import annotations

import json
import re
from collections.abc import Mapping
from typing import Any, Callable

import numpy as np

__all__ = [
    "FrozenDict",
    "FrozenList",
    "freeze",
    "thaw",
    "ColumnarView",
    "get_path",
    "hashable_key",
    "sort_key",
    "COMPARATORS",
]


# ---------------------------------------------------------------------------
# row-path building blocks (shared with repro.crowd.database)
# ---------------------------------------------------------------------------

COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "$eq": lambda v, arg: v == arg,
    "$ne": lambda v, arg: v != arg,
    "$gt": lambda v, arg: v is not None and v > arg,
    "$gte": lambda v, arg: v is not None and v >= arg,
    "$lt": lambda v, arg: v is not None and v < arg,
    "$lte": lambda v, arg: v is not None and v <= arg,
    "$in": lambda v, arg: v in arg,
    "$nin": lambda v, arg: v not in arg,
    "$exists": lambda v, arg: (v is not None) == bool(arg),
    "$regex": lambda v, arg: isinstance(v, str) and re.search(arg, v) is not None,
}


def get_path(doc: Mapping[str, Any], path: str) -> Any:
    """Resolve a dotted path; missing segments yield ``None``."""
    cur: Any = doc
    for part in path.split("."):
        if isinstance(cur, Mapping) and part in cur:
            cur = cur[part]
        else:
            return None
    return cur


def hashable_key(value: Any) -> Any:
    """The store's interning/index key: containers by canonical JSON."""
    if isinstance(value, (dict, list)):
        return json.dumps(value, sort_keys=True, default=str)
    return value


def sort_key(value: Any) -> tuple:
    """Total order across mixed types (None < numbers < strings < other)."""
    if value is None:
        return (0, 0)
    if isinstance(value, bool):
        return (1, int(value))
    if isinstance(value, (int, float)):
        return (1, value)
    if isinstance(value, str):
        return (2, value)
    return (3, str(value))


# ---------------------------------------------------------------------------
# frozen documents
# ---------------------------------------------------------------------------

def _read_only(self, *args, **kwargs):
    raise TypeError(
        "frozen document view is read-only; ask for a mutable copy "
        "(find(..., frozen=False)) or thaw() it first"
    )


class FrozenDict(dict):
    """An immutable dict view of a stored document (still a ``dict``:
    ``json.dumps``, ``isinstance`` checks and read access all work)."""

    __slots__ = ()

    __setitem__ = _read_only
    __delitem__ = _read_only
    __ior__ = _read_only
    clear = _read_only
    pop = _read_only
    popitem = _read_only
    setdefault = _read_only
    update = _read_only

    def __reduce__(self):
        # deepcopy/pickle reconstruct through this, so a deep copy of a
        # frozen view is a plain *mutable* dict — the legacy contract of
        # documents leaving the store
        return (dict, (list(self.items()),))


class FrozenList(list):
    """An immutable list view (still a ``list`` for serialization)."""

    __slots__ = ()

    __setitem__ = _read_only
    __delitem__ = _read_only
    __iadd__ = _read_only
    __imul__ = _read_only
    append = _read_only
    extend = _read_only
    insert = _read_only
    pop = _read_only
    remove = _read_only
    clear = _read_only
    sort = _read_only
    reverse = _read_only

    def __reduce__(self):
        return (list, (list(self),))


def freeze(value: Any) -> Any:
    """Deep-freeze a JSON-shaped value (rebuilds every container, so the
    result shares nothing mutable with the input).  Already-frozen
    containers are returned as-is — they are immutable all the way down.
    """
    t = type(value)
    if t is FrozenDict or t is FrozenList:
        return value
    if isinstance(value, dict):
        return FrozenDict((k, freeze(v)) for k, v in value.items())
    if isinstance(value, list):
        return FrozenList(freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(freeze(v) for v in value)
    return value


def thaw(value: Any) -> Any:
    """Fast deep copy of a JSON-shaped value into plain mutable objects
    (what ``copy.deepcopy`` produced on the legacy read path)."""
    if isinstance(value, dict):
        return {k: thaw(v) for k, v in value.items()}
    if isinstance(value, list):
        return [thaw(v) for v in value]
    if isinstance(value, tuple):
        return tuple(thaw(v) for v in value)
    return value


# ---------------------------------------------------------------------------
# columns
# ---------------------------------------------------------------------------

#: scalar types eligible for direct code-lookup equality
_SCALARS = (str, int, float, bool, type(None))
#: largest integer magnitude exactly representable in float64
_FLOAT_EXACT = 2 ** 53
#: distinct-value bound for per-code comparator tables; beyond it the
#: query falls back to the row path instead of looping Python per value
PERCODE_LIMIT = 4096
#: bound on cached columns per view (distinct dotted paths ever queried)
MAX_COLUMNS = 64
_GROW = 256


def _float_exact(value: Any) -> bool:
    if isinstance(value, bool):
        return True
    if isinstance(value, int):
        return -_FLOAT_EXACT <= value <= _FLOAT_EXACT
    return isinstance(value, float) and value == value


class _Column:
    """One dotted path, dictionary-encoded: ``codes`` index ``values``."""

    __slots__ = ("values", "lookup", "codes", "floats", "n", "numeric_ok", "none_code")

    def __init__(self) -> None:
        self.values: list[Any] = []  # code -> representative value
        self.lookup: dict[Any, int] = {}  # hashable_key(value) -> code
        self.codes = np.empty(_GROW, dtype=np.int32)
        self.floats = np.empty(_GROW, dtype=np.float64)
        self.n = 0
        #: every value is None or float64-exact numeric — range ops and
        #: sorts may use the float column verbatim
        self.numeric_ok = True
        self.none_code = -1

    def append(self, value: Any) -> None:
        code = self.lookup.get(hashable_key(value))
        if code is None:
            code = len(self.values)
            self.values.append(value)
            self.lookup[hashable_key(value)] = code
            if value is None:
                self.none_code = code
            elif not _float_exact(value):
                self.numeric_ok = False
        if self.n == len(self.codes):
            self.codes = np.concatenate([self.codes, np.empty_like(self.codes)])
            self.floats = np.concatenate([self.floats, np.empty_like(self.floats)])
        self.codes[self.n] = code
        rep = self.values[code]
        if isinstance(rep, (int, float)):
            try:
                self.floats[self.n] = float(rep)
            except OverflowError:
                self.floats[self.n] = np.nan
        else:
            self.floats[self.n] = np.nan
        self.n += 1

    # -- masks (all sized self.n) -------------------------------------------
    def eq_mask(self, arg: Any) -> np.ndarray | None:
        """Rows whose value ``== arg``; None unless ``arg`` is a scalar."""
        if not isinstance(arg, _SCALARS):
            return None
        if isinstance(arg, float) and arg != arg:
            # NaN equals nothing on the row path
            return np.zeros(self.n, dtype=bool)
        return self.codes[: self.n] == self.lookup.get(arg, -1)

    def percode_mask(self, fn: Callable[[Any], Any]) -> np.ndarray | None:
        """``fn`` evaluated once per distinct value, broadcast to rows.

        Sound for row-comparator semantics because interning groups
        exactly the ``==``-equal JSON values, and every supported
        comparator is a function of the ``==``-class of its input.
        """
        if len(self.values) > PERCODE_LIMIT:
            return None
        if not self.values:
            return np.zeros(self.n, dtype=bool)
        table = np.fromiter(
            (bool(fn(v)) for v in self.values), dtype=bool, count=len(self.values)
        )
        return table[self.codes[: self.n]]

    def range_mask(self, op: str, arg: Any) -> np.ndarray | None:
        """Vector float compare; None when exactness can't be guaranteed."""
        if isinstance(arg, bool) or not isinstance(arg, (int, float)):
            return None
        if not self.numeric_ok or not _float_exact(arg):
            return None
        f = self.floats[: self.n]
        a = float(arg)
        # NaN slots (None / non-numeric) compare False — identical to the
        # row path's `v is not None and v OP arg` + TypeError handling
        if op == "$gt":
            return f > a
        if op == "$gte":
            return f >= a
        if op == "$lt":
            return f < a
        if op == "$lte":
            return f <= a
        return None

    def sort_ranks(self) -> np.ndarray:
        """Per-code ranks under :func:`sort_key`; equal keys share a rank
        so a stable argsort breaks ties by row order like ``list.sort``."""
        keys = [sort_key(v) for v in self.values]
        order = sorted(range(len(keys)), key=keys.__getitem__)
        ranks = np.empty(max(len(keys), 1), dtype=np.int64)
        prev = None
        rank = 0
        for i, code in enumerate(order):
            if prev is None or keys[code] != prev:
                rank = i
                prev = keys[code]
            ranks[code] = rank
        return ranks


def _safe(fn: Callable[[Any, Any], bool], arg: Any) -> Callable[[Any], bool]:
    def check(value: Any) -> bool:
        try:
            return fn(value, arg)
        except TypeError:
            return False

    return check


# ---------------------------------------------------------------------------
# the view
# ---------------------------------------------------------------------------

class ColumnarView:
    """Incremental columnar index over one collection's documents.

    Owned by a :class:`~repro.crowd.database.Collection`; every method
    here runs under that collection's lock (``Collection.find`` /
    ``Collection.columnar_snapshot`` acquire it), so readers always see
    a consistent row/column state.

    Rows are kept in ascending ``_id`` order — the canonical unsorted
    result order of both paths.  In-order inserts append; anything else
    (update, delete, out-of-order restore) marks the view dirty and the
    next read rebuilds rows and drops cached columns.
    """

    def __init__(self, docs: Mapping[int, Mapping[str, Any]]) -> None:
        self._docs = docs  # the owning collection's _id -> doc mapping
        self._rows: list[Mapping[str, Any]] = []
        self._columns: dict[str, _Column] = {}
        self._last_id = 0
        self._dirty = True

    def __len__(self) -> int:
        return len(self._rows)

    @property
    def rows(self) -> list[Mapping[str, Any]]:
        return self._rows

    # -- maintenance (collection lock held) ---------------------------------
    def mark_dirty(self) -> None:
        self._dirty = True

    def on_insert(self, _id: int, doc: Mapping[str, Any]) -> None:
        if self._dirty:
            return
        if _id <= self._last_id:
            self._dirty = True
            return
        self._rows.append(doc)
        self._last_id = _id
        for path, col in self._columns.items():
            col.append(get_path(doc, path))

    def ensure_clean(self) -> None:
        if not self._dirty:
            return
        self._rows = [self._docs[i] for i in sorted(self._docs)]
        self._last_id = int(self._rows[-1]["_id"]) if self._rows else 0
        self._columns = {}
        self._dirty = False

    # -- columns ------------------------------------------------------------
    def _column(self, path: str) -> _Column | None:
        col = self._columns.get(path)
        if col is not None:
            return col
        if len(self._columns) >= MAX_COLUMNS or not isinstance(path, str):
            return None
        col = _Column()
        for doc in self._rows:
            col.append(get_path(doc, path))
        self._columns[path] = col
        return col

    # -- filter compilation --------------------------------------------------
    def filter_mask(self, flt: Mapping[str, Any]) -> np.ndarray | None:
        """Boolean row mask for a Mongo-style filter document, or None
        when any part does not vectorize (callers fall back to the row
        path, which also owns raising on malformed filters)."""
        try:
            return self._filter_mask(flt)
        except (TypeError, AttributeError):
            # pathologically malformed filter (non-string keys, ...):
            # never raise at compile time — the row path only raises
            # when a document is actually evaluated
            return None

    def _filter_mask(self, flt: Mapping[str, Any]) -> np.ndarray | None:
        n = len(self._rows)
        if not flt:
            return np.ones(n, dtype=bool)
        masks: list[np.ndarray] = []
        for key, cond in flt.items():
            if key == "$and":
                subs = self._submasks(cond)
                if subs is None:
                    return None
                masks.extend(subs)
            elif key == "$or":
                subs = self._submasks(cond)
                if subs is None:
                    return None
                masks.append(np.logical_or.reduce(subs))
            elif key == "$not":
                if not isinstance(cond, Mapping):
                    return None
                m = self.filter_mask(cond)
                if m is None:
                    return None
                masks.append(~m)
            elif key.startswith("$"):
                return None  # unknown top-level operator: row path raises
            else:
                col = self._column(key)
                if col is None:
                    return None
                if isinstance(cond, Mapping) and any(
                    k.startswith("$") for k in cond
                ):
                    for op, arg in cond.items():
                        m = self._op_mask(col, op, arg)
                        if m is None:
                            return None
                        masks.append(m)
                else:
                    m = self._value_mask(col, cond)
                    if m is None:
                        return None
                    masks.append(m)
        if not masks:
            return np.ones(n, dtype=bool)
        return np.logical_and.reduce(masks)

    def _submasks(self, cond: Any) -> list[np.ndarray] | None:
        if not isinstance(cond, (list, tuple)) or not cond:
            return None  # malformed: row path raises QuerySyntaxError
        out: list[np.ndarray] = []
        for sub in cond:
            if not isinstance(sub, Mapping):
                return None
            m = self.filter_mask(sub)
            if m is None:
                return None
            out.append(m)
        return out

    def _value_mask(self, col: _Column, arg: Any) -> np.ndarray | None:
        m = col.eq_mask(arg)
        if m is not None:
            return m
        return col.percode_mask(_safe(COMPARATORS["$eq"], arg))

    def _op_mask(self, col: _Column, op: str, arg: Any) -> np.ndarray | None:
        if op == "$eq":
            return self._value_mask(col, arg)
        if op == "$ne":
            m = self._value_mask(col, arg)
            return None if m is None else ~m
        if op in ("$gt", "$gte", "$lt", "$lte"):
            m = col.range_mask(op, arg)
            if m is not None:
                return m
            return col.percode_mask(_safe(COMPARATORS[op], arg))
        if op in ("$in", "$nin"):
            if (
                isinstance(arg, (list, tuple))
                and len(arg) <= 64
                and all(
                    isinstance(a, _SCALARS) and a == a for a in arg
                )
            ):
                m = np.zeros(col.n, dtype=bool)
                for a in arg:
                    m |= col.eq_mask(a)
                return ~m if op == "$nin" else m
            return col.percode_mask(_safe(COMPARATORS[op], arg))
        if op == "$exists":
            none = col.eq_mask(None)
            return ~none if arg else none
        if op == "$regex":
            try:
                re.compile(arg)
            except (re.error, TypeError):
                return None  # row path owns the error semantics
            return col.percode_mask(_safe(COMPARATORS["$regex"], arg))
        return None  # unknown operator: row path raises QuerySyntaxError

    # -- extra masks for callers composing their own predicates --------------
    def path_eq_mask(self, path: str, value: Any) -> np.ndarray | None:
        """Scalar equality mask on one dotted path."""
        col = self._column(path)
        return col.eq_mask(value) if col is not None else None

    def path_value_mask(
        self, path: str, fn: Callable[[Any], Any]
    ) -> np.ndarray | None:
        """``fn`` over the path's distinct values, broadcast to rows.

        ``fn`` must be a pure function of the value's ``==``-class;
        exceptions propagate (callers mirror their row-path semantics).
        """
        col = self._column(path)
        return col.percode_mask(fn) if col is not None else None

    # -- selection ------------------------------------------------------------
    def select(
        self,
        mask: np.ndarray,
        *,
        sort: str | None = None,
        descending: bool = False,
        limit: int | None = None,
        frozen: bool = False,
    ) -> list[dict[str, Any]] | None:
        """Materialize the masked rows (row-path-identical ordering).

        Returns None when the sort column is unavailable (caller falls
        back).  ``frozen=True`` returns the stored frozen documents —
        zero copies; otherwise each row is thawed into a mutable dict.
        """
        idx = np.nonzero(mask)[0]
        if sort is not None and len(idx):
            col = self._column(sort)
            if col is None:
                return None
            idx = idx[self._sort_order(col, idx, descending)]
        if limit is not None:
            idx = idx[: max(limit, 0)]
        rows = self._rows
        if frozen:
            return [rows[i] for i in idx]
        return [thaw(rows[i]) for i in idx]

    def _sort_order(
        self, col: _Column, idx: np.ndarray, descending: bool
    ) -> np.ndarray:
        codes = col.codes[: col.n][idx]
        if col.numeric_ok:
            isnone = (
                codes == col.none_code
                if col.none_code >= 0
                else np.zeros(len(codes), dtype=bool)
            )
            f = np.where(isnone, 0.0, col.floats[: col.n][idx])
            present = (~isnone).astype(np.int8)  # None sorts first ascending
            if descending:
                return np.lexsort((-f, -present))
            return np.lexsort((f, present))
        keys = col.sort_ranks()[codes]
        if descending:
            return np.argsort(-keys, kind="stable")
        return np.argsort(keys, kind="stable")

    def count(self, flt: Mapping[str, Any]) -> int | None:
        mask = self.filter_mask(flt)
        return None if mask is None else int(mask.sum())
