"""GPTuneCrowd reproduction: crowd-based autotuning for HPC applications.

A from-scratch Python implementation of the system described in
"Harnessing the Crowd for Autotuning High-Performance Computing
Applications" (IPDPS 2023): the Bayesian-optimization autotuning core,
the full transfer-learning algorithm pool with the proposed ensemble,
Sobol' sensitivity analysis, the shared crowd database, and simulated
HPC substrates for the paper's four case-study applications.

Subpackages
-----------
``repro.core``
    Spaces, GP/LCM surrogates, acquisition, the BO loop (NoTLA).
``repro.tla``
    The TLA pool of Table I and the transfer tuner.
``repro.crowd``
    Document store, records, users, queries, environment parsing, API.
``repro.engine``
    Asynchronous batched evaluation: worker pool, faults, streaming.
``repro.service``
    Sharded, durable, cached serving layer for the crowd repository.
``repro.sensitivity``
    Sobol' sequence, Saltelli sampling, indices, space reduction.
``repro.hpc``
    Simulated machines, network/MPI cost models, scheduler, grids.
``repro.apps``
    Synthetic functions + PDGEQRF / SuperLU_DIST / Hypre / NIMROD models.
"""

__version__ = "1.0.0"

from . import apps, core, crowd, hpc, sensitivity, tla

__all__ = ["apps", "core", "crowd", "hpc", "sensitivity", "tla", "__version__"]
